//! Fault-tolerance audit: stress a deployed schedule against fault
//! budgets it was *not* designed for, and against random fault
//! processes.
//!
//! The audit answers: "we planned for f faulty robots — what actually
//! happens if the estimate is wrong?" It combines the analytic
//! misestimation ablation with Monte-Carlo simulation under Bernoulli
//! sensor failures.
//!
//! ```text
//! cargo run -p faultline-suite --example fault_tolerance_audit
//! ```

use faultline_suite::analysis::ablation;
use faultline_suite::analysis::ascii::render_table;
use faultline_suite::core::{ratio, Params};
use faultline_suite::sim::{run_sweep, BernoulliFaults, MonteCarloConfig};
use faultline_suite::strategies::{PaperStrategy, Strategy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 5usize;
    let f_design = 2usize;
    let params = Params::new(n, f_design)?;

    println!("== Audit of A({n}, {f_design}) ==");
    println!("designed competitive ratio: {:.4}", ratio::cr_upper(params));
    println!();

    // 1. Worst-case penalty for a wrong fault estimate (analytic).
    println!("-- worst case under fault misestimation --");
    let rows: Vec<Vec<String>> = ablation::fault_misestimation(n, f_design)?
        .into_iter()
        .map(|s| {
            vec![
                s.f_true.to_string(),
                format!("{:.4}", s.cr),
                format!("{:.4}", s.cr_oracle),
                format!("{:+.1}%", 100.0 * (s.cr / s.cr_oracle - 1.0)),
            ]
        })
        .collect();
    print!("{}", render_table(&["true faults", "achieved CR", "oracle CR", "penalty"], &rows));
    println!();

    // 2. Typical-case behaviour under random sensor failures.
    println!("-- Monte Carlo under Bernoulli sensor failures (2000 runs each) --");
    let strategy = PaperStrategy::new();
    let plans = strategy.plans(params)?;
    let horizon = strategy.horizon_hint(params, 101.0);
    let mut rows = Vec::new();
    for p_fail in [0.05, 0.2, 0.4] {
        let mut faults = BernoulliFaults::new(p_fail, f_design, StdRng::seed_from_u64(21))?;
        let mut rng = StdRng::seed_from_u64(42);
        let stats =
            run_sweep(&plans, &mut faults, MonteCarloConfig::new(2000, 100.0)?, horizon, &mut rng)?;
        rows.push(vec![
            format!("{p_fail}"),
            format!("{:.4}", stats.mean),
            format!("{:.4}", stats.p95),
            format!("{:.4}", stats.max),
            stats.undetected.to_string(),
        ]);
    }
    print!(
        "{}",
        render_table(&["P(sensor broken)", "mean ratio", "p95", "max", "undetected"], &rows)
    );
    println!();
    println!(
        "reading: random faults rarely approach the worst case ({:.4}); the adversarial \
         bound is what you must promise, the Monte-Carlo numbers are what you typically see.",
        ratio::cr_upper(params)
    );
    Ok(())
}
