//! The lower-bound adversary as a playable game (Theorem 2).
//!
//! The adversary places the target at one of `{±1, ±x_(n-1), ..., ±x_0}`
//! with `x_i = 2^(i+1) / ((alpha-1)^i (alpha-3))` and corrupts the `f`
//! robots that would reach it first. Theorem 2 proves it can always
//! force a ratio of at least `alpha(n)` on ANY strategy with
//! `n < 2f + 2` robots.
//!
//! This example runs that game against every registered strategy and
//! shows the forced ratio next to the theoretical floor `alpha(n)` and
//! each strategy's own guarantee.
//!
//! ```text
//! cargo run -p faultline-suite --example adversary_game
//! ```

use faultline_suite::analysis::ascii::render_table;
use faultline_suite::core::{lower_bound, Params};
use faultline_suite::strategies::all_strategies;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = Params::new(3, 1)?;
    let n = params.n();
    let alpha = lower_bound::alpha(n)?;
    let points = lower_bound::adversary_points(n, alpha)?;

    println!("== The Theorem 2 adversary at (n, f) = ({n}, {}) ==", params.f());
    println!("alpha({n}) = {alpha:.6} — no strategy can beat this ratio");
    println!(
        "adversarial placements: ±1, {}",
        points.iter().map(|x| format!("±{x:.4}")).collect::<Vec<_>>().join(", ")
    );
    println!();

    let xmax = points[0] * 1.2;
    let mut rows = Vec::new();
    for strategy in all_strategies() {
        let plans = match strategy.plans(params) {
            Ok(p) => p,
            Err(e) => {
                rows.push(vec![
                    strategy.name().to_owned(),
                    "-".into(),
                    "-".into(),
                    format!("not applicable: {e}"),
                ]);
                continue;
            }
        };
        let horizon = strategy.horizon_hint(params, xmax);
        let trajectories =
            plans.iter().map(|p| p.materialize(horizon)).collect::<Result<Vec<_>, _>>()?;
        let outcome = lower_bound::adversarial_ratio(&trajectories, params.f(), n, alpha)?;
        let guarantee =
            strategy.analytic_cr(params).map_or("unknown".to_owned(), |v| format!("{v:.4}"));
        let forced = if outcome.ratio.is_finite() {
            format!("{:.4}", outcome.ratio)
        } else {
            "unbounded".to_owned()
        };
        let note = if outcome.ratio.is_infinite() {
            format!("target at {:+.4} never confirmed", outcome.placement)
        } else {
            format!("worst placement {:+.4}", outcome.placement)
        };
        rows.push(vec![strategy.name().to_owned(), guarantee, forced, note]);
    }
    print!("{}", render_table(&["strategy", "own guarantee", "adversary forces", "note"], &rows));
    println!();
    println!(
        "every applicable strategy is forced to at least alpha({n}) = {alpha:.4}, \
         confirming the lower bound; the paper's algorithm stays closest to it."
    );
    Ok(())
}
