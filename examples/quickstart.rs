//! Quickstart: design the paper's algorithm for a fleet, inspect it,
//! and run one simulated search against the worst-case adversary.
//!
//! ```text
//! cargo run -p faultline-suite --example quickstart
//! ```

use faultline_suite::core::{Algorithm, Params};
use faultline_suite::sim::engine::SimConfig;
use faultline_suite::sim::{worst_case_outcome, Target};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Five robots, of which at most two may be faulty. Because
    // 5 < 2*2 + 2 = 6 we are in the interesting regime: the trivial
    // left/right split does not work and the paper's proportional
    // schedule algorithm A(5, 2) is used.
    let params = Params::new(5, 2)?;
    let algorithm = Algorithm::design(params)?;

    println!("{}", algorithm.describe());
    println!();

    let schedule = algorithm.schedule().expect("proportional regime");
    println!("cone parameter beta      = {:.6}", schedule.beta());
    println!("expansion factor kappa   = {:.6}", schedule.expansion_factor());
    println!("proportionality ratio r  = {:.6}", schedule.ratio());
    println!("competitive ratio (Thm 1) = {:.6}", algorithm.analytic_cr());
    println!();

    // Per-robot plans: the seed turning points of Definition 4.
    for (i, plan) in algorithm.plans().iter().enumerate() {
        println!("robot a{i}: {}", plan.label());
    }
    println!();

    // Simulate a search for a target at position -7.3. The adversary
    // picks the worst two robots to corrupt: the first two to arrive.
    let target = Target::new(-7.3)?;
    let horizon = algorithm.required_horizon(10.0)?;
    let trajectories =
        algorithm.plans().iter().map(|p| p.materialize(horizon)).collect::<Result<Vec<_>, _>>()?;
    let outcome = worst_case_outcome(trajectories, target, params.f(), SimConfig::default())?;

    println!("search for {target}:");
    for v in &outcome.visits {
        println!(
            "  t = {:8.4}  robot a{} visits the target ({})",
            v.time,
            v.robot.0,
            if v.reliable { "reliable -> DETECTED" } else { "faulty, walks past" }
        );
    }
    let detection = outcome.detection.expect("A(n, f) always finds the target");
    println!(
        "detected at t = {:.4}; ratio = {:.4} (guarantee: {:.4})",
        detection.time,
        outcome.ratio(),
        algorithm.analytic_cr()
    );
    assert!(outcome.ratio() <= algorithm.analytic_cr() + 1e-9);
    Ok(())
}
