//! Extensions in action: known distance bounds and turn costs.
//!
//! Two variations the paper leaves open, built on the same schedule
//! machinery:
//!
//! 1. **Known bound `D`** — if the operators know the target is within
//!    `D`, clamping every excursion to `±D` improves the worst case
//!    while `D` clips the early turning points; for larger `D` the
//!    supremum (attained on outbound sweeps) is untouched.
//! 2. **Turn cost `c`** — if every reversal costs extra time, the
//!    ratio degrades by an additive `c * reversals`, but (perhaps
//!    surprisingly) the paper's `beta*` remains the optimal cone.
//!
//! ```text
//! cargo run -p faultline-suite --example bounded_search
//! ```

use faultline_suite::analysis::ascii::render_table;
use faultline_suite::analysis::{bounded, turncost};
use faultline_suite::core::{ratio, Params};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = Params::new(3, 1)?;
    println!("base setting: {params}, Theorem 1 ratio {:.4}", ratio::cr_upper(params));
    println!();

    println!("== known distance bound D (clamped schedules) ==");
    let samples = bounded::bound_sweep(params, &[1.5, 2.0, 4.0, 8.0, 16.0, 64.0], 48)?;
    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            vec![
                format!("{}", s.bound),
                format!("{:.4}", s.measured_cr),
                format!("{:.4}", s.unbounded_cr),
                format!("{:.1}%", 100.0 * (1.0 - s.measured_cr / s.unbounded_cr)),
            ]
        })
        .collect();
    print!("{}", render_table(&["D", "bounded CR", "unbounded CR", "saving"], &rows));
    println!();

    println!("== turn cost c (empirically re-optimized beta) ==");
    let paper_beta = ratio::optimal_beta(params)?;
    let sweep = turncost::sweep(params, &[0.0, 0.5, 2.0, 8.0], 25.0, 48)?;
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|s| {
            vec![
                format!("{}", s.c),
                format!("{:.4}", s.best_beta),
                format!("{:.4}", s.best_cr),
                format!("{:.4}", s.cr_at_paper_beta),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["cost per turn", "best beta", "best ratio", "ratio at paper beta*"], &rows)
    );
    println!("(paper's turn-free optimum: beta* = {paper_beta:.4})");
    println!();
    println!(
        "reading: the bound only helps while D clips the first excursions (first visits \
         happen on outbound sweeps, which clamping never shortens); under turn costs the \
         penalty is additive and beta* stays optimal — both recorded in EXPERIMENTS.md."
    );
    Ok(())
}
