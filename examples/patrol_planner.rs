//! Patrol planner: a domain scenario from the paper's motivation.
//!
//! A pipeline operator must locate a leak somewhere along an
//! (effectively) infinite pipeline using a pool of inspection drones
//! whose sensors are unreliable: field data says up to `f` of them may
//! have silently broken detectors. A point is only *confirmed* clear or
//! leaking after `f + 1` distinct drones have flown over it.
//!
//! The planner answers two operational questions:
//! 1. Given `n` drones and a sensor-failure budget `f`, what response
//!    time guarantee (competitive ratio) can we promise?
//! 2. How many drones do we need to buy to promise a target ratio?
//!
//! It also exports the flight schedule as an SVG space-time diagram.
//!
//! ```text
//! cargo run -p faultline-suite --example patrol_planner
//! ```

use faultline_suite::analysis::ascii::{render_table, Series};
use faultline_suite::analysis::svg::{SvgCanvas, PALETTE};
use faultline_suite::core::{lower_bound, ratio, Algorithm, Params, Regime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Question 1: the promise table for a fixed pool of 7 drones.
    println!("== Guarantees for a pool of 7 drones ==");
    let mut rows = Vec::new();
    for f in 0..7usize {
        let params = Params::new(7, f)?;
        let cr = ratio::cr_upper(params);
        let lb = lower_bound::lower_bound(params)?;
        rows.push(vec![
            f.to_string(),
            format!("{:?}", params.regime()),
            format!("{cr:.4}"),
            format!("{lb:.4}"),
        ]);
    }
    print!(
        "{}",
        render_table(&["faulty sensors", "regime", "promised ratio", "best possible"], &rows)
    );
    println!();

    // Question 2: smallest fleet that promises ratio <= 4.0 with up to
    // 2 broken sensors.
    let target_ratio = 4.0;
    let f = 2usize;
    let n_needed = ratio::min_robots(f, target_ratio)?;
    println!(
        "smallest fleet promising ratio <= {target_ratio} with {f} broken sensors: {n_needed} drones \
         (ratio {:.4})",
        ratio::cr_upper(Params::new(n_needed, f)?)
    );
    println!();

    // Export the flight plan for that fleet as an SVG diagram.
    let params = Params::new(n_needed, f)?;
    let algorithm = Algorithm::design(params)?;
    println!("{}", algorithm.describe());
    let horizon = match params.regime() {
        Regime::Proportional => algorithm.required_horizon(8.0)?,
        Regime::TwoGroup => 12.0,
    };
    let mut series = Vec::new();
    for (i, plan) in algorithm.plans().iter().enumerate() {
        let traj = plan.materialize(horizon)?;
        series.push(Series::new(
            format!("drone {i}"),
            traj.waypoints().iter().map(|p| (p.x, p.t)).collect(),
        ));
    }
    let reach =
        series.iter().flat_map(|s| s.points.iter().map(|p| p.0.abs())).fold(1.0f64, f64::max);
    let mut canvas = SvgCanvas::new(800.0, 600.0, (-reach, reach), (0.0, horizon))?;
    canvas.axes();
    for (i, s) in series.iter().enumerate() {
        canvas.polyline(&s.points, PALETTE[i % PALETTE.len()], 1.5);
    }
    std::fs::create_dir_all("out")?;
    std::fs::write("out/patrol_plan.svg", canvas.into_svg())?;
    println!("flight plan written to out/patrol_plan.svg");
    Ok(())
}
