//! Integration tests of the cross-layer conformance harness: the
//! engine's determinism contract, the injected-failure pipeline
//! (caught, shrunk, replayable), and the `faultline conformance` CLI.

use std::process::Command;

use faultline_suite::conformance::{self, ConformanceConfig, Counterexample, Tier};
use faultline_suite::core::parallel::THREADS_ENV;
use faultline_suite::core::ParallelConfig;

fn smoke(cases: usize) -> ConformanceConfig {
    ConformanceConfig { cases, budget: Tier::Smoke, ..ConformanceConfig::default() }
}

#[test]
fn smoke_tier_passes_every_oracle() {
    let report = conformance::run(&smoke(24)).expect("run succeeds");
    assert!(report.passed(), "failures: {:#?}", report.failures);
    // The matrix covers all three regimes and every oracle appears.
    let oracles: std::collections::BTreeSet<&str> =
        report.rows.iter().map(|r| r.oracle.as_str()).collect();
    assert_eq!(oracles.len(), conformance::all_oracles().len());
}

#[test]
fn report_bytes_are_deterministic_across_runs_and_thread_counts() {
    let base = conformance::run(&smoke(12)).unwrap().to_json().unwrap();
    let again = conformance::run(&smoke(12)).unwrap().to_json().unwrap();
    assert_eq!(base, again, "two identical runs must serialize identically");

    let single = ConformanceConfig { parallel: ParallelConfig::with_threads(1), ..smoke(12) };
    let single_bytes = conformance::run(&single).unwrap().to_json().unwrap();
    assert_eq!(base, single_bytes, "one worker thread must not change the report");

    let four = ConformanceConfig { parallel: ParallelConfig::with_threads(4), ..smoke(12) };
    let four_bytes = conformance::run(&four).unwrap().to_json().unwrap();
    assert_eq!(base, four_bytes, "four worker threads must not change the report");
}

#[test]
fn injected_mismatch_is_caught_shrunk_and_replayable() {
    let config =
        ConformanceConfig { inject: Some("thm1-closed-form-measured".to_owned()), ..smoke(6) };
    let report = conformance::run(&config).expect("run itself succeeds");
    assert!(!report.passed(), "the injected skew must trip the oracle");
    assert!(!report.failures.is_empty());
    for doc in &report.failures {
        assert_eq!(doc.oracle, "thm1-closed-form-measured");
        assert!(doc.injected, "documents must record that the skew was injected");
        // Shrunk: at most one target survives minimization (the oracle
        // does not depend on targets at all).
        assert!(doc.instance.targets.len() <= 1, "targets: {:?}", doc.instance.targets);
        assert!(doc.instance.schedule.is_none(), "the schedule is irrelevant and dropped");
        // Replayable: bit-for-bit, including after a JSON round trip.
        doc.replay().expect("counterexample replays");
        let round_trip = Counterexample::from_json(&doc.to_json().unwrap()).unwrap();
        round_trip.replay().expect("round-tripped counterexample replays");
    }
    // Only the injected oracle fails; every other oracle still passes.
    for row in &report.rows {
        if row.oracle != "thm1-closed-form-measured" {
            assert_eq!(row.fail, 0, "{} must not fail", row.oracle);
        }
    }
}

#[test]
#[ignore = "deep tier: fine grids over many cases; run with --ignored"]
fn deep_tier_passes_every_oracle() {
    let config = ConformanceConfig { cases: 120, budget: Tier::Deep, ..Default::default() };
    let report = conformance::run(&config).expect("run succeeds");
    assert!(report.passed(), "failures: {:#?}", report.failures);
}

fn faultline(args: &[&str], envs: &[(&str, &str)]) -> (bool, String, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_faultline"));
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let output = cmd.output().expect("failed to spawn the faultline binary");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn cli_run_is_byte_deterministic_and_thread_invariant() {
    let args = ["conformance", "run", "--seed=1", "--cases=9", "--budget=smoke", "--json"];
    let (ok, first, err) = faultline(&args, &[]);
    assert!(ok, "stderr: {err}");
    let (ok, second, _) = faultline(&args, &[]);
    assert!(ok);
    assert_eq!(first, second, "same seed must print identical bytes");
    let (ok, pinned, _) = faultline(&args, &[(THREADS_ENV, "1")]);
    assert!(ok);
    assert_eq!(first, pinned, "{THREADS_ENV}=1 must print identical bytes");
    assert!(first.contains("\"version\""));
}

#[test]
fn cli_renders_a_matrix_and_reports_the_verdict() {
    let (ok, out, err) =
        faultline(&["conformance", "run", "--seed=3", "--cases=6", "--budget=smoke"], &[]);
    assert!(ok, "stderr: {err}");
    assert!(out.contains("oracle"), "{out}");
    assert!(out.contains("all oracles passed"), "{out}");
}

#[test]
fn cli_injection_fails_writes_documents_and_replays() {
    let dir = std::env::temp_dir().join(format!("faultline-conformance-{}", std::process::id()));
    let out_flag = format!("--out={}", dir.display());
    let (ok, _, err) = faultline(
        &[
            "conformance",
            "run",
            "--seed=1",
            "--cases=6",
            "--budget=smoke",
            "--inject=adversary-dominance",
            &out_flag,
        ],
        &[],
    );
    assert!(!ok, "an injected mismatch must exit non-zero");
    assert!(err.contains("oracle violations"), "{err}");

    let mut replayed = 0usize;
    for entry in std::fs::read_dir(&dir).expect("counterexample directory exists") {
        let path = entry.unwrap().path();
        let (ok, out, err) = faultline(&["conformance", "replay", path.to_str().unwrap()], &[]);
        assert!(ok, "replay of {} failed: {err}", path.display());
        assert!(out.contains("reproduces bit-for-bit"), "{out}");
        replayed += 1;
    }
    assert!(replayed > 0, "the run must have persisted at least one document");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_rejects_bad_usage() {
    let (ok, _, err) = faultline(&["conformance"], &[]);
    assert!(!ok);
    assert!(err.contains("missing conformance subcommand"));
    let (ok, _, err) = faultline(&["conformance", "run", "--budget=warp"], &[]);
    assert!(!ok);
    assert!(err.contains("unknown budget tier"));
    let (ok, _, err) = faultline(&["conformance", "run", "--inject=no-such"], &[]);
    assert!(!ok);
    assert!(err.contains("unknown injection oracle"));
}
