//! End-to-end replay tests: the checked-in golden trace must
//! re-execute bit-for-bit through the library, the `faultline replay`
//! subcommand, and the scenario runner's trace-document support.

use std::path::PathBuf;
use std::process::Command;

use faultline_suite::sim::RunTrace;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/data/golden_trace.json")
}

fn run(args: &[&str]) -> (bool, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_faultline"))
        .args(args)
        .output()
        .expect("failed to spawn the faultline binary");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn golden_trace_replays_bit_for_bit() {
    let json = std::fs::read_to_string(golden_path()).unwrap();
    let trace = RunTrace::from_json(&json).unwrap();
    trace.verify().expect("the golden trace must replay exactly");

    // The recorded run: target 3.0, robot 0's sensor fails, robot 1
    // reports on arrival at t = 3.
    let detection = trace.outcome.detection.as_ref().expect("recorded as detected");
    assert_eq!(detection.time, 3.0);
    assert_eq!(detection.robot.0, 1);

    // Re-serializing reproduces the checked-in document byte for byte,
    // so the golden file cannot drift silently.
    assert_eq!(trace.to_json().unwrap(), json.trim_end());
}

#[test]
fn cli_replay_reproduces_the_golden_trace() {
    let path = golden_path();
    let (ok, out, err) = run(&["replay", path.to_str().unwrap()]);
    assert!(ok, "stdout: {out}\nstderr: {err}");
    assert!(err.contains("bit-for-bit"), "stderr: {err}");
    assert!(out.contains("\"target\": 3.0"), "stdout: {out}");
    assert!(out.contains("\"detection_time\": 3.0"), "stdout: {out}");
}

#[test]
fn cli_scenario_accepts_trace_documents() {
    let path = golden_path();
    let (ok, out, err) = run(&["scenario", path.to_str().unwrap()]);
    assert!(ok, "stdout: {out}\nstderr: {err}");
    assert!(out.contains("\"detected_by\": 1"), "stdout: {out}");
}

#[test]
fn cli_replay_rejects_a_tampered_trace() {
    let json = std::fs::read_to_string(golden_path()).unwrap();
    let mut trace = RunTrace::from_json(&json).unwrap();
    let detection = trace.outcome.detection.as_mut().unwrap();
    detection.time += 0.5;

    let dir = std::env::temp_dir().join("faultline-replay-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tampered_trace.json");
    std::fs::write(&path, trace.to_json().unwrap()).unwrap();

    let (ok, _, err) = run(&["replay", path.to_str().unwrap()]);
    assert!(!ok, "a diverging trace must fail the replay");
    assert!(err.contains("diverged"), "stderr: {err}");
}

#[test]
fn cli_replay_rejects_garbage_gracefully() {
    let dir = std::env::temp_dir().join("faultline-replay-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("not_a_trace.json");
    std::fs::write(&path, "{ \"definitely\": \"not a trace\" }").unwrap();

    let (ok, _, err) = run(&["replay", path.to_str().unwrap()]);
    assert!(!ok);
    assert!(err.contains("trace parse failed"), "stderr: {err}");
}
