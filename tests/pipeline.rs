//! End-to-end pipeline tests: strategy registry → plan generation →
//! materialization → simulation → measured competitive ratio.

use faultline_suite::analysis::measure_strategy_cr;
use faultline_suite::core::{ratio, Params, Regime};
use faultline_suite::prelude::*;
use faultline_suite::sim::engine::SimConfig;
use faultline_suite::sim::worst_case_outcome;

#[test]
fn every_registered_strategy_runs_end_to_end() {
    let params = Params::new(3, 1).unwrap();
    for strategy in all_strategies() {
        let Ok(plans) = strategy.plans(params) else {
            continue; // strategies may reject parameters they cannot serve
        };
        assert_eq!(plans.len(), params.n(), "{}", strategy.name());
        let measured = measure_strategy_cr(strategy.as_ref(), params, 12.0, 24).unwrap();
        if let Some(claimed) = strategy.analytic_cr(params) {
            assert!(
                measured.empirical <= claimed + 1e-6,
                "{}: measured {} above claimed {claimed}",
                strategy.name(),
                measured.empirical
            );
        }
    }
}

#[test]
fn paper_algorithm_beats_every_baseline_where_it_matters() {
    // On (5, 3) the paper's algorithm must beat both doubling baselines.
    let params = Params::new(5, 3).unwrap();
    let paper = measure_strategy_cr(strategy_by_name("paper").unwrap().as_ref(), params, 25.0, 48)
        .unwrap()
        .empirical;
    for name in ["herd-doubling", "staggered-doubling"] {
        let baseline = measure_strategy_cr(
            strategy_by_name(name).unwrap().as_ref(),
            params,
            // The doubling baselines need a window past several powers
            // of 4 for their worst case to show; 25 is enough to rank.
            25.0,
            48,
        )
        .unwrap()
        .empirical;
        assert!(paper < baseline, "paper ({paper}) should beat {name} ({baseline}) at {params}");
    }
}

#[test]
fn full_pipeline_for_every_proportional_pair_up_to_n9() {
    for f in 1..8usize {
        for n in (f + 1)..(2 * f + 2).min(10) {
            let params = Params::new(n, f).unwrap();
            if params.regime() != Regime::Proportional {
                continue;
            }
            let alg = Algorithm::design(params).unwrap();
            let horizon = alg.required_horizon(6.0).unwrap();
            let trajectories: Vec<_> =
                alg.plans().iter().map(|p| p.materialize(horizon).unwrap()).collect();
            let outcome = worst_case_outcome(
                trajectories,
                Target::new(-5.5).unwrap(),
                f,
                SimConfig::default(),
            )
            .unwrap();
            assert!(outcome.detected(), "{params}");
            assert!(
                outcome.ratio() <= ratio::cr_upper(params) + 1e-9,
                "{params}: ratio {} above Theorem 1 bound {}",
                outcome.ratio(),
                ratio::cr_upper(params)
            );
            // At least f + 1 robots visited the target by detection time.
            assert_eq!(outcome.distinct_visitors(), f + 1, "{params}");
        }
    }
}

#[test]
fn prelude_covers_the_common_workflow() {
    // The facade's prelude alone is enough for the headline use case.
    let params = Params::new(3, 1).unwrap();
    let algorithm = Algorithm::design(params).unwrap();
    let horizon = algorithm.required_horizon(5.0).unwrap();
    let fleet = Fleet::from_plans(&algorithm.plans(), horizon).unwrap();
    let t = fleet.visit_time(4.2, params.required_visits()).unwrap();
    assert!(t / 4.2 <= algorithm.analytic_cr() + 1e-9);
}
