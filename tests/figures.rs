//! Integration test: every figure generator produces well-formed,
//! paper-faithful data and exports cleanly.

use faultline_suite::analysis::fig5;
use faultline_suite::analysis::figures::{self, FigureData};
use faultline_suite::core::ratio;

fn assert_well_formed(fig: &FigureData) {
    assert!(!fig.series.is_empty(), "{}", fig.name);
    for s in &fig.series {
        assert!(!s.points.is_empty(), "{}: empty series {}", fig.name, s.label);
        for &(x, t) in &s.points {
            assert!(x.is_finite() && t.is_finite(), "{}", fig.name);
            assert!(t >= -1e-12, "{}: negative time", fig.name);
        }
    }
    let svg = fig.to_svg(640.0, 480.0).unwrap();
    assert!(svg.starts_with("<svg") && svg.trim_end().ends_with("</svg>"));
    let csv = fig.to_csv();
    assert!(csv.lines().count() >= 2);
}

#[test]
fn all_six_figures_are_well_formed() {
    let figs = figures::all_figures().unwrap();
    assert_eq!(figs.len(), 6);
    let names: Vec<&str> = figs.iter().map(|f| f.name).collect();
    assert_eq!(names, vec!["fig1", "fig2", "fig3", "fig4", "fig6", "fig7"]);
    for fig in &figs {
        assert_well_formed(fig);
    }
}

#[test]
fn fig2_trajectory_stays_in_its_cone() {
    let fig = figures::fig2().unwrap();
    let robot = fig.series.iter().find(|s| s.label == "robot").unwrap();
    // Every waypoint (x, t) satisfies t >= 2|x| (beta = 2), i.e. the
    // trajectory lives inside the cone.
    for &(x, t) in &robot.points {
        assert!(t >= 2.0 * x.abs() - 1e-9, "point ({x}, {t}) outside C_2");
    }
}

#[test]
fn fig5_series_match_the_table_values() {
    // The leftmost points of Figure 5 (left) are Table 1 rows:
    // n = 3 -> 5.233..., n = 5 -> 4.434..., n = 11 -> 3.735...
    let left = fig5::fig5_left(3, 11, 0).unwrap();
    let by_n = |n: usize| left.iter().find(|s| s.n == n).unwrap().cr;
    assert!((by_n(3) - 5.233).abs() < 1e-3);
    assert!((by_n(5) - 4.434).abs() < 1e-3);
    assert!((by_n(11) - 3.735).abs() < 1e-3);
}

#[test]
fn fig5_right_endpoints_match_theory() {
    let right = fig5::fig5_right(201).unwrap();
    // a -> 1+ approaches the single-group 9; a = 2 is exactly 3.
    assert!(right.first().unwrap().cr > 8.9);
    assert_eq!(right.last().unwrap().cr, 3.0);
    // Consistency with the finite formula at a corresponding point:
    // a = 1.5 vs large (n, f) with n/f = 1.5.
    let a15 = right.iter().min_by(|p, q| (p.a - 1.5).abs().total_cmp(&(q.a - 1.5).abs())).unwrap();
    let finite = ratio::cr_upper(faultline_suite::core::Params::new(300, 200).unwrap());
    assert!((a15.cr - finite).abs() < 0.05, "{} vs {}", a15.cr, finite);
}

#[test]
fn fig4_tower_is_tightest_at_turning_point_limits() {
    use faultline_suite::core::{ratio as r, Params};
    let fig = figures::fig4().unwrap();
    let tower = fig.series.iter().find(|s| s.label.starts_with("tower")).unwrap();
    let cr = r::cr_upper(Params::new(3, 1).unwrap());
    // The max of T_2(x)/|x| over the sampled grid is close to (and
    // never above) the competitive ratio.
    let max_ratio = tower.points.iter().map(|&(x, t)| t / x.abs()).fold(0.0f64, f64::max);
    assert!(max_ratio <= cr + 1e-9);
    assert!(max_ratio > 0.8 * cr, "grid max {max_ratio} too far below CR {cr}");
}
