//! End-to-end tests of the `faultline` CLI binary: every subcommand is
//! spawned as a real process and its output checked.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_faultline"))
        .args(args)
        .output()
        .expect("failed to spawn the faultline binary");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn design_prints_schedule_details() {
    let (ok, out, _) = run(&["design", "3", "1"]);
    assert!(ok);
    assert!(out.contains("proportional schedule"));
    assert!(out.contains("beta = 1.666667"));
    assert!(out.contains("tau_j"));
}

#[test]
fn design_two_group_regime() {
    let (ok, out, _) = run(&["design", "6", "2"]);
    assert!(ok);
    assert!(out.contains("two-group"));
}

#[test]
fn simulate_with_worst_case_adversary() {
    let (ok, out, _) = run(&["simulate", "3", "1", "-4.5"]);
    assert!(ok, "{out}");
    assert!(out.contains("worst-case adversary"));
    assert!(out.contains("detected by"));
    assert!(out.contains("guarantee 5.2331"));
}

#[test]
fn simulate_with_explicit_faults() {
    let (ok, out, _) = run(&["simulate", "3", "1", "2.0", "0"]);
    assert!(ok, "{out}");
    assert!(out.contains("detected by"));
}

#[test]
fn simulate_rejects_excess_faults() {
    let (ok, _, err) = run(&["simulate", "3", "1", "2.0", "0,1"]);
    assert!(!ok);
    assert!(err.contains("exceed the tolerance"));
}

#[test]
fn bounds_reports_both_directions() {
    let (ok, out, _) = run(&["bounds", "11", "5"]);
    assert!(ok);
    assert!(out.contains("upper bound"));
    assert!(out.contains("lower bound"));
    assert!(out.contains("3.7348"), "{out}");
    assert!(out.contains("12.0000"), "expansion factor 12: {out}");
}

#[test]
fn spectrum_marks_the_design_index() {
    let (ok, out, _) = run(&["spectrum", "5", "2", "10"]);
    assert!(ok);
    assert!(out.contains("<- f+1"));
}

#[test]
fn timeline_renders() {
    let (ok, out, _) = run(&["timeline", "3", "1", "20", "-3"]);
    assert!(ok);
    assert!(out.contains("position"));
    assert!(out.lines().count() > 10);
}

#[test]
fn scenario_file_roundtrip() {
    let dir = std::env::temp_dir().join("faultline-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("scenario.json");
    std::fs::write(&path, r#"{"n": 3, "f": 1, "targets": [2.0], "faulty": [1]}"#).unwrap();
    let (ok, out, _) = run(&["scenario", path.to_str().unwrap()]);
    assert!(ok, "{out}");
    assert!(out.contains("\"target\": 2.0"));
    assert!(out.contains("\"detected_by\""));
}

#[test]
fn scenario_rejects_bad_file() {
    let (ok, _, err) = run(&["scenario", "/nonexistent/scenario.json"]);
    assert!(!ok);
    assert!(!err.is_empty());
}

#[test]
fn unknown_command_fails_with_usage() {
    let (ok, _, err) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("usage:"));
}

#[test]
fn invalid_params_fail_gracefully() {
    let (ok, _, err) = run(&["design", "2", "5"]);
    assert!(!ok);
    assert!(err.contains("n must exceed f"));
}
