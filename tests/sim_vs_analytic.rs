//! Integration test: the discrete-event simulator and the analytic
//! coverage evaluation are two fully independent implementations of the
//! same semantics; they must agree everywhere.
//!
//! The original ad-hoc assertions are now thin wrappers around the
//! named oracles in `faultline-conformance` (`sim-analytic-detection`
//! and `sim-analytic-supremum`), so the randomized conformance sweep
//! and this deterministic grid enforce the exact same relations.

use faultline_suite::conformance::oracles::oracle_by_name;
use faultline_suite::conformance::{Instance, Oracle, Verdict};
use faultline_suite::core::numeric::logspace;
use faultline_suite::core::Params;
use faultline_suite::sim::engine::SimConfig;
use faultline_suite::sim::{worst_case_outcome, Target};
use faultline_suite::strategies::{all_strategies, PaperStrategy};

fn oracle(name: &str) -> &'static Oracle {
    oracle_by_name(name).expect("named oracle exists")
}

/// A hand-built (non-generated) instance: the deterministic grids these
/// wrappers always checked, expressed in the oracle's input format.
fn instance(n: usize, f: usize, strategy: &str, xmax: f64, targets: Vec<f64>) -> Instance {
    Instance {
        index: 0,
        seed: 0,
        n,
        f,
        strategy: strategy.to_owned(),
        xmax,
        grid_points: 32,
        targets,
        mask: Vec::new(),
        schedule: None,
        lie_rate: None,
        detect_probability: None,
        speeds: None,
        activation_delays: None,
    }
}

#[test]
fn detection_times_agree_on_a_log_grid() {
    for (n, f) in [(2usize, 1usize), (3, 1), (3, 2), (5, 2), (5, 3), (7, 3)] {
        let targets: Vec<f64> =
            logspace(1.0, 60.0, 17).unwrap().into_iter().flat_map(|x| [x, -x]).collect();
        let inst = instance(n, f, "paper", 64.0, targets);
        let verdict = oracle("sim-analytic-detection").check(&inst, false);
        assert_eq!(verdict, Verdict::Pass, "(n={n}, f={f}): {verdict:?}");
    }
}

#[test]
fn both_measurement_paths_agree_for_every_strategy() {
    let (n, f) = (5usize, 3usize);
    for strategy in all_strategies() {
        let inst = instance(n, f, strategy.name(), 15.0, vec![1.5]);
        match oracle("sim-analytic-supremum").check(&inst, false) {
            Verdict::Pass => {}
            // Strategies that reject (5, 3) are skipped, exactly as the
            // original wrapper `continue`d past a `plans` error.
            Verdict::Skip(reason) => {
                assert!(
                    strategy.plans(Params::new(n, f).unwrap()).is_err(),
                    "{} skipped unexpectedly: {reason}",
                    strategy.name()
                );
            }
            Verdict::Fail(m) => panic!("{}: {m:?}", strategy.name()),
        }
    }
}

#[test]
fn simulator_trace_is_consistent_with_detection() {
    let params = Params::new(3, 1).unwrap();
    let strategy = PaperStrategy::new();
    let plans = faultline_suite::strategies::Strategy::plans(&strategy, params).unwrap();
    let horizon = faultline_suite::strategies::Strategy::horizon_hint(&strategy, params, 9.0);
    let trajectories: Vec<_> = plans.iter().map(|p| p.materialize(horizon).unwrap()).collect();
    let outcome = worst_case_outcome(
        trajectories,
        Target::new(7.7).unwrap(),
        params.f(),
        SimConfig { record_trace: true, stop_at_detection: true },
    )
    .unwrap();
    let detection = outcome.detection.unwrap();
    let trace = outcome.trace.as_ref().unwrap();
    // The trace ends at the detection event; nothing later is recorded.
    let last = trace.last().unwrap();
    assert_eq!(last.time, detection.time);
    assert!(trace.windows(2).all(|w| w[0].time <= w[1].time), "trace is time-ordered");
    // The detection's robot matches the final reliable visit.
    let last_visit = outcome.visits.last().unwrap();
    assert!(last_visit.reliable);
    assert_eq!(last_visit.robot, detection.robot);
}
