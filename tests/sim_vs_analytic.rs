//! Integration test: the discrete-event simulator and the analytic
//! coverage evaluation are two fully independent implementations of the
//! same semantics; they must agree everywhere.

use faultline_suite::analysis::{measure_strategy_cr, measure_strategy_cr_sim};
use faultline_suite::core::coverage::Fleet;
use faultline_suite::core::numeric::logspace;
use faultline_suite::core::{Algorithm, Params};
use faultline_suite::sim::engine::SimConfig;
use faultline_suite::sim::{worst_case_outcome, Target};
use faultline_suite::strategies::{all_strategies, PaperStrategy};

#[test]
fn detection_times_agree_on_a_log_grid() {
    for (n, f) in [(2usize, 1usize), (3, 1), (3, 2), (5, 2), (5, 3), (7, 3)] {
        let params = Params::new(n, f).unwrap();
        let alg = Algorithm::design(params).unwrap();
        let horizon = alg.required_horizon(64.0).unwrap();
        let trajectories: Vec<_> =
            alg.plans().iter().map(|p| p.materialize(horizon).unwrap()).collect();
        let fleet = Fleet::new(trajectories.clone()).unwrap();
        for x in logspace(1.0, 60.0, 17).unwrap() {
            for target in [x, -x] {
                let sim = worst_case_outcome(
                    trajectories.clone(),
                    Target::new(target).unwrap(),
                    f,
                    SimConfig::default(),
                )
                .unwrap()
                .detection
                .unwrap()
                .time;
                let analytic = fleet.visit_time(target, f + 1).unwrap();
                assert!(
                    (sim - analytic).abs() < 1e-9 * analytic.max(1.0),
                    "(n={n}, f={f}), x={target}: sim {sim} vs analytic {analytic}"
                );
            }
        }
    }
}

#[test]
fn both_measurement_paths_agree_for_every_strategy() {
    let params = Params::new(5, 3).unwrap();
    for strategy in all_strategies() {
        if strategy.plans(params).is_err() {
            continue;
        }
        let a = measure_strategy_cr(strategy.as_ref(), params, 15.0, 32).unwrap();
        let b = measure_strategy_cr_sim(strategy.as_ref(), params, 15.0, 32).unwrap();
        if a.empirical.is_finite() {
            assert!(
                (a.empirical - b.empirical).abs() < 1e-9,
                "{}: {} vs {}",
                strategy.name(),
                a.empirical,
                b.empirical
            );
        } else {
            assert!(b.empirical.is_infinite(), "{}", strategy.name());
        }
        assert_eq!(a.uncovered, b.uncovered, "{}", strategy.name());
    }
}

#[test]
fn simulator_trace_is_consistent_with_detection() {
    let params = Params::new(3, 1).unwrap();
    let strategy = PaperStrategy::new();
    let plans = faultline_suite::strategies::Strategy::plans(&strategy, params).unwrap();
    let horizon = faultline_suite::strategies::Strategy::horizon_hint(&strategy, params, 9.0);
    let trajectories: Vec<_> = plans.iter().map(|p| p.materialize(horizon).unwrap()).collect();
    let outcome = worst_case_outcome(
        trajectories,
        Target::new(7.7).unwrap(),
        params.f(),
        SimConfig { record_trace: true, stop_at_detection: true },
    )
    .unwrap();
    let detection = outcome.detection.unwrap();
    let trace = outcome.trace.as_ref().unwrap();
    // The trace ends at the detection event; nothing later is recorded.
    let last = trace.last().unwrap();
    assert_eq!(last.time, detection.time);
    assert!(trace.windows(2).all(|w| w[0].time <= w[1].time), "trace is time-ordered");
    // The detection's robot matches the final reliable visit.
    let last_visit = outcome.visits.last().unwrap();
    assert!(last_visit.reliable);
    assert_eq!(last_visit.robot, detection.robot);
}
