//! Integration tests for the extension layer: bounded distance, turn
//! cost, arrival-index spectrum, randomized sweeps, certificates and
//! the verification matrix, exercised together through the facade.

use faultline_suite::analysis::{
    bounded, convergence, group_search, randomized, turncost, verification,
};
use faultline_suite::core::certificate;
use faultline_suite::core::{ratio, Params, ScheduleBuilder};
use faultline_suite::strategies::{PaperStrategy, RandomizedSweepStrategy};

#[test]
fn certificates_agree_with_measured_table() {
    // The certified intervals must contain the float closed forms AND
    // be consistent with the empirical supremum measurements.
    for (n, f) in [(3usize, 1usize), (5, 2), (11, 5)] {
        let params = Params::new(n, f).unwrap();
        let cert = certificate::certify_cr_upper(params).unwrap();
        let float_cr = ratio::cr_upper(params);
        assert!(cert.contains(float_cr));
        let measured =
            faultline_suite::analysis::measure_strategy_cr(&PaperStrategy::new(), params, 25.0, 48)
                .unwrap()
                .empirical;
        // The measured supremum approaches the certified value from
        // below within the scan tolerance.
        assert!(measured <= cert.hi + 1e-6, "(n={n}, f={f})");
        assert!(measured >= cert.lo - 1e-2, "(n={n}, f={f})");
    }
}

#[test]
fn verification_matrix_is_machine_tight_across_the_board() {
    let pairs = [(2usize, 1usize), (3, 2), (5, 2), (7, 3)];
    let reports = verification::run_matrix_batch(&pairs, 25.0, 10).unwrap();
    for r in &reports {
        assert!(r.worst_gap < 1e-9, "(n={}, f={}): gap {}", r.n, r.f, r.worst_gap);
    }
}

#[test]
fn extension_experiments_compose() {
    let params = Params::new(3, 1).unwrap();

    // E1: bounded never worse, tight bound strictly better.
    let sweep = bounded::bound_sweep(params, &[1.5, 4.0], 32).unwrap();
    assert!(sweep[0].measured_cr < sweep[0].unbounded_cr);
    assert!(sweep[1].measured_cr <= sweep[1].unbounded_cr + 1e-6);

    // E2: turn cost is additive at the design point.
    let cr = ratio::cr_upper(params);
    let priced =
        turncost::cost_cr(params, ratio::optimal_beta(params).unwrap(), 1.0, 20.0, 32).unwrap();
    assert!((priced - (cr + 2.0)).abs() < 5e-3, "{priced} vs {}", cr + 2.0);

    // E3: spectrum is monotone and anchored at Theorem 1 for k = f + 1.
    let spectrum = group_search::k_spectrum(&PaperStrategy::new(), params, 12.0, 24).unwrap();
    assert!((spectrum[1].cr - cr).abs() < 5e-3);
    assert!(spectrum[2].cr > spectrum[1].cr);

    // E4: randomized expectation beats the deterministic worst case.
    let kao = RandomizedSweepStrategy::kao_optimal();
    let expected = randomized::expected_cr(&kao, params, 20.0, 10, 60, 3).unwrap();
    assert_eq!(expected.uncovered, 0);
    assert!(expected.expected_cr < cr + 1.0);
}

#[test]
fn schedule_builder_reproduces_the_paper_design() {
    // Build A(5, 2)'s schedule three ways and check the published
    // expansion factor 6 (Table 1).
    let params = Params::new(5, 2).unwrap();
    let s1 = ScheduleBuilder::new(5).optimal_for_faults(2).build().unwrap();
    let s2 = ScheduleBuilder::new(5).expansion_factor(6.0).build().unwrap();
    let s3 = ScheduleBuilder::new(5).beta(1.4).build().unwrap();
    assert!((s1.beta() - s3.beta()).abs() < 1e-12);
    assert!((s2.beta() - s3.beta()).abs() < 1e-12);
    assert!((s1.competitive_ratio(2) - ratio::cr_upper(params)).abs() < 1e-12);
}

#[test]
fn convergence_rates_support_the_corollaries() {
    let sizes = [101usize, 1001, 10_001];
    let c1 = convergence::corollary1_rate(&sizes).unwrap();
    let c2 = convergence::corollary2_rate(&sizes).unwrap();
    for (u, l) in c1.iter().zip(&c2) {
        // Upper bound dominates lower bound at every size, and both
        // normalized gaps live near the shared constant 2.
        assert!(u.value >= l.value);
        assert!(u.normalized_gap <= 4.0, "Corollary 1 envelope");
        assert!(l.normalized_gap <= u.normalized_gap + 1e-9);
    }
    let fixed = convergence::fixed_proportion_rate(1.75, &[100, 1000]).unwrap();
    assert!((fixed[1].value - fixed[1].limit).abs() < (fixed[0].value - fixed[0].limit).abs());
}
