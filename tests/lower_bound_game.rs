//! Integration test: the lower-bound machinery of Section 4 holds
//! against real strategies — the adversary forces at least `alpha(n)`
//! on every complete strategy, and the sandwich
//! `alpha(n) <= forced <= CR(A(n,f))` is respected.

use faultline_suite::core::{lower_bound, ratio, Params, Regime};
use faultline_suite::strategies::all_strategies;

#[test]
fn adversary_sandwiches_the_paper_algorithm() {
    for f in 1..8usize {
        for n in (f + 2)..(2 * f + 2) {
            let params = Params::new(n, f).unwrap();
            assert_eq!(params.regime(), Regime::Proportional);
            let alpha = lower_bound::alpha(n).unwrap();
            let points = lower_bound::adversary_points(n, alpha).unwrap();
            let xmax = points[0] * 1.1;

            let strategy = faultline_suite::strategies::PaperStrategy::new();
            use faultline_suite::strategies::Strategy;
            let plans = strategy.plans(params).unwrap();
            let horizon = strategy.horizon_hint(params, xmax);
            let trajectories: Vec<_> =
                plans.iter().map(|p| p.materialize(horizon).unwrap()).collect();
            let outcome = lower_bound::adversarial_ratio(&trajectories, f, n, alpha).unwrap();
            let upper = ratio::cr_upper(params);
            assert!(
                outcome.ratio >= alpha - 1e-6,
                "(n={n}, f={f}): forced {} below alpha {alpha}",
                outcome.ratio
            );
            assert!(
                outcome.ratio <= upper + 1e-6,
                "(n={n}, f={f}): forced {} above Theorem 1 bound {upper}",
                outcome.ratio
            );
        }
    }
}

#[test]
fn adversary_forces_alpha_on_every_complete_strategy() {
    let params = Params::new(3, 1).unwrap();
    let alpha = lower_bound::alpha(3).unwrap();
    for strategy in all_strategies() {
        let Ok(plans) = strategy.plans(params) else { continue };
        let horizon = strategy.horizon_hint(params, 10.0);
        let trajectories: Vec<_> = plans.iter().map(|p| p.materialize(horizon).unwrap()).collect();
        let outcome = lower_bound::adversarial_ratio(&trajectories, 1, 3, alpha).unwrap();
        // Theorem 2: EVERY algorithm (complete or not) is forced to at
        // least alpha; incomplete ones are forced to infinity.
        assert!(
            outcome.ratio >= alpha - 1e-6,
            "{}: forced only {}",
            strategy.name(),
            outcome.ratio
        );
    }
}

#[test]
fn lemmas_6_and_7_hold_on_all_strategy_trajectories() {
    let params = Params::new(5, 2).unwrap();
    for strategy in all_strategies() {
        let Ok(plans) = strategy.plans(params) else { continue };
        let horizon = strategy.horizon_hint(params, 40.0);
        for plan in &plans {
            let traj = plan.materialize(horizon).unwrap();
            for x in [1.5, 2.0, 3.7, 8.0] {
                assert!(
                    lower_bound::lemma6_holds(&traj, x).unwrap(),
                    "{}: Lemma 6 violated at x = {x}",
                    strategy.name()
                );
                for y in [1.0, 1.2, x / 2.0] {
                    assert!(
                        lower_bound::lemma7_holds(&traj, x, y.max(1.0)).unwrap(),
                        "{}: Lemma 7 violated at x = {x}, y = {y}",
                        strategy.name()
                    );
                }
            }
        }
    }
}

#[test]
fn corollary2_is_a_valid_asymptote() {
    // alpha(n) - corollary2(n) -> 0+ and stays nonnegative.
    let mut prev_gap = f64::INFINITY;
    for n in [10usize, 100, 1000, 10_000] {
        let gap = lower_bound::alpha(n).unwrap() - lower_bound::corollary2_lower(n).unwrap();
        assert!(gap >= -1e-12, "n = {n}");
        assert!(gap < prev_gap, "gap must shrink at n = {n}");
        prev_gap = gap;
    }
    assert!(prev_gap < 1e-3);
}
