//! Integration test: the regenerated Table 1 matches the paper's
//! printed values (to print precision), including the empirical
//! cross-check column for all small rows.

use faultline_suite::analysis::table1::{self, TABLE1_PAPER};

#[test]
fn table1_regenerates_with_measurement() {
    let rows = table1::regenerate(true).unwrap();
    assert_eq!(rows.len(), 12);
    for (row, paper) in rows.iter().zip(TABLE1_PAPER) {
        assert_eq!((row.n, row.f), (paper.0, paper.1));
        // Upper bound: the paper prints two decimals.
        assert!(
            (row.cr_upper - paper.2).abs() < 1e-2,
            "(n={}, f={}): CR {} vs paper {}",
            row.n,
            row.f,
            row.cr_upper,
            paper.2
        );
        // The measured supremum certifies the upper bound is tight:
        // within the scan window it reaches the analytic value from
        // below.
        let measured = row.cr_measured.expect("measurement requested");
        assert!(measured.is_finite(), "(n={}, f={}): coverage incomplete", row.n, row.f);
        assert!(
            measured <= row.cr_upper + 1e-6,
            "(n={}, f={}): measured {measured} exceeds Theorem 1",
            row.n,
            row.f
        );
        assert!(
            measured >= row.cr_upper - 1e-2,
            "(n={}, f={}): measured {measured} far below the bound {} — scan broken?",
            row.n,
            row.f,
            row.cr_upper
        );
    }
}

#[test]
fn table1_lower_bounds_match_paper() {
    let rows = table1::regenerate(false).unwrap();
    for (row, paper) in rows.iter().zip(TABLE1_PAPER) {
        let tol = if row.n == 41 { 0.02 } else { 5e-3 };
        assert!(
            (row.lower_bound - paper.3).abs() < tol,
            "(n={}, f={}): LB {} vs paper {}",
            row.n,
            row.f,
            row.lower_bound,
            paper.3
        );
        // Sanity: the lower bound never exceeds the upper bound.
        assert!(row.lower_bound <= row.cr_upper + 1e-9);
    }
}

#[test]
fn table1_expansion_factors_match_paper() {
    let rows = table1::regenerate(false).unwrap();
    for (row, paper) in rows.iter().zip(TABLE1_PAPER) {
        match (row.expansion_factor, paper.4) {
            (Some(got), Some(want)) => assert!(
                (got - want).abs() < 5e-3,
                "(n={}, f={}): expansion {got} vs paper {want}",
                row.n,
                row.f
            ),
            (None, None) => {} // two-group rows have blank cells
            other => panic!("(n={}, f={}): {other:?}", row.n, row.f),
        }
    }
}
