//! Offline stand-in for `criterion`.
//!
//! Provides the macro and type surface the workspace benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion`,
//! `benchmark_group`, `bench_function`, `iter`, `iter_batched`,
//! `BatchSize`) with a minimal measurement loop: each benchmark runs a
//! short calibration burst and reports a mean wall-clock time. No
//! statistics, plots or comparisons — just enough to keep `cargo bench`
//! meaningful and `cargo test --benches` compiling.

use std::time::{Duration, Instant};

/// How batched inputs are grouped (accepted and ignored by this stub).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Timing loop handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times repeated runs of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let mut iterations = 0u64;
        loop {
            std::hint::black_box(routine());
            iterations += 1;
            if iterations >= 10 || start.elapsed() > Duration::from_millis(200) {
                break;
            }
        }
        self.total = start.elapsed();
        self.iterations = iterations;
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut measured = Duration::ZERO;
        let mut iterations = 0u64;
        let wall = Instant::now();
        loop {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            measured += start.elapsed();
            iterations += 1;
            if iterations >= 10 || wall.elapsed() > Duration::from_millis(200) {
                break;
            }
        }
        self.total = measured;
        self.iterations = iterations;
    }

    fn report(&self, name: &str) {
        if self.iterations == 0 {
            println!("{name:<50} no iterations");
            return;
        }
        let mean = self.total / u32::try_from(self.iterations).unwrap_or(u32::MAX);
        println!("{name:<50} {mean:>12.2?}/iter ({} iters)", self.iterations);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(&label);
        self
    }

    /// Finishes the group (no-op in this stub).
    pub fn finish(&mut self) {}

    /// Accepts and ignores a sample-size hint.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepts and ignores a measurement-time hint.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _criterion: self }
    }

    /// Registers and immediately runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into();
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(&label);
        self
    }

    /// Prints the final summary (no-op in this stub).
    pub fn final_summary(&self) {}

    /// Accepts and ignores a sample-size hint (builder style, matching
    /// upstream's by-value signature used in `criterion_group!` config).
    #[must_use]
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Accepts and ignores a measurement-time hint (builder style).
    #[must_use]
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }
}

/// Re-export matching `criterion::black_box` (deprecated upstream in
/// favour of `std::hint::black_box`, which the benches already use).
pub use std::hint::black_box;

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let _ = $config;
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
