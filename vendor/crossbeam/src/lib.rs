//! Offline stand-in for `crossbeam`, implementing the `thread::scope`
//! API the workspace uses on top of `std::thread::scope` (which did
//! not exist when crossbeam's scoped threads were introduced, but is a
//! drop-in replacement today).

/// Scoped threads.
pub mod thread {
    use std::thread as std_thread;

    /// A scope for spawning borrowing threads (wraps [`std::thread::Scope`]).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload).
        ///
        /// # Errors
        ///
        /// Returns the payload if the thread panicked.
        pub fn join(self) -> std_thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope; the closure receives the
        /// scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle { inner: self.inner.spawn(move || f(&scope)) }
        }
    }

    /// Creates a scope in which threads may borrow from the enclosing
    /// stack frame. Always returns `Ok`: panics in unjoined threads
    /// propagate out of the closure, matching how this workspace uses
    /// the API (every spawned thread is joined).
    ///
    /// # Errors
    ///
    /// Never fails in this stub; the `Result` mirrors crossbeam's
    /// signature.
    pub fn scope<'env, F, R>(f: F) -> std_thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
