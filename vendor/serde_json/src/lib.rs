//! Offline stand-in for `serde_json`: a complete JSON parser and
//! writer over the `serde` stub's `Value` data model, exposing the
//! `from_str` / `to_string` / `to_string_pretty` functions the
//! workspace uses.

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// Error raised while parsing or writing JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Convenience alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    fn error(&self, message: impl fmt::Display) -> Error {
        Error::new(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        self.skip_whitespace();
        match self.bump() {
            Some(b) if b == byte => Ok(()),
            Some(b) => {
                Err(self.error(format!("expected `{}`, found `{}`", byte as char, b as char)))
            }
            None => Err(self.error(format!("expected `{}`, found end of input", byte as char))),
        }
    }

    fn consume_keyword(&mut self, keyword: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(())
        } else {
            Err(self.error(format!("expected `{keyword}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') => self.consume_keyword("null").map(|()| Value::Null),
            Some(b't') => self.consume_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.consume_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(b) => Err(self.error(format!("unexpected character `{}`", b as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let digit = self
                                .bump()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or_else(|| self.error("invalid \\u escape"))?;
                            code = code * 16 + digit;
                        }
                        let ch = char::from_u32(code)
                            .ok_or_else(|| self.error("invalid unicode escape"))?;
                        out.push(ch);
                    }
                    _ => return Err(self.error("invalid escape sequence")),
                },
                Some(byte) if byte < 0x80 => out.push(byte as char),
                Some(first) => {
                    // Multi-byte UTF-8: copy the remaining continuation
                    // bytes verbatim (input is a &str, so it is valid).
                    let len = match first {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let end = (start + len).min(self.bytes.len());
                    let slice = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    out.push_str(slice);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if is_float {
            text.parse::<f64>().map(Value::Float).map_err(|e| self.error(e))
        } else if let Ok(v) = text.parse::<i64>() {
            Ok(Value::Int(v))
        } else if let Ok(v) = text.parse::<u64>() {
            Ok(Value::UInt(v))
        } else {
            text.parse::<f64>().map(Value::Float).map_err(|e| self.error(e))
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(pairs)),
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }
}

/// Parses a value of type `T` from a JSON string.
///
/// # Errors
///
/// Reports malformed JSON and shape/validation mismatches.
pub fn from_str<'de, T: Deserialize<'de>>(text: &str) -> Result<T> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    serde::from_value(value).map_err(|e| Error::new(e.to_string()))
}

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

fn write_escaped(out: &mut String, text: &str) {
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e16 {
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_value(out: &mut String, value: &Value, pretty: bool, indent: usize) {
    let pad = |out: &mut String, level: usize| {
        if pretty {
            out.push('\n');
            out.push_str(&"  ".repeat(level));
        }
    };
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Float(v) => write_float(out, *v),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                write_value(out, item, pretty, indent + 1);
            }
            pad(out, indent);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                write_escaped(out, key);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, item, pretty, indent + 1);
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Propagates `Serialize` failures.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let value = serde::to_value(value).map_err(|e| Error::new(e.to_string()))?;
    let mut out = String::new();
    write_value(&mut out, &value, false, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (2-space indent).
///
/// # Errors
///
/// Propagates `Serialize` failures.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let value = serde::to_value(value).map_err(|e| Error::new(e.to_string()))?;
    let mut out = String::new();
    write_value(&mut out, &value, true, 0);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars() {
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"hi\\nthere\"").unwrap(), "hi\nthere");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&4.5f64).unwrap(), "4.5");
        assert_eq!(to_string(&7u64).unwrap(), "7");
    }

    #[test]
    fn parses_nested_structures() {
        let v: Vec<Vec<f64>> = from_str("[[1.0, 2.0], [3.5]]").unwrap();
        assert_eq!(v, vec![vec![1.0, 2.0], vec![3.5]]);
        let o: Option<Vec<u32>> = from_str("null").unwrap();
        assert_eq!(o, None);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<f64>("{").is_err());
        assert!(from_str::<f64>("1.0 trailing").is_err());
        assert!(from_str::<Vec<f64>>("[1.0,]").is_err());
    }
}
