//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! the item shapes used in this workspace: non-generic structs (named,
//! tuple, unit) and enums (unit, tuple and struct variants), plus the
//! `#[serde(default)]` / `#[serde(default = "path")]` field attributes.
//!
//! The input item is parsed directly from the token stream (no `syn`);
//! the generated impl targets the simplified `Value`-based trait model
//! of the sibling `serde` stub.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum DefaultKind {
    /// `#[serde(default)]`
    Std,
    /// `#[serde(default = "path")]`
    Path(String),
}

#[derive(Debug, Clone)]
struct Field {
    name: String,
    default: Option<DefaultKind>,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

type Tokens = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Consumes one attribute (`#[...]`) if present; returns its bracketed
/// token stream.
fn take_attribute(tokens: &mut Tokens) -> Option<TokenStream> {
    match tokens.peek() {
        Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
            tokens.next();
            match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    Some(g.stream())
                }
                other => panic!("malformed attribute: expected [...], got {other:?}"),
            }
        }
        _ => None,
    }
}

/// Extracts a `default` directive from a `serde(...)` attribute body,
/// if the attribute is a serde attribute carrying one.
fn parse_serde_attribute(attr: TokenStream) -> Option<DefaultKind> {
    let mut iter = attr.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return None,
    };
    let mut body = body.into_iter().peekable();
    while let Some(token) = body.next() {
        if let TokenTree::Ident(id) = &token {
            if id.to_string() == "default" {
                match body.peek() {
                    Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                        body.next();
                        match body.next() {
                            Some(TokenTree::Literal(lit)) => {
                                let text = lit.to_string();
                                let path = text.trim_matches('"').to_owned();
                                return Some(DefaultKind::Path(path));
                            }
                            other => panic!(
                                "#[serde(default = ...)] expects a string literal, got {other:?}"
                            ),
                        }
                    }
                    _ => return Some(DefaultKind::Std),
                }
            }
        }
    }
    None
}

/// Skips `pub`, `pub(crate)`, `pub(super)`, ...
fn skip_visibility(tokens: &mut Tokens) {
    if let Some(TokenTree::Ident(id)) = tokens.peek() {
        if id.to_string() == "pub" {
            tokens.next();
            if let Some(TokenTree::Group(g)) = tokens.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    tokens.next();
                }
            }
        }
    }
}

/// Parses the named fields of a struct or struct variant body.
fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut tokens: Tokens = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let mut default = None;
        while let Some(attr) = take_attribute(&mut tokens) {
            if let Some(kind) = parse_serde_attribute(attr) {
                default = Some(kind);
            }
        }
        skip_visibility(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        // Skip the type: consume until a top-level `,` (tracking angle
        // bracket depth; parens/brackets arrive as whole groups).
        let mut angle_depth = 0i32;
        for token in tokens.by_ref() {
            if let TokenTree::Punct(p) = &token {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
        fields.push(Field { name, default });
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut tokens: Tokens = body.into_iter().peekable();
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.next() {
        saw_tokens = true;
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    saw_tokens = false;
                }
                _ => {}
            }
        }
        let _ = &tokens;
    }
    if saw_tokens {
        count += 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut tokens: Tokens = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        while take_attribute(&mut tokens).is_some() {}
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                tokens.next();
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        for token in tokens.by_ref() {
            if let TokenTree::Punct(p) = &token {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens: Tokens = input.into_iter().peekable();
    while take_attribute(&mut tokens).is_some() {}
    skip_visibility(&mut tokens);
    let keyword = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde stub derive does not support generic types (on `{name}`)");
        }
    }
    match keyword.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::NamedStruct { name, fields: parse_named_fields(g.stream()) }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct { name, arity: count_tuple_fields(g.stream()) }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum { name, variants: parse_variants(g.stream()) }
            }
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("cannot derive serde traits for `{other}` items"),
    }
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

const SER_ERR: &str = "<S::Error as ::serde::ser::Error>::custom";
const DE_ERR: &str = "<D::Error as ::serde::de::Error>::custom";

fn gen_serialize_named_fields(fields: &[Field], access_prefix: &str) -> String {
    let mut code = String::from(
        "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();\n",
    );
    for field in fields {
        let name = &field.name;
        code.push_str(&format!(
            "__fields.push((\"{name}\".to_string(), \
             ::serde::to_value({access_prefix}{name}).map_err({SER_ERR})?));\n"
        ));
    }
    code
}

fn gen_deserialize_named_fields(fields: &[Field], type_label: &str) -> String {
    let mut code = String::new();
    for field in fields {
        let name = &field.name;
        let missing = match &field.default {
            Some(DefaultKind::Std) => "::std::default::Default::default()".to_owned(),
            Some(DefaultKind::Path(path)) => format!("{path}()"),
            None => format!(
                "return ::std::result::Result::Err({DE_ERR}(\
                 \"missing field `{name}` in `{type_label}`\"))"
            ),
        };
        code.push_str(&format!(
            "let __field_{name} = match __obj.iter().position(|(k, _)| k == \"{name}\") {{\n\
             Some(i) => {{\n\
             let __v = __obj.remove(i).1;\n\
             ::serde::from_value(__v).map_err(|e| {DE_ERR}(\
             format!(\"field `{name}` of `{type_label}`: {{e}}\")))?\n\
             }}\n\
             None => {{ {missing} }}\n\
             }};\n"
        ));
    }
    code
}

fn field_init_list(fields: &[Field]) -> String {
    fields
        .iter()
        .map(|f| format!("{name}: __field_{name}", name = f.name))
        .collect::<Vec<_>>()
        .join(", ")
}

fn generate_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let mut body = gen_serialize_named_fields(fields, "&self.");
            body.push_str("serializer.serialize_value(::serde::Value::Object(__fields))");
            (name, body)
        }
        Item::TupleStruct { name, arity: 1 } => (
            name,
            format!("serializer.serialize_value(::serde::to_value(&self.0).map_err({SER_ERR})?)"),
        ),
        Item::TupleStruct { name, arity } => {
            let mut body = String::from(
                "let mut __items: ::std::vec::Vec<::serde::Value> = ::std::vec::Vec::new();\n",
            );
            for i in 0..*arity {
                body.push_str(&format!(
                    "__items.push(::serde::to_value(&self.{i}).map_err({SER_ERR})?);\n"
                ));
            }
            body.push_str("serializer.serialize_value(::serde::Value::Array(__items))");
            (name, body)
        }
        Item::UnitStruct { name } => {
            (name, "serializer.serialize_value(::serde::Value::Null)".to_owned())
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for variant in variants {
                let vname = &variant.name;
                match &variant.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => serializer.serialize_value(\
                         ::serde::Value::String(\"{vname}\".to_string())),\n"
                    )),
                    VariantKind::Struct(fields) => {
                        let bindings =
                            fields.iter().map(|f| f.name.clone()).collect::<Vec<_>>().join(", ");
                        let build = gen_serialize_named_fields(fields, "");
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {bindings} }} => {{\n{build}\
                             serializer.serialize_value(::serde::Value::Object(vec![(\
                             \"{vname}\".to_string(), ::serde::Value::Object(__fields))]))\n}}\n"
                        ));
                    }
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => serializer.serialize_value(\
                         ::serde::Value::Object(vec![(\"{vname}\".to_string(), \
                         ::serde::to_value(__f0).map_err({SER_ERR})?)])),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let bindings =
                            (0..*arity).map(|i| format!("__f{i}")).collect::<Vec<_>>().join(", ");
                        let pushes = (0..*arity)
                            .map(|i| {
                                format!(
                                    "__items.push(::serde::to_value(__f{i})\
                                     .map_err({SER_ERR})?);"
                                )
                            })
                            .collect::<Vec<_>>()
                            .join("\n");
                        arms.push_str(&format!(
                            "{name}::{vname}({bindings}) => {{\n\
                             let mut __items: ::std::vec::Vec<::serde::Value> = \
                             ::std::vec::Vec::new();\n{pushes}\n\
                             serializer.serialize_value(::serde::Value::Object(vec![(\
                             \"{vname}\".to_string(), ::serde::Value::Array(__items))]))\n}}\n"
                        ));
                    }
                }
            }
            (name, format!("match self {{\n{arms}}}"))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::ser::Serialize for {name} {{\n\
         fn serialize<S: ::serde::ser::Serializer>(&self, serializer: S) \
         -> ::std::result::Result<S::Ok, S::Error> {{\n{body}\n}}\n}}\n"
    )
}

fn generate_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let extract = gen_deserialize_named_fields(fields, name);
            let init = field_init_list(fields);
            let body = format!(
                "let __value = deserializer.take_value()?;\n\
                 let mut __obj = match __value {{\n\
                 ::serde::Value::Object(pairs) => pairs,\n\
                 other => return ::std::result::Result::Err({DE_ERR}(\
                 format!(\"expected object for `{name}`, got {{}}\", other.kind()))),\n\
                 }};\n\
                 {extract}\
                 let _ = &mut __obj;\n\
                 ::std::result::Result::Ok({name} {{ {init} }})"
            );
            (name, body)
        }
        Item::TupleStruct { name, arity: 1 } => {
            let body = format!(
                "let __value = deserializer.take_value()?;\n\
                 ::std::result::Result::Ok({name}(::serde::from_value(__value)\
                 .map_err(|e| {DE_ERR}(format!(\"in `{name}`: {{e}}\")))?))"
            );
            (name, body)
        }
        Item::TupleStruct { name, arity } => {
            let extracts = (0..*arity)
                .map(|i| {
                    format!(
                        "let __field_{i} = ::serde::from_value(__items.next()\
                         .ok_or_else(|| {DE_ERR}(\"tuple too short for `{name}`\"))?)\
                         .map_err(|e| {DE_ERR}(format!(\"element {i} of `{name}`: {{e}}\")))?;"
                    )
                })
                .collect::<Vec<_>>()
                .join("\n");
            let init = (0..*arity).map(|i| format!("__field_{i}")).collect::<Vec<_>>().join(", ");
            let body = format!(
                "let __value = deserializer.take_value()?;\n\
                 let __items = match __value {{\n\
                 ::serde::Value::Array(items) => items,\n\
                 other => return ::std::result::Result::Err({DE_ERR}(\
                 format!(\"expected array for `{name}`, got {{}}\", other.kind()))),\n\
                 }};\n\
                 let mut __items = __items.into_iter();\n\
                 {extracts}\n\
                 ::std::result::Result::Ok({name}({init}))"
            );
            (name, body)
        }
        Item::UnitStruct { name } => {
            let body = format!("deserializer.take_value()?;\n::std::result::Result::Ok({name})");
            (name, body)
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for variant in variants {
                let vname = &variant.name;
                match &variant.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let label = format!("{name}::{vname}");
                        let extract = gen_deserialize_named_fields(fields, &label);
                        let init = field_init_list(fields);
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let mut __obj = match __content {{\n\
                             ::serde::Value::Object(pairs) => pairs,\n\
                             other => return ::std::result::Result::Err({DE_ERR}(\
                             format!(\"expected object for `{name}::{vname}`, got {{}}\", \
                             other.kind()))),\n\
                             }};\n\
                             {extract}\
                             let _ = &mut __obj;\n\
                             ::std::result::Result::Ok({name}::{vname} {{ {init} }})\n}}\n"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::from_value(__content).map_err(|e| {DE_ERR}(\
                             format!(\"in `{name}::{vname}`: {{e}}\")))?)),\n"
                        ));
                    }
                    VariantKind::Tuple(arity) => {
                        let extracts = (0..*arity)
                            .map(|i| {
                                format!(
                                    "let __field_{i} = ::serde::from_value(__items.next()\
                                     .ok_or_else(|| {DE_ERR}(\
                                     \"tuple too short for `{name}::{vname}`\"))?)\
                                     .map_err(|e| {DE_ERR}(\
                                     format!(\"element {i} of `{name}::{vname}`: {{e}}\")))?;"
                                )
                            })
                            .collect::<Vec<_>>()
                            .join("\n");
                        let init = (0..*arity)
                            .map(|i| format!("__field_{i}"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let __items = match __content {{\n\
                             ::serde::Value::Array(items) => items,\n\
                             other => return ::std::result::Result::Err({DE_ERR}(\
                             format!(\"expected array for `{name}::{vname}`, got {{}}\", \
                             other.kind()))),\n\
                             }};\n\
                             let mut __items = __items.into_iter();\n\
                             {extracts}\n\
                             ::std::result::Result::Ok({name}::{vname}({init}))\n}}\n"
                        ));
                    }
                }
            }
            let body = format!(
                "let __value = deserializer.take_value()?;\n\
                 match __value {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => ::std::result::Result::Err({DE_ERR}(\
                 format!(\"unknown variant `{{other}}` of `{name}`\"))),\n\
                 }},\n\
                 ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                 let (__tag, __content) = pairs.into_iter().next().expect(\"len checked\");\n\
                 match __tag.as_str() {{\n\
                 {tagged_arms}\
                 other => ::std::result::Result::Err({DE_ERR}(\
                 format!(\"unknown variant `{{other}}` of `{name}`\"))),\n\
                 }}\n\
                 }}\n\
                 other => ::std::result::Result::Err({DE_ERR}(\
                 format!(\"expected enum `{name}`, got {{}}\", other.kind()))),\n\
                 }}"
            );
            (name, body)
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
         fn deserialize<D: ::serde::de::Deserializer<'de>>(deserializer: D) \
         -> ::std::result::Result<Self, D::Error> {{\n{body}\n}}\n}}\n"
    )
}

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

/// Derives the stub `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item).parse().expect("generated Serialize impl must parse")
}

/// Derives the stub `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item).parse().expect("generated Deserialize impl must parse")
}
