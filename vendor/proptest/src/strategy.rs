//! Value-generation strategies: the composable half of the stub.

use std::ops::{Range, RangeInclusive};

use rand::{Rng, RngCore};

use crate::TestRng;

/// A recipe for generating values of an associated type.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Boxes a strategy for heterogeneous storage (used by `prop_oneof!`).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct OneOf<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> OneOf<V> {
    /// Builds the choice strategy.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let index = rng.random_range(0..self.options.len());
        self.options[index].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, usize, u64, u32, i32, i64);

/// The size argument of [`vec`]: a fixed length or a length range.
pub trait IntoSizeRange {
    /// Converts into a half-open length range.
    fn into_size_range(self) -> Range<usize>;
}

impl IntoSizeRange for usize {
    fn into_size_range(self) -> Range<usize> {
        self..self + 1
    }
}

impl IntoSizeRange for Range<usize> {
    fn into_size_range(self) -> Range<usize> {
        self
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn into_size_range(self) -> Range<usize> {
        *self.start()..*self.end() + 1
    }
}

/// Strategy for `Vec`s with element strategy and length range.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.start + 1 >= self.size.end {
            self.size.start
        } else {
            rng.random_range(self.size.clone())
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec`: vectors of `element` with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    VecStrategy { element, size: size.into_size_range() }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The canonical full-range strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// Generates values from a plain function (backs [`Arbitrary`] impls).
pub struct FnStrategy<V>(fn(&mut TestRng) -> V);

impl<V> Strategy for FnStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// `any::<T>()`: the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

impl Arbitrary for bool {
    type Strategy = FnStrategy<bool>;

    fn arbitrary() -> Self::Strategy {
        FnStrategy(|rng| rng.random_bool(0.5))
    }
}

impl Arbitrary for u64 {
    type Strategy = FnStrategy<u64>;

    fn arbitrary() -> Self::Strategy {
        FnStrategy(RngCore::next_u64)
    }
}

impl Arbitrary for u32 {
    type Strategy = FnStrategy<u32>;

    fn arbitrary() -> Self::Strategy {
        FnStrategy(RngCore::next_u32)
    }
}

impl Arbitrary for usize {
    type Strategy = FnStrategy<usize>;

    fn arbitrary() -> Self::Strategy {
        FnStrategy(|rng| rng.next_u64() as usize)
    }
}

impl Arbitrary for i32 {
    type Strategy = FnStrategy<i32>;

    fn arbitrary() -> Self::Strategy {
        FnStrategy(|rng| rng.next_u32() as i32)
    }
}

impl Arbitrary for i64 {
    type Strategy = FnStrategy<i64>;

    fn arbitrary() -> Self::Strategy {
        FnStrategy(|rng| rng.next_u64() as i64)
    }
}
