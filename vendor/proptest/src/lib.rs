//! Offline stand-in for `proptest`.
//!
//! Provides the subset of the proptest API the workspace uses —
//! [`Strategy`] with `prop_map` / `prop_flat_map`, range strategies,
//! `any::<T>()`, `prop::collection::vec`, `prop_oneof!`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_assume!`
//! macros — as a deterministic random-case runner. There is no
//! shrinking: on failure the runner panics with the per-case seed so
//! the case can be replayed. Seeds derive from the test name, so runs
//! are reproducible across machines.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

pub use strategy::{any, Arbitrary, Just, Strategy};

/// The deterministic generator handed to strategies.
pub type TestRng = StdRng;

/// Runner configuration (`cases` is the number of passing cases required).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration requiring `cases` passing cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Outcome of a single generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed with the given message.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should not count.
    Reject,
}

impl TestCaseError {
    /// A failing case with an explanatory message.
    #[must_use]
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Drives one property: generates cases until `config.cases` pass,
/// tolerating up to `16 * cases` rejections. Panics (failing the test)
/// on the first failed case, reporting the per-case seed.
///
/// # Panics
///
/// Panics when a case fails or too many cases are rejected.
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name);
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    let mut attempt: u64 = 0;
    while passed < config.cases {
        let seed = base ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = TestRng::seed_from_u64(seed);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= config.cases.saturating_mul(16),
                    "{name}: too many rejected cases ({rejected}) for {} required",
                    config.cases
                );
            }
            Err(TestCaseError::Fail(message)) => {
                panic!("{name}: case {passed} failed (case seed {seed:#018x})\n{message}")
            }
        }
        attempt += 1;
    }
}

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

/// One-stop import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError,
    };
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`run_cases`] over the generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases($config, stringify!($name), |__proptest_rng| {
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);
                    )+
                    let mut __proptest_case =
                        move || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        };
                    __proptest_case()
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case
/// (not the whole process) with an optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}`",
                __l, __r
            )));
        }
    }};
}

/// Rejects the current case (it is re-drawn and does not count).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Picks uniformly between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps(
            n in 1usize..10,
            x in prop_oneof![0.5f64..1.0, -1.0f64..-0.5],
            flag in any::<bool>(),
            v in prop::collection::vec(0u64..5, 2..6),
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(x.abs() >= 0.5 && x.abs() < 1.0, "x = {x}");
            prop_assert!(matches!(flag, true | false));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn flat_map_respects_dependency(
            pair in (1usize..8).prop_flat_map(|a| (a..8).prop_map(move |b| (a, b))),
        ) {
            prop_assert!(pair.0 <= pair.1);
            prop_assert_eq!(pair.0.min(pair.1), pair.0);
        }

        #[test]
        fn assume_rejects_without_failing(k in 0usize..10) {
            prop_assume!(k % 2 == 0);
            prop_assert!(k % 2 == 0);
        }
    }

    #[test]
    fn failure_reports_seed() {
        let result = std::panic::catch_unwind(|| {
            crate::run_cases(ProptestConfig::with_cases(4), "always_fails", |_| {
                Err(TestCaseError::fail("boom".into()))
            });
        });
        assert!(result.is_err());
    }
}
