//! Offline stand-in for `rand` 0.9.
//!
//! Implements the subset the workspace uses — [`RngCore`], the [`Rng`]
//! extension trait with `random_range` / `random_bool`, [`SeedableRng`]
//! and [`rngs::StdRng`] — with the same trait shapes as the real crate
//! so call sites compile unchanged (including through `&mut dyn
//! RngCore`). `StdRng` here is xoshiro256++ seeded via splitmix64:
//! deterministic, fast, and statistically solid for simulation
//! workloads (not cryptographic).

use std::ops::{Range, RangeInclusive};

/// A source of random bits.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be seeded to produce a deterministic stream.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (distinct seeds produce
    /// decorrelated streams).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types from which a uniform sample can be drawn.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // Widening-multiply bounded sampling (Lemire); bias is < 2^-64 per
    // draw, irrelevant for simulation purposes.
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range {self:?}");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + unit_f64(rng) * (end - start)
    }
}

macro_rules! sample_uint_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                start + below(rng, span + 1) as $ty
            }
        }
    )*};
}

sample_uint_range!(usize, u64, u32);

macro_rules! sample_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(below(rng, span) as i64) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                (start as i64).wrapping_add(below(rng, span + 1) as i64) as $ty
            }
        }
    )*};
}

sample_int_range!(i32, i64, isize);

/// Convenience extension methods over any [`RngCore`], including
/// unsized receivers such as `&mut dyn RngCore`.
pub trait Rng: RngCore {
    /// Draws a uniform sample from `range`.
    fn random_range<T, Rge>(&mut self, range: Rge) -> T
    where
        Rge: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Pseudo-random number generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stub for `rand::rngs::StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            StdRng {
                state: [
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [ref mut s0, ref mut s1, ref mut s2, ref mut s3] = self.state;
            let result = s0.wrapping_add(*s3).rotate_left(23).wrapping_add(*s0);
            let t = *s1 << 17;
            *s2 ^= *s0;
            *s3 ^= *s1;
            *s1 ^= *s2;
            *s0 ^= *s3;
            *s2 ^= t;
            *s3 = s3.rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f64 = rng.random_range(2.0..5.0);
            assert!((2.0..5.0).contains(&x));
            let n: usize = rng.random_range(3..7usize);
            assert!((3..7).contains(&n));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(3);
        let dynrng: &mut dyn RngCore = &mut rng;
        let x: f64 = dynrng.random_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
        let _ = dynrng.random_bool(0.5);
    }
}
