//! Serialization traits, shaped like real serde's `ser` module.

use std::fmt::Display;

use crate::value::{to_value, Value};

/// Trait for serialization errors, mirroring `serde::ser::Error`.
pub trait Error: Sized {
    /// Builds an error from a display-able message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data format that can serialize the [`Value`] data model.
///
/// Unlike real serde there is a single entry point: the caller builds
/// the complete [`Value`] and hands it over.
pub trait Serializer: Sized {
    /// Output type produced on success.
    type Ok;
    /// Error type.
    type Error: Error;

    /// Consumes a fully built value.
    ///
    /// # Errors
    ///
    /// Format-specific failures.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A value serializable into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    ///
    /// # Errors
    ///
    /// Propagates serializer failures.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

macro_rules! serialize_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::Int(*self as i64))
            }
        }
    )*};
}

serialize_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl Serialize for u64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let value = match i64::try_from(*self) {
            Ok(v) => Value::Int(v),
            Err(_) => Value::UInt(*self),
        };
        serializer.serialize_value(value)
    }
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (*self as u64).serialize(serializer)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Bool(*self))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Float(f64::from(*self)))
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Float(*self))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::String(self.clone()))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::String(self.to_owned()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_value(Value::Null),
            Some(inner) => inner.serialize(serializer),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut items = Vec::with_capacity(self.len());
        for item in self {
            items.push(to_value(item).map_err(S::Error::custom)?);
        }
        serializer.serialize_value(Value::Array(items))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let items = vec![
            to_value(&self.0).map_err(S::Error::custom)?,
            to_value(&self.1).map_err(S::Error::custom)?,
        ];
        serializer.serialize_value(Value::Array(items))
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut fields = Vec::with_capacity(self.len());
        for (key, value) in self {
            fields.push((key.clone(), to_value(value).map_err(S::Error::custom)?));
        }
        serializer.serialize_value(Value::Object(fields))
    }
}
