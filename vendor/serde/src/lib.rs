//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the *subset* of serde's API surface the workspace
//! actually uses: the `Serialize`/`Deserialize` traits (with the same
//! generic shapes as the real crate, so hand-written impls compile
//! unchanged), the derive macros (via the sibling `serde_derive`
//! stub), and a self-describing [`Value`] data model that the sibling
//! `serde_json` stub serializes to and from.
//!
//! The design deliberately collapses serde's visitor machinery: a
//! `Serializer` consumes a fully built [`Value`], and a `Deserializer`
//! hands out a [`Value`]. This is slower than real serde but
//! observationally equivalent for the JSON round-trips this workspace
//! performs.

pub mod de;
pub mod ser;
mod value;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
pub use value::{from_value, to_value, Value, ValueError};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
