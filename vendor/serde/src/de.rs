//! Deserialization traits, shaped like real serde's `de` module.

use std::fmt::Display;

use crate::value::{from_value, Value};

/// Trait for deserialization errors, mirroring `serde::de::Error`.
pub trait Error: Sized {
    /// Builds an error from a display-able message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data format that can produce the [`Value`] data model.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Yields the complete value held by this deserializer.
    ///
    /// # Errors
    ///
    /// Format-specific failures (parse errors, ...).
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// A value reconstructible from the [`Value`] data model.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    ///
    /// # Errors
    ///
    /// Shape mismatches and failed domain validation.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A value deserializable independent of the input's lifetime
/// (trivially true here: the stub data model is fully owned).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

fn mismatch<E: Error>(expected: &str, got: &Value) -> E {
    E::custom(format!("expected {expected}, got {}", got.kind()))
}

macro_rules! deserialize_signed {
    ($($ty:ty),*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.take_value()? {
                    Value::Int(v) => <$ty>::try_from(v)
                        .map_err(|_| D::Error::custom(format!("integer {v} out of range"))),
                    Value::UInt(v) => <$ty>::try_from(v)
                        .map_err(|_| D::Error::custom(format!("integer {v} out of range"))),
                    other => Err(mismatch("an integer", &other)),
                }
            }
        }
    )*};
}

deserialize_signed!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(mismatch("a boolean", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Float(v) => Ok(v),
            Value::Int(v) => Ok(v as f64),
            Value::UInt(v) => Ok(v as f64),
            other => Err(mismatch("a number", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::String(s) => Ok(s),
            other => Err(mismatch("a string", &other)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Null => Ok(None),
            value => from_value(value).map(Some).map_err(D::Error::custom),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Array(items) => items
                .into_iter()
                .enumerate()
                .map(|(i, item)| {
                    from_value(item).map_err(|e| D::Error::custom(format!("element {i}: {e}")))
                })
                .collect(),
            other => Err(mismatch("an array", &other)),
        }
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Object(fields) => fields
                .into_iter()
                .map(|(key, value)| {
                    from_value(value)
                        .map(|v| (key.clone(), v))
                        .map_err(|e| D::Error::custom(format!("field {key}: {e}")))
                })
                .collect(),
            other => Err(mismatch("an object", &other)),
        }
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Array(items) if items.len() == 2 => {
                let mut items = items.into_iter();
                let a = from_value(items.next().expect("len checked")).map_err(D::Error::custom)?;
                let b = from_value(items.next().expect("len checked")).map_err(D::Error::custom)?;
                Ok((a, b))
            }
            other => Err(mismatch("a two-element array", &other)),
        }
    }
}
