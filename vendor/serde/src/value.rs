//! The self-describing data model shared by serialization and
//! deserialization.

use std::fmt;

use crate::de::{self, Deserialize, Deserializer};
use crate::ser::{self, Serialize, Serializer};

/// A dynamically typed value: the intermediate representation every
/// `Serialize`/`Deserialize` impl in this stub converts through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short description of the value's kind, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

// Identity impls so `Value` itself can pass through any API that is
// generic over `Serialize`/`Deserialize` (e.g. parsing a request body
// to a `Value` first, then inspecting it).
impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.clone())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.take_value()
    }
}

/// The error type used when converting through [`Value`].
#[derive(Debug, Clone, PartialEq)]
pub struct ValueError(pub String);

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ValueError {}

impl ser::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

impl de::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

/// Serializer producing a [`Value`].
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = ValueError;

    fn serialize_value(self, value: Value) -> Result<Value, ValueError> {
        Ok(value)
    }
}

/// Deserializer consuming a [`Value`].
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = ValueError;

    fn take_value(self) -> Result<Value, ValueError> {
        Ok(self.0)
    }
}

/// Converts any serializable value into the [`Value`] data model.
///
/// # Errors
///
/// Propagates errors raised by the type's `Serialize` impl.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, ValueError> {
    value.serialize(ValueSerializer)
}

/// Rebuilds a deserializable value from the [`Value`] data model.
///
/// # Errors
///
/// Propagates errors raised by the type's `Deserialize` impl (shape
/// mismatches, failed validation, ...).
pub fn from_value<'de, T: Deserialize<'de>>(value: Value) -> Result<T, ValueError> {
    T::deserialize(ValueDeserializer(value))
}
