//! Property-based tests tying the simulator to the analytic machinery.

use faultline_core::coverage::Fleet;
use faultline_core::{Algorithm, Params, PiecewiseTrajectory};
use faultline_sim::engine::{QuorumConfig, SimConfig, Simulation};
use faultline_sim::fault::{BernoulliFaults, FaultKind, FaultMask, FaultPlan};
use faultline_sim::target::Target;
use faultline_sim::{
    explore_fault_space, worst_case_mask, worst_case_outcome, ExplorerConfig, RunTrace,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn proportional_params() -> impl Strategy<Value = Params> {
    (1usize..10).prop_flat_map(|f| {
        ((f + 1)..(2 * f + 2)).prop_map(move |n| Params::new(n, f).expect("valid by range"))
    })
}

/// Proportional-regime pairs with n <= 5: small enough that the
/// fault-space explorer enumerates every mask exhaustively.
fn small_proportional_params() -> impl Strategy<Value = Params> {
    (1usize..5).prop_flat_map(|f| {
        ((f + 1)..(2 * f + 2).min(6)).prop_map(move |n| Params::new(n, f).expect("valid by range"))
    })
}

fn fault_kind() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        Just(FaultKind::Reliable),
        Just(FaultKind::Sensor),
        (0.0f64..1.0).prop_map(|p| FaultKind::Intermittent { miss_probability: p }),
        (0.0f64..4.0).prop_map(|l| FaultKind::Delayed { latency: l }),
        (0.25f64..1.0).prop_map(|s| FaultKind::SpeedDegraded { factor: s }),
        (0.0f64..1.0).prop_map(|r| FaultKind::Byzantine { lie_rate: r }),
        (0.0f64..1.0).prop_map(|p| FaultKind::PFaulty { detect_probability: p }),
    ]
}

fn materialize(alg: &Algorithm, xmax: f64) -> Vec<PiecewiseTrajectory> {
    let horizon = alg.required_horizon(xmax).unwrap();
    alg.plans().iter().map(|p| p.materialize(horizon).unwrap()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The simulated worst-case detection time equals the analytic
    /// T_(f+1)(x) computed from coverage, for random targets on both
    /// sides: two completely independent code paths must agree.
    #[test]
    fn simulation_matches_coverage(
        params in proportional_params(),
        x in 1.0f64..20.0,
        negative in any::<bool>(),
    ) {
        let target_pos = if negative { -x } else { x };
        let alg = Algorithm::design(params).unwrap();
        let trajectories = materialize(&alg, 21.0);
        let fleet = Fleet::new(trajectories.clone()).unwrap();

        let outcome = worst_case_outcome(
            trajectories,
            Target::new(target_pos).unwrap(),
            params.f(),
            SimConfig::default(),
        ).unwrap();
        let analytic = fleet.visit_time(target_pos, params.required_visits());

        prop_assert!(outcome.detected(), "{params}: target {target_pos} undetected");
        let sim_t = outcome.detection.unwrap().time;
        let cov_t = analytic.unwrap();
        prop_assert!(
            (sim_t - cov_t).abs() <= 1e-9 * cov_t.max(1.0),
            "{params}, x = {target_pos}: sim {sim_t} vs coverage {cov_t}"
        );
    }

    /// No fault assignment of at most f faults can beat the worst-case
    /// adversary: the adversarial detection time dominates any random
    /// mask's detection time.
    #[test]
    fn adversary_dominates_random_masks(
        params in proportional_params(),
        x in 1.0f64..15.0,
        seed in any::<u64>(),
    ) {
        let alg = Algorithm::design(params).unwrap();
        let trajectories = materialize(&alg, 16.0);
        let target = Target::new(x).unwrap();

        let worst = worst_case_outcome(
            trajectories.clone(),
            target,
            params.f(),
            SimConfig::default(),
        ).unwrap();
        prop_assert!(worst.detected());
        let worst_time = worst.detection.unwrap().time;

        let mut model = BernoulliFaults::new(
            0.5,
            params.f(),
            StdRng::seed_from_u64(seed),
        ).unwrap();
        use faultline_sim::fault::FaultModel;
        let mask = model.assign(trajectories.len());
        let outcome = Simulation::new(trajectories, target, &mask, SimConfig::default())
            .unwrap()
            .run();
        prop_assert!(outcome.detected());
        prop_assert!(
            outcome.detection.unwrap().time <= worst_time + 1e-9,
            "random mask beat the adversary"
        );
    }

    /// The worst-case mask always has exactly f faults when at least f
    /// robots reach the target, and they are the f earliest visitors.
    #[test]
    fn worst_case_mask_structure(
        params in proportional_params(),
        x in 1.0f64..10.0,
    ) {
        let alg = Algorithm::design(params).unwrap();
        let trajectories = materialize(&alg, 11.0);
        let mask = worst_case_mask(&trajectories, Target::new(x).unwrap(), params.f()).unwrap();
        prop_assert_eq!(mask.fault_count(), params.f());

        // Every faulty robot reaches the target no later than every
        // reliable robot that reaches it.
        let arrival = |i: usize| trajectories[i].first_visit(x);
        let latest_faulty = mask
            .faulty_indices()
            .into_iter()
            .filter_map(arrival)
            .fold(0.0, f64::max);
        for i in 0..trajectories.len() {
            if !mask.is_faulty(faultline_sim::RobotId(i)) {
                if let Some(t) = arrival(i) {
                    prop_assert!(t >= latest_faulty - 1e-12);
                }
            }
        }
    }

    /// The adversary-dominance invariant, checked exhaustively: for
    /// every valid small (n, f) and a random target on either side,
    /// *every* fault mask with at most f faults detects no later than
    /// the adversarial bound T_(f+1)(x).
    #[test]
    fn every_mask_respects_the_adversarial_bound(
        params in small_proportional_params(),
        x in 1.0f64..12.0,
        negative in any::<bool>(),
    ) {
        let alg = Algorithm::design(params).unwrap();
        let trajectories = materialize(&alg, 13.0);
        let target = Target::new(if negative { -x } else { x }).unwrap();
        let report = explore_fault_space(
            &trajectories,
            target,
            params.f(),
            &ExplorerConfig::default(),
        ).unwrap();
        prop_assert!(!report.subsampled, "small spaces must be exhaustive");
        prop_assert_eq!(report.tested_masks, report.total_masks);
        prop_assert!(report.holds(), "{}", report.summary());
    }

    /// Record -> serialize -> parse -> replay reproduces the identical
    /// SearchOutcome for arbitrary fault plans from the full taxonomy.
    #[test]
    fn traces_replay_bit_for_bit_after_json_round_trip(
        params in small_proportional_params(),
        x in 1.0f64..10.0,
        negative in any::<bool>(),
        seed in any::<u64>(),
        kinds in prop::collection::vec(fault_kind(), 5..6),
    ) {
        let alg = Algorithm::design(params).unwrap();
        let trajectories = materialize(&alg, 11.0);
        let plan = FaultPlan::new(kinds[..params.n()].to_vec()).unwrap();
        let target = Target::new(if negative { -x } else { x }).unwrap();
        let trace = RunTrace::record(
            "property round trip",
            trajectories,
            target,
            &plan,
            seed,
            SimConfig::default(),
            None,
        ).unwrap();
        let parsed = RunTrace::from_json(&trace.to_json().unwrap()).unwrap();
        prop_assert_eq!(&parsed, &trace, "JSON round trip must be lossless");
        prop_assert_eq!(parsed.replay().unwrap(), trace.outcome.clone());
        parsed.verify().unwrap();
    }

    /// Every `FaultKind` variant's f64 parameters survive the
    /// trace-document JSON path bit for bit.
    #[test]
    fn fault_kind_params_survive_json_bit_for_bit(
        kinds in prop::collection::vec(fault_kind(), 2..5),
        seed in any::<u64>(),
    ) {
        let n = kinds.len();
        let plan = FaultPlan::new(kinds.clone()).unwrap();
        let trajectories: Vec<PiecewiseTrajectory> = (0..n)
            .map(|_| {
                faultline_core::TrajectoryBuilder::from_origin()
                    .sweep_to(9.0)
                    .finish()
                    .unwrap()
            })
            .collect();
        let trace = RunTrace::record(
            "serde bit survival",
            trajectories,
            Target::new(3.0).unwrap(),
            &plan,
            seed,
            SimConfig::default(),
            None,
        ).unwrap();
        let parsed = RunTrace::from_json(&trace.to_json().unwrap()).unwrap();
        prop_assert_eq!(parsed.plan.len(), kinds.len());
        for (parsed_kind, original) in parsed.plan.iter().zip(&kinds) {
            match (parsed_kind, original) {
                (FaultKind::Intermittent { miss_probability: a },
                 FaultKind::Intermittent { miss_probability: b })
                | (FaultKind::Delayed { latency: a }, FaultKind::Delayed { latency: b })
                | (FaultKind::SpeedDegraded { factor: a }, FaultKind::SpeedDegraded { factor: b })
                | (FaultKind::Byzantine { lie_rate: a }, FaultKind::Byzantine { lie_rate: b })
                | (FaultKind::PFaulty { detect_probability: a },
                   FaultKind::PFaulty { detect_probability: b }) => {
                    prop_assert_eq!(a.to_bits(), b.to_bits(), "f64 parameter lost bits");
                }
                (a, b) => prop_assert_eq!(a, b),
            }
        }
    }

    /// With `f` Byzantine robots among `n >= 2f + 1` and an `f + 1`
    /// quorum, no sampled lie schedule ever confirms a position where
    /// the target is not, and no false position ever accumulates a
    /// quorum of claims.
    #[test]
    fn byzantine_quorum_never_confirms_a_false_position(
        f in 1usize..4,
        extra in 0usize..3,
        lie_rate in 0.1f64..1.0,
        seed in any::<u64>(),
        x in 1.0f64..10.0,
        negative in any::<bool>(),
    ) {
        let n = 2 * f + 1 + extra;
        let params = Params::new(n, f).unwrap();
        let alg = Algorithm::design(params).unwrap();
        let trajectories = materialize(&alg, 11.0);
        let target = Target::new(if negative { -x } else { x }).unwrap();
        // The first f robots are the liars.
        let kinds: Vec<FaultKind> = (0..n)
            .map(|i| if i < f { FaultKind::Byzantine { lie_rate } } else { FaultKind::Reliable })
            .collect();
        let plan = FaultPlan::new(kinds).unwrap();
        let quorum = QuorumConfig::byzantine(n, f).unwrap();
        let outcome = Simulation::with_quorum(
            trajectories,
            target,
            &plan,
            seed,
            SimConfig::default(),
            Some(quorum),
        ).unwrap().run();

        if let Some(confirmed) = outcome.confirmed_position {
            prop_assert_eq!(confirmed, target.position(), "confirmed a false position");
        }
        // No false position ever gathers f + 1 distinct claimants.
        let mut by_position: std::collections::BTreeMap<u64, std::collections::BTreeSet<usize>> =
            std::collections::BTreeMap::new();
        for claim in &outcome.claims {
            by_position.entry(claim.position.to_bits()).or_default().insert(claim.robot.0);
        }
        for (bits, claimants) in by_position {
            if f64::from_bits(bits) != target.position() {
                prop_assert!(
                    claimants.len() <= f,
                    "false position {} gathered {} claimants",
                    f64::from_bits(bits),
                    claimants.len()
                );
            }
        }
    }

    /// The quorum terminates exactly when the target has genuinely been
    /// visited by `f + 1` honest robots: detection time equals the
    /// honest sub-fleet's `T_(f+1)(x)`.
    #[test]
    fn byzantine_quorum_terminates_on_honest_coverage(
        f in 1usize..4,
        lie_rate in 0.0f64..1.0,
        seed in any::<u64>(),
        x in 1.0f64..10.0,
        negative in any::<bool>(),
    ) {
        let n = 2 * f + 1;
        let params = Params::new(n, f).unwrap();
        let alg = Algorithm::design(params).unwrap();
        let trajectories = materialize(&alg, 11.0);
        let target = Target::new(if negative { -x } else { x }).unwrap();
        let kinds: Vec<FaultKind> = (0..n)
            .map(|i| if i < f { FaultKind::Byzantine { lie_rate } } else { FaultKind::Reliable })
            .collect();
        let honest: Vec<PiecewiseTrajectory> = trajectories[f..].to_vec();
        let honest_bound = Fleet::new(honest).unwrap().visit_time(target.position(), f + 1);

        let plan = FaultPlan::new(kinds).unwrap();
        let outcome = Simulation::with_quorum(
            trajectories,
            target,
            &plan,
            seed,
            SimConfig::default(),
            Some(QuorumConfig::byzantine(n, f).unwrap()),
        ).unwrap().run();

        match honest_bound {
            Some(bound) => {
                let d = outcome.detection.expect("honest coverage must confirm the target");
                prop_assert!(
                    (d.time - bound).abs() <= 1e-9 * bound.max(1.0),
                    "quorum at {} but honest T_(f+1) = {bound}",
                    d.time
                );
                prop_assert_eq!(outcome.confirmed_position, Some(target.position()));
            }
            None => {
                // Liars alone can never fake the quorum.
                prop_assert!(outcome.confirmed_position.is_none());
            }
        }
    }

    /// Searches with zero faults detect at exactly the fleet's first
    /// visit time, i.e. the simulator's bookkeeping introduces no bias.
    #[test]
    fn zero_fault_search_is_first_visit(
        params in proportional_params(),
        x in 1.0f64..10.0,
    ) {
        let alg = Algorithm::design(params).unwrap();
        let trajectories = materialize(&alg, 11.0);
        let fleet = Fleet::new(trajectories.clone()).unwrap();
        let mask = FaultMask::all_reliable(trajectories.len());
        let outcome = Simulation::new(
            trajectories,
            Target::new(x).unwrap(),
            &mask,
            SimConfig::default(),
        ).unwrap().run();
        let expected = fleet.visit_time(x, 1).unwrap();
        let got = outcome.detection.unwrap().time;
        prop_assert!((got - expected).abs() <= 1e-9 * expected.max(1.0));
    }
}
