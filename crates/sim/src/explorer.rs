//! Exhaustive fault-space exploration.
//!
//! The paper's analysis rests on a single inequality: for a fixed
//! fleet and target, *no* assignment of at most `f` sensor faults can
//! delay detection past the adversarial bound `T_(f+1)(x)` (the
//! adversary corrupts the `f` earliest visitors, Definition 3). This
//! module checks that **adversary-dominance invariant** by brute
//! force: it enumerates every fault mask with at most `f` faults —
//! `Σ_{k=0..f} C(n, k)` of them — simulates each one, and compares the
//! measured detection time against the bound.
//!
//! For small fleets (the paper's Table 1 pairs) the enumeration is
//! genuinely exhaustive. When the mask count exceeds the configured
//! budget the explorer falls back to a seeded-random subsample and
//! *says so* in the report — a capped exploration is never presented
//! as a complete one.
//!
//! Violations (there should be none) are captured as shrunk,
//! replayable [`RunTrace`]s — see [`crate::trace`].
//!
//! This simulator-level sweep is the *legacy* exploration path: it
//! fixes one target per run and replays every mask through the
//! discrete-event engine. The `faultline-explore` crate supersedes it
//! for coverage claims — it explores the full `(fault mask × target
//! window)` space through canonical equivalence classes with dominance
//! pruning and certified enclosures, and `repro explore` runs both as
//! a differential pair. This module stays as the independent
//! simulator-backed baseline.

use faultline_core::{par_map, PiecewiseTrajectory, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::adversary::worst_case_outcome;
use crate::engine::{SimConfig, Simulation};
use crate::fault::{check_adversary_budget, FaultMask, FaultPlan};
use crate::target::Target;
use crate::trace::RunTrace;

/// Configuration of a fault-space exploration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExplorerConfig {
    /// Maximum number of masks to simulate. When the full fault space
    /// is larger, a seeded-random subsample of this size is tested
    /// instead (and [`ExplorationReport::subsampled`] is set).
    pub budget: usize,
    /// Seed for the subsampling RNG (unused when exhaustive).
    pub seed: u64,
    /// Slack allowed when comparing the measured detection time to the
    /// adversarial bound, absorbing floating-point round-off.
    pub tolerance: f64,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        ExplorerConfig { budget: 1 << 14, seed: 0, tolerance: 1e-9 }
    }
}

/// The outcome of simulating one fault mask.
#[derive(Debug, Clone, PartialEq)]
pub struct MaskResult {
    /// The tested mask.
    pub mask: FaultMask,
    /// Measured detection time (`None` = undetected within horizon).
    pub detection: Option<f64>,
    /// Whether the measurement respects the adversarial bound.
    pub dominated: bool,
}

/// Result of a fault-space exploration.
#[derive(Debug, Clone)]
pub struct ExplorationReport {
    /// Fleet size.
    pub n: usize,
    /// Fault budget explored.
    pub f: usize,
    /// Target position.
    pub target: f64,
    /// The adversarial bound `T_(f+1)(target)` (`None` when even the
    /// worst case never detects within the horizon).
    pub bound: Option<f64>,
    /// Size of the full fault space, `Σ_{k=0..f} C(n, k)`.
    pub total_masks: usize,
    /// Number of masks actually simulated.
    pub tested_masks: usize,
    /// `true` when `tested_masks < total_masks`: the exploration was a
    /// seeded subsample, not exhaustive.
    pub subsampled: bool,
    /// Largest `measured - bound` over all tested masks (negative or
    /// ~0 when the invariant holds; infinite when some mask went
    /// undetected while the adversarial run detected).
    pub worst_margin: f64,
    /// Shrunk, replayable traces of every violating mask.
    pub violations: Vec<RunTrace>,
}

impl ExplorationReport {
    /// Whether every tested mask respected the adversarial bound.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line human summary.
    #[must_use]
    pub fn summary(&self) -> String {
        let coverage = if self.subsampled {
            format!(
                "{} of {} masks (seeded subsample, budget exceeded)",
                self.tested_masks, self.total_masks
            )
        } else {
            format!("all {} masks", self.total_masks)
        };
        format!(
            "n = {}, f = {}, x = {}: {} tested, {} violations, worst margin {:.3e}",
            self.n,
            self.f,
            self.target,
            coverage,
            self.violations.len(),
            self.worst_margin,
        )
    }
}

/// `Σ_{k=0..f} C(n, k)`, saturating at `usize::MAX`.
#[must_use]
pub fn fault_space_size(n: usize, f: usize) -> usize {
    let mut total: usize = 0;
    // Walk Pascal's row incrementally: C(n, k+1) = C(n, k)·(n-k)/(k+1).
    let mut binom: u128 = 1;
    for k in 0..=f.min(n) {
        if k > 0 {
            binom = binom * (n as u128 - k as u128 + 1) / k as u128;
        }
        total = total.saturating_add(usize::try_from(binom).unwrap_or(usize::MAX));
    }
    total
}

/// Enumerates every fault mask over `n` robots with at most `f` faults,
/// in increasing fault count (lexicographic within each count).
fn enumerate_masks(n: usize, f: usize) -> Vec<FaultMask> {
    let mut masks = Vec::with_capacity(fault_space_size(n, f));
    for k in 0..=f.min(n) {
        let mut indices: Vec<usize> = (0..k).collect();
        loop {
            masks.push(
                FaultMask::from_indices(n, &indices)
                    .expect("combination indices are distinct and in range"),
            );
            // Advance to the next k-combination of {0, .., n-1}:
            // bump the rightmost index with room to grow (index i may
            // reach at most n - k + i) and reset everything after it.
            let Some(i) = (0..k).rev().find(|&i| indices[i] < n - k + i) else { break };
            indices[i] += 1;
            for j in i + 1..k {
                indices[j] = indices[j - 1] + 1;
            }
        }
    }
    masks
}

/// Draws `count` random masks with at most `f` faults (uniform fault
/// count, then a uniform subset of that size), deterministically from
/// `seed`.
fn subsample_masks(n: usize, f: usize, count: usize, seed: u64) -> Vec<FaultMask> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool: Vec<usize> = (0..n).collect();
    (0..count)
        .map(|_| {
            let k = rng.random_range(0..=f);
            // Partial Fisher–Yates: the first k entries become a
            // uniform k-subset.
            for i in 0..k {
                let j = rng.random_range(i..n);
                pool.swap(i, j);
            }
            FaultMask::from_indices(n, &pool[..k]).expect("sampled indices are distinct")
        })
        .collect()
}

/// Explores the fault space of a fleet against one target: simulates
/// every mask with at most `f` faults (or a seeded subsample when the
/// space exceeds `config.budget`) and checks the adversary-dominance
/// invariant — measured detection time `<= T_(f+1)(target)`.
///
/// Violating masks are recorded as shrunk, replayable traces in the
/// report. Runs mask simulations in parallel.
///
/// # Errors
///
/// Returns [`Error::InvalidParameters`] when `f >= n` or the fleet is
/// empty, and propagates simulation construction failures.
pub fn explore_fault_space(
    trajectories: &[PiecewiseTrajectory],
    target: Target,
    f: usize,
    config: &ExplorerConfig,
) -> Result<ExplorationReport> {
    let n = trajectories.len();
    check_adversary_budget(n, f)?;
    let bound_outcome = worst_case_outcome(trajectories.to_vec(), target, f, SimConfig::default())?;
    let bound = bound_outcome.detection.map(|d| d.time);

    let total_masks = fault_space_size(n, f);
    let (masks, subsampled) = if total_masks <= config.budget {
        (enumerate_masks(n, f), false)
    } else {
        (subsample_masks(n, f, config.budget, config.seed), true)
    };
    let tested_masks = masks.len();

    let results: Vec<Result<MaskResult>> = par_map(&masks, |mask| {
        let outcome =
            Simulation::new(trajectories.to_vec(), target, mask, SimConfig::default())?.run();
        let detection = outcome.detection.map(|d| d.time);
        let dominated = match (detection, bound) {
            (_, None) => true, // even the adversary never detects
            (None, Some(_)) => false,
            (Some(t), Some(b)) => t <= b + config.tolerance,
        };
        Ok(MaskResult { mask: mask.clone(), detection, dominated })
    });

    let mut worst_margin = f64::NEG_INFINITY;
    let mut violating: Vec<MaskResult> = Vec::new();
    for result in results {
        let result = result?;
        let margin = match (result.detection, bound) {
            (_, None) => f64::NEG_INFINITY,
            (None, Some(_)) => f64::INFINITY,
            (Some(t), Some(b)) => t - b,
        };
        worst_margin = worst_margin.max(margin);
        if !result.dominated {
            violating.push(result);
        }
    }

    let violations = violating
        .into_iter()
        .map(|result| {
            let trace = RunTrace::record(
                format!(
                    "dominance violation: mask {:?} detected at {:?}, adversarial bound {bound:?}",
                    result.mask.faulty_indices(),
                    result.detection,
                ),
                trajectories.to_vec(),
                target,
                &FaultPlan::from_mask(&result.mask),
                config.seed,
                SimConfig::default(),
                bound,
            )?;
            // A shrunk candidate still violates if its own adversarial
            // bound (recomputed for the candidate's target) is beaten.
            let tolerance = config.tolerance;
            let mut shrunk =
                trace.shrunk(|candidate| violates(candidate, f, tolerance).unwrap_or(false));
            // Restore an accurate bound for the shrunk target.
            shrunk.bound = adversarial_bound(&shrunk.trajectories, shrunk.target, f);
            Ok(shrunk)
        })
        .collect::<Result<Vec<RunTrace>>>()?;

    Ok(ExplorationReport {
        n,
        f,
        target: target.position(),
        bound,
        total_masks,
        tested_masks,
        subsampled,
        worst_margin,
        violations,
    })
}

/// The adversarial detection time `T_(f+1)(x)` for a fleet, or `None`
/// when the worst case never detects (or the inputs are degenerate).
fn adversarial_bound(trajectories: &[PiecewiseTrajectory], x: f64, f: usize) -> Option<f64> {
    let target = Target::new(x).ok()?;
    worst_case_outcome(trajectories.to_vec(), target, f, SimConfig::default())
        .ok()?
        .detection
        .map(|d| d.time)
}

/// Whether a trace's recorded outcome beats its own adversarial bound.
fn violates(trace: &RunTrace, f: usize, tolerance: f64) -> Result<bool> {
    let bound = adversarial_bound(&trace.trajectories, trace.target, f);
    let detection = trace.outcome.detection.map(|d| d.time);
    Ok(match (detection, bound) {
        (_, None) => false,
        (None, Some(_)) => true,
        (Some(t), Some(b)) => t > b + tolerance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_core::{Algorithm, Params, TrajectoryBuilder};

    fn algorithm_fleet(n: usize, f: usize, reach: f64) -> Vec<PiecewiseTrajectory> {
        let alg = Algorithm::design(Params::new(n, f).unwrap()).unwrap();
        let horizon = alg.required_horizon(reach).unwrap();
        alg.plans().iter().map(|p| p.materialize(horizon).unwrap()).collect()
    }

    #[test]
    fn fault_space_size_matches_binomials() {
        assert_eq!(fault_space_size(5, 0), 1);
        assert_eq!(fault_space_size(5, 1), 6); // 1 + 5
        assert_eq!(fault_space_size(5, 2), 16); // 1 + 5 + 10
        assert_eq!(fault_space_size(4, 4), 16); // the full power set
        assert_eq!(fault_space_size(3, 7), 8, "f is clamped to n");
    }

    #[test]
    fn enumeration_is_complete_and_duplicate_free() {
        let masks = enumerate_masks(5, 2);
        assert_eq!(masks.len(), 16);
        let mut keys: Vec<Vec<usize>> = masks.iter().map(FaultMask::faulty_indices).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 16, "no duplicates");
        assert!(masks.iter().all(|m| m.fault_count() <= 2));
        // Every 2-subset of {0..4} appears.
        assert_eq!(masks.iter().filter(|m| m.fault_count() == 2).count(), 10);
    }

    #[test]
    fn enumeration_handles_zero_faults() {
        let masks = enumerate_masks(4, 0);
        assert_eq!(masks.len(), 1);
        assert_eq!(masks[0].fault_count(), 0);
    }

    #[test]
    fn subsampling_is_deterministic_and_within_budget() {
        let a = subsample_masks(30, 3, 50, 9);
        let b = subsample_masks(30, 3, 50, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        assert!(a.iter().all(|m| m.fault_count() <= 3 && m.len() == 30));
        assert_ne!(subsample_masks(30, 3, 50, 10), a, "different seed, different sample");
    }

    #[test]
    fn dominance_holds_exhaustively_for_table1_fleet() {
        // A(4, 2): 11 masks with <= 2 faults, checked exhaustively.
        let trajectories = algorithm_fleet(4, 2, 8.0);
        for x in [1.0, -2.5, 6.0] {
            let report = explore_fault_space(
                &trajectories,
                Target::new(x).unwrap(),
                2,
                &ExplorerConfig::default(),
            )
            .unwrap();
            assert!(!report.subsampled);
            assert_eq!(report.tested_masks, report.total_masks);
            assert_eq!(report.total_masks, 11); // 1 + 4 + 6
            assert!(report.holds(), "violations at x = {x}: {:?}", report.violations);
            assert!(report.worst_margin <= 1e-9, "worst margin {}", report.worst_margin);
            assert!(report.summary().contains("all 11 masks"));
        }
    }

    #[test]
    fn budget_overflow_triggers_logged_subsampling() {
        let trajectories = algorithm_fleet(5, 2, 6.0);
        let config = ExplorerConfig { budget: 7, seed: 3, tolerance: 1e-9 };
        let report =
            explore_fault_space(&trajectories, Target::new(2.0).unwrap(), 2, &config).unwrap();
        assert!(report.subsampled);
        assert_eq!(report.tested_masks, 7);
        assert_eq!(report.total_masks, 16);
        assert!(report.summary().contains("subsample"));
        assert!(report.holds());
    }

    #[test]
    fn rejects_budget_of_all_robots() {
        let trajectories = algorithm_fleet(3, 1, 4.0);
        assert!(explore_fault_space(
            &trajectories,
            Target::new(2.0).unwrap(),
            3,
            &ExplorerConfig::default()
        )
        .is_err());
    }

    #[test]
    fn violations_are_detected_and_shrunk() {
        // Force a "violation" by lying about f: the bound is computed
        // for f = 0 (no faults) but masks with one fault are tested.
        // With one robot covering the target and the fault budget
        // spent on it, detection fails while the f = 0 bound is
        // finite. The explorer must flag it and produce a replayable,
        // shrunk trace. (This is a self-test of the detector; the real
        // invariant compares like for like and holds.)
        let right = TrajectoryBuilder::from_origin().sweep_to(9.0).finish().unwrap();
        let left = TrajectoryBuilder::from_origin().sweep_to(-9.0).finish().unwrap();
        let trajectories = vec![right, left];
        let target = Target::new(4.0).unwrap();
        let bound = adversarial_bound(&trajectories, 4.0, 0).unwrap();

        // Hand-run the violation path: mask {0} leaves the target
        // undetected, beating the f = 0 bound.
        let mask = FaultMask::from_indices(2, &[0]).unwrap();
        let outcome = Simulation::new(trajectories.clone(), target, &mask, SimConfig::default())
            .unwrap()
            .run();
        assert!(!outcome.detected());
        let trace = RunTrace::record(
            "dominance violation (self-test)",
            trajectories,
            target,
            &FaultPlan::from_mask(&mask),
            0,
            SimConfig::default(),
            Some(bound),
        )
        .unwrap();
        let shrunk = trace.shrunk(|c| violates(c, 0, 1e-9).unwrap_or(false));
        assert!(!shrunk.outcome.detected());
        assert!(shrunk.target <= 4.0);
        shrunk.verify().unwrap();
    }

    #[test]
    fn undetectable_target_gives_vacuous_dominance() {
        // Horizon too short for the far target: the adversarial bound
        // is None and every mask is vacuously dominated.
        let trajectories = algorithm_fleet(3, 1, 4.0);
        let report = explore_fault_space(
            &trajectories,
            Target::new(500.0).unwrap(),
            1,
            &ExplorerConfig::default(),
        )
        .unwrap();
        assert_eq!(report.bound, None);
        assert!(report.holds());
        assert_eq!(report.worst_margin, f64::NEG_INFINITY);
    }
}
