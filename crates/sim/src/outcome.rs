//! Results of a simulated search run.

use serde::{Deserialize, Serialize};

use crate::event::Event;
use crate::robot::RobotId;
use crate::target::Target;

/// A single robot visit to the target's position.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Visit {
    /// The visiting robot.
    pub robot: RobotId,
    /// The visit time.
    pub time: f64,
    /// Whether the visiting robot was reliable (and hence detected the
    /// target).
    pub reliable: bool,
}

/// Successful detection of the target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// The first reliable robot to stand on the target.
    pub robot: RobotId,
    /// Search time: the arrival of that robot at the target.
    pub time: f64,
}

/// A timestamped detection claim, honest or Byzantine.
///
/// Under the claim-quorum layer every detection report becomes a claim:
/// honest robots claim the true target position when their sensor
/// fires, Byzantine robots claim arbitrary positions. The engine logs
/// at most one claim per `(robot, position)` pair — repeat assertions
/// add no voting weight.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Claim {
    /// The claiming robot.
    pub robot: RobotId,
    /// When the claim was asserted.
    pub time: f64,
    /// The claimed target position.
    pub position: f64,
    /// Whether the claimed position is the true target — bookkeeping
    /// for oracles and reports; the voting layer never reads it.
    pub truthful: bool,
}

/// How a simulated search ended, derived from a [`SearchOutcome`].
///
/// A separate enum (rather than more fields on the outcome) so callers
/// can match on the verdict without destructuring options: the
/// fault-space explorer and the CLI report runs by verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchVerdict {
    /// A working sensor reported the target before the horizon.
    Detected,
    /// The horizon was exhausted without a detection — an honest
    /// failure (insufficient coverage or too many faults), not an
    /// error.
    Exhausted,
}

/// The complete outcome of a simulated search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// The simulated target.
    pub target: Target,
    /// Detection, or `None` when no reliable robot reached the target
    /// before the horizon.
    pub detection: Option<Detection>,
    /// All visits to the target position up to (and including) the
    /// detection, in time order, first visit per robot only.
    pub visits: Vec<Visit>,
    /// The simulation horizon used.
    pub horizon: f64,
    /// Event trace, present when tracing was enabled.
    pub trace: Option<Vec<Event>>,
    /// Claim log: every first claim per `(robot, position)` pair, in
    /// time order. Populated only when the run involves Byzantine
    /// robots or a claim quorum; empty otherwise, and defaulted on
    /// deserialization so pre-quorum trace documents still load.
    #[serde(default)]
    pub claims: Vec<Claim>,
    /// The position confirmed by the claim quorum, when one was
    /// configured and reached. Always the detection position; recorded
    /// separately so oracles can assert no *false* position was ever
    /// confirmed.
    #[serde(default)]
    pub confirmed_position: Option<f64>,
}

impl SearchOutcome {
    /// The achieved ratio `search time / target distance`, infinite
    /// when the target was never detected.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        match &self.detection {
            Some(d) => d.time / self.target.distance(),
            None => f64::INFINITY,
        }
    }

    /// Whether the target was detected.
    #[must_use]
    pub fn detected(&self) -> bool {
        self.detection.is_some()
    }

    /// Number of distinct robots that visited the target before (or at)
    /// detection.
    #[must_use]
    pub fn distinct_visitors(&self) -> usize {
        self.visits.len()
    }

    /// How the run ended.
    #[must_use]
    pub fn verdict(&self) -> SearchVerdict {
        if self.detection.is_some() {
            SearchVerdict::Detected
        } else {
            SearchVerdict::Exhausted
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_of_detected_outcome() {
        let outcome = SearchOutcome {
            target: Target::new(-4.0).unwrap(),
            detection: Some(Detection { robot: RobotId(1), time: 10.0 }),
            visits: vec![
                Visit { robot: RobotId(0), time: 8.0, reliable: false },
                Visit { robot: RobotId(1), time: 10.0, reliable: true },
            ],
            horizon: 100.0,
            trace: None,
            claims: vec![],
            confirmed_position: None,
        };
        assert_eq!(outcome.ratio(), 2.5);
        assert!(outcome.detected());
        assert_eq!(outcome.distinct_visitors(), 2);
    }

    #[test]
    fn undetected_outcome_has_infinite_ratio() {
        let outcome = SearchOutcome {
            target: Target::new(5.0).unwrap(),
            detection: None,
            visits: vec![],
            horizon: 10.0,
            trace: None,
            claims: vec![],
            confirmed_position: None,
        };
        assert!(outcome.ratio().is_infinite());
        assert!(!outcome.detected());
    }

    #[test]
    fn verdict_classifies_outcomes() {
        let detected = SearchOutcome {
            target: Target::new(2.0).unwrap(),
            detection: Some(Detection { robot: RobotId(0), time: 2.0 }),
            visits: vec![Visit { robot: RobotId(0), time: 2.0, reliable: true }],
            horizon: 10.0,
            trace: None,
            claims: vec![],
            confirmed_position: None,
        };
        assert_eq!(detected.verdict(), SearchVerdict::Detected);
        let exhausted = SearchOutcome { detection: None, visits: vec![], ..detected };
        assert_eq!(exhausted.verdict(), SearchVerdict::Exhausted);
    }
}
