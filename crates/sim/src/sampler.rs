//! Fixed-rate position sampling and outcome replay verification.
//!
//! [`sample_positions`] turns a fleet of trajectories into a dense
//! time series of robot positions — the raw material for animations
//! and external plotting. [`replay_check`] independently re-derives a
//! [`SearchOutcome`]'s visit list from the trajectories, guarding the
//! event engine against bookkeeping bugs.

use faultline_core::{Error, PiecewiseTrajectory, Result};
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::outcome::SearchOutcome;

/// Robot positions at one sampled instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Sample time.
    pub t: f64,
    /// Position of each robot (`None` once its trajectory has ended).
    pub positions: Vec<Option<f64>>,
}

/// Samples all robot positions on a fixed grid `0, dt, 2dt, ...` up to
/// (and including, when divisible) `until`.
///
/// # Errors
///
/// Returns [`Error::Domain`] for a non-positive `dt` or negative
/// `until`, or an empty fleet.
pub fn sample_positions(
    trajectories: &[PiecewiseTrajectory],
    dt: f64,
    until: f64,
) -> Result<Vec<Snapshot>> {
    if trajectories.is_empty() {
        return Err(Error::invalid_params(0, 0, "sampling needs at least one robot"));
    }
    if !(dt > 0.0) || !dt.is_finite() || !(until >= 0.0) {
        return Err(Error::domain(format!(
            "sampling needs dt > 0 and until >= 0, got dt = {dt}, until = {until}"
        )));
    }
    let steps = (until / dt).floor() as usize;
    let mut out = Vec::with_capacity(steps + 1);
    for k in 0..=steps {
        let t = k as f64 * dt;
        out.push(Snapshot {
            t,
            positions: trajectories.iter().map(|traj| traj.position_at(t)).collect(),
        });
    }
    Ok(out)
}

/// Samples all robot positions at `count` random instants drawn
/// uniformly from `[0, until]`, sorted by time. The draw is a pure
/// function of the explicit `seed`, so figures built from random
/// snapshots are reproducible from a single CLI-visible number (the
/// fixed-grid [`sample_positions`] has no randomness at all).
///
/// # Errors
///
/// Returns [`Error::Domain`] for `count == 0`, a non-positive or
/// non-finite `until`, or an empty fleet.
pub fn sample_positions_random(
    trajectories: &[PiecewiseTrajectory],
    count: usize,
    until: f64,
    seed: u64,
) -> Result<Vec<Snapshot>> {
    if trajectories.is_empty() {
        return Err(Error::invalid_params(0, 0, "sampling needs at least one robot"));
    }
    if count == 0 || !(until > 0.0) || !until.is_finite() {
        return Err(Error::domain(format!(
            "random sampling needs count > 0 and finite until > 0, got count = {count}, until = {until}"
        )));
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut times: Vec<f64> = (0..count).map(|_| rng.random_range(0.0..until)).collect();
    times.sort_by(f64::total_cmp);
    Ok(times
        .into_iter()
        .map(|t| Snapshot {
            t,
            positions: trajectories.iter().map(|traj| traj.position_at(t)).collect(),
        })
        .collect())
}

/// Serializes snapshots as CSV: `t,robot0,robot1,...` with empty cells
/// after a trajectory's end.
#[must_use]
pub fn snapshots_to_csv(snapshots: &[Snapshot]) -> String {
    let robots = snapshots.first().map_or(0, |s| s.positions.len());
    let mut out = String::from("t");
    for i in 0..robots {
        out.push_str(&format!(",robot{i}"));
    }
    out.push('\n');
    for s in snapshots {
        out.push_str(&format!("{}", s.t));
        for p in &s.positions {
            match p {
                Some(x) => out.push_str(&format!(",{x}")),
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

/// Re-derives the distinct-robot visit sequence of `outcome` directly
/// from the trajectories (no event queue) and checks it against the
/// engine's record. Returns the number of verified visits.
///
/// This check assumes classic crash/sensor-fault semantics (every
/// robot reports the instant it arrives, or never); outcomes produced
/// under the extended taxonomy — delayed reports or speed-degraded
/// robots — follow different timing and should be verified with
/// [`crate::trace::RunTrace::verify`] instead.
///
/// # Errors
///
/// Returns [`Error::Domain`] describing the first discrepancy found —
/// a failed replay means the simulation engine mis-ordered or dropped
/// an event.
pub fn replay_check(
    trajectories: &[PiecewiseTrajectory],
    outcome: &SearchOutcome,
) -> Result<usize> {
    let x = outcome.target.position();
    let mut arrivals: Vec<(usize, f64)> = trajectories
        .iter()
        .enumerate()
        .filter_map(|(i, t)| t.first_visit(x).map(|time| (i, time)))
        .collect();
    arrivals.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));

    for (idx, visit) in outcome.visits.iter().enumerate() {
        let Some(&(robot, time)) = arrivals.get(idx) else {
            return Err(Error::domain(format!(
                "replay: engine recorded visit #{idx} but only {} robots reach the target",
                arrivals.len()
            )));
        };
        if robot != visit.robot.0 {
            return Err(Error::domain(format!(
                "replay: visit #{idx} should be robot a{robot}, engine says a{}",
                visit.robot.0
            )));
        }
        if (time - visit.time).abs() > 1e-9 * time.max(1.0) {
            return Err(Error::domain(format!(
                "replay: visit #{idx} at t = {time}, engine says {}",
                visit.time
            )));
        }
    }
    if let Some(detection) = &outcome.detection {
        let last = outcome.visits.last().ok_or_else(|| {
            Error::domain("replay: detection recorded without any visit".to_owned())
        })?;
        if !last.reliable || last.robot != detection.robot || last.time != detection.time {
            return Err(Error::domain(
                "replay: detection does not match the final recorded visit".to_owned(),
            ));
        }
    }
    Ok(outcome.visits.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimConfig, Simulation};
    use crate::fault::FaultMask;
    use crate::target::Target;
    use faultline_core::{Algorithm, Params, TrajectoryBuilder};

    #[test]
    fn sampling_validates_inputs() {
        let t = TrajectoryBuilder::from_origin().sweep_to(2.0).finish().unwrap();
        assert!(sample_positions(&[], 0.1, 1.0).is_err());
        assert!(sample_positions(std::slice::from_ref(&t), 0.0, 1.0).is_err());
        assert!(sample_positions(&[t], 0.1, -1.0).is_err());
    }

    #[test]
    fn sampling_grid_and_end_of_life() {
        let t = TrajectoryBuilder::from_origin().sweep_to(2.0).finish().unwrap();
        let snaps = sample_positions(&[t], 0.5, 3.0).unwrap();
        assert_eq!(snaps.len(), 7);
        assert_eq!(snaps[2].positions[0], Some(1.0));
        assert_eq!(snaps[4].positions[0], Some(2.0));
        // Past the trajectory's horizon the robot reports None.
        assert_eq!(snaps[5].positions[0], None);
    }

    #[test]
    fn random_sampling_is_seed_deterministic() {
        let t = TrajectoryBuilder::from_origin().sweep_to(3.0).finish().unwrap();
        let a = sample_positions_random(std::slice::from_ref(&t), 16, 3.0, 42).unwrap();
        let b = sample_positions_random(std::slice::from_ref(&t), 16, 3.0, 42).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        // Times come out sorted and inside the window.
        assert!(a.windows(2).all(|w| w[0].t <= w[1].t));
        assert!(a.iter().all(|s| (0.0..3.0).contains(&s.t)));
        let c = sample_positions_random(std::slice::from_ref(&t), 16, 3.0, 43).unwrap();
        assert_ne!(a, c, "different seeds draw different instants");
    }

    #[test]
    fn random_sampling_validates_inputs() {
        let t = TrajectoryBuilder::from_origin().sweep_to(2.0).finish().unwrap();
        assert!(sample_positions_random(&[], 4, 1.0, 0).is_err());
        assert!(sample_positions_random(std::slice::from_ref(&t), 0, 1.0, 0).is_err());
        assert!(sample_positions_random(std::slice::from_ref(&t), 4, 0.0, 0).is_err());
        assert!(sample_positions_random(std::slice::from_ref(&t), 4, f64::INFINITY, 0).is_err());
    }

    #[test]
    fn csv_export_shape() {
        let a = TrajectoryBuilder::from_origin().sweep_to(1.0).finish().unwrap();
        let b = TrajectoryBuilder::from_origin().sweep_to(-2.0).finish().unwrap();
        let snaps = sample_positions(&[a, b], 1.0, 2.0).unwrap();
        let csv = snapshots_to_csv(&snaps);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("t,robot0,robot1"));
        assert_eq!(lines.next(), Some("0,0,0"));
        assert_eq!(lines.next(), Some("1,1,-1"));
        // Robot 0 ended at t = 1: empty cell afterwards.
        assert_eq!(lines.next(), Some("2,,-2"));
    }

    #[test]
    fn replay_confirms_engine_outcomes() {
        let params = Params::new(3, 1).unwrap();
        let alg = Algorithm::design(params).unwrap();
        let horizon = alg.required_horizon(9.0).unwrap();
        let trajectories: Vec<_> =
            alg.plans().iter().map(|p| p.materialize(horizon).unwrap()).collect();
        for target in [2.0, -5.5, 8.3] {
            let outcome = crate::adversary::worst_case_outcome(
                trajectories.clone(),
                Target::new(target).unwrap(),
                1,
                SimConfig::default(),
            )
            .unwrap();
            let verified = replay_check(&trajectories, &outcome).unwrap();
            assert_eq!(verified, outcome.visits.len());
            assert!(verified >= 2);
        }
    }

    #[test]
    fn replay_detects_tampering() {
        let t = TrajectoryBuilder::from_origin().sweep_to(5.0).finish().unwrap();
        let mask = FaultMask::all_reliable(1);
        let mut outcome = Simulation::new(
            vec![t.clone()],
            Target::new(3.0).unwrap(),
            &mask,
            SimConfig::default(),
        )
        .unwrap()
        .run();
        // Corrupt the recorded visit time.
        outcome.visits[0].time += 1.0;
        outcome.detection = outcome.detection.map(|mut d| {
            d.time += 1.0;
            d
        });
        assert!(replay_check(std::slice::from_ref(&t), &outcome).is_err());
    }
}
