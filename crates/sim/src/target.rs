//! Target placement.

use faultline_core::{Error, Result};
use serde::{Deserialize, Serialize};

/// A target placed on the line at distance at least 1 from the origin
/// (the paper's standing assumption, Definition 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Target {
    position: f64,
}

impl Target {
    /// Places the target at `position`, `|position| >= 1`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] when `|position| < 1` or non-finite.
    pub fn new(position: f64) -> Result<Self> {
        if !position.is_finite() || position.abs() < 1.0 {
            return Err(Error::domain(format!(
                "target must be at finite distance >= 1 from the origin, got {position}"
            )));
        }
        Ok(Target { position })
    }

    /// The target's position on the line.
    #[must_use]
    pub fn position(&self) -> f64 {
        self.position
    }

    /// The target's distance from the origin.
    #[must_use]
    pub fn distance(&self) -> f64 {
        self.position.abs()
    }
}

impl std::fmt::Display for Target {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(fmt, "target@{}", self.position)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_both_sides() {
        assert_eq!(Target::new(2.5).unwrap().position(), 2.5);
        assert_eq!(Target::new(-7.0).unwrap().distance(), 7.0);
        assert_eq!(Target::new(1.0).unwrap().distance(), 1.0);
    }

    #[test]
    fn rejects_too_close_or_invalid() {
        assert!(Target::new(0.0).is_err());
        assert!(Target::new(0.5).is_err());
        assert!(Target::new(-0.99).is_err());
        assert!(Target::new(f64::NAN).is_err());
        assert!(Target::new(f64::INFINITY).is_err());
    }

    #[test]
    fn display() {
        assert_eq!(Target::new(-2.0).unwrap().to_string(), "target@-2");
    }
}
