//! The worst-case fault adversary.
//!
//! The paper's adversary may declare any `f` robots faulty; since a
//! target is confirmed by the first reliable visitor, the worst choice
//! is always "the first `f` distinct robots to reach the target". The
//! resulting search time is exactly `T_(f+1)(x)` of Definition 3.

use faultline_core::{Error, PiecewiseTrajectory, Result, TrajectoryPlan};

use crate::engine::{SimConfig, Simulation};
use crate::fault::{check_adversary_budget, FaultMask};
use crate::outcome::SearchOutcome;
use crate::target::Target;

/// Computes the worst-case fault mask for a fleet against a target:
/// the first `f` distinct robots to visit the target are faulty.
///
/// Robots that never reach the target within their horizon are never
/// wasted as faults (declaring them faulty would not delay detection).
///
/// # Errors
///
/// Returns [`Error::InvalidParameters`] when `f >=` fleet size.
pub fn worst_case_mask(
    trajectories: &[PiecewiseTrajectory],
    target: Target,
    f: usize,
) -> Result<FaultMask> {
    check_adversary_budget(trajectories.len(), f)?;
    let mut arrivals: Vec<(usize, f64)> = trajectories
        .iter()
        .enumerate()
        .filter_map(|(i, t)| t.first_visit(target.position()).map(|time| (i, time)))
        .collect();
    arrivals.sort_by(|a, b| a.1.total_cmp(&b.1));
    let faulty: Vec<usize> = arrivals.into_iter().take(f).map(|(i, _)| i).collect();
    FaultMask::from_indices(trajectories.len(), &faulty)
}

/// Runs the search against the worst-case adversary with `f` faults
/// and returns the outcome. The detection time (if any) equals
/// `T_(f+1)(target)`.
///
/// # Errors
///
/// Propagates mask and simulation construction failures.
pub fn worst_case_outcome(
    trajectories: Vec<PiecewiseTrajectory>,
    target: Target,
    f: usize,
    config: SimConfig,
) -> Result<SearchOutcome> {
    let mask = worst_case_mask(&trajectories, target, f)?;
    Ok(Simulation::new(trajectories, target, &mask, config)?.run())
}

/// Measures the empirical competitive ratio of a set of plans against
/// the worst-case adversary over the given target positions: the
/// maximum, over targets, of `T_(f+1)(x) / |x|`.
///
/// Returns infinity when some target is never confirmed within
/// `horizon` — incomplete coverage is an honest failure, not a skipped
/// sample.
///
/// # Errors
///
/// Propagates materialization and simulation failures; rejects an empty
/// target list.
pub fn empirical_competitive_ratio(
    plans: &[Box<dyn TrajectoryPlan>],
    f: usize,
    targets: &[f64],
    horizon: f64,
) -> Result<EmpiricalCr> {
    if targets.is_empty() {
        return Err(Error::domain("empirical CR needs at least one target"));
    }
    let trajectories: Vec<PiecewiseTrajectory> =
        plans.iter().map(|p| p.materialize(horizon)).collect::<Result<_>>()?;
    let mut worst = EmpiricalCr { ratio: 0.0, argmax: targets[0], undetected: 0 };
    for &x in targets {
        let outcome =
            worst_case_outcome(trajectories.clone(), Target::new(x)?, f, SimConfig::default())?;
        let ratio = outcome.ratio();
        if ratio.is_infinite() {
            worst.undetected += 1;
        }
        if ratio > worst.ratio {
            worst.ratio = ratio;
            worst.argmax = x;
        }
    }
    Ok(worst)
}

/// Result of an empirical competitive-ratio measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmpiricalCr {
    /// Largest observed ratio.
    pub ratio: f64,
    /// Target achieving it.
    pub argmax: f64,
    /// Number of targets never detected within the horizon.
    pub undetected: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_core::coverage::Fleet;
    use faultline_core::{Algorithm, Params, TrajectoryBuilder};

    #[test]
    fn worst_case_marks_earliest_visitors() {
        // Robot 0 arrives at t = 2, robot 1 at t = 4, robot 2 at t = 6;
        // all trajectories run to t >= 8 so the common horizon covers
        // every visit.
        let t0 = TrajectoryBuilder::from_origin().sweep_to(8.0).finish().unwrap();
        let t1 = TrajectoryBuilder::from_origin().sweep_to(-1.0).sweep_to(8.0).finish().unwrap();
        let t2 = TrajectoryBuilder::from_origin().sweep_to(-2.0).sweep_to(8.0).finish().unwrap();
        let target = Target::new(2.0).unwrap();
        let mask = worst_case_mask(&[t0.clone(), t1.clone(), t2.clone()], target, 2).unwrap();
        assert_eq!(mask.faulty_indices(), vec![0, 1]);

        let outcome =
            worst_case_outcome(vec![t0, t1, t2], target, 2, SimConfig::default()).unwrap();
        // Detection by robot 2 at t = 2 + 2 + 2 = ... robot 2 path:
        // 0 -> -2 (t = 2) -> +4; reaches +2 at t = 2 + 4 = 6.
        assert_eq!(outcome.detection.unwrap().time, 6.0);
        assert_eq!(outcome.ratio(), 3.0);
    }

    #[test]
    fn adversary_cannot_waste_faults_on_absent_robots() {
        // Robot 1 never reaches the target; the adversary must burn its
        // single fault on robot 0.
        let t0 = TrajectoryBuilder::from_origin().sweep_to(4.0).finish().unwrap();
        let t1 = TrajectoryBuilder::from_origin().sweep_to(-4.0).finish().unwrap();
        let mask = worst_case_mask(&[t0, t1], Target::new(2.0).unwrap(), 1).unwrap();
        assert_eq!(mask.faulty_indices(), vec![0]);
    }

    #[test]
    fn rejects_too_many_faults() {
        let t0 = TrajectoryBuilder::from_origin().sweep_to(4.0).finish().unwrap();
        assert!(worst_case_mask(&[t0], Target::new(2.0).unwrap(), 1).is_err());
    }

    #[test]
    fn worst_case_detection_equals_t_fplus1() {
        // The simulator's worst-case detection time must agree with the
        // analytic coverage computation, for the real algorithm A(3, 1).
        let params = Params::new(3, 1).unwrap();
        let alg = Algorithm::design(params).unwrap();
        let horizon = alg.required_horizon(12.0).unwrap();
        let plans = alg.plans();
        let trajectories: Vec<PiecewiseTrajectory> =
            plans.iter().map(|p| p.materialize(horizon).unwrap()).collect();
        let fleet = Fleet::new(trajectories.clone()).unwrap();
        for x in [1.0, -1.5, 2.5, 7.0, -11.0] {
            let outcome = worst_case_outcome(
                trajectories.clone(),
                Target::new(x).unwrap(),
                1,
                SimConfig::default(),
            )
            .unwrap();
            let analytic = fleet.visit_time(x, 2).unwrap();
            let simulated = outcome.detection.unwrap().time;
            assert!(
                (analytic - simulated).abs() < 1e-9,
                "x = {x}: sim {simulated} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn empirical_cr_of_two_group_is_one() {
        let alg = Algorithm::design(Params::new(4, 1).unwrap()).unwrap();
        let plans = alg.plans();
        let result = empirical_competitive_ratio(&plans, 1, &[1.0, -2.0, 5.0, -9.5], 20.0).unwrap();
        assert!((result.ratio - 1.0).abs() < 1e-12);
        assert_eq!(result.undetected, 0);
    }

    #[test]
    fn empirical_cr_flags_uncovered_targets() {
        let alg = Algorithm::design(Params::new(3, 1).unwrap()).unwrap();
        let plans = alg.plans();
        // Tiny horizon: far targets cannot be confirmed.
        let result = empirical_competitive_ratio(&plans, 1, &[50.0], 10.0).unwrap();
        assert!(result.ratio.is_infinite());
        assert_eq!(result.undetected, 1);
    }

    #[test]
    fn empirical_cr_requires_targets() {
        let alg = Algorithm::design(Params::new(3, 1).unwrap()).unwrap();
        assert!(empirical_competitive_ratio(&alg.plans(), 1, &[], 10.0).is_err());
    }
}
