//! Expected-cost analysis of probabilistically faulty fleets.
//!
//! When every robot is [`FaultKind::PFaulty`] with the same per-visit
//! detection probability `p`, the run's cost is a random variable over
//! the seeded coins. This module computes its expectation two ways:
//!
//! * [`expected_outcome`] — an exact closed form. Merge all robots'
//!   visits to the target in time order `t_1 <= ... <= t_m`; the coins
//!   are independent across `(robot, visit)` pairs, so detection
//!   happens at the `j`-th merged visit with probability
//!   `p (1 - p)^(j-1)`, and with probability `(1 - p)^m` the run
//!   exhausts the horizon. The expected (horizon-truncated) search time
//!   is the corresponding geometric sum.
//! * [`monte_carlo_expected_ratio`] — a Monte-Carlo estimate over the
//!   engine's deterministic per-`(seed, robot, visit)` coins, one
//!   derived seed per sample. This exercises the *actual* simulator and
//!   cross-checks the closed form.
//!
//! Both truncate undetected runs at the horizon, so the expectation is
//! always finite and, by a shared-coins coupling, exactly monotone
//! non-increasing in `p`: raising `p` only turns misses into
//! detections, which can never delay the (truncated) detection time.

use faultline_core::{par_map, Error, PiecewiseTrajectory, Result};

use crate::engine::{SimConfig, Simulation};
use crate::fault::{FaultKind, FaultPlan};
use crate::target::Target;

/// The exact expectation of an all-p-faulty run against one target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PFaultyExpectation {
    /// Probability that some visit detects before the horizon:
    /// `1 - (1 - p)^m` over the `m` in-horizon visits.
    pub detection_probability: f64,
    /// Expected horizon-truncated search time
    /// `E[min(T_detect, horizon)]`.
    pub expected_time: f64,
    /// Expected normalized cost `expected_time / |x|` — the expected
    /// competitive ratio with undetected runs truncated at the horizon.
    pub expected_ratio: f64,
    /// Number of in-horizon visits the fleet pays the target.
    pub visits: usize,
}

/// Computes the exact expected outcome of the fleet searching for
/// `target` when every robot's sensor fires independently with
/// probability `detect_probability` per visit.
///
/// # Errors
///
/// Returns [`Error::Domain`] for an out-of-range probability or a
/// non-positive fleet horizon, [`Error::NonFinite`] for non-finite
/// inputs, and [`Error::InvalidParameters`] for an empty fleet.
pub fn expected_outcome(
    trajectories: &[PiecewiseTrajectory],
    target: Target,
    detect_probability: f64,
) -> Result<PFaultyExpectation> {
    FaultKind::PFaulty { detect_probability }.validate()?;
    if trajectories.is_empty() {
        return Err(Error::invalid_params(0, 0, "expected-cost analysis needs at least one robot"));
    }
    let horizon =
        trajectories.iter().map(PiecewiseTrajectory::horizon).fold(f64::INFINITY, f64::min);
    let horizon = Error::ensure_finite("fleet horizon", horizon)?;
    if !(horizon > 0.0) {
        return Err(Error::domain(format!(
            "fleet horizon must be strictly positive, got {horizon}"
        )));
    }
    let x = target.position();
    let mut times: Vec<f64> =
        trajectories.iter().flat_map(|t| t.visits(x)).filter(|&t| t <= horizon).collect();
    times.sort_by(f64::total_cmp);

    let p = detect_probability;
    let mut surviving = 1.0; // probability no earlier visit detected
    let mut expected_time = 0.0;
    for &t in &times {
        expected_time += t * p * surviving;
        surviving *= 1.0 - p;
    }
    expected_time += horizon * surviving;

    Ok(PFaultyExpectation {
        detection_probability: 1.0 - surviving,
        expected_time,
        expected_ratio: expected_time / target.distance(),
        visits: times.len(),
    })
}

/// Derives a per-sample seed from the sweep seed (splitmix64).
fn sample_seed(seed: u64, sample: u64) -> u64 {
    let mut z = seed.wrapping_add(sample.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Estimates the expected horizon-truncated ratio by running the
/// simulator `samples` times with derived seeds (all robots
/// [`FaultKind::PFaulty`] with the given probability).
///
/// Deterministic in `seed`, independent of thread count: samples run in
/// parallel but are averaged in index order.
///
/// # Errors
///
/// Returns [`Error::Domain`] when `samples` is zero or the probability
/// is out of range, and propagates simulation construction failures.
pub fn monte_carlo_expected_ratio(
    trajectories: &[PiecewiseTrajectory],
    target: Target,
    detect_probability: f64,
    samples: usize,
    seed: u64,
) -> Result<f64> {
    FaultKind::PFaulty { detect_probability }.validate()?;
    if samples == 0 {
        return Err(Error::domain("Monte-Carlo estimation needs at least one sample"));
    }
    let plan = FaultPlan::new(vec![FaultKind::PFaulty { detect_probability }; trajectories.len()])?;
    let indices: Vec<u64> = (0..samples as u64).collect();
    let ratios: Vec<Result<f64>> = par_map(&indices, |&s| {
        let sim = Simulation::with_faults(
            trajectories.to_vec(),
            target,
            &plan,
            sample_seed(seed, s),
            SimConfig::default(),
        )?;
        let horizon = sim.horizon();
        let outcome = sim.run();
        let time = outcome.detection.map_or(horizon, |d| d.time);
        Ok(time / target.distance())
    });
    let mut sum = 0.0;
    for r in ratios {
        sum += r?;
    }
    Ok(sum / samples as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_core::TrajectoryBuilder;

    fn straight(to: f64) -> PiecewiseTrajectory {
        TrajectoryBuilder::from_origin().sweep_to(to).finish().unwrap()
    }

    #[test]
    fn single_robot_closed_form_by_hand() {
        // One robot sweeping to 9 visits x = 3 once at t = 3; the
        // horizon is 9. E = 3p + 9(1 - p).
        let e = expected_outcome(&[straight(9.0)], Target::new(3.0).unwrap(), 0.5).unwrap();
        assert_eq!(e.visits, 1);
        assert!((e.expected_time - (3.0 * 0.5 + 9.0 * 0.5)).abs() < 1e-12);
        assert!((e.expected_ratio - 2.0).abs() < 1e-12);
        assert!((e.detection_probability - 0.5).abs() < 1e-12);
    }

    #[test]
    fn endpoints_match_the_deterministic_regimes() {
        let trajs = [straight(9.0), straight(9.0)];
        let target = Target::new(3.0).unwrap();
        // p = 1: detection at the first visit, surely.
        let certain = expected_outcome(&trajs, target, 1.0).unwrap();
        assert_eq!(certain.expected_time, 3.0);
        assert_eq!(certain.detection_probability, 1.0);
        // p = 0: never detected, cost truncates at the horizon.
        let never = expected_outcome(&trajs, target, 0.0).unwrap();
        assert_eq!(never.expected_time, 9.0);
        assert_eq!(never.detection_probability, 0.0);
    }

    #[test]
    fn expectation_is_monotone_in_p() {
        // Two robots with revisits: a non-trivial merged visit list.
        let weave = TrajectoryBuilder::from_origin()
            .sweep_to(2.0)
            .sweep_to(0.5)
            .sweep_to(9.0)
            .finish()
            .unwrap();
        let trajs = [weave, straight(9.0)];
        let target = Target::new(1.0).unwrap();
        let ladder: Vec<f64> = (0..=10)
            .map(|i| expected_outcome(&trajs, target, f64::from(i) / 10.0).unwrap().expected_ratio)
            .collect();
        for pair in ladder.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-12, "expected ratio increased: {pair:?}");
        }
    }

    #[test]
    fn monte_carlo_converges_to_the_closed_form() {
        let trajs = [straight(9.0), straight(9.0), straight(-9.0)];
        let target = Target::new(3.0).unwrap();
        let exact = expected_outcome(&trajs, target, 0.4).unwrap().expected_ratio;
        let mc = monte_carlo_expected_ratio(&trajs, target, 0.4, 4000, 11).unwrap();
        assert!((mc - exact).abs() <= 0.05 * exact, "Monte-Carlo {mc} vs closed form {exact}");
    }

    #[test]
    fn monte_carlo_is_monotone_under_shared_coins() {
        // The estimator reuses the same per-(seed, robot, visit) coins
        // for every p, so monotonicity holds exactly, not just in the
        // limit.
        let trajs = [straight(9.0), straight(9.0)];
        let target = Target::new(3.0).unwrap();
        let at = |p| monte_carlo_expected_ratio(&trajs, target, p, 200, 5).unwrap();
        let ladder: Vec<f64> = [0.0, 0.25, 0.5, 0.75, 1.0].iter().map(|&p| at(p)).collect();
        for pair in ladder.windows(2) {
            assert!(pair[1] <= pair[0], "shared-coin monotonicity broke: {pair:?}");
        }
    }

    #[test]
    fn monte_carlo_is_deterministic_in_the_seed() {
        let trajs = [straight(9.0)];
        let target = Target::new(3.0).unwrap();
        let a = monte_carlo_expected_ratio(&trajs, target, 0.5, 64, 9).unwrap();
        let b = monte_carlo_expected_ratio(&trajs, target, 0.5, 64, 9).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn invalid_inputs_are_typed_errors() {
        let target = Target::new(3.0).unwrap();
        assert!(expected_outcome(&[], target, 0.5).is_err());
        assert!(expected_outcome(&[straight(9.0)], target, 1.5).is_err());
        assert!(expected_outcome(&[straight(9.0)], target, f64::NAN).is_err());
        assert!(monte_carlo_expected_ratio(&[straight(9.0)], target, 0.5, 0, 1).is_err());
        assert!(monte_carlo_expected_ratio(&[straight(9.0)], target, -0.5, 10, 1).is_err());
    }
}
