//! Monte-Carlo experiments: random target placement and random fault
//! assignment, with summary statistics.
//!
//! The paper analyzes the worst case; these experiments quantify how
//! much slack typical (random) instances leave relative to the
//! worst-case competitive ratio.

use faultline_core::{Error, PiecewiseTrajectory, Result, TrajectoryPlan};
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::engine::{SimConfig, Simulation};
use crate::fault::FaultModel;
use crate::target::Target;

/// Configuration of a Monte-Carlo sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloConfig {
    /// Number of simulated searches.
    pub samples: usize,
    /// Targets are drawn log-uniformly from `[1, xmax]`, with a random
    /// sign.
    pub xmax: f64,
}

impl MonteCarloConfig {
    /// Creates a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] for `samples == 0` or `xmax <= 1`.
    pub fn new(samples: usize, xmax: f64) -> Result<Self> {
        if samples == 0 {
            return Err(Error::domain("Monte-Carlo sweep needs at least one sample"));
        }
        if !(xmax > 1.0) {
            return Err(Error::domain(format!("xmax must exceed 1, got {xmax}")));
        }
        Ok(MonteCarloConfig { samples, xmax })
    }
}

/// Summary statistics over the sampled ratios.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatioStats {
    /// Number of samples (detected runs only).
    pub detected: usize,
    /// Number of runs where the target was never detected.
    pub undetected: usize,
    /// Mean ratio over detected runs.
    pub mean: f64,
    /// Maximum ratio over detected runs.
    pub max: f64,
    /// Median ratio.
    pub p50: f64,
    /// 95th-percentile ratio.
    pub p95: f64,
}

impl RatioStats {
    /// Computes statistics from raw ratios (infinite entries count as
    /// undetected).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] when every sample is undetected.
    pub fn from_ratios(ratios: &[f64]) -> Result<Self> {
        let mut finite: Vec<f64> = ratios.iter().copied().filter(|r| r.is_finite()).collect();
        let undetected = ratios.len() - finite.len();
        if finite.is_empty() {
            return Err(Error::domain("no detected runs: cannot summarize ratios"));
        }
        finite.sort_by(f64::total_cmp);
        let sum: f64 = finite.iter().sum();
        let quantile = |q: f64| -> f64 {
            let idx = ((finite.len() - 1) as f64 * q).round() as usize;
            finite[idx]
        };
        Ok(RatioStats {
            detected: finite.len(),
            undetected,
            mean: sum / finite.len() as f64,
            max: *finite.last().expect("non-empty"),
            p50: quantile(0.5),
            p95: quantile(0.95),
        })
    }
}

/// Runs a Monte-Carlo sweep and returns the raw achieved ratios, one
/// per sample: for each sample, draws a random target (log-uniform
/// magnitude in `[1, xmax]`, random side) and a fault mask from
/// `faults`, and simulates the search.
///
/// # Errors
///
/// Propagates materialization and simulation errors.
pub fn run_sweep_ratios<R: Rng>(
    plans: &[Box<dyn TrajectoryPlan>],
    faults: &mut dyn FaultModel,
    config: MonteCarloConfig,
    horizon: f64,
    rng: &mut R,
) -> Result<Vec<f64>> {
    let trajectories: Vec<PiecewiseTrajectory> =
        plans.iter().map(|p| p.materialize(horizon)).collect::<Result<_>>()?;
    // Every sample's target and fault mask is drawn serially first, in
    // the exact order the historical serial loop used, so a given RNG
    // stream produces identical draws. The simulations themselves are
    // deterministic and run on the work-stealing engine.
    let mut draws = Vec::with_capacity(config.samples);
    for _ in 0..config.samples {
        let magnitude = (rng.random_range(0.0..config.xmax.ln())).exp();
        let side = if rng.random_bool(0.5) { 1.0 } else { -1.0 };
        let target = Target::new(side * magnitude.max(1.0))?;
        let mask = faults.assign(trajectories.len());
        draws.push((target, mask));
    }
    faultline_core::par_map(&draws, |(target, mask)| {
        Ok(Simulation::new(trajectories.clone(), *target, mask, SimConfig::default())?
            .run()
            .ratio())
    })
    .into_iter()
    .collect()
}

/// Runs a Monte-Carlo sweep and summarizes the achieved ratios (see
/// [`run_sweep_ratios`] for the sampling scheme).
///
/// # Errors
///
/// Propagates materialization and simulation errors.
pub fn run_sweep<R: Rng>(
    plans: &[Box<dyn TrajectoryPlan>],
    faults: &mut dyn FaultModel,
    config: MonteCarloConfig,
    horizon: f64,
    rng: &mut R,
) -> Result<RatioStats> {
    RatioStats::from_ratios(&run_sweep_ratios(plans, faults, config, horizon, rng)?)
}

/// [`run_sweep_ratios`] with the target stream seeded explicitly: the
/// same `seed` always draws the same targets, making Monte-Carlo
/// figures reproducible from a single CLI-visible number. (The fault
/// model carries its own seed — construct it from one.)
///
/// # Errors
///
/// Propagates materialization and simulation errors.
pub fn run_sweep_ratios_seeded(
    plans: &[Box<dyn TrajectoryPlan>],
    faults: &mut dyn FaultModel,
    config: MonteCarloConfig,
    horizon: f64,
    seed: u64,
) -> Result<Vec<f64>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    run_sweep_ratios(plans, faults, config, horizon, &mut rng)
}

/// [`run_sweep`] with the target stream seeded explicitly — see
/// [`run_sweep_ratios_seeded`].
///
/// # Errors
///
/// Propagates materialization and simulation errors.
pub fn run_sweep_seeded(
    plans: &[Box<dyn TrajectoryPlan>],
    faults: &mut dyn FaultModel,
    config: MonteCarloConfig,
    horizon: f64,
    seed: u64,
) -> Result<RatioStats> {
    RatioStats::from_ratios(&run_sweep_ratios_seeded(plans, faults, config, horizon, seed)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{BernoulliFaults, FixedFaults};
    use faultline_core::{Algorithm, Params};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stats_from_ratios() {
        let stats = RatioStats::from_ratios(&[1.0, 2.0, 3.0, f64::INFINITY]).unwrap();
        assert_eq!(stats.detected, 3);
        assert_eq!(stats.undetected, 1);
        assert_eq!(stats.mean, 2.0);
        assert_eq!(stats.max, 3.0);
        assert_eq!(stats.p50, 2.0);
    }

    #[test]
    fn stats_reject_all_undetected() {
        assert!(RatioStats::from_ratios(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn config_validation() {
        assert!(MonteCarloConfig::new(0, 10.0).is_err());
        assert!(MonteCarloConfig::new(5, 1.0).is_err());
        assert!(MonteCarloConfig::new(5, 10.0).is_ok());
    }

    #[test]
    fn random_faults_never_beat_worst_case_cr() {
        // Monte-Carlo ratios with random faults stay below the analytic
        // worst-case competitive ratio of A(3, 1).
        let params = Params::new(3, 1).unwrap();
        let alg = Algorithm::design(params).unwrap();
        let horizon = alg.required_horizon(11.0).unwrap();
        let plans = alg.plans();
        let mut faults = BernoulliFaults::new(0.4, params.f(), StdRng::seed_from_u64(1)).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let config = MonteCarloConfig::new(200, 10.0).unwrap();
        let stats = run_sweep(&plans, &mut faults, config, horizon, &mut rng).unwrap();
        assert_eq!(stats.undetected, 0);
        assert!(stats.max <= alg.analytic_cr() + 1e-9, "max = {}", stats.max);
        assert!(stats.mean >= 1.0);
        assert!(stats.p95 >= stats.p50);
    }

    #[test]
    fn seeded_sweep_matches_explicit_rng() {
        let alg = Algorithm::design(Params::new(3, 1).unwrap()).unwrap();
        let horizon = alg.required_horizon(11.0).unwrap();
        let plans = alg.plans();
        let config = MonteCarloConfig::new(40, 10.0).unwrap();
        let mut faults = FixedFaults::new(vec![0]);
        let seeded = run_sweep_ratios_seeded(&plans, &mut faults, config, horizon, 7).unwrap();
        let mut faults = FixedFaults::new(vec![0]);
        let mut rng = StdRng::seed_from_u64(7);
        let explicit = run_sweep_ratios(&plans, &mut faults, config, horizon, &mut rng).unwrap();
        assert_eq!(seeded, explicit);
    }

    #[test]
    fn sweep_is_reproducible() {
        let alg = Algorithm::design(Params::new(3, 1).unwrap()).unwrap();
        let horizon = alg.required_horizon(11.0).unwrap();
        let plans = alg.plans();
        let config = MonteCarloConfig::new(50, 10.0).unwrap();
        let run = |seed: u64| {
            let mut faults = FixedFaults::new(vec![0]);
            let mut rng = StdRng::seed_from_u64(seed);
            run_sweep(&plans, &mut faults, config, horizon, &mut rng).unwrap()
        };
        assert_eq!(run(9), run(9));
    }
}
