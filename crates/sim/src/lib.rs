//! # faultline-sim
//!
//! A discrete-event simulator for parallel search on a line with faulty
//! robots.
//!
//! The paper is pure theory; this crate is the executable substrate
//! that *runs* searches instead of evaluating closed forms, providing
//! an independent validation path for every analytic claim in
//! [`faultline_core`]:
//!
//! * [`engine::Simulation`] — event-driven execution of a fleet of
//!   trajectories against a target with an explicit fault mask; events
//!   are turning points and target visits, detection fires on the first
//!   reliable visit.
//! * [`fault`] — fault assignment models: fixed sets, Bernoulli random
//!   faults, and (via [`adversary`]) the paper's worst-case adversary.
//! * [`adversary`] — the worst-case fault choice (earliest `f` visitors
//!   of the target) and empirical competitive-ratio measurement.
//! * [`montecarlo`] — random target/fault sweeps with summary
//!   statistics.
//!
//! ## Example
//!
//! ```
//! use faultline_core::{Algorithm, Params};
//! use faultline_sim::adversary::worst_case_outcome;
//! use faultline_sim::engine::SimConfig;
//! use faultline_sim::target::Target;
//!
//! let params = Params::new(3, 1)?;
//! let algorithm = Algorithm::design(params)?;
//! let horizon = algorithm.required_horizon(10.0)?;
//! let trajectories = algorithm
//!     .plans()
//!     .iter()
//!     .map(|p| p.materialize(horizon))
//!     .collect::<Result<Vec<_>, _>>()?;
//!
//! let outcome = worst_case_outcome(
//!     trajectories,
//!     Target::new(-4.0)?,
//!     params.f(),
//!     SimConfig::default(),
//! )?;
//! assert!(outcome.detected());
//! assert!(outcome.ratio() <= algorithm.analytic_cr() + 1e-9);
//! # Ok::<(), faultline_core::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// `!(x > limit)` deliberately rejects NaN where `x <= limit` would not.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod adversary;
pub mod crash;
pub mod engine;
pub mod event;
pub mod explorer;
pub mod fault;
pub mod montecarlo;
pub mod outcome;
pub mod pfaulty;
pub mod robot;
pub mod sampler;
pub mod target;
pub mod trace;

pub use adversary::{empirical_competitive_ratio, worst_case_mask, worst_case_outcome};
pub use crash::{worst_case_crashes, CrashPlan};
pub use engine::{QuorumConfig, SimConfig, Simulation};
pub use event::{Event, EventKind};
pub use explorer::{explore_fault_space, ExplorationReport, ExplorerConfig, MaskResult};
pub use fault::{
    check_adversary_budget, BernoulliFaults, FaultKind, FaultMask, FaultModel, FaultPlan,
    FixedFaults,
};
pub use montecarlo::{
    run_sweep, run_sweep_ratios, run_sweep_ratios_seeded, run_sweep_seeded, MonteCarloConfig,
    RatioStats,
};
pub use outcome::{Claim, Detection, SearchOutcome, SearchVerdict, Visit};
pub use pfaulty::{expected_outcome, monte_carlo_expected_ratio, PFaultyExpectation};
pub use robot::{Reliability, Robot, RobotId};
pub use sampler::{
    replay_check, sample_positions, sample_positions_random, snapshots_to_csv, Snapshot,
};
pub use target::Target;
pub use trace::RunTrace;
