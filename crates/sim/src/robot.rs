//! Robot identities and per-robot simulation state.

use faultline_core::PiecewiseTrajectory;
use serde::{Deserialize, Serialize};

/// Identifier of a robot within a fleet (its index in plan order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RobotId(pub usize);

impl std::fmt::Display for RobotId {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(fmt, "a{}", self.0)
    }
}

/// The reliability status of a robot.
///
/// A faulty robot "follows its assigned trajectory and is
/// indistinguishable from a reliable robot, except that a faulty robot
/// does not detect the target while visiting its location".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Reliability {
    /// The robot detects the target when standing on it.
    Reliable,
    /// The robot never detects the target.
    Faulty,
}

/// A robot in the simulation: its identity, reliability, and the
/// trajectory it follows.
#[derive(Debug, Clone, PartialEq)]
pub struct Robot {
    id: RobotId,
    reliability: Reliability,
    trajectory: PiecewiseTrajectory,
}

impl Robot {
    /// Creates a robot.
    #[must_use]
    pub fn new(id: RobotId, reliability: Reliability, trajectory: PiecewiseTrajectory) -> Self {
        Robot { id, reliability, trajectory }
    }

    /// The robot's identity.
    #[must_use]
    pub fn id(&self) -> RobotId {
        self.id
    }

    /// Whether the robot can detect the target.
    #[must_use]
    pub fn is_reliable(&self) -> bool {
        self.reliability == Reliability::Reliable
    }

    /// The robot's reliability status.
    #[must_use]
    pub fn reliability(&self) -> Reliability {
        self.reliability
    }

    /// The trajectory the robot follows.
    #[must_use]
    pub fn trajectory(&self) -> &PiecewiseTrajectory {
        &self.trajectory
    }

    /// Position at time `t`, if within the trajectory's domain.
    #[must_use]
    pub fn position_at(&self, t: f64) -> Option<f64> {
        self.trajectory.position_at(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_core::TrajectoryBuilder;

    #[test]
    fn robot_accessors() {
        let traj = TrajectoryBuilder::from_origin().sweep_to(2.0).finish().unwrap();
        let r = Robot::new(RobotId(3), Reliability::Faulty, traj);
        assert_eq!(r.id(), RobotId(3));
        assert!(!r.is_reliable());
        assert_eq!(r.reliability(), Reliability::Faulty);
        assert_eq!(r.position_at(1.0), Some(1.0));
        assert_eq!(r.trajectory().horizon(), 2.0);
    }

    #[test]
    fn robot_id_displays_like_the_paper() {
        assert_eq!(RobotId(2).to_string(), "a2");
    }
}
