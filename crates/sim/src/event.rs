//! Discrete events and the time-ordered event queue driving the
//! simulation engine.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::robot::RobotId;

/// A discrete event in the simulated search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Simulation time at which the event fires.
    pub time: f64,
    /// What happened.
    pub kind: EventKind,
}

/// The kinds of events produced while simulating a search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A robot reversed its direction of motion at the given position.
    Turned {
        /// The turning robot.
        robot: RobotId,
        /// Position of the turning point.
        x: f64,
    },
    /// A robot stood on the target's position.
    TargetVisited {
        /// The visiting robot.
        robot: RobotId,
    },
    /// A robot's sensor report for a target visit arrived (for healthy
    /// robots this coincides with the visit; delayed sensors report
    /// later). The first such event is the detection.
    Registered {
        /// The reporting robot.
        robot: RobotId,
    },
    /// A **reliable** robot stood on the target: the search succeeds.
    Detected {
        /// The detecting robot.
        robot: RobotId,
    },
    /// A Byzantine robot asserted a (possibly false) detection claim at
    /// position `x`. Claims feed the quorum layer
    /// ([`crate::engine::QuorumConfig`]); a lone claim never terminates
    /// the search.
    ClaimAsserted {
        /// The claiming robot.
        robot: RobotId,
        /// The claimed target position.
        x: f64,
    },
    /// The simulation horizon was reached without detection.
    HorizonReached,
}

/// A min-heap of events ordered by time (ties broken by insertion
/// order, so simultaneous events fire deterministically FIFO).
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<QueueEntry>,
    seq: u64,
}

#[derive(Debug)]
struct QueueEntry {
    event: Event,
    seq: u64,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for QueueEntry {}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we need earliest
        // first. Ties resolve FIFO (lower sequence first).
        other.event.time.total_cmp(&self.event.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl EventQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules an event.
    pub fn push(&mut self, event: Event) {
        let entry = QueueEntry { event, seq: self.seq };
        self.seq += 1;
        self.heap.push(entry);
    }

    /// Pops the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|e| e.event)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: f64) -> Event {
        Event { time, kind: EventKind::HorizonReached }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(ev(3.0));
        q.push(ev(1.0));
        q.push(ev(2.0));
        let times: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        q.push(Event { time: 1.0, kind: EventKind::Turned { robot: RobotId(0), x: 0.0 } });
        q.push(Event { time: 1.0, kind: EventKind::Turned { robot: RobotId(1), x: 0.0 } });
        match (q.pop().unwrap().kind, q.pop().unwrap().kind) {
            (EventKind::Turned { robot: a, .. }, EventKind::Turned { robot: b, .. }) => {
                assert_eq!(a, RobotId(0));
                assert_eq!(b, RobotId(1));
            }
            other => panic!("unexpected events {other:?}"),
        }
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(ev(1.0));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
