//! The discrete-event simulation engine.
//!
//! The engine takes materialized trajectories, a target, and a fault
//! assignment; it derives the discrete events of the run (turning
//! points, target visits, sensor reports), processes them in time
//! order, and reports the search outcome. Detection follows the paper's
//! rule: the search succeeds the moment the first working sensor
//! reports the target.
//!
//! Faults are injected at construction: each robot's trajectory is
//! compiled into an *effective visit schedule* — the times it
//! physically stands on the target, and for each such visit whether
//! (and when) its sensor report arrives. The paper's permanent sensor
//! fault drops every report; the extended taxonomy
//! ([`crate::fault::FaultKind`]) can drop individual visits
//! (intermittent), postpone reports (delayed), dilate the whole
//! schedule (speed-degraded), report each visit only with probability
//! `p` (p-faulty), or assert *false* detections (Byzantine). The event
//! loop itself is fault-agnostic.
//!
//! ## The claim-quorum layer
//!
//! With Byzantine robots in the fleet a single report can no longer be
//! trusted: detections become timestamped *claims* and the search
//! terminates only when [`QuorumConfig::votes`] distinct robots have
//! claimed the same position. Honest reports claim the true target;
//! Byzantine robots inject claims at seeded positions. In the canonical
//! `n >= 2f + 1` regime with quorum `f + 1`, at least one honest robot
//! backs every confirmed position, so a lone liar can neither end the
//! run early nor confirm a false location.

use std::collections::{BTreeMap, BTreeSet, HashSet};

use faultline_core::{Error, PiecewiseTrajectory, Result};
use serde::{Deserialize, Serialize};

use crate::event::{Event, EventKind, EventQueue};
use crate::fault::{FaultKind, FaultMask, FaultPlan};
use crate::outcome::{Claim, Detection, SearchOutcome, Visit};
use crate::robot::RobotId;
use crate::target::Target;

/// Configuration of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Record the full event trace in the outcome.
    pub record_trace: bool,
    /// Stop processing at the first detection (default). When `false`,
    /// the run continues to the horizon and collects every robot's
    /// first visit — useful for measuring `T_k` for several `k` at once.
    pub stop_at_detection: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { record_trace: false, stop_at_detection: true }
    }
}

/// Claim-quorum configuration: the search confirms a position (and the
/// run counts as a detection) only once `votes` distinct robots have
/// claimed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuorumConfig {
    /// Number of distinct claimants required to confirm a position.
    pub votes: usize,
}

impl QuorumConfig {
    /// A quorum requiring `votes` distinct claimants.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] when `votes` is zero — a zero-vote
    /// quorum would confirm every position unconditionally.
    pub fn new(votes: usize) -> Result<Self> {
        let q = QuorumConfig { votes };
        q.validate()?;
        Ok(q)
    }

    /// The canonical Byzantine quorum: with `f` liars among
    /// `n >= 2f + 1` robots, `f + 1` matching claims guarantee at least
    /// one honest backer, and the `f + 1` honest robots that genuinely
    /// visit the target always suffice to confirm it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameters`] when `n < 2f + 1`.
    pub fn byzantine(n: usize, f: usize) -> Result<Self> {
        if n < 2 * f + 1 {
            return Err(Error::invalid_params(
                n,
                f,
                format!("the Byzantine quorum regime needs n >= 2f + 1, got n = {n}, f = {f}"),
            ));
        }
        QuorumConfig::new(f + 1)
    }

    /// Validates the configuration (deserialized values included).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] when `votes` is zero.
    pub fn validate(&self) -> Result<()> {
        if self.votes == 0 {
            return Err(Error::domain("a claim quorum needs at least one vote"));
        }
        Ok(())
    }
}

/// A robot's sensor state at one physical visit to the target.
#[derive(Debug, Clone, Copy)]
struct ScheduledVisit {
    /// Time at which the robot stands on the target.
    time: f64,
    /// When the sensor's report arrives, or `None` if this visit goes
    /// unreported (faulty sensor, intermittent miss, or a delayed
    /// report lost past the horizon).
    report: Option<f64>,
}

/// A robot compiled for simulation: effective turning points and visit
/// schedule, with all fault effects already applied.
#[derive(Debug)]
struct SimRobot {
    id: RobotId,
    /// Effective turning points `(t, x)`, within the horizon.
    turns: Vec<(f64, f64)>,
    /// Effective visits to the target, in time order.
    visits: Vec<ScheduledVisit>,
    /// False claims `(t, x)` this robot asserts (Byzantine only).
    lies: Vec<(f64, f64)>,
}

/// Seed salt separating Byzantine lie coins from sensor-miss coins: a
/// robot that is re-planned from `Intermittent` to `Byzantine` under
/// the same seed must not reuse the same coin stream.
const BYZANTINE_STREAM: u64 = 0x42D9_C339_7F6A_1B2D;

/// Deterministic coin in `[0, 1)` for intermittent-sensor decisions,
/// keyed by `(seed, robot, visit index)` so identical runs replay
/// bit-for-bit without threading an RNG through the engine.
/// (splitmix64 finalizer over the xor-combined key.)
fn fault_coin(seed: u64, robot: usize, visit: usize) -> f64 {
    let mut z = seed
        ^ (robot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (visit as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    ((z >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
}

/// A fully configured simulation, ready to [`run`](Simulation::run).
#[derive(Debug)]
pub struct Simulation {
    robots: Vec<SimRobot>,
    target: Target,
    config: SimConfig,
    horizon: f64,
    quorum: Option<QuorumConfig>,
    /// Whether the outcome carries a claim log: true when a quorum is
    /// configured or the plan contains Byzantine robots; false keeps
    /// legacy runs bit-for-bit identical to earlier trace versions.
    log_claims: bool,
}

impl Simulation {
    /// Builds a simulation from materialized trajectories, a target and
    /// a fault mask (the paper's permanent sensor faults).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameters`] when the fleet is empty or
    /// the mask length does not match the fleet size, and propagates
    /// the horizon guards of [`Simulation::with_faults`].
    pub fn new(
        trajectories: Vec<PiecewiseTrajectory>,
        target: Target,
        mask: &FaultMask,
        config: SimConfig,
    ) -> Result<Self> {
        if !trajectories.is_empty() && mask.len() != trajectories.len() {
            return Err(Error::invalid_params(
                trajectories.len(),
                mask.fault_count(),
                format!(
                    "fault mask covers {} robots but the fleet has {}",
                    mask.len(),
                    trajectories.len()
                ),
            ));
        }
        // Sensor faults ignore the seed: no randomness is involved.
        Simulation::with_faults(trajectories, target, &FaultPlan::from_mask(mask), 0, config)
    }

    /// Builds a simulation injecting the extended fault taxonomy.
    ///
    /// `seed` drives the per-visit coins of intermittent sensors (and
    /// nothing else); two simulations built from identical inputs
    /// produce bit-for-bit identical outcomes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameters`] when the fleet is empty or
    /// the plan length does not match the fleet size;
    /// [`Error::NonFinite`] when the fleet horizon is not a number; and
    /// [`Error::Domain`] when the horizon is not strictly positive
    /// (a zero-length search cannot visit anything).
    pub fn with_faults(
        trajectories: Vec<PiecewiseTrajectory>,
        target: Target,
        plan: &FaultPlan,
        seed: u64,
        config: SimConfig,
    ) -> Result<Self> {
        Simulation::with_quorum(trajectories, target, plan, seed, config, None)
    }

    /// Builds a simulation with the claim-quorum layer engaged: the
    /// search confirms a position only when `quorum` distinct robots
    /// have claimed it. Pass `None` to fall back to the paper's
    /// first-report rule (equivalent to [`Simulation::with_faults`]).
    ///
    /// # Errors
    ///
    /// Everything [`Simulation::with_faults`] rejects, plus
    /// [`Error::Domain`] for a zero-vote quorum.
    pub fn with_quorum(
        trajectories: Vec<PiecewiseTrajectory>,
        target: Target,
        plan: &FaultPlan,
        seed: u64,
        config: SimConfig,
        quorum: Option<QuorumConfig>,
    ) -> Result<Self> {
        Simulation::with_onsets(trajectories, target, plan, &[], seed, config, quorum)
    }

    /// Builds a simulation with per-robot *fault-onset* times layered
    /// over the fault plan: robot `i`'s sensor behaves as
    /// [`FaultKind::Reliable`] strictly before `onsets[i]` and switches
    /// to its planned kind from that time on (Byzantine robots start
    /// lying only at onset). `None` entries — or an empty slice —
    /// mean the fault is present from the start, reproducing
    /// [`Simulation::with_quorum`] bit for bit.
    ///
    /// Onsets modulate *sensor* behaviour only; a
    /// [`FaultKind::SpeedDegraded`] robot's time dilation is a property
    /// of its motion and always applies from the start (scenario-level
    /// validation rejects that combination as meaningless).
    ///
    /// # Errors
    ///
    /// Everything [`Simulation::with_quorum`] rejects, plus
    /// [`Error::InvalidParameters`] for a non-empty onset slice whose
    /// length differs from the fleet and [`Error::Domain`] for a
    /// non-finite or negative onset time.
    pub fn with_onsets(
        trajectories: Vec<PiecewiseTrajectory>,
        target: Target,
        plan: &FaultPlan,
        onsets: &[Option<f64>],
        seed: u64,
        config: SimConfig,
        quorum: Option<QuorumConfig>,
    ) -> Result<Self> {
        if let Some(q) = quorum {
            q.validate()?;
        }
        if !onsets.is_empty() && onsets.len() != trajectories.len() {
            return Err(Error::invalid_params(
                trajectories.len(),
                0,
                format!(
                    "fault onsets cover {} robots but the fleet has {}",
                    onsets.len(),
                    trajectories.len()
                ),
            ));
        }
        for onset in onsets.iter().flatten() {
            if !onset.is_finite() || *onset < 0.0 {
                return Err(Error::domain(format!(
                    "fault onset times must be finite and non-negative, got {onset}"
                )));
            }
        }
        if trajectories.is_empty() {
            return Err(Error::invalid_params(0, 0, "simulation needs at least one robot"));
        }
        if plan.len() != trajectories.len() {
            return Err(Error::invalid_params(
                trajectories.len(),
                plan.fault_count(),
                format!(
                    "fault plan covers {} robots but the fleet has {}",
                    plan.len(),
                    trajectories.len()
                ),
            ));
        }
        // A speed-degraded robot traverses the same path at `factor`
        // times unit speed, so all its times dilate by `1 / factor` —
        // including its own horizon.
        let time_scale = |kind: FaultKind| match kind {
            FaultKind::SpeedDegraded { factor } => 1.0 / factor,
            _ => 1.0,
        };
        let horizon = trajectories
            .iter()
            .enumerate()
            .map(|(i, t)| t.horizon() * time_scale(plan.kind(RobotId(i))))
            .fold(f64::INFINITY, f64::min);
        let horizon = Error::ensure_finite("fleet horizon", horizon)?;
        if !(horizon > 0.0) {
            return Err(Error::domain(format!(
                "fleet horizon must be strictly positive, got {horizon}"
            )));
        }
        let x = target.position();
        let log_claims = quorum.is_some() || plan.byzantine_count() > 0;
        let robots = trajectories
            .into_iter()
            .enumerate()
            .map(|(i, traj)| {
                let id = RobotId(i);
                let kind = plan.kind(id);
                let scale = time_scale(kind);
                // Strictly before its onset the robot's sensor is
                // healthy; with no onset the fault is always engaged.
                let onset = onsets.get(i).copied().flatten().unwrap_or(f64::NEG_INFINITY);
                let turning_points = traj.turning_points();
                let turns: Vec<(f64, f64)> = turning_points
                    .iter()
                    .map(|p| (p.t * scale, p.x))
                    .filter(|&(t, _)| t <= horizon)
                    .collect();
                // A Byzantine robot moves honestly but lies: at each of
                // its waypoints (turning points plus the trajectory's
                // endpoints, so even a straight path offers lie
                // opportunities) an independent seeded coin — on its
                // own stream — decides whether it asserts the point's
                // position as a false detection.
                let lies = match kind {
                    FaultKind::Byzantine { lie_rate } => traj
                        .waypoints()
                        .iter()
                        .enumerate()
                        .filter(|&(k, p)| {
                            p.t <= horizon
                                && p.t >= onset
                                && fault_coin(seed ^ BYZANTINE_STREAM, i, k) < lie_rate
                        })
                        .map(|(_, p)| (p.t, p.x))
                        .collect(),
                    _ => Vec::new(),
                };
                let visits = traj
                    .visits(x)
                    .into_iter()
                    .enumerate()
                    .map(|(k, t)| (k, t * scale))
                    .filter(|&(_, t)| t <= horizon)
                    .map(|(k, t)| {
                        let report = if t < onset {
                            // Pre-onset visits report like a healthy
                            // sensor, whatever the planned fault kind.
                            Some(t)
                        } else {
                            match kind {
                                FaultKind::Sensor | FaultKind::Byzantine { .. } => None,
                                FaultKind::Intermittent { miss_probability } => {
                                    (fault_coin(seed, i, k) >= miss_probability).then_some(t)
                                }
                                FaultKind::PFaulty { detect_probability } => {
                                    (fault_coin(seed, i, k) < detect_probability).then_some(t)
                                }
                                FaultKind::Delayed { latency } => {
                                    let arrival = t + latency;
                                    (arrival <= horizon).then_some(arrival)
                                }
                                FaultKind::Reliable | FaultKind::SpeedDegraded { .. } => Some(t),
                            }
                        };
                        ScheduledVisit { time: t, report }
                    })
                    .collect();
                SimRobot { id, turns, visits, lies }
            })
            .collect();
        Ok(Simulation { robots, target, config, horizon, quorum, log_claims })
    }

    /// Number of robots in the simulation.
    #[must_use]
    pub fn robot_count(&self) -> usize {
        self.robots.len()
    }

    /// The common horizon (earliest trajectory end).
    #[must_use]
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Runs the simulation to detection (or to the horizon) and returns
    /// the outcome.
    #[must_use]
    pub fn run(self) -> SearchOutcome {
        let mut queue = EventQueue::new();

        for robot in &self.robots {
            for &(t, x) in &robot.turns {
                queue.push(Event { time: t, kind: EventKind::Turned { robot: robot.id, x } });
            }
            // Each visit's report (if any) is scheduled right after the
            // physical visit so that, at equal times, the FIFO queue
            // keeps them adjacent: the visit is recorded, then the
            // report fires detection — matching the paper's "detect the
            // instant a working robot stands on the target".
            for visit in &robot.visits {
                queue.push(Event {
                    time: visit.time,
                    kind: EventKind::TargetVisited { robot: robot.id },
                });
                if let Some(report) = visit.report {
                    queue.push(Event {
                        time: report,
                        kind: EventKind::Registered { robot: robot.id },
                    });
                }
            }
            for &(t, x) in &robot.lies {
                queue
                    .push(Event { time: t, kind: EventKind::ClaimAsserted { robot: robot.id, x } });
            }
        }
        queue.push(Event { time: self.horizon, kind: EventKind::HorizonReached });

        let target_position = self.target.position();
        let mut trace: Vec<Event> = Vec::new();
        let mut visits: Vec<Visit> = Vec::new();
        let mut seen: HashSet<RobotId> = HashSet::new();
        let mut detection: Option<Detection> = None;
        let mut claims: Vec<Claim> = Vec::new();
        // Distinct claimants per claimed position (keyed by the f64's
        // bits: claims vote for a position only on exact agreement).
        let mut ballots: BTreeMap<u64, BTreeSet<usize>> = BTreeMap::new();
        let mut confirmed: Option<f64> = None;

        // Registers a claim, tallies it, and reports whether it
        // completes the quorum at its position.
        let cast_claim = |robot: RobotId,
                          time: f64,
                          position: f64,
                          claims: &mut Vec<Claim>,
                          ballots: &mut BTreeMap<u64, BTreeSet<usize>>|
         -> bool {
            let backers = ballots.entry(position.to_bits()).or_default();
            if !backers.insert(robot.0) {
                return false; // repeat claims add no voting weight
            }
            claims.push(Claim { robot, time, position, truthful: position == target_position });
            self.quorum.is_some_and(|q| backers.len() >= q.votes)
        };

        'events: while let Some(event) = queue.pop() {
            if self.config.record_trace {
                trace.push(event);
            }
            match event.kind {
                EventKind::TargetVisited { robot } => {
                    if !seen.insert(robot) {
                        continue; // only the first visit per robot counts
                    }
                    // The first visit of `robot` is the first entry of
                    // its schedule; its flag records whether the sensor
                    // reported that visit.
                    let reliable = self.robots[robot.0].visits[0].report.is_some();
                    visits.push(Visit { robot, time: event.time, reliable });
                }
                EventKind::Registered { robot } => {
                    // An honest report claims the true target position.
                    let completes_quorum = self.log_claims
                        && cast_claim(
                            robot,
                            event.time,
                            target_position,
                            &mut claims,
                            &mut ballots,
                        );
                    let detects = match self.quorum {
                        // Quorum engaged: a report only counts through
                        // its claim.
                        Some(_) => completes_quorum,
                        // Legacy rule: the first report is the detection.
                        None => true,
                    };
                    if detects && detection.is_none() {
                        detection = Some(Detection { robot, time: event.time });
                        if self.quorum.is_some() {
                            confirmed = Some(target_position);
                        }
                        if self.config.record_trace {
                            trace.push(Event {
                                time: event.time,
                                kind: EventKind::Detected { robot },
                            });
                        }
                        if self.config.stop_at_detection {
                            break 'events;
                        }
                    }
                }
                EventKind::ClaimAsserted { robot, x } => {
                    let completes_quorum =
                        cast_claim(robot, event.time, x, &mut claims, &mut ballots);
                    if completes_quorum && detection.is_none() {
                        detection = Some(Detection { robot, time: event.time });
                        confirmed = Some(x);
                        if self.config.record_trace {
                            trace.push(Event {
                                time: event.time,
                                kind: EventKind::Detected { robot },
                            });
                        }
                        if self.config.stop_at_detection {
                            break 'events;
                        }
                    }
                }
                EventKind::Turned { .. } => {
                    // Turning events only matter for the trace; motion is
                    // already encoded in the trajectories.
                }
                EventKind::Detected { .. } => {
                    // Detected events are emitted, never scheduled.
                }
                EventKind::HorizonReached => break 'events,
            }
        }

        SearchOutcome {
            target: self.target,
            detection,
            visits,
            horizon: self.horizon,
            trace: self.config.record_trace.then_some(trace),
            claims,
            confirmed_position: confirmed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_core::TrajectoryBuilder;

    fn straight(to: f64) -> PiecewiseTrajectory {
        TrajectoryBuilder::from_origin().sweep_to(to).finish().unwrap()
    }

    fn sim(
        trajectories: Vec<PiecewiseTrajectory>,
        target: f64,
        faulty: &[usize],
        config: SimConfig,
    ) -> SearchOutcome {
        let n = trajectories.len();
        let mask = FaultMask::from_indices(n, faulty).unwrap();
        Simulation::new(trajectories, Target::new(target).unwrap(), &mask, config).unwrap().run()
    }

    #[test]
    fn reliable_robot_detects_on_arrival() {
        let outcome = sim(vec![straight(5.0)], 3.0, &[], SimConfig::default());
        let d = outcome.detection.unwrap();
        assert_eq!(d.time, 3.0);
        assert_eq!(d.robot, RobotId(0));
        assert_eq!(outcome.ratio(), 1.0);
    }

    #[test]
    fn faulty_robot_does_not_detect() {
        let outcome = sim(vec![straight(5.0)], 3.0, &[0], SimConfig::default());
        assert!(!outcome.detected());
        assert!(outcome.ratio().is_infinite());
        // The faulty robot's visit is still recorded.
        assert_eq!(outcome.visits.len(), 1);
        assert!(!outcome.visits[0].reliable);
    }

    #[test]
    fn detection_waits_for_first_reliable_visitor() {
        // Robot 0 (faulty) arrives at t = 3; robot 1 (reliable) dawdles
        // and arrives at t = 7. Both trajectories extend past t = 7 so
        // the common (minimum) horizon covers the late visit.
        let slow = TrajectoryBuilder::from_origin().sweep_to(-2.0).sweep_to(4.0).finish().unwrap();
        let outcome = sim(vec![straight(9.0), slow], 3.0, &[0], SimConfig::default());
        let d = outcome.detection.unwrap();
        assert_eq!(d.robot, RobotId(1));
        assert_eq!(d.time, 7.0);
        assert_eq!(outcome.distinct_visitors(), 2);
    }

    #[test]
    fn stop_at_detection_truncates_visits() {
        let outcome = sim(vec![straight(5.0), straight(5.0)], 2.0, &[], SimConfig::default());
        // Both robots arrive simultaneously but the run stops at the
        // first reliable visit.
        assert_eq!(outcome.distinct_visitors(), 1);
    }

    #[test]
    fn run_to_horizon_collects_all_visits() {
        let cfg = SimConfig { record_trace: false, stop_at_detection: false };
        let outcome = sim(vec![straight(5.0), straight(5.0)], 2.0, &[], cfg);
        assert_eq!(outcome.distinct_visitors(), 2);
    }

    #[test]
    fn trace_records_turning_and_detection_events() {
        let zigzag =
            TrajectoryBuilder::from_origin().sweep_to(2.0).sweep_to(-4.0).finish().unwrap();
        let cfg = SimConfig { record_trace: true, stop_at_detection: true };
        let outcome = sim(vec![zigzag], -1.0, &[], cfg);
        let trace = outcome.trace.as_ref().unwrap();
        assert!(trace.iter().any(|e| matches!(e.kind, EventKind::Turned { .. })));
        assert!(trace.iter().any(|e| matches!(e.kind, EventKind::Detected { .. })));
        // Events fire in time order.
        assert!(trace.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn revisits_do_not_duplicate() {
        // The robot crosses +1 three times.
        let weave = TrajectoryBuilder::from_origin()
            .sweep_to(2.0)
            .sweep_to(0.5)
            .sweep_to(3.0)
            .finish()
            .unwrap();
        let cfg = SimConfig { record_trace: false, stop_at_detection: false };
        let mask = FaultMask::from_indices(1, &[0]).unwrap();
        let outcome =
            Simulation::new(vec![weave], Target::new(1.0).unwrap(), &mask, cfg).unwrap().run();
        assert_eq!(outcome.distinct_visitors(), 1);
        assert_eq!(outcome.visits[0].time, 1.0);
    }

    #[test]
    fn validates_inputs() {
        let mask = FaultMask::all_reliable(2);
        assert!(Simulation::new(vec![], Target::new(2.0).unwrap(), &mask, SimConfig::default())
            .is_err());
        assert!(Simulation::new(
            vec![straight(5.0)],
            Target::new(2.0).unwrap(),
            &mask,
            SimConfig::default()
        )
        .is_err());
    }

    #[test]
    fn horizon_is_minimum_across_fleet() {
        let s = Simulation::new(
            vec![straight(5.0), straight(-2.0)],
            Target::new(1.5).unwrap(),
            &FaultMask::all_reliable(2),
            SimConfig::default(),
        )
        .unwrap();
        assert_eq!(s.horizon(), 2.0);
        assert_eq!(s.robot_count(), 2);
    }

    fn faulted(
        trajectories: Vec<PiecewiseTrajectory>,
        target: f64,
        kinds: Vec<FaultKind>,
        seed: u64,
    ) -> SearchOutcome {
        let plan = FaultPlan::new(kinds).unwrap();
        Simulation::with_faults(
            trajectories,
            Target::new(target).unwrap(),
            &plan,
            seed,
            SimConfig::default(),
        )
        .unwrap()
        .run()
    }

    #[test]
    fn sensor_plan_matches_mask_semantics() {
        let masked = sim(vec![straight(9.0), straight(9.0)], 3.0, &[0], SimConfig::default());
        let planned = faulted(
            vec![straight(9.0), straight(9.0)],
            3.0,
            vec![FaultKind::Sensor, FaultKind::Reliable],
            42,
        );
        assert_eq!(masked, planned);
    }

    #[test]
    fn intermittent_with_certain_miss_never_detects() {
        let outcome = faulted(
            vec![straight(9.0)],
            3.0,
            vec![FaultKind::Intermittent { miss_probability: 1.0 }],
            7,
        );
        assert!(!outcome.detected());
        assert!(!outcome.visits[0].reliable);
    }

    #[test]
    fn intermittent_with_zero_miss_behaves_reliably() {
        let outcome = faulted(
            vec![straight(9.0)],
            3.0,
            vec![FaultKind::Intermittent { miss_probability: 0.0 }],
            7,
        );
        assert_eq!(outcome.detection.unwrap().time, 3.0);
    }

    #[test]
    fn intermittent_can_catch_a_later_visit() {
        // The robot crosses +1 at t = 1, 3.5 and 5. Find a seed whose
        // coin misses the first visit but registers a later one: the
        // detection then happens at a *revisit*, which the binary
        // sensor model can never produce.
        let weave = TrajectoryBuilder::from_origin()
            .sweep_to(2.0)
            .sweep_to(0.5)
            .sweep_to(3.0)
            .finish()
            .unwrap();
        let kinds = vec![FaultKind::Intermittent { miss_probability: 0.5 }];
        let later = (0..1000u64)
            .map(|seed| faulted(vec![weave.clone()], 1.0, kinds.clone(), seed))
            .find(|o| o.detection.is_some_and(|d| d.time > 1.0))
            .expect("some seed should miss the first visit and catch a revisit");
        assert!(!later.visits[0].reliable, "first visit went unregistered");
        assert!(later.detected());
    }

    #[test]
    fn intermittent_is_deterministic_in_the_seed() {
        let kinds = vec![FaultKind::Intermittent { miss_probability: 0.5 }; 3];
        let run = |seed| {
            faulted(vec![straight(9.0), straight(9.0), straight(9.0)], 3.0, kinds.clone(), seed)
        };
        assert_eq!(run(5), run(5));
        // ... and some seed differs from seed 5, so the coin is real.
        assert!((0..100).any(|s| run(s) != run(5)));
    }

    #[test]
    fn delayed_report_postpones_detection() {
        let outcome =
            faulted(vec![straight(9.0)], 3.0, vec![FaultKind::Delayed { latency: 1.5 }], 0);
        let d = outcome.detection.unwrap();
        assert_eq!(d.time, 4.5);
        // The physical visit is still recorded at arrival time.
        assert_eq!(outcome.visits[0].time, 3.0);
        assert!(outcome.visits[0].reliable);
    }

    #[test]
    fn delayed_report_past_horizon_is_lost() {
        let outcome =
            faulted(vec![straight(5.0)], 3.0, vec![FaultKind::Delayed { latency: 10.0 }], 0);
        assert!(!outcome.detected());
        assert!(!outcome.visits[0].reliable, "the report never arrived");
    }

    #[test]
    fn speed_degraded_dilates_detection_time() {
        // At half speed the robot reaches x = 3 at t = 6; its own
        // horizon dilates to 18, so the visit stays in range.
        let outcome =
            faulted(vec![straight(9.0)], 3.0, vec![FaultKind::SpeedDegraded { factor: 0.5 }], 0);
        assert_eq!(outcome.detection.unwrap().time, 6.0);
        assert_eq!(outcome.horizon, 18.0);
    }

    #[test]
    fn full_speed_degradation_factor_is_identity() {
        let a =
            faulted(vec![straight(9.0)], 3.0, vec![FaultKind::SpeedDegraded { factor: 1.0 }], 0);
        let b = faulted(vec![straight(9.0)], 3.0, vec![FaultKind::Reliable], 0);
        assert_eq!(a, b);
    }

    #[test]
    fn pfaulty_endpoints_collapse_bitwise() {
        // p = 1 is Reliable and p = 0 is Sensor, bit for bit — the
        // degenerate-equivalence contract the conformance oracle pins.
        for seed in [0, 7, 42] {
            let trajs = || vec![straight(9.0), straight(-9.0)];
            let certain = faulted(
                trajs(),
                3.0,
                vec![FaultKind::PFaulty { detect_probability: 1.0 }; 2],
                seed,
            );
            let reliable = faulted(trajs(), 3.0, vec![FaultKind::Reliable; 2], seed);
            assert_eq!(certain, reliable);

            let never = faulted(
                trajs(),
                3.0,
                vec![FaultKind::PFaulty { detect_probability: 0.0 }; 2],
                seed,
            );
            let sensor = faulted(trajs(), 3.0, vec![FaultKind::Sensor; 2], seed);
            assert_eq!(never, sensor);
        }
    }

    #[test]
    fn intermittent_endpoints_collapse_bitwise() {
        for seed in [0, 7, 42] {
            let trajs = || vec![straight(9.0), straight(-9.0)];
            let never = faulted(
                trajs(),
                3.0,
                vec![FaultKind::Intermittent { miss_probability: 1.0 }; 2],
                seed,
            );
            let sensor = faulted(trajs(), 3.0, vec![FaultKind::Sensor; 2], seed);
            assert_eq!(never, sensor);

            let always = faulted(
                trajs(),
                3.0,
                vec![FaultKind::Intermittent { miss_probability: 0.0 }; 2],
                seed,
            );
            let reliable = faulted(trajs(), 3.0, vec![FaultKind::Reliable; 2], seed);
            assert_eq!(always, reliable);
        }
    }

    #[test]
    fn pfaulty_is_deterministic_in_the_seed() {
        let kinds = vec![FaultKind::PFaulty { detect_probability: 0.5 }; 3];
        let run = |seed| {
            faulted(vec![straight(9.0), straight(9.0), straight(9.0)], 3.0, kinds.clone(), seed)
        };
        assert_eq!(run(5), run(5));
        assert!((0..100).any(|s| run(s) != run(5)));
    }

    #[test]
    fn byzantine_robot_never_detects_honestly() {
        // Without a quorum, Byzantine lies are logged but inert: a lone
        // liar cannot end the run.
        let outcome =
            faulted(vec![straight(9.0)], 3.0, vec![FaultKind::Byzantine { lie_rate: 1.0 }], 3);
        assert!(!outcome.detected());
        assert!(!outcome.visits[0].reliable);
        assert!(!outcome.claims.is_empty(), "lies are logged as claims");
        assert!(outcome.claims.iter().all(|c| !c.truthful || c.position == 3.0));
        assert!(outcome.confirmed_position.is_none());
    }

    fn quorum_run(
        trajectories: Vec<PiecewiseTrajectory>,
        target: f64,
        kinds: Vec<FaultKind>,
        seed: u64,
        votes: usize,
    ) -> SearchOutcome {
        let plan = FaultPlan::new(kinds).unwrap();
        Simulation::with_quorum(
            trajectories,
            Target::new(target).unwrap(),
            &plan,
            seed,
            SimConfig::default(),
            Some(QuorumConfig::new(votes).unwrap()),
        )
        .unwrap()
        .run()
    }

    #[test]
    fn quorum_waits_for_enough_honest_claims() {
        // Three reliable robots reach x = 3 at t = 3, 5 and 7; a
        // 2-vote quorum confirms at the second claim.
        let slow = TrajectoryBuilder::from_origin().sweep_to(-1.0).sweep_to(9.0).finish().unwrap();
        let slower =
            TrajectoryBuilder::from_origin().sweep_to(-2.0).sweep_to(9.0).finish().unwrap();
        let outcome =
            quorum_run(vec![straight(9.0), slow, slower], 3.0, vec![FaultKind::Reliable; 3], 0, 2);
        let d = outcome.detection.unwrap();
        assert_eq!(d.time, 5.0);
        assert_eq!(d.robot, RobotId(1));
        assert_eq!(outcome.confirmed_position, Some(3.0));
        assert_eq!(outcome.claims.len(), 2);
        assert!(outcome.claims.iter().all(|c| c.truthful));
    }

    #[test]
    fn lone_liar_cannot_reach_a_two_vote_quorum() {
        // The Byzantine robot lies at every turning point but the
        // 2-vote quorum never confirms any of its positions; the honest
        // robots confirm the true target.
        let liar = TrajectoryBuilder::from_origin().sweep_to(-4.0).sweep_to(9.0).finish().unwrap();
        let outcome = quorum_run(
            vec![straight(9.0), straight(9.0), liar],
            3.0,
            vec![FaultKind::Reliable, FaultKind::Reliable, FaultKind::Byzantine { lie_rate: 1.0 }],
            1,
            2,
        );
        let d = outcome.detection.unwrap();
        assert_eq!(d.time, 3.0, "both honest robots claim x = 3 at t = 3");
        assert_eq!(outcome.confirmed_position, Some(3.0));
        // The liar's claims are on the log, marked untruthful.
        assert!(outcome.claims.iter().any(|c| !c.truthful));
    }

    #[test]
    fn unreachable_quorum_exhausts_the_run() {
        // A 2-vote quorum with a single robot can never confirm.
        let outcome = quorum_run(vec![straight(9.0)], 3.0, vec![FaultKind::Reliable], 0, 2);
        assert!(!outcome.detected());
        assert_eq!(outcome.claims.len(), 1);
        assert!(outcome.confirmed_position.is_none());
    }

    #[test]
    fn repeat_claims_add_no_voting_weight() {
        // One robot revisits the target three times; its repeated
        // reports must not satisfy a 2-vote quorum on their own.
        let weave = TrajectoryBuilder::from_origin()
            .sweep_to(2.0)
            .sweep_to(0.5)
            .sweep_to(3.0)
            .finish()
            .unwrap();
        let cfg = SimConfig { record_trace: false, stop_at_detection: false };
        let plan = FaultPlan::new(vec![FaultKind::Reliable]).unwrap();
        let outcome = Simulation::with_quorum(
            vec![weave],
            Target::new(1.0).unwrap(),
            &plan,
            0,
            cfg,
            Some(QuorumConfig::new(2).unwrap()),
        )
        .unwrap()
        .run();
        assert!(!outcome.detected());
        assert_eq!(outcome.claims.len(), 1, "repeat claims are deduplicated");
    }

    #[test]
    fn byzantine_lies_are_deterministic_in_the_seed() {
        let kinds = vec![FaultKind::Byzantine { lie_rate: 0.5 }];
        let zigzag = || {
            TrajectoryBuilder::from_origin()
                .sweep_to(2.0)
                .sweep_to(-4.0)
                .sweep_to(8.0)
                .finish()
                .unwrap()
        };
        let run = |seed| faulted(vec![zigzag()], 3.0, kinds.clone(), seed);
        assert_eq!(run(5), run(5));
        assert!((0..100).any(|s| run(s).claims != run(5).claims));
    }

    #[test]
    fn quorum_config_validates() {
        assert!(QuorumConfig::new(0).is_err());
        assert_eq!(QuorumConfig::new(2).unwrap().votes, 2);
        assert_eq!(QuorumConfig::byzantine(5, 2).unwrap().votes, 3);
        assert!(QuorumConfig::byzantine(4, 2).is_err(), "n = 4 < 2f + 1 = 5");
    }

    #[test]
    fn legacy_runs_carry_no_claims() {
        let outcome = sim(vec![straight(9.0)], 3.0, &[], SimConfig::default());
        assert!(outcome.claims.is_empty());
        assert!(outcome.confirmed_position.is_none());
    }

    #[test]
    fn plan_length_mismatch_rejected() {
        let plan = FaultPlan::all_reliable(2);
        assert!(Simulation::with_faults(
            vec![straight(5.0)],
            Target::new(2.0).unwrap(),
            &plan,
            0,
            SimConfig::default()
        )
        .is_err());
    }

    fn onset_run(
        trajectories: Vec<PiecewiseTrajectory>,
        target: f64,
        kinds: Vec<FaultKind>,
        onsets: &[Option<f64>],
        seed: u64,
    ) -> SearchOutcome {
        let plan = FaultPlan::new(kinds).unwrap();
        Simulation::with_onsets(
            trajectories,
            Target::new(target).unwrap(),
            &plan,
            onsets,
            seed,
            SimConfig::default(),
            None,
        )
        .unwrap()
        .run()
    }

    #[test]
    fn sensor_fault_with_late_onset_reports_early_visits() {
        // The robot stands on x = 3 at t = 3; its sensor dies at t = 5,
        // so the early visit still reports.
        let healthy_until_5 =
            onset_run(vec![straight(9.0)], 3.0, vec![FaultKind::Sensor], &[Some(5.0)], 0);
        assert_eq!(healthy_until_5.detection.unwrap().time, 3.0);
        // With the onset before the visit the fault is fully engaged.
        let dead_from_2 =
            onset_run(vec![straight(9.0)], 3.0, vec![FaultKind::Sensor], &[Some(2.0)], 0);
        assert!(!dead_from_2.detected());
        // A visit exactly at the onset is already faulty (onset is
        // inclusive).
        let dead_from_3 =
            onset_run(vec![straight(9.0)], 3.0, vec![FaultKind::Sensor], &[Some(3.0)], 0);
        assert!(!dead_from_3.detected());
    }

    #[test]
    fn byzantine_onset_suppresses_early_lies() {
        let zigzag = || {
            TrajectoryBuilder::from_origin()
                .sweep_to(2.0)
                .sweep_to(-4.0)
                .sweep_to(8.0)
                .finish()
                .unwrap()
        };
        // The robot first stands on x = 3 at t = 15 (third leg); with
        // the Byzantine onset at t = 16 that visit still reports
        // honestly, and no lie fires before the onset.
        let kinds = vec![FaultKind::Byzantine { lie_rate: 1.0 }];
        let always = onset_run(vec![zigzag()], 3.0, kinds.clone(), &[None], 1);
        let late = onset_run(vec![zigzag()], 3.0, kinds, &[Some(16.0)], 1);
        assert!(always.claims.iter().any(|c| !c.truthful && c.time < 16.0));
        assert!(
            late.claims.iter().filter(|c| !c.truthful).all(|c| c.time >= 16.0),
            "no false claim before the onset: {:?}",
            late.claims
        );
        assert_eq!(late.detection.unwrap().time, 15.0);
        assert!(!always.detected());
    }

    #[test]
    fn empty_onsets_reproduce_with_quorum_bitwise() {
        for seed in [0u64, 7, 42] {
            let kinds = vec![FaultKind::Intermittent { miss_probability: 0.5 }; 2];
            let base = faulted(vec![straight(9.0), straight(-9.0)], 3.0, kinds.clone(), seed);
            let with_empty =
                onset_run(vec![straight(9.0), straight(-9.0)], 3.0, kinds.clone(), &[], seed);
            let with_none =
                onset_run(vec![straight(9.0), straight(-9.0)], 3.0, kinds, &[None, None], seed);
            assert_eq!(base, with_empty);
            assert_eq!(base, with_none);
        }
    }

    #[test]
    fn onsets_are_validated() {
        let plan = FaultPlan::new(vec![FaultKind::Sensor]).unwrap();
        let build = |onsets: &[Option<f64>]| {
            Simulation::with_onsets(
                vec![straight(5.0)],
                Target::new(2.0).unwrap(),
                &plan,
                onsets,
                0,
                SimConfig::default(),
                None,
            )
        };
        assert!(build(&[Some(1.0), Some(2.0)]).is_err(), "length mismatch");
        assert!(build(&[Some(f64::NAN)]).is_err());
        assert!(build(&[Some(-1.0)]).is_err());
        assert!(build(&[Some(0.0)]).is_ok(), "onset at t = 0 is the always-faulty edge");
    }

    #[test]
    fn non_positive_horizon_is_a_typed_error() {
        use faultline_core::SpaceTime;
        // A trajectory living entirely at negative times is valid for
        // the core trajectory type but useless for search: the engine
        // reports a Domain error instead of simulating an empty run.
        let past =
            PiecewiseTrajectory::new(vec![SpaceTime::new(0.0, -2.0), SpaceTime::new(0.5, -1.0)])
                .unwrap();
        let err = Simulation::new(
            vec![past],
            Target::new(2.0).unwrap(),
            &FaultMask::all_reliable(1),
            SimConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, Error::Domain { .. }), "got {err:?}");
    }
}
