//! The discrete-event simulation engine.
//!
//! The engine takes materialized trajectories, a target, and a fault
//! mask; it derives the discrete events of the run (turning points,
//! target visits), processes them in time order, and reports the search
//! outcome. Detection follows the paper's rule: the search succeeds the
//! moment the first **reliable** robot stands on the target.

use std::collections::HashSet;

use faultline_core::{Error, PiecewiseTrajectory, Result};

use crate::event::{Event, EventKind, EventQueue};
use crate::fault::FaultMask;
use crate::outcome::{Detection, SearchOutcome, Visit};
use crate::robot::{Robot, RobotId};
use crate::target::Target;

/// Configuration of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Record the full event trace in the outcome.
    pub record_trace: bool,
    /// Stop processing at the first detection (default). When `false`,
    /// the run continues to the horizon and collects every robot's
    /// first visit — useful for measuring `T_k` for several `k` at once.
    pub stop_at_detection: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { record_trace: false, stop_at_detection: true }
    }
}

/// A fully configured simulation, ready to [`run`](Simulation::run).
#[derive(Debug)]
pub struct Simulation {
    robots: Vec<Robot>,
    target: Target,
    config: SimConfig,
    horizon: f64,
}

impl Simulation {
    /// Builds a simulation from materialized trajectories, a target and
    /// a fault mask.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameters`] when the fleet is empty or
    /// the mask length does not match the fleet size.
    pub fn new(
        trajectories: Vec<PiecewiseTrajectory>,
        target: Target,
        mask: &FaultMask,
        config: SimConfig,
    ) -> Result<Self> {
        if trajectories.is_empty() {
            return Err(Error::invalid_params(0, 0, "simulation needs at least one robot"));
        }
        if mask.len() != trajectories.len() {
            return Err(Error::invalid_params(
                trajectories.len(),
                mask.fault_count(),
                format!(
                    "fault mask covers {} robots but the fleet has {}",
                    mask.len(),
                    trajectories.len()
                ),
            ));
        }
        let horizon = trajectories
            .iter()
            .map(PiecewiseTrajectory::horizon)
            .fold(f64::INFINITY, f64::min);
        let robots = trajectories
            .into_iter()
            .enumerate()
            .map(|(i, traj)| {
                let id = RobotId(i);
                Robot::new(id, mask.reliability(id), traj)
            })
            .collect();
        Ok(Simulation { robots, target, config, horizon })
    }

    /// Number of robots in the simulation.
    #[must_use]
    pub fn robot_count(&self) -> usize {
        self.robots.len()
    }

    /// The common horizon (earliest trajectory end).
    #[must_use]
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Runs the simulation to detection (or to the horizon) and returns
    /// the outcome.
    #[must_use]
    pub fn run(self) -> SearchOutcome {
        let mut queue = EventQueue::new();
        let x = self.target.position();

        for robot in &self.robots {
            for p in robot.trajectory().turning_points() {
                if p.t <= self.horizon {
                    queue.push(Event {
                        time: p.t,
                        kind: EventKind::Turned { robot: robot.id(), x: p.x },
                    });
                }
            }
            for t in robot.trajectory().visits(x) {
                if t <= self.horizon {
                    queue.push(Event {
                        time: t,
                        kind: EventKind::TargetVisited { robot: robot.id() },
                    });
                }
            }
        }
        queue.push(Event { time: self.horizon, kind: EventKind::HorizonReached });

        let mut trace: Vec<Event> = Vec::new();
        let mut visits: Vec<Visit> = Vec::new();
        let mut seen: HashSet<RobotId> = HashSet::new();
        let mut detection: Option<Detection> = None;

        'events: while let Some(event) = queue.pop() {
            if self.config.record_trace {
                trace.push(event);
            }
            match event.kind {
                EventKind::TargetVisited { robot } => {
                    if !seen.insert(robot) {
                        continue; // only the first visit per robot counts
                    }
                    let reliable = self.robots[robot.0].is_reliable();
                    visits.push(Visit { robot, time: event.time, reliable });
                    if reliable && detection.is_none() {
                        detection = Some(Detection { robot, time: event.time });
                        if self.config.record_trace {
                            trace.push(Event {
                                time: event.time,
                                kind: EventKind::Detected { robot },
                            });
                        }
                        if self.config.stop_at_detection {
                            break 'events;
                        }
                    }
                }
                EventKind::Turned { .. } => {
                    // Turning events only matter for the trace; motion is
                    // already encoded in the trajectories.
                }
                EventKind::Detected { .. } => {
                    // Detected events are emitted, never scheduled.
                }
                EventKind::HorizonReached => break 'events,
            }
        }

        SearchOutcome {
            target: self.target,
            detection,
            visits,
            horizon: self.horizon,
            trace: self.config.record_trace.then_some(trace),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_core::TrajectoryBuilder;

    fn straight(to: f64) -> PiecewiseTrajectory {
        TrajectoryBuilder::from_origin().sweep_to(to).finish().unwrap()
    }

    fn sim(
        trajectories: Vec<PiecewiseTrajectory>,
        target: f64,
        faulty: &[usize],
        config: SimConfig,
    ) -> SearchOutcome {
        let n = trajectories.len();
        let mask = FaultMask::from_indices(n, faulty).unwrap();
        Simulation::new(trajectories, Target::new(target).unwrap(), &mask, config)
            .unwrap()
            .run()
    }

    #[test]
    fn reliable_robot_detects_on_arrival() {
        let outcome = sim(vec![straight(5.0)], 3.0, &[], SimConfig::default());
        let d = outcome.detection.unwrap();
        assert_eq!(d.time, 3.0);
        assert_eq!(d.robot, RobotId(0));
        assert_eq!(outcome.ratio(), 1.0);
    }

    #[test]
    fn faulty_robot_does_not_detect() {
        let outcome = sim(vec![straight(5.0)], 3.0, &[0], SimConfig::default());
        assert!(!outcome.detected());
        assert!(outcome.ratio().is_infinite());
        // The faulty robot's visit is still recorded.
        assert_eq!(outcome.visits.len(), 1);
        assert!(!outcome.visits[0].reliable);
    }

    #[test]
    fn detection_waits_for_first_reliable_visitor() {
        // Robot 0 (faulty) arrives at t = 3; robot 1 (reliable) dawdles
        // and arrives at t = 7. Both trajectories extend past t = 7 so
        // the common (minimum) horizon covers the late visit.
        let slow = TrajectoryBuilder::from_origin()
            .sweep_to(-2.0)
            .sweep_to(4.0)
            .finish()
            .unwrap();
        let outcome = sim(vec![straight(9.0), slow], 3.0, &[0], SimConfig::default());
        let d = outcome.detection.unwrap();
        assert_eq!(d.robot, RobotId(1));
        assert_eq!(d.time, 7.0);
        assert_eq!(outcome.distinct_visitors(), 2);
    }

    #[test]
    fn stop_at_detection_truncates_visits() {
        let outcome = sim(
            vec![straight(5.0), straight(5.0)],
            2.0,
            &[],
            SimConfig::default(),
        );
        // Both robots arrive simultaneously but the run stops at the
        // first reliable visit.
        assert_eq!(outcome.distinct_visitors(), 1);
    }

    #[test]
    fn run_to_horizon_collects_all_visits() {
        let cfg = SimConfig { record_trace: false, stop_at_detection: false };
        let outcome = sim(vec![straight(5.0), straight(5.0)], 2.0, &[], cfg);
        assert_eq!(outcome.distinct_visitors(), 2);
    }

    #[test]
    fn trace_records_turning_and_detection_events() {
        let zigzag = TrajectoryBuilder::from_origin()
            .sweep_to(2.0)
            .sweep_to(-4.0)
            .finish()
            .unwrap();
        let cfg = SimConfig { record_trace: true, stop_at_detection: true };
        let outcome = sim(vec![zigzag], -1.0, &[], cfg);
        let trace = outcome.trace.as_ref().unwrap();
        assert!(trace.iter().any(|e| matches!(e.kind, EventKind::Turned { .. })));
        assert!(trace.iter().any(|e| matches!(e.kind, EventKind::Detected { .. })));
        // Events fire in time order.
        assert!(trace.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn revisits_do_not_duplicate() {
        // The robot crosses +1 three times.
        let weave = TrajectoryBuilder::from_origin()
            .sweep_to(2.0)
            .sweep_to(0.5)
            .sweep_to(3.0)
            .finish()
            .unwrap();
        let cfg = SimConfig { record_trace: false, stop_at_detection: false };
        let mask = FaultMask::from_indices(1, &[0]).unwrap();
        let outcome =
            Simulation::new(vec![weave], Target::new(1.0).unwrap(), &mask, cfg).unwrap().run();
        assert_eq!(outcome.distinct_visitors(), 1);
        assert_eq!(outcome.visits[0].time, 1.0);
    }

    #[test]
    fn validates_inputs() {
        let mask = FaultMask::all_reliable(2);
        assert!(Simulation::new(vec![], Target::new(2.0).unwrap(), &mask, SimConfig::default())
            .is_err());
        assert!(Simulation::new(
            vec![straight(5.0)],
            Target::new(2.0).unwrap(),
            &mask,
            SimConfig::default()
        )
        .is_err());
    }

    #[test]
    fn horizon_is_minimum_across_fleet() {
        let s = Simulation::new(
            vec![straight(5.0), straight(-2.0)],
            Target::new(1.5).unwrap(),
            &FaultMask::all_reliable(2),
            SimConfig::default(),
        )
        .unwrap();
        assert_eq!(s.horizon(), 2.0);
        assert_eq!(s.robot_count(), 2);
    }
}
