//! Crash faults: an alternative fault model from the robotics
//! literature the paper cites (gathering/patrolling with crash-prone
//! robots).
//!
//! The paper's faults are *sensor* faults: a faulty robot keeps moving
//! but never detects. A **crash** fault is different: the robot stops
//! dead at some time and contributes no further visits — but its sensor
//! was fine, so visits made *before* the crash still count.
//!
//! Detection semantics under crashes: the target is found by the first
//! robot that (a) reaches it and (b) has not crashed before arriving.
//! Unlike sensor faults, crashes genuinely remove future coverage, so a
//! non-adaptive schedule (no communication — the paper's model) can be
//! left with permanent holes. The experiment in
//! `faultline-analysis` quantifies how much worse crash faults are than
//! sensor faults for the same fault budget.

use faultline_core::{Error, PiecewiseTrajectory, Result};
use serde::{Deserialize, Serialize};

/// A crash schedule: for each robot, the time at which it stops
/// (`None` = never crashes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashPlan {
    times: Vec<Option<f64>>,
}

impl CrashPlan {
    /// Creates a crash plan.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] when any crash time is negative or
    /// non-finite.
    pub fn new(times: Vec<Option<f64>>) -> Result<Self> {
        for t in times.iter().flatten() {
            if !(*t >= 0.0) || !t.is_finite() {
                return Err(Error::domain(format!("invalid crash time {t}")));
            }
        }
        Ok(CrashPlan { times })
    }

    /// No robot ever crashes.
    #[must_use]
    pub fn none(n: usize) -> Self {
        CrashPlan { times: vec![None; n] }
    }

    /// Number of robots covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the plan covers zero robots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The crash time of robot `i`, if any.
    #[must_use]
    pub fn crash_time(&self, i: usize) -> Option<f64> {
        self.times.get(i).copied().flatten()
    }

    /// Number of crashing robots.
    #[must_use]
    pub fn crash_count(&self) -> usize {
        self.times.iter().filter(|t| t.is_some()).count()
    }

    /// Applies the crashes to a fleet: each crashing robot's trajectory
    /// is truncated at its crash time (it then stands still forever,
    /// which is equivalent to absent for first-visit queries at other
    /// positions — the truncated trajectory simply ends).
    ///
    /// Crash times at or before a trajectory's start, or beyond its
    /// horizon, leave it parked at the start or unchanged respectively.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameters`] when the plan's length does
    /// not match the fleet's.
    pub fn apply(&self, trajectories: &[PiecewiseTrajectory]) -> Result<Vec<PiecewiseTrajectory>> {
        if self.times.len() != trajectories.len() {
            return Err(Error::invalid_params(
                trajectories.len(),
                self.crash_count(),
                format!(
                    "crash plan covers {} robots, fleet has {}",
                    self.times.len(),
                    trajectories.len()
                ),
            ));
        }
        trajectories
            .iter()
            .zip(&self.times)
            .map(|(traj, crash)| match crash {
                None => Ok(traj.clone()),
                Some(t) => {
                    if *t >= traj.horizon() {
                        Ok(traj.clone())
                    } else if *t <= traj.start_time() {
                        // Crashed before moving: a degenerate two-point
                        // trajectory parked at the start.
                        let start = traj.waypoints()[0];
                        PiecewiseTrajectory::new(vec![
                            start,
                            faultline_core::SpaceTime::new(start.x, traj.horizon()),
                        ])
                    } else {
                        // Truncate, then park at the crash position so
                        // the common fleet horizon is preserved.
                        let cut = traj.truncated(*t)?;
                        let mut wps = cut.waypoints().to_vec();
                        let last = *wps.last().expect("truncated keeps >= 2 waypoints");
                        if traj.horizon() > last.t {
                            wps.push(faultline_core::SpaceTime::new(last.x, traj.horizon()));
                        }
                        PiecewiseTrajectory::new(wps)
                    }
                }
            })
            .collect()
    }
}

/// The worst-case crash adversary with budget `f`: for a fixed target,
/// crash the `f` earliest-arriving robots *just before* each reaches
/// the target, maximizing the delay to detection.
///
/// Returns the crash plan and the resulting detection time (`None`
/// when no surviving robot reaches the target within the horizon).
///
/// # Errors
///
/// Returns [`Error::InvalidParameters`] when `f >= n`.
pub fn worst_case_crashes(
    trajectories: &[PiecewiseTrajectory],
    target: f64,
    f: usize,
) -> Result<(CrashPlan, Option<f64>)> {
    crate::fault::check_adversary_budget(trajectories.len(), f)?;
    let mut arrivals: Vec<(usize, f64)> = trajectories
        .iter()
        .enumerate()
        .filter_map(|(i, t)| t.first_visit(target).map(|time| (i, time)))
        .collect();
    arrivals.sort_by(|a, b| a.1.total_cmp(&b.1));
    let mut times = vec![None; trajectories.len()];
    for &(robot, arrival) in arrivals.iter().take(f) {
        // Crash an instant before arrival: all earlier visits (to other
        // points) still happened, but the target visit does not.
        times[robot] = Some((arrival - 1e-9).max(0.0));
    }
    let detection = arrivals.get(f).map(|&(_, t)| t);
    Ok((CrashPlan::new(times)?, detection))
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_core::{Algorithm, Params, TrajectoryBuilder};

    #[test]
    fn validates_times() {
        assert!(CrashPlan::new(vec![Some(-1.0)]).is_err());
        assert!(CrashPlan::new(vec![Some(f64::NAN)]).is_err());
        assert!(CrashPlan::new(vec![None, Some(2.0)]).is_ok());
    }

    #[test]
    fn none_plan_is_identity() {
        let t = TrajectoryBuilder::from_origin().sweep_to(3.0).finish().unwrap();
        let plan = CrashPlan::none(1);
        assert_eq!(plan.crash_count(), 0);
        let out = plan.apply(std::slice::from_ref(&t)).unwrap();
        assert_eq!(out[0], t);
    }

    #[test]
    fn crash_truncates_and_parks() {
        let t = TrajectoryBuilder::from_origin().sweep_to(4.0).finish().unwrap();
        let plan = CrashPlan::new(vec![Some(1.5)]).unwrap();
        let out = plan.apply(&[t]).unwrap();
        // Parked at x = 1.5 from t = 1.5 to the original horizon.
        assert_eq!(out[0].horizon(), 4.0);
        assert_eq!(out[0].position_at(1.5), Some(1.5));
        assert_eq!(out[0].position_at(4.0), Some(1.5));
        assert_eq!(out[0].first_visit(2.0), None, "never reaches 2 after crashing");
        assert_eq!(out[0].first_visit(1.0), Some(1.0), "pre-crash visits preserved");
    }

    #[test]
    fn crash_at_zero_parks_at_origin() {
        let t = TrajectoryBuilder::from_origin().sweep_to(4.0).finish().unwrap();
        let out = CrashPlan::new(vec![Some(0.0)]).unwrap().apply(&[t]).unwrap();
        assert_eq!(out[0].position_at(3.0), Some(0.0));
    }

    #[test]
    fn crash_past_horizon_is_harmless() {
        let t = TrajectoryBuilder::from_origin().sweep_to(4.0).finish().unwrap();
        let out =
            CrashPlan::new(vec![Some(100.0)]).unwrap().apply(std::slice::from_ref(&t)).unwrap();
        assert_eq!(out[0], t);
    }

    #[test]
    fn length_mismatch_rejected() {
        let t = TrajectoryBuilder::from_origin().sweep_to(1.0).finish().unwrap();
        assert!(CrashPlan::none(2).apply(&[t]).is_err());
    }

    #[test]
    fn crash_adversary_delays_like_sensor_adversary() {
        // With the same budget, crashing the f earliest visitors right
        // before the target reproduces the sensor-fault detection time
        // T_(f+1) — crashes are at least as harmful.
        let params = Params::new(3, 1).unwrap();
        let alg = Algorithm::design(params).unwrap();
        let horizon = alg.required_horizon(9.0).unwrap();
        let trajs: Vec<_> = alg.plans().iter().map(|p| p.materialize(horizon).unwrap()).collect();
        let fleet = faultline_core::Fleet::new(trajs.clone()).unwrap();
        for x in [2.0, -5.0, 8.0] {
            let (plan, detection) = worst_case_crashes(&trajs, x, 1).unwrap();
            assert_eq!(plan.crash_count(), 1);
            let sensor_t = fleet.visit_time(x, 2).unwrap();
            assert!(
                (detection.unwrap() - sensor_t).abs() < 1e-9,
                "x = {x}: crash {detection:?} vs sensor {sensor_t}"
            );
            // And the crashed fleet really cannot detect earlier.
            let crashed = plan.apply(&trajs).unwrap();
            let crashed_fleet = faultline_core::Fleet::new(crashed).unwrap();
            let first_alive = crashed_fleet.visit_time(x, 1).unwrap();
            assert!((first_alive - sensor_t).abs() < 1e-6, "x = {x}");
        }
    }

    #[test]
    fn crashes_can_remove_coverage_entirely() {
        // Unlike sensor faults, crashing the only robot that ever goes
        // left leaves the left side permanently unconfirmed.
        let right = TrajectoryBuilder::from_origin().sweep_to(50.0).finish().unwrap();
        let left = TrajectoryBuilder::from_origin().sweep_to(-50.0).finish().unwrap();
        let (plan, detection) = worst_case_crashes(&[right, left], -10.0, 1).unwrap();
        assert_eq!(plan.crash_time(1).map(|t| t < 10.0), Some(true));
        assert_eq!(detection, None);
    }
}
