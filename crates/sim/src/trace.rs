//! Self-contained, replayable run traces.
//!
//! When the fault-space explorer (or a user) finds an interesting run —
//! typically a violation of the adversary-dominance invariant — it
//! records a [`RunTrace`]: everything needed to re-execute the run
//! bit-for-bit (trajectories, target, fault plan, seed, engine
//! configuration) together with the observed [`SearchOutcome`]. The
//! trace serializes to a single JSON document, so a failure seen on one
//! machine can be replayed and debugged on another with
//! `repro replay <trace.json>`.
//!
//! Bit-for-bit means exactly that: the engine is deterministic (the
//! only randomness, intermittent-sensor coins, is a pure function of
//! the stored seed) and the JSON writer prints floats in
//! shortest-roundtrip form, so `replay` reproduces the recorded
//! detection time and visit order exactly, not just approximately.
//!
//! Traces also support deterministic *shrinking*: given a predicate
//! that characterizes the failure, [`RunTrace::shrunk`] removes faults
//! that do not contribute and walks the target toward the minimum
//! distance, yielding a smaller reproduction of the same failure.

use faultline_core::{Error, PiecewiseTrajectory, Result};
use serde::{Deserialize, Serialize};

use crate::engine::{QuorumConfig, SimConfig, Simulation};
use crate::fault::{FaultKind, FaultPlan};
use crate::outcome::SearchOutcome;
use crate::robot::RobotId;
use crate::target::Target;

/// Current trace schema version; bumped on incompatible changes.
pub const TRACE_VERSION: u32 = 1;

/// A recorded simulation run, replayable bit-for-bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunTrace {
    /// Trace schema version ([`TRACE_VERSION`]).
    pub version: u32,
    /// Why the trace was recorded (free text, e.g. "dominance
    /// violation at mask {0, 2}").
    pub reason: String,
    /// The fleet's materialized trajectories.
    pub trajectories: Vec<PiecewiseTrajectory>,
    /// The target position (validated on replay).
    pub target: f64,
    /// Per-robot fault kinds (validated on replay).
    pub plan: Vec<FaultKind>,
    /// Seed for the intermittent-sensor coins.
    pub seed: u64,
    /// Whether the engine recorded a full event trace.
    pub record_trace: bool,
    /// Whether the engine stopped at the first detection.
    pub stop_at_detection: bool,
    /// The claim quorum the run was executed under, when the voting
    /// layer was engaged. `None` — the paper's first-report rule —
    /// when absent, so legacy trace documents still load.
    #[serde(default)]
    pub quorum: Option<QuorumConfig>,
    /// The adversarial bound `T_(f+1)(x)` the outcome was compared
    /// against when the trace captures a dominance violation.
    pub bound: Option<f64>,
    /// The outcome observed when the trace was recorded.
    pub outcome: SearchOutcome,
}

impl RunTrace {
    /// Runs a simulation and records it as a trace.
    ///
    /// # Errors
    ///
    /// Propagates simulation construction failures.
    pub fn record(
        reason: impl Into<String>,
        trajectories: Vec<PiecewiseTrajectory>,
        target: Target,
        plan: &FaultPlan,
        seed: u64,
        config: SimConfig,
        bound: Option<f64>,
    ) -> Result<Self> {
        RunTrace::record_with_quorum(reason, trajectories, target, plan, seed, config, bound, None)
    }

    /// Runs a simulation under the claim-quorum layer and records it as
    /// a trace; `quorum = None` is [`RunTrace::record`].
    ///
    /// # Errors
    ///
    /// Propagates simulation construction failures.
    #[allow(clippy::too_many_arguments)]
    pub fn record_with_quorum(
        reason: impl Into<String>,
        trajectories: Vec<PiecewiseTrajectory>,
        target: Target,
        plan: &FaultPlan,
        seed: u64,
        config: SimConfig,
        bound: Option<f64>,
        quorum: Option<QuorumConfig>,
    ) -> Result<Self> {
        let kinds: Vec<FaultKind> = (0..plan.len()).map(|i| plan.kind(RobotId(i))).collect();
        let outcome =
            Simulation::with_quorum(trajectories.clone(), target, plan, seed, config, quorum)?
                .run();
        Ok(RunTrace {
            version: TRACE_VERSION,
            reason: reason.into(),
            trajectories,
            target: target.position(),
            plan: kinds,
            seed,
            record_trace: config.record_trace,
            stop_at_detection: config.stop_at_detection,
            quorum,
            bound,
            outcome,
        })
    }

    /// The engine configuration stored in the trace.
    #[must_use]
    pub fn config(&self) -> SimConfig {
        SimConfig { record_trace: self.record_trace, stop_at_detection: self.stop_at_detection }
    }

    /// Re-executes the recorded run from its stored inputs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] for an unsupported trace version or an
    /// invalid target, and propagates fault-plan and simulation
    /// validation failures — a hand-edited trace with out-of-range
    /// parameters is rejected, never panicked on.
    pub fn replay(&self) -> Result<SearchOutcome> {
        if self.version != TRACE_VERSION {
            return Err(Error::domain(format!(
                "unsupported trace version {} (this build reads version {TRACE_VERSION})",
                self.version
            )));
        }
        let target = Target::new(self.target)?;
        let plan = FaultPlan::new(self.plan.clone())?;
        Ok(Simulation::with_quorum(
            self.trajectories.clone(),
            target,
            &plan,
            self.seed,
            self.config(),
            self.quorum,
        )?
        .run())
    }

    /// Replays the trace and checks that the recorded outcome is
    /// reproduced exactly (bit-for-bit detection time, visit order and
    /// event trace).
    ///
    /// # Errors
    ///
    /// Propagates [`Self::replay`] failures; returns [`Error::Domain`]
    /// when the replayed outcome differs from the recorded one.
    pub fn verify(&self) -> Result<()> {
        let replayed = self.replay()?;
        if replayed != self.outcome {
            return Err(Error::domain(format!(
                "trace replay diverged from the recorded outcome: recorded detection {:?}, replayed {:?}",
                self.outcome.detection, replayed.detection
            )));
        }
        Ok(())
    }

    /// Serializes the trace to pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] when the trace contains values JSON
    /// cannot represent (non-finite floats).
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| Error::domain(format!("trace serialization failed: {e}")))
    }

    /// Parses a trace from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] describing the parse failure.
    pub fn from_json(text: &str) -> Result<Self> {
        serde_json::from_str(text).map_err(|e| Error::domain(format!("trace parse failed: {e}")))
    }

    /// Re-records this trace with a different fault plan (all other
    /// inputs unchanged).
    fn with_plan(&self, kinds: Vec<FaultKind>) -> Result<Self> {
        RunTrace::record_with_quorum(
            self.reason.clone(),
            self.trajectories.clone(),
            Target::new(self.target)?,
            &FaultPlan::new(kinds)?,
            self.seed,
            self.config(),
            self.bound,
            self.quorum,
        )
    }

    /// Re-records this trace with a different target position.
    fn with_target(&self, position: f64) -> Result<Self> {
        RunTrace::record_with_quorum(
            self.reason.clone(),
            self.trajectories.clone(),
            Target::new(position)?,
            &FaultPlan::new(self.plan.clone())?,
            self.seed,
            self.config(),
            self.bound,
            self.quorum,
        )
    }

    /// Deterministically shrinks the trace while `still_failing` keeps
    /// holding, and returns the smallest failing trace found.
    ///
    /// Two passes, each re-running the simulation for every candidate:
    ///
    /// 1. **Fault minimization** — one faulty robot at a time is made
    ///    healthy; the change is kept if the failure persists, until a
    ///    fixed point.
    /// 2. **Target minimization** — the target's excess distance beyond
    ///    the minimum 1 is halved repeatedly while the failure
    ///    persists.
    ///
    /// The original trace is returned unchanged when nothing can be
    /// removed (it is assumed to satisfy `still_failing`).
    #[must_use]
    pub fn shrunk(&self, still_failing: impl Fn(&RunTrace) -> bool) -> RunTrace {
        let mut best = self.clone();
        loop {
            let mut improved = false;
            for i in 0..best.plan.len() {
                if !best.plan[i].is_faulty() {
                    continue;
                }
                let mut kinds = best.plan.clone();
                kinds[i] = FaultKind::Reliable;
                if let Ok(candidate) = best.with_plan(kinds) {
                    if still_failing(&candidate) {
                        best = candidate;
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        // Halving converges geometrically; 64 steps take the excess
        // below any representable threshold.
        for _ in 0..64 {
            let excess = best.target.abs() - 1.0;
            if excess <= 1e-12 {
                break;
            }
            let position = best.target.signum() * (1.0 + excess / 2.0);
            match best.with_target(position) {
                Ok(candidate) if still_failing(&candidate) => best = candidate,
                _ => break,
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultMask;
    use faultline_core::TrajectoryBuilder;

    fn straight(to: f64) -> PiecewiseTrajectory {
        TrajectoryBuilder::from_origin().sweep_to(to).finish().unwrap()
    }

    fn sample_trace() -> RunTrace {
        let plan = FaultPlan::new(vec![
            FaultKind::Sensor,
            FaultKind::Intermittent { miss_probability: 0.5 },
            FaultKind::Reliable,
        ])
        .unwrap();
        RunTrace::record(
            "test",
            vec![straight(9.0), straight(9.0), straight(-9.0)],
            Target::new(3.0).unwrap(),
            &plan,
            1234,
            SimConfig { record_trace: true, stop_at_detection: true },
            Some(3.0),
        )
        .unwrap()
    }

    #[test]
    fn replay_reproduces_the_recorded_outcome() {
        let trace = sample_trace();
        assert_eq!(trace.replay().unwrap(), trace.outcome);
        trace.verify().unwrap();
    }

    #[test]
    fn json_round_trip_is_bit_for_bit() {
        let trace = sample_trace();
        let json = trace.to_json().unwrap();
        let parsed = RunTrace::from_json(&json).unwrap();
        assert_eq!(parsed, trace);
        parsed.verify().unwrap();
        // Serializing the parsed trace reproduces the same document.
        assert_eq!(parsed.to_json().unwrap(), json);
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut trace = sample_trace();
        trace.version = TRACE_VERSION + 1;
        assert!(trace.replay().is_err());
    }

    #[test]
    fn corrupted_plan_is_rejected_not_panicked() {
        let mut trace = sample_trace();
        trace.plan[1] = FaultKind::Intermittent { miss_probability: 7.0 };
        assert!(trace.replay().is_err());
    }

    #[test]
    fn corrupted_target_is_rejected() {
        let mut trace = sample_trace();
        trace.target = 0.25;
        assert!(trace.replay().is_err());
    }

    #[test]
    fn malformed_json_is_a_domain_error() {
        assert!(RunTrace::from_json("{ not json").is_err());
        assert!(RunTrace::from_json("{}").is_err());
    }

    #[test]
    fn shrinking_drops_irrelevant_faults_and_walks_the_target_in() {
        // Robot 0 covers the positive ray, robot 1 never goes there:
        // only robot 0's fault matters for missing a positive target.
        let plan = FaultPlan::new(vec![FaultKind::Sensor, FaultKind::Sensor]).unwrap();
        let trace = RunTrace::record(
            "undetected target",
            vec![straight(9.0), straight(-9.0)],
            Target::new(3.0).unwrap(),
            &plan,
            0,
            SimConfig::default(),
            None,
        )
        .unwrap();
        assert!(!trace.outcome.detected());

        let shrunk = trace.shrunk(|t| !t.outcome.detected());
        let faults: Vec<bool> = shrunk.plan.iter().map(FaultKind::is_faulty).collect();
        assert_eq!(faults, vec![true, false], "robot 1's fault was irrelevant");
        assert!(shrunk.target < 1.5, "target walked toward the minimum, got {}", shrunk.target);
        assert!(!shrunk.outcome.detected(), "the shrunk trace still fails");
    }

    #[test]
    fn mask_round_trip_through_plan() {
        // A trace recorded from a classic mask replays identically to
        // the mask-based simulation.
        let mask = FaultMask::from_indices(2, &[0]).unwrap();
        let trajectories = vec![straight(9.0), straight(5.0)];
        let target = Target::new(2.0).unwrap();
        let direct = Simulation::new(trajectories.clone(), target, &mask, SimConfig::default())
            .unwrap()
            .run();
        let trace = RunTrace::record(
            "mask",
            trajectories,
            target,
            &FaultPlan::from_mask(&mask),
            0,
            SimConfig::default(),
            None,
        )
        .unwrap();
        assert_eq!(trace.outcome, direct);
    }
}
