//! Fault assignment: which robots are faulty in a given run.
//!
//! The paper's adversary chooses faults in the worst possible way; the
//! simulator additionally supports fixed and random (Bernoulli)
//! assignments for Monte-Carlo experiments and failure injection.

use faultline_core::{Error, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::robot::{Reliability, RobotId};

/// A concrete assignment of reliability to each of `n` robots.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultMask {
    faulty: Vec<bool>,
}

impl FaultMask {
    /// All robots reliable.
    #[must_use]
    pub fn all_reliable(n: usize) -> Self {
        FaultMask { faulty: vec![false; n] }
    }

    /// Marks exactly the robots at `indices` as faulty.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameters`] when an index is out of
    /// range or listed twice.
    pub fn from_indices(n: usize, indices: &[usize]) -> Result<Self> {
        let mut faulty = vec![false; n];
        for &i in indices {
            if i >= n {
                return Err(Error::invalid_params(n, indices.len(), format!(
                    "fault index {i} out of range for {n} robots"
                )));
            }
            if faulty[i] {
                return Err(Error::invalid_params(n, indices.len(), format!(
                    "fault index {i} listed twice"
                )));
            }
            faulty[i] = true;
        }
        Ok(FaultMask { faulty })
    }

    /// Builds a mask directly from booleans (`true` = faulty).
    #[must_use]
    pub fn from_bools(faulty: Vec<bool>) -> Self {
        FaultMask { faulty }
    }

    /// Number of robots covered by the mask.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faulty.len()
    }

    /// Whether the mask covers zero robots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faulty.is_empty()
    }

    /// Whether robot `id` is faulty.
    #[must_use]
    pub fn is_faulty(&self, id: RobotId) -> bool {
        self.faulty.get(id.0).copied().unwrap_or(false)
    }

    /// The reliability of robot `id`.
    #[must_use]
    pub fn reliability(&self, id: RobotId) -> Reliability {
        if self.is_faulty(id) {
            Reliability::Faulty
        } else {
            Reliability::Reliable
        }
    }

    /// Number of faulty robots.
    #[must_use]
    pub fn fault_count(&self) -> usize {
        self.faulty.iter().filter(|&&b| b).count()
    }

    /// Indices of the faulty robots.
    #[must_use]
    pub fn faulty_indices(&self) -> Vec<usize> {
        self.faulty
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect()
    }
}

/// A source of fault assignments, one per simulated run.
///
/// Implementors may be deterministic (fixed sets) or random; the
/// worst-case adversary is not a `FaultModel` because it needs to see
/// the trajectories and target first — see
/// [`crate::adversary::worst_case_mask`].
pub trait FaultModel: std::fmt::Debug {
    /// Produces a fault mask for `n` robots.
    fn assign(&mut self, n: usize) -> FaultMask;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Always assigns the same fixed set of faulty robots.
#[derive(Debug, Clone)]
pub struct FixedFaults {
    indices: Vec<usize>,
}

impl FixedFaults {
    /// Creates the model from faulty robot indices.
    #[must_use]
    pub fn new(indices: Vec<usize>) -> Self {
        FixedFaults { indices }
    }
}

impl FaultModel for FixedFaults {
    fn assign(&mut self, n: usize) -> FaultMask {
        FaultMask::from_indices(n, &self.indices)
            .unwrap_or_else(|_| FaultMask::all_reliable(n))
    }

    fn name(&self) -> &'static str {
        "fixed"
    }
}

/// Marks each robot faulty independently with probability `p`,
/// truncated to at most `max_faults` faults (earliest indices win) so
/// the assignment stays within the algorithm's tolerance.
#[derive(Debug)]
pub struct BernoulliFaults<R: Rng> {
    p: f64,
    max_faults: usize,
    rng: R,
}

impl<R: Rng + std::fmt::Debug> BernoulliFaults<R> {
    /// Creates the model.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] unless `0 <= p <= 1`.
    pub fn new(p: f64, max_faults: usize, rng: R) -> Result<Self> {
        if !(0.0..=1.0).contains(&p) {
            return Err(Error::domain(format!("fault probability must be in [0, 1], got {p}")));
        }
        Ok(BernoulliFaults { p, max_faults, rng })
    }
}

impl<R: Rng + std::fmt::Debug> FaultModel for BernoulliFaults<R> {
    fn assign(&mut self, n: usize) -> FaultMask {
        let mut faulty = vec![false; n];
        let mut budget = self.max_faults;
        for slot in faulty.iter_mut() {
            if budget == 0 {
                break;
            }
            if self.rng.random_bool(self.p) {
                *slot = true;
                budget -= 1;
            }
        }
        FaultMask::from_bools(faulty)
    }

    fn name(&self) -> &'static str {
        "bernoulli"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mask_construction_and_queries() {
        let m = FaultMask::from_indices(4, &[1, 3]).unwrap();
        assert_eq!(m.len(), 4);
        assert!(!m.is_empty());
        assert_eq!(m.fault_count(), 2);
        assert!(m.is_faulty(RobotId(1)));
        assert!(!m.is_faulty(RobotId(0)));
        assert_eq!(m.reliability(RobotId(3)), Reliability::Faulty);
        assert_eq!(m.reliability(RobotId(2)), Reliability::Reliable);
        assert_eq!(m.faulty_indices(), vec![1, 3]);
        // Out-of-range ids are treated as absent, hence reliable.
        assert!(!m.is_faulty(RobotId(99)));
    }

    #[test]
    fn mask_rejects_bad_indices() {
        assert!(FaultMask::from_indices(3, &[3]).is_err());
        assert!(FaultMask::from_indices(3, &[1, 1]).is_err());
    }

    #[test]
    fn all_reliable_has_no_faults() {
        let m = FaultMask::all_reliable(5);
        assert_eq!(m.fault_count(), 0);
        assert!(m.faulty_indices().is_empty());
    }

    #[test]
    fn fixed_model_is_deterministic() {
        let mut model = FixedFaults::new(vec![0, 2]);
        let a = model.assign(4);
        let b = model.assign(4);
        assert_eq!(a, b);
        assert_eq!(model.name(), "fixed");
    }

    #[test]
    fn fixed_model_falls_back_when_out_of_range() {
        let mut model = FixedFaults::new(vec![9]);
        assert_eq!(model.assign(3).fault_count(), 0);
    }

    #[test]
    fn bernoulli_respects_budget() {
        let rng = StdRng::seed_from_u64(7);
        let mut model = BernoulliFaults::new(1.0, 2, rng).unwrap();
        let m = model.assign(10);
        assert_eq!(m.fault_count(), 2);
        assert_eq!(model.name(), "bernoulli");
    }

    #[test]
    fn bernoulli_zero_probability_never_faults() {
        let rng = StdRng::seed_from_u64(7);
        let mut model = BernoulliFaults::new(0.0, 5, rng).unwrap();
        assert_eq!(model.assign(20).fault_count(), 0);
    }

    #[test]
    fn bernoulli_validates_probability() {
        let rng = StdRng::seed_from_u64(7);
        assert!(BernoulliFaults::new(1.5, 2, rng).is_err());
    }

    #[test]
    fn bernoulli_is_reproducible_under_same_seed() {
        let a = BernoulliFaults::new(0.5, 10, StdRng::seed_from_u64(42)).unwrap().assign(16);
        let b = BernoulliFaults::new(0.5, 10, StdRng::seed_from_u64(42)).unwrap().assign(16);
        assert_eq!(a, b);
    }
}
