//! Fault assignment: which robots are faulty in a given run.
//!
//! The paper's adversary chooses faults in the worst possible way; the
//! simulator additionally supports fixed and random (Bernoulli)
//! assignments for Monte-Carlo experiments and failure injection.
//!
//! Beyond the paper's binary sensor faults ([`FaultMask`]), the
//! injection harness supports a richer taxonomy ([`FaultKind`] /
//! [`FaultPlan`]): intermittent sensors that miss each visit with some
//! probability, delayed detection reports, and speed-degraded robots.
//! All of these are *weaker* than a permanent sensor fault, which is
//! why the paper's worst-case analysis still applies to them.

use faultline_core::{Error, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::robot::{Reliability, RobotId};

/// Validates an adversary's fault budget against the fleet size: the
/// paper's adversary may corrupt at most `n - 1` robots, otherwise no
/// reliable robot exists and no target is ever confirmed.
///
/// Shared by the sensor-fault adversary ([`crate::adversary`]) and the
/// crash adversary ([`crate::crash`]) so both reject budgets the same
/// way.
///
/// # Errors
///
/// Returns [`Error::InvalidParameters`] when `f >= n`.
pub fn check_adversary_budget(n: usize, f: usize) -> Result<()> {
    if f >= n {
        return Err(Error::invalid_params(n, f, "the adversary may corrupt at most n - 1 robots"));
    }
    Ok(())
}

/// A concrete assignment of reliability to each of `n` robots.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultMask {
    faulty: Vec<bool>,
}

impl FaultMask {
    /// All robots reliable.
    #[must_use]
    pub fn all_reliable(n: usize) -> Self {
        FaultMask { faulty: vec![false; n] }
    }

    /// Marks exactly the robots at `indices` as faulty.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameters`] when an index is out of
    /// range or listed twice.
    pub fn from_indices(n: usize, indices: &[usize]) -> Result<Self> {
        let mut faulty = vec![false; n];
        for &i in indices {
            if i >= n {
                return Err(Error::invalid_params(
                    n,
                    indices.len(),
                    format!("fault index {i} out of range for {n} robots"),
                ));
            }
            if faulty[i] {
                return Err(Error::invalid_params(
                    n,
                    indices.len(),
                    format!("fault index {i} listed twice"),
                ));
            }
            faulty[i] = true;
        }
        Ok(FaultMask { faulty })
    }

    /// Builds a mask directly from booleans (`true` = faulty).
    #[must_use]
    pub fn from_bools(faulty: Vec<bool>) -> Self {
        FaultMask { faulty }
    }

    /// Builds a mask from booleans, validating the length against the
    /// intended fleet size `n`. Prefer this over [`Self::from_bools`]
    /// whenever the fleet size is known at the call site: a mask of the
    /// wrong length is only caught later, at simulation construction.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameters`] when `faulty.len() != n`.
    pub fn from_bools_checked(n: usize, faulty: Vec<bool>) -> Result<Self> {
        if faulty.len() != n {
            return Err(Error::invalid_params(
                n,
                faulty.iter().filter(|&&b| b).count(),
                format!("fault mask covers {} robots but the fleet has {n}", faulty.len()),
            ));
        }
        Ok(FaultMask { faulty })
    }

    /// Checks that the mask stays within a fault budget of `f`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameters`] when the mask marks more
    /// than `f` robots faulty.
    pub fn check_budget(&self, f: usize) -> Result<()> {
        let count = self.fault_count();
        if count > f {
            return Err(Error::invalid_params(
                self.len(),
                f,
                format!("{count} faults exceed the budget f = {f}"),
            ));
        }
        Ok(())
    }

    /// Number of robots covered by the mask.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faulty.len()
    }

    /// Whether the mask covers zero robots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faulty.is_empty()
    }

    /// Whether robot `id` is faulty.
    #[must_use]
    pub fn is_faulty(&self, id: RobotId) -> bool {
        self.faulty.get(id.0).copied().unwrap_or(false)
    }

    /// The reliability of robot `id`.
    #[must_use]
    pub fn reliability(&self, id: RobotId) -> Reliability {
        if self.is_faulty(id) {
            Reliability::Faulty
        } else {
            Reliability::Reliable
        }
    }

    /// Number of faulty robots.
    #[must_use]
    pub fn fault_count(&self) -> usize {
        self.faulty.iter().filter(|&&b| b).count()
    }

    /// Indices of the faulty robots.
    #[must_use]
    pub fn faulty_indices(&self) -> Vec<usize> {
        self.faulty.iter().enumerate().filter_map(|(i, &b)| b.then_some(i)).collect()
    }
}

/// How a single robot misbehaves.
///
/// Every kind other than [`FaultKind::Reliable`] moves exactly like a
/// healthy robot unless stated otherwise; the taxonomy only perturbs
/// *when* (or whether) the robot reports the target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A healthy robot: detects the target on its first visit.
    Reliable,
    /// The paper's fault model: moves normally, never detects.
    Sensor,
    /// The sensor misses each visit independently with probability
    /// `miss_probability`; misses are decided by a deterministic
    /// per-(seed, robot, visit) coin so runs are replayable.
    Intermittent {
        /// Probability in `[0, 1]` of missing any single visit.
        miss_probability: f64,
    },
    /// The sensor works but the report arrives `latency` time units
    /// after the physical visit; reports past the horizon are lost.
    Delayed {
        /// Reporting latency, `>= 0` and finite.
        latency: f64,
    },
    /// The robot traverses the same path at `factor` times unit speed,
    /// so every waypoint (and visit) happens at `t / factor`.
    SpeedDegraded {
        /// Speed factor in `(0, 1]`.
        factor: f64,
    },
    /// A Byzantine robot: it moves exactly like a healthy robot but its
    /// sensor channel is adversarial. True visits are never honestly
    /// reported, and the robot asserts *false* detection claims at its
    /// turning points, each independently with probability `lie_rate`
    /// (decided by a deterministic per-(seed, robot, turn) coin, on a
    /// separate stream from the intermittent-sensor coins, so runs stay
    /// replayable). Lone lies are harmless under the claim-quorum
    /// layer — see [`crate::engine::QuorumConfig`].
    Byzantine {
        /// Probability in `[0, 1]` of asserting a false claim at each
        /// turning point.
        lie_rate: f64,
    },
    /// A probabilistically faulty sensor: each physical visit detects
    /// the target independently with probability `detect_probability`,
    /// via the same deterministic per-(seed, robot, visit) coins as
    /// [`FaultKind::Intermittent`]. `detect_probability = 1` collapses
    /// bitwise to [`FaultKind::Reliable`] and `0` to
    /// [`FaultKind::Sensor`].
    PFaulty {
        /// Per-visit detection probability in `[0, 1]`.
        detect_probability: f64,
    },
}

impl FaultKind {
    /// Validates the kind's numeric parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NonFinite`] for NaN/infinite parameters and
    /// [`Error::Domain`] for out-of-range ones.
    pub fn validate(&self) -> Result<()> {
        match *self {
            FaultKind::Reliable | FaultKind::Sensor => Ok(()),
            FaultKind::Intermittent { miss_probability } => {
                Error::ensure_finite("miss probability", miss_probability)?;
                if !(0.0..=1.0).contains(&miss_probability) {
                    return Err(Error::domain(format!(
                        "miss probability must be in [0, 1], got {miss_probability}"
                    )));
                }
                Ok(())
            }
            FaultKind::Delayed { latency } => {
                Error::ensure_finite("detection latency", latency)?;
                if latency < 0.0 {
                    return Err(Error::domain(format!(
                        "detection latency must be >= 0, got {latency}"
                    )));
                }
                Ok(())
            }
            FaultKind::SpeedDegraded { factor } => {
                Error::ensure_finite("speed factor", factor)?;
                if !(factor > 0.0) || factor > 1.0 {
                    return Err(Error::domain(format!(
                        "speed factor must be in (0, 1], got {factor}"
                    )));
                }
                Ok(())
            }
            FaultKind::Byzantine { lie_rate } => {
                Error::ensure_finite("lie rate", lie_rate)?;
                if !(0.0..=1.0).contains(&lie_rate) {
                    return Err(Error::domain(format!(
                        "lie rate must be in [0, 1], got {lie_rate}"
                    )));
                }
                Ok(())
            }
            FaultKind::PFaulty { detect_probability } => {
                Error::ensure_finite("detection probability", detect_probability)?;
                if !(0.0..=1.0).contains(&detect_probability) {
                    return Err(Error::domain(format!(
                        "detection probability must be in [0, 1], got {detect_probability}"
                    )));
                }
                Ok(())
            }
        }
    }

    /// Whether the kind deviates from a healthy robot at all.
    #[must_use]
    pub fn is_faulty(&self) -> bool {
        !matches!(self, FaultKind::Reliable)
    }

    /// Short name for reports and traces.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Reliable => "reliable",
            FaultKind::Sensor => "sensor",
            FaultKind::Intermittent { .. } => "intermittent",
            FaultKind::Delayed { .. } => "delayed",
            FaultKind::SpeedDegraded { .. } => "speed-degraded",
            FaultKind::Byzantine { .. } => "byzantine",
            FaultKind::PFaulty { .. } => "p-faulty",
        }
    }
}

/// A per-robot assignment of [`FaultKind`]s, validated at construction
/// so the simulation engine never sees out-of-range parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    kinds: Vec<FaultKind>,
}

impl FaultPlan {
    /// Builds a plan from one kind per robot.
    ///
    /// # Errors
    ///
    /// Propagates the first [`FaultKind::validate`] failure.
    pub fn new(kinds: Vec<FaultKind>) -> Result<Self> {
        for kind in &kinds {
            kind.validate()?;
        }
        Ok(FaultPlan { kinds })
    }

    /// All robots healthy.
    #[must_use]
    pub fn all_reliable(n: usize) -> Self {
        FaultPlan { kinds: vec![FaultKind::Reliable; n] }
    }

    /// Lifts a binary sensor-fault mask into the taxonomy.
    #[must_use]
    pub fn from_mask(mask: &FaultMask) -> Self {
        let kinds =
            (0..mask.len())
                .map(|i| {
                    if mask.is_faulty(RobotId(i)) {
                        FaultKind::Sensor
                    } else {
                        FaultKind::Reliable
                    }
                })
                .collect();
        FaultPlan { kinds }
    }

    /// Number of robots covered by the plan.
    #[must_use]
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the plan covers zero robots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The kind assigned to robot `id` (out-of-range ids are healthy,
    /// mirroring [`FaultMask::is_faulty`]).
    #[must_use]
    pub fn kind(&self, id: RobotId) -> FaultKind {
        self.kinds.get(id.0).copied().unwrap_or(FaultKind::Reliable)
    }

    /// Number of robots with any fault.
    #[must_use]
    pub fn fault_count(&self) -> usize {
        self.kinds.iter().filter(|k| k.is_faulty()).count()
    }

    /// Indices of the robots with any fault.
    #[must_use]
    pub fn faulty_indices(&self) -> Vec<usize> {
        self.kinds.iter().enumerate().filter_map(|(i, k)| k.is_faulty().then_some(i)).collect()
    }

    /// Number of Byzantine robots in the plan — the `f` of the
    /// `n >= 2f + 1` quorum regime.
    #[must_use]
    pub fn byzantine_count(&self) -> usize {
        self.kinds.iter().filter(|k| matches!(k, FaultKind::Byzantine { .. })).count()
    }

    /// Checks that the plan stays within a fault budget of `f`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameters`] when more than `f` robots
    /// carry a fault.
    pub fn check_budget(&self, f: usize) -> Result<()> {
        let count = self.fault_count();
        if count > f {
            return Err(Error::invalid_params(
                self.len(),
                f,
                format!("{count} faults exceed the budget f = {f}"),
            ));
        }
        Ok(())
    }
}

/// A source of fault assignments, one per simulated run.
///
/// Implementors may be deterministic (fixed sets) or random; the
/// worst-case adversary is not a `FaultModel` because it needs to see
/// the trajectories and target first — see
/// [`crate::adversary::worst_case_mask`].
pub trait FaultModel: std::fmt::Debug {
    /// Produces a fault mask for `n` robots.
    fn assign(&mut self, n: usize) -> FaultMask;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Always assigns the same fixed set of faulty robots.
#[derive(Debug, Clone)]
pub struct FixedFaults {
    indices: Vec<usize>,
}

impl FixedFaults {
    /// Creates the model from faulty robot indices.
    #[must_use]
    pub fn new(indices: Vec<usize>) -> Self {
        FixedFaults { indices }
    }
}

impl FaultModel for FixedFaults {
    fn assign(&mut self, n: usize) -> FaultMask {
        FaultMask::from_indices(n, &self.indices).unwrap_or_else(|_| FaultMask::all_reliable(n))
    }

    fn name(&self) -> &'static str {
        "fixed"
    }
}

/// Marks each robot faulty independently with probability `p`,
/// truncated to at most `max_faults` faults (earliest indices win) so
/// the assignment stays within the algorithm's tolerance.
#[derive(Debug)]
pub struct BernoulliFaults<R: Rng> {
    p: f64,
    max_faults: usize,
    rng: R,
}

impl<R: Rng + std::fmt::Debug> BernoulliFaults<R> {
    /// Creates the model.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] unless `0 <= p <= 1`.
    pub fn new(p: f64, max_faults: usize, rng: R) -> Result<Self> {
        if !(0.0..=1.0).contains(&p) {
            return Err(Error::domain(format!("fault probability must be in [0, 1], got {p}")));
        }
        Ok(BernoulliFaults { p, max_faults, rng })
    }
}

impl<R: Rng + std::fmt::Debug> FaultModel for BernoulliFaults<R> {
    fn assign(&mut self, n: usize) -> FaultMask {
        let mut faulty = vec![false; n];
        let mut budget = self.max_faults;
        for slot in faulty.iter_mut() {
            if budget == 0 {
                break;
            }
            if self.rng.random_bool(self.p) {
                *slot = true;
                budget -= 1;
            }
        }
        FaultMask::from_bools(faulty)
    }

    fn name(&self) -> &'static str {
        "bernoulli"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mask_construction_and_queries() {
        let m = FaultMask::from_indices(4, &[1, 3]).unwrap();
        assert_eq!(m.len(), 4);
        assert!(!m.is_empty());
        assert_eq!(m.fault_count(), 2);
        assert!(m.is_faulty(RobotId(1)));
        assert!(!m.is_faulty(RobotId(0)));
        assert_eq!(m.reliability(RobotId(3)), Reliability::Faulty);
        assert_eq!(m.reliability(RobotId(2)), Reliability::Reliable);
        assert_eq!(m.faulty_indices(), vec![1, 3]);
        // Out-of-range ids are treated as absent, hence reliable.
        assert!(!m.is_faulty(RobotId(99)));
    }

    #[test]
    fn mask_rejects_bad_indices() {
        assert!(FaultMask::from_indices(3, &[3]).is_err());
        assert!(FaultMask::from_indices(3, &[1, 1]).is_err());
    }

    #[test]
    fn all_reliable_has_no_faults() {
        let m = FaultMask::all_reliable(5);
        assert_eq!(m.fault_count(), 0);
        assert!(m.faulty_indices().is_empty());
    }

    #[test]
    fn fixed_model_is_deterministic() {
        let mut model = FixedFaults::new(vec![0, 2]);
        let a = model.assign(4);
        let b = model.assign(4);
        assert_eq!(a, b);
        assert_eq!(model.name(), "fixed");
    }

    #[test]
    fn fixed_model_falls_back_when_out_of_range() {
        let mut model = FixedFaults::new(vec![9]);
        assert_eq!(model.assign(3).fault_count(), 0);
    }

    #[test]
    fn bernoulli_respects_budget() {
        let rng = StdRng::seed_from_u64(7);
        let mut model = BernoulliFaults::new(1.0, 2, rng).unwrap();
        let m = model.assign(10);
        assert_eq!(m.fault_count(), 2);
        assert_eq!(model.name(), "bernoulli");
    }

    #[test]
    fn bernoulli_zero_probability_never_faults() {
        let rng = StdRng::seed_from_u64(7);
        let mut model = BernoulliFaults::new(0.0, 5, rng).unwrap();
        assert_eq!(model.assign(20).fault_count(), 0);
    }

    #[test]
    fn bernoulli_validates_probability() {
        let rng = StdRng::seed_from_u64(7);
        assert!(BernoulliFaults::new(1.5, 2, rng).is_err());
    }

    #[test]
    fn bernoulli_is_reproducible_under_same_seed() {
        let a = BernoulliFaults::new(0.5, 10, StdRng::seed_from_u64(42)).unwrap().assign(16);
        let b = BernoulliFaults::new(0.5, 10, StdRng::seed_from_u64(42)).unwrap().assign(16);
        assert_eq!(a, b);
    }

    #[test]
    fn checked_bools_validate_length() {
        assert!(FaultMask::from_bools_checked(3, vec![true, false, false]).is_ok());
        assert!(FaultMask::from_bools_checked(3, vec![true, false]).is_err());
    }

    #[test]
    fn mask_budget_check() {
        let m = FaultMask::from_indices(5, &[0, 4]).unwrap();
        assert!(m.check_budget(2).is_ok());
        assert!(m.check_budget(1).is_err());
    }

    #[test]
    fn adversary_budget_rejects_f_at_least_n() {
        assert!(check_adversary_budget(5, 4).is_ok());
        assert!(check_adversary_budget(5, 5).is_err());
        assert!(check_adversary_budget(0, 0).is_err());
    }

    #[test]
    fn fault_kind_validation() {
        assert!(FaultKind::Reliable.validate().is_ok());
        assert!(FaultKind::Sensor.validate().is_ok());
        assert!(FaultKind::Intermittent { miss_probability: 0.5 }.validate().is_ok());
        assert!(FaultKind::Intermittent { miss_probability: 1.5 }.validate().is_err());
        assert!(FaultKind::Intermittent { miss_probability: f64::NAN }.validate().is_err());
        assert!(FaultKind::Delayed { latency: 0.0 }.validate().is_ok());
        assert!(FaultKind::Delayed { latency: -1.0 }.validate().is_err());
        assert!(FaultKind::Delayed { latency: f64::INFINITY }.validate().is_err());
        assert!(FaultKind::SpeedDegraded { factor: 1.0 }.validate().is_ok());
        assert!(FaultKind::SpeedDegraded { factor: 0.0 }.validate().is_err());
        assert!(FaultKind::SpeedDegraded { factor: 2.0 }.validate().is_err());
        assert!(FaultKind::Byzantine { lie_rate: 0.0 }.validate().is_ok());
        assert!(FaultKind::Byzantine { lie_rate: 1.0 }.validate().is_ok());
        assert!(FaultKind::Byzantine { lie_rate: -0.1 }.validate().is_err());
        assert!(FaultKind::Byzantine { lie_rate: 1.1 }.validate().is_err());
        assert!(FaultKind::Byzantine { lie_rate: f64::NAN }.validate().is_err());
        assert!(FaultKind::PFaulty { detect_probability: 0.0 }.validate().is_ok());
        assert!(FaultKind::PFaulty { detect_probability: 1.0 }.validate().is_ok());
        assert!(FaultKind::PFaulty { detect_probability: 1.5 }.validate().is_err());
        assert!(FaultKind::PFaulty { detect_probability: f64::INFINITY }.validate().is_err());
    }

    #[test]
    fn byzantine_count_tallies_only_byzantine_kinds() {
        let plan = FaultPlan::new(vec![
            FaultKind::Byzantine { lie_rate: 0.5 },
            FaultKind::Sensor,
            FaultKind::PFaulty { detect_probability: 0.5 },
            FaultKind::Byzantine { lie_rate: 0.0 },
            FaultKind::Reliable,
        ])
        .unwrap();
        assert_eq!(plan.byzantine_count(), 2);
        assert_eq!(plan.fault_count(), 4);
    }

    #[test]
    fn plan_construction_rejects_invalid_kinds() {
        assert!(FaultPlan::new(vec![FaultKind::Reliable, FaultKind::Sensor]).is_ok());
        assert!(FaultPlan::new(vec![FaultKind::SpeedDegraded { factor: -0.5 }]).is_err());
    }

    #[test]
    fn plan_from_mask_round_trips_fault_sets() {
        let mask = FaultMask::from_indices(4, &[1, 2]).unwrap();
        let plan = FaultPlan::from_mask(&mask);
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.fault_count(), 2);
        assert_eq!(plan.faulty_indices(), vec![1, 2]);
        assert_eq!(plan.kind(RobotId(1)), FaultKind::Sensor);
        assert_eq!(plan.kind(RobotId(0)), FaultKind::Reliable);
        // Out-of-range ids are healthy, like FaultMask::is_faulty.
        assert_eq!(plan.kind(RobotId(99)), FaultKind::Reliable);
        assert!(plan.check_budget(2).is_ok());
        assert!(plan.check_budget(1).is_err());
    }

    #[test]
    fn all_reliable_plan_is_fault_free() {
        let plan = FaultPlan::all_reliable(6);
        assert_eq!(plan.len(), 6);
        assert!(!plan.is_empty());
        assert_eq!(plan.fault_count(), 0);
        assert!(FaultPlan::all_reliable(0).is_empty());
    }
}
