//! Checkpoint files: round-granular snapshots of the optimizer state.
//!
//! A checkpoint is a single JSON document written atomically (to a
//! `.tmp` sibling, then renamed) after initialization and after every
//! completed round. Because the driver is a pure function of its
//! state (see [`crate::driver`]), resuming from any snapshot replays
//! the remaining rounds to *bit-identical* final output: all floats
//! round-trip losslessly (finite values print in shortest-roundtrip
//! form; the incumbent ratio additionally goes through the
//! `json_float` sentinel encoding), and deserialization re-validates
//! every schedule, so a hand-edited file fails loudly instead of
//! optimizing garbage.

use std::path::Path;

use faultline_core::{Error, Result};
use serde::{Deserialize, Serialize};

use crate::driver::OptimizerState;

/// The checkpoint format version this build writes and accepts.
pub const CHECKPOINT_VERSION: u32 = 1;

/// A versioned snapshot of an [`OptimizerState`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// The snapshotted state.
    pub state: OptimizerState,
}

impl Checkpoint {
    /// Wraps a state in the current format version.
    #[must_use]
    pub fn snapshot(state: &OptimizerState) -> Self {
        Checkpoint { version: CHECKPOINT_VERSION, state: state.clone() }
    }

    /// Writes the checkpoint atomically to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] on serialization or I/O failure.
    pub fn save(&self, path: &Path) -> Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| Error::domain(format!("checkpoint serialization failed: {e}")))?;
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, json.as_bytes())
            .map_err(|e| Error::domain(format!("writing {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| Error::domain(format!("renaming into {}: {e}", path.display())))?;
        Ok(())
    }

    /// Reads and validates a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] on I/O failure, a version mismatch,
    /// or a document whose schedules fail re-validation.
    pub fn load(path: &Path) -> Result<Self> {
        let raw = std::fs::read_to_string(path)
            .map_err(|e| Error::domain(format!("reading {}: {e}", path.display())))?;
        let checkpoint: Checkpoint = serde_json::from_str(&raw)
            .map_err(|e| Error::domain(format!("parsing {}: {e}", path.display())))?;
        if checkpoint.version != CHECKPOINT_VERSION {
            return Err(Error::domain(format!(
                "checkpoint {} has version {}, this build expects {CHECKPOINT_VERSION}",
                path.display(),
                checkpoint.version
            )));
        }
        Ok(checkpoint)
    }

    /// Unwraps the snapshotted state for resumption.
    #[must_use]
    pub fn into_state(self) -> OptimizerState {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::driver::{init_state, OptimizeConfig};

    fn tiny_state() -> OptimizerState {
        let mut config = OptimizeConfig::new(3, 1);
        config.budget = Budget::Tiny;
        config.xmax = Some(8.0);
        config.grid_points = Some(12);
        init_state(&config).unwrap()
    }

    #[test]
    fn checkpoints_round_trip_bit_identically() {
        let state = tiny_state();
        let dir = std::env::temp_dir().join("faultline-opt-checkpoint-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        Checkpoint::snapshot(&state).save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap().into_state();
        assert_eq!(loaded, state);
        // A second save of the loaded state is byte-identical: the
        // float encoding is lossless end to end.
        let path2 = dir.join("state2.json");
        Checkpoint::snapshot(&loaded).save(&path2).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), std::fs::read(&path2).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_mismatch_and_tampering_fail_loudly() {
        let state = tiny_state();
        let dir = std::env::temp_dir().join("faultline-opt-checkpoint-tamper");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        Checkpoint::snapshot(&state).save(&path).unwrap();
        let raw = std::fs::read_to_string(&path).unwrap();

        let wrong_version = raw.replacen("\"version\": 1", "\"version\": 99", 1);
        std::fs::write(&path, wrong_version).unwrap();
        assert!(Checkpoint::load(&path).is_err());

        // Corrupt a schedule so magnitudes stop increasing: the
        // re-validating deserializer must reject it.
        let tampered = raw.replacen("\"side\": 1.0", "\"side\": 7.0", 1);
        assert_ne!(tampered, raw, "expected a side field to tamper with");
        std::fs::write(&path, tampered).unwrap();
        assert!(Checkpoint::load(&path).is_err());

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
