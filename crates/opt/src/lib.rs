//! # faultline-opt
//!
//! A schedule-space optimizer that probes the gap between the paper's
//! upper bound (Theorem 1: the proportional algorithm `A(n, f)`) and
//! its lower bound (Theorem 2: the root `alpha(n)`) for the
//! interesting regime `f + 1 < n < 2f + 2`.
//!
//! The paper proves the two bounds do not meet; later work
//! (Kupavskii–Welzl; Czyzowicz et al., *Search on a Line by Byzantine
//! Robots*) narrowed the gap with non-proportional schedules. This
//! crate searches the space of [`faultline_core::FreeSchedule`]s —
//! arbitrary
//! interleaved turning-point sequences with geometric tails — using
//! the measured worst-case competitive ratio from the
//! `faultline_analysis::measure_free_schedule_cr` scan as the
//! objective.
//!
//! ## Pipeline
//!
//! 1. [`OptimizeConfig`] fixes `(n, f)`, a [`Budget`], and a seed.
//! 2. [`init_state`] lowers `A(n, f)` into the start set (start 0 is
//!    the exact lowering; the rest are seeded perturbations).
//! 3. [`advance_round`] runs one round of coordinate descent with
//!    golden-section line search plus an annealing sweep on every
//!    start, fanned out through [`faultline_core::par_map_with`] with
//!    per-`(seed, start, round)` RNG streams so results are
//!    deterministic regardless of thread count.
//! 4. [`Checkpoint`] files snapshot the full optimizer state after
//!    every round; resuming from a checkpoint replays the remaining
//!    rounds to bit-identical output.
//! 5. [`finish`] folds the best start into an [`OptimizeReport`] with
//!    the Theorem 1 closed form, the `alpha(n)` certificate, and the
//!    [`CrossCheck`] verdict (`certified lo <= best_found_cr`).
//!
//! ## Soundness guard
//!
//! A finite measurement window can under-estimate the true supremum: a
//! schedule may look better than the proven lower bound simply because
//! its bad targets lie beyond `xmax`. The objective therefore treats
//! any measurement below the certified `alpha(n)` enclosure
//! ([`faultline_core::certificate::certify_alpha`]) as overfitted and
//! rejects it ([`Objective::eval`] returns [`PENALTY`]), and the final
//! report cross-checks the winner against the same certificate — the
//! optimizer can never "prove" a sub-lower-bound schedule. Where
//! Theorem 1 is already tight (two-group pairs, and `n = f + 1` where
//! it equals the single-robot bound 9), the report sets
//! [`OptimizeReport::gap_closed`] and refuses to claim improvements:
//! the 9 bound is attained only asymptotically, so in-window "gains"
//! on those pairs are finite-window artifacts, never breakthroughs.
//!
//! ```
//! use faultline_opt::{run, Budget, OptimizeConfig};
//!
//! let mut config = OptimizeConfig::new(3, 1);
//! config.budget = Budget::Tiny;
//! config.xmax = Some(8.0);
//! let report = run(&config)?;
//! assert!(report.best_found_cr <= report.thm1_cr + 1e-9);
//! assert!(report.crosscheck.is_consistent());
//! # Ok::<(), faultline_core::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// `!(x > limit)` rejects NaN where `x <= limit` would accept it.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod budget;
pub mod checkpoint;
pub mod driver;
pub mod gap;
pub mod objective;
pub mod search;

pub use budget::{Budget, Knobs};
pub use checkpoint::{Checkpoint, CHECKPOINT_VERSION};
pub use driver::{
    advance_round, cross_check, finish, init_state, resume_state, run, run_with_checkpoint,
    CrossCheck, OptimizeConfig, OptimizeReport, OptimizerState, StartState, IMPROVEMENT_MARGIN,
    THM1_SLACK,
};
pub use gap::{gap_csv, gap_study, GapRow};
pub use objective::{Objective, PENALTY, PRESSURE_WEIGHT};
