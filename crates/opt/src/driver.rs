//! The optimizer driver: configuration, round-granular state,
//! deterministic parallel advancement, and the final gap report.
//!
//! Determinism contract: the entire run is a pure function of the
//! [`OptimizeConfig`]. Every start's round gets its own RNG stream
//! keyed by `(seed, start, round)` through a SplitMix64 finalizer,
//! starts fan out through the order-preserving
//! [`faultline_core::par_map_with`], and every local-search move is
//! greedy — so thread count, checkpoint interruptions, and resume
//! points cannot change the result.

use faultline_analysis::{measure_strategy_cr, resolve_strategy};
use faultline_core::certificate::certify_alpha;
use faultline_core::lower_bound::{alpha, lower_bound};
use faultline_core::{
    json_float, par_map_with, Algorithm, Certificate, Error, FreeSchedule, ParallelConfig, Params,
    Regime, Result,
};
use rand::{rngs::StdRng, SeedableRng};
use serde::{Deserialize, Serialize, Value};

use crate::budget::Budget;
use crate::objective::{Objective, PENALTY};
use crate::search::{anneal_sweep, coordinate_descent_sweep, perturb_robot};

/// Tolerance for the Theorem 1 acceptance check: the optimizer starts
/// from `A(n, f)`, so its best can exceed the closed form only by
/// measurement slack.
pub const THM1_SLACK: f64 = 1e-9;

/// Margin below the measured baseline a schedule must clear before the
/// report claims a strict improvement — never claimed silently.
pub const IMPROVEMENT_MARGIN: f64 = 1e-6;

/// A complete optimizer request: the `(n, f)` pair, the effort tier,
/// the RNG seed, and optional window/resolution overrides.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizeConfig {
    /// Number of robots.
    pub n: usize,
    /// Number of tolerated faults.
    pub f: usize,
    /// Effort tier (defaults to `small`).
    #[serde(default)]
    pub budget: Budget,
    /// RNG seed for perturbed starts and annealing (defaults to 0).
    #[serde(default)]
    pub seed: u64,
    /// Measurement window override; defaults to
    /// [`Objective::default_xmax`].
    #[serde(default)]
    pub xmax: Option<f64>,
    /// Scan resolution override; defaults to the budget's grid.
    #[serde(default)]
    pub grid_points: Option<usize>,
    /// When set, optimize the *expected* competitive ratio with every
    /// robot p-faulty at this per-visit detection probability instead
    /// of the worst-case ratio. Defaults to the worst-case objective.
    #[serde(default)]
    pub detect_probability: Option<f64>,
}

impl OptimizeConfig {
    /// A config with all-default knobs for `(n, f)`.
    #[must_use]
    pub fn new(n: usize, f: usize) -> Self {
        OptimizeConfig {
            n,
            f,
            budget: Budget::default(),
            seed: 0,
            xmax: None,
            grid_points: None,
            detect_probability: None,
        }
    }

    /// Validates and returns the `(n, f)` pair.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameters`] for unsolvable pairs.
    pub fn params(&self) -> Result<Params> {
        Params::new(self.n, self.f)
    }

    /// The resolved measurement window.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation.
    pub fn resolved_xmax(&self) -> Result<f64> {
        match self.xmax {
            Some(x) => Ok(x),
            None => Ok(Objective::default_xmax(self.params()?)),
        }
    }

    /// The resolved scan resolution.
    #[must_use]
    pub fn resolved_grid_points(&self) -> usize {
        self.grid_points.unwrap_or(self.budget.knobs().grid_points)
    }

    /// Builds the measurement objective this config describes.
    ///
    /// # Errors
    ///
    /// Propagates parameter and window validation.
    pub fn objective(&self) -> Result<Objective> {
        match self.detect_probability {
            Some(p) => Objective::with_detect_probability(
                self.params()?,
                self.resolved_xmax()?,
                self.resolved_grid_points(),
                p,
            ),
            None => {
                Objective::new(self.params()?, self.resolved_xmax()?, self.resolved_grid_points())
            }
        }
    }
}

/// One optimization start: its current schedule, its measured ratio,
/// and how many objective evaluations it has consumed.
#[derive(Debug, Clone, PartialEq)]
pub struct StartState {
    /// The incumbent schedule.
    pub schedule: FreeSchedule,
    /// The incumbent's objective *score*: its measured supremum plus
    /// the small peak-pressure tie-breaker (see
    /// [`crate::objective::PRESSURE_WEIGHT`]), or [`crate::PENALTY`]
    /// while a perturbed start has not yet found a measurable
    /// schedule.
    pub cr: f64,
    /// Objective evaluations consumed so far.
    pub evaluations: u64,
}

// `cr` goes through `json_float` so a checkpoint written by a future
// build with non-finite incumbents still round-trips losslessly.
impl Serialize for StartState {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        let schedule = serde::to_value(&self.schedule).map_err(serde::ser::Error::custom)?;
        let evaluations = serde::to_value(&self.evaluations).map_err(serde::ser::Error::custom)?;
        serializer.serialize_value(Value::Object(vec![
            ("schedule".to_owned(), schedule),
            ("cr".to_owned(), json_float::encode_f64(self.cr)),
            ("evaluations".to_owned(), evaluations),
        ]))
    }
}

impl<'de> Deserialize<'de> for StartState {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        let mut fields = json_float::object_fields(deserializer.take_value()?, "StartState")
            .map_err(serde::de::Error::custom)?;
        let schedule = json_float::take_field(&mut fields, "schedule", "StartState")
            .and_then(|v| serde::from_value(v).map_err(|e| e.to_string()))
            .map_err(serde::de::Error::custom)?;
        let cr = json_float::take_field(&mut fields, "cr", "StartState")
            .and_then(|v| json_float::decode_f64(&v, "cr"))
            .map_err(serde::de::Error::custom)?;
        let evaluations = json_float::take_field(&mut fields, "evaluations", "StartState")
            .and_then(|v| serde::from_value(v).map_err(|e| e.to_string()))
            .map_err(serde::de::Error::custom)?;
        Ok(StartState { schedule, cr, evaluations })
    }
}

/// The full round-granular optimizer state; exactly what a
/// [`crate::Checkpoint`] snapshots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizerState {
    /// The config this state was initialized from.
    pub config: OptimizeConfig,
    /// Rounds completed so far (0 = freshly initialized).
    pub round: usize,
    /// The raw measured supremum of the exact `A(n, f)` lowering
    /// (no pressure term), kept for improvement reporting.
    pub baseline_cr: f64,
    /// All starts, in deterministic order.
    pub starts: Vec<StartState>,
}

/// SplitMix64-style finalizer combining the run seed with a start and
/// round index into an independent RNG stream seed.
fn stream_seed(seed: u64, start: u64, round: u64) -> u64 {
    let mut z = seed
        ^ start.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ round.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Initializes the start set for a proportional-regime config: start 0
/// is the exact `A(n, f)` lowering, the rest are seeded perturbations
/// of it (re-drawn until valid, deterministically).
///
/// # Errors
///
/// Returns [`Error::InvalidParameters`] for two-group pairs
/// (`n >= 2f + 2`): there is nothing to optimize, the two-group
/// strategy already achieves ratio 1 and has no free-schedule form
/// (rays never turn). Use [`run`], which reports such pairs directly.
pub fn init_state(config: &OptimizeConfig) -> Result<OptimizerState> {
    let params = config.params()?;
    if params.regime() == Regime::TwoGroup {
        return Err(Error::invalid_params(
            config.n,
            config.f,
            "two-group pairs (n >= 2f + 2) have optimal ratio 1 and no free-schedule form",
        ));
    }
    let objective = config.objective()?;
    let knobs = config.budget.knobs();
    let algorithm = Algorithm::design(params)?;
    let schedule = algorithm
        .schedule()
        .ok_or_else(|| Error::domain("proportional regime without a schedule"))?;
    let seed_schedule = FreeSchedule::from_proportional(schedule, knobs.explicit_turns)?;
    let seed_score = objective.eval(&seed_schedule);
    if seed_score >= PENALTY {
        return Err(Error::numerical(format!(
            "the A({}, {}) lowering itself failed to measure; widen xmax or the grid",
            config.n, config.f
        )));
    }
    let baseline_cr = objective.measure(&seed_schedule)?.empirical;

    let mut starts = Vec::with_capacity(knobs.starts);
    starts.push(StartState { schedule: seed_schedule.clone(), cr: seed_score, evaluations: 1 });
    for s in 1..knobs.starts {
        let mut rng = StdRng::seed_from_u64(stream_seed(config.seed, s as u64, 0));
        let mut evaluations = 0u64;
        // Deterministic retry: perturb until the candidate validates
        // and measures (bounded so a hostile config cannot spin).
        let mut found = None;
        for _ in 0..32 {
            let robots = seed_schedule
                .robots()
                .iter()
                .map(|r| perturb_robot(r, knobs.sigma0, &mut rng))
                .collect::<Option<Vec<_>>>();
            let Some(robots) = robots else { continue };
            let Ok(candidate) = FreeSchedule::new(robots) else { continue };
            evaluations += 1;
            let cr = objective.eval(&candidate);
            if cr < PENALTY {
                found = Some(StartState { schedule: candidate, cr, evaluations });
                break;
            }
        }
        // Fall back to the exact lowering when every perturbation
        // failed — the start set must keep its configured size so
        // checkpoint geometry is stable.
        starts.push(found.unwrap_or_else(|| StartState {
            schedule: seed_schedule.clone(),
            cr: seed_score,
            evaluations,
        }));
    }
    Ok(OptimizerState { config: config.clone(), round: 0, baseline_cr, starts })
}

/// Advances the state by one round: every start runs one coordinate-
/// descent sweep followed by one annealing sweep (step size decaying
/// with the round), fanned out over the starts with deterministic
/// per-`(seed, start, round)` RNG streams.
///
/// # Errors
///
/// Propagates objective construction failures.
pub fn advance_round(state: &mut OptimizerState) -> Result<()> {
    let objective = state.config.objective()?;
    let knobs = state.config.budget.knobs();
    let round = state.round + 1;
    let seed = state.config.seed;
    let sigma = knobs.sigma0 * 0.7f64.powi(round as i32 - 1);
    let indexed: Vec<(usize, StartState)> = state.starts.drain(..).enumerate().collect();
    let advanced = par_map_with(&indexed, &ParallelConfig::default(), |(idx, start)| {
        let mut schedule = start.schedule.clone();
        let mut cr = start.cr;
        let mut evaluations = start.evaluations;
        evaluations += coordinate_descent_sweep(&objective, &mut schedule, &mut cr);
        let mut rng = StdRng::seed_from_u64(stream_seed(seed, *idx as u64, round as u64));
        evaluations +=
            anneal_sweep(&objective, &mut schedule, &mut cr, knobs.anneal_steps, sigma, &mut rng);
        StartState { schedule, cr, evaluations }
    });
    state.starts = advanced;
    state.round = round;
    Ok(())
}

/// Verdict of the final lower-bound cross-check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrossCheck {
    /// `best_found_cr` respects the certified lower bound (or no
    /// bound applies to this pair).
    Consistent,
    /// `best_found_cr` measured *below* the certified lower bound —
    /// the measurement window is too narrow to trust, and the result
    /// must not be cited as a schedule beating Theorem 2.
    Rejected,
}

impl CrossCheck {
    /// Whether the verdict is [`CrossCheck::Consistent`].
    #[must_use]
    pub fn is_consistent(self) -> bool {
        self == CrossCheck::Consistent
    }
}

/// Cross-checks a measured ratio against a certified lower bound:
/// measurements below the certificate's lower end are rejected as
/// window overfitting (Theorem 2 proves no schedule achieves them).
#[must_use]
pub fn cross_check(certificate: Option<&Certificate>, measured: f64) -> CrossCheck {
    match certificate {
        Some(cert) if measured < cert.lo => CrossCheck::Rejected,
        _ => CrossCheck::Consistent,
    }
}

/// The final gap report for one `(n, f)` pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizeReport {
    /// Number of robots.
    pub n: usize,
    /// Number of tolerated faults.
    pub f: usize,
    /// The paper's case split for this pair.
    pub regime: Regime,
    /// Effort tier the run used.
    pub budget: Budget,
    /// RNG seed the run used.
    pub seed: u64,
    /// Rounds completed.
    pub rounds: usize,
    /// Starts in the run.
    pub starts: usize,
    /// Total objective evaluations across all starts.
    pub evaluations: u64,
    /// Resolved measurement window `[1, xmax]`.
    pub xmax: f64,
    /// Resolved scan resolution.
    pub grid_points: usize,
    /// Theorem 1 closed form (the two-group ratio 1 for `n >= 2f+2`).
    pub thm1_cr: f64,
    /// Theorem 2's `alpha(n)` where it applies (`n < 2f + 2`).
    pub thm2_alpha: Option<f64>,
    /// The regime-tight lower bound of Section 4 (9 when `n = f + 1`).
    pub lower_bound: f64,
    /// Measured ratio of the exact `A(n, f)` start before optimizing.
    pub baseline_measured: f64,
    /// Best measured ratio over all starts and rounds.
    pub best_found_cr: f64,
    /// `baseline_measured - best_found_cr` (same window, same grid).
    pub improvement: f64,
    /// Whether the pair's bounds already meet: two-group pairs
    /// (Theorem 1 ratio 1 is optimal) and `n = f + 1` pairs (Theorem 1
    /// equals the tight single-robot bound 9). For such pairs a real
    /// improvement is provably impossible, so any positive
    /// `improvement` is a finite-window artifact — 9 in particular is
    /// attained only asymptotically, so in-window suprema sit below it
    /// for *every* schedule, the exact `A(n, f)` seed included.
    pub gap_closed: bool,
    /// Whether the improvement clears [`IMPROVEMENT_MARGIN`] *and* the
    /// pair's gap is open — never claimed silently, and never claimed
    /// at all where Theorem 1 is already tight.
    pub improved: bool,
    /// Interval certificate for `alpha(n)` where it applies.
    pub certificate: Option<Certificate>,
    /// The lower-bound cross-check verdict.
    pub crosscheck: CrossCheck,
    /// The best schedule found (absent for two-group pairs).
    pub best_schedule: Option<FreeSchedule>,
}

/// Folds a finished state into its [`OptimizeReport`].
///
/// # Errors
///
/// Propagates closed-form and certificate computation failures.
pub fn finish(state: &OptimizerState) -> Result<OptimizeReport> {
    let config = &state.config;
    let params = config.params()?;
    let algorithm = Algorithm::design(params)?;
    let best = state
        .starts
        .iter()
        .min_by(|a, b| a.cr.total_cmp(&b.cr))
        .ok_or_else(|| Error::domain("optimizer state has no starts"))?;
    // Report the raw supremum of the winner, not its tie-broken score.
    let objective = config.objective()?;
    let best_found_cr = objective.measure(&best.schedule)?.empirical;
    let evaluations = state.starts.iter().map(|s| s.evaluations).sum();
    let thm2_alpha = if params.n() < 2 * params.f() + 2 { Some(alpha(params.n())?) } else { None };
    let certificate = if thm2_alpha.is_some() { Some(certify_alpha(params.n())?) } else { None };
    let improvement = state.baseline_cr - best_found_cr;
    // n = f + 1: Theorem 1 already meets the tight single-robot bound
    // 9, so in-window gains can never be real improvements.
    let gap_closed = params.n() == params.f() + 1;
    Ok(OptimizeReport {
        n: config.n,
        f: config.f,
        regime: params.regime(),
        budget: config.budget,
        seed: config.seed,
        rounds: state.round,
        starts: state.starts.len(),
        evaluations,
        xmax: config.resolved_xmax()?,
        grid_points: config.resolved_grid_points(),
        thm1_cr: algorithm.analytic_cr(),
        thm2_alpha,
        lower_bound: lower_bound(params)?,
        baseline_measured: state.baseline_cr,
        best_found_cr,
        improvement,
        gap_closed,
        improved: !gap_closed && improvement > IMPROVEMENT_MARGIN,
        crosscheck: cross_check(certificate.as_ref(), best_found_cr),
        certificate,
        best_schedule: Some(best.schedule.clone()),
    })
}

/// Reports a two-group pair without optimizing: the paper's strategy
/// already achieves the optimal ratio 1, and rays (which never turn)
/// have no [`FreeSchedule`] form.
fn report_two_group(config: &OptimizeConfig) -> Result<OptimizeReport> {
    let params = config.params()?;
    let algorithm = Algorithm::design(params)?;
    let xmax = config.resolved_xmax()?;
    let grid_points = config.resolved_grid_points();
    let strategy = resolve_strategy("paper", None)?;
    let measured = measure_strategy_cr(strategy.as_ref(), params, xmax, grid_points)?;
    Ok(OptimizeReport {
        n: config.n,
        f: config.f,
        regime: params.regime(),
        budget: config.budget,
        seed: config.seed,
        rounds: 0,
        starts: 0,
        evaluations: 1,
        xmax,
        grid_points,
        thm1_cr: algorithm.analytic_cr(),
        thm2_alpha: None,
        lower_bound: lower_bound(params)?,
        baseline_measured: measured.empirical,
        best_found_cr: measured.empirical,
        improvement: 0.0,
        gap_closed: true,
        improved: false,
        certificate: None,
        crosscheck: CrossCheck::Consistent,
        best_schedule: None,
    })
}

/// Runs a full optimization (or the two-group short-circuit) to its
/// report. Equivalent to [`run_with_checkpoint`] with no checkpoint.
///
/// # Errors
///
/// Propagates configuration, measurement, and closed-form failures.
pub fn run(config: &OptimizeConfig) -> Result<OptimizeReport> {
    run_with_checkpoint(config, None)
}

/// Runs a full optimization, snapshotting the state to `checkpoint`
/// after initialization and after every round. A killed run resumed
/// from any of those snapshots (see [`crate::Checkpoint::resume`])
/// finishes with bit-identical output.
///
/// # Errors
///
/// Propagates configuration, measurement, closed-form, and checkpoint
/// I/O failures.
pub fn run_with_checkpoint(
    config: &OptimizeConfig,
    checkpoint: Option<&std::path::Path>,
) -> Result<OptimizeReport> {
    let params = config.params()?;
    if params.regime() == Regime::TwoGroup {
        return report_two_group(config);
    }
    let mut state = init_state(config)?;
    if let Some(path) = checkpoint {
        crate::Checkpoint::snapshot(&state).save(path)?;
    }
    resume_state(&mut state, checkpoint)
}

/// Advances an existing state through its remaining rounds (writing
/// snapshots when `checkpoint` is given) and folds the report.
///
/// # Errors
///
/// Propagates advancement, closed-form, and checkpoint I/O failures.
pub fn resume_state(
    state: &mut OptimizerState,
    checkpoint: Option<&std::path::Path>,
) -> Result<OptimizeReport> {
    let rounds = state.config.budget.knobs().rounds;
    while state.round < rounds {
        advance_round(state)?;
        if let Some(path) = checkpoint {
            crate::Checkpoint::snapshot(state).save(path)?;
        }
    }
    finish(state)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(n: usize, f: usize) -> OptimizeConfig {
        let mut config = OptimizeConfig::new(n, f);
        config.budget = Budget::Tiny;
        config.xmax = Some(8.0);
        config.grid_points = Some(12);
        config
    }

    #[test]
    fn config_defaults_fill_in_from_json() {
        let config: OptimizeConfig = serde_json::from_str(r#"{"n": 3, "f": 1}"#).unwrap();
        assert_eq!(config.budget, Budget::Small);
        assert_eq!(config.seed, 0);
        assert_eq!(config.xmax, None);
        assert!(config.resolved_xmax().unwrap() >= 25.0);
        assert_eq!(config.resolved_grid_points(), Budget::Small.knobs().grid_points);
        assert_eq!(config.detect_probability, None);
        assert_eq!(config.objective().unwrap().detect_probability(), None);
    }

    #[test]
    fn detect_probability_switches_the_objective_to_expected_cr() {
        let config: OptimizeConfig =
            serde_json::from_str(r#"{"n": 3, "f": 1, "detect_probability": 0.5}"#).unwrap();
        assert_eq!(config.detect_probability, Some(0.5));
        let objective = config.objective().unwrap();
        assert_eq!(objective.detect_probability(), Some(0.5));
        assert_eq!(objective.floor(), 0.0);

        let bad: OptimizeConfig =
            serde_json::from_str(r#"{"n": 3, "f": 1, "detect_probability": 1.5}"#).unwrap();
        assert!(bad.objective().is_err(), "out-of-range probability must fail at construction");
    }

    #[test]
    fn expected_cr_run_terminates_with_a_finite_best() {
        let mut config = tiny_config(3, 1);
        config.detect_probability = Some(0.5);
        let state = init_state(&config).unwrap();
        assert!(state.baseline_cr.is_finite() && state.baseline_cr < PENALTY);
        // The expectation truncates undetected mass at the horizon, so
        // it is still a ratio >= 1 on a covered window.
        assert!(state.baseline_cr >= 1.0);
    }

    #[test]
    fn init_seeds_start_zero_with_the_exact_lowering() {
        let state = init_state(&tiny_config(3, 1)).unwrap();
        assert_eq!(state.round, 0);
        assert_eq!(state.starts.len(), Budget::Tiny.knobs().starts);
        // Start 0's score is the baseline supremum plus the bounded
        // pressure tie-breaker.
        assert!(state.starts[0].cr > state.baseline_cr);
        assert!(state.starts[0].cr <= state.baseline_cr + crate::objective::PRESSURE_WEIGHT);
        assert!(state.baseline_cr.is_finite() && state.baseline_cr < PENALTY);
    }

    #[test]
    fn two_group_pairs_short_circuit_to_a_trivial_report() {
        assert!(init_state(&tiny_config(4, 1)).is_err());
        let report = run(&tiny_config(4, 1)).unwrap();
        assert_eq!(report.regime, Regime::TwoGroup);
        assert_eq!(report.thm1_cr, 1.0);
        assert!(report.best_schedule.is_none());
        assert!(report.crosscheck.is_consistent());
        assert!(report.best_found_cr >= report.lower_bound - 1e-9);
    }

    #[test]
    fn rounds_only_improve_and_the_report_brackets_the_gap() {
        let config = tiny_config(3, 1);
        let mut state = init_state(&config).unwrap();
        let before: Vec<f64> = state.starts.iter().map(|s| s.cr).collect();
        advance_round(&mut state).unwrap();
        for (b, s) in before.iter().zip(&state.starts) {
            assert!(s.cr <= *b, "round worsened a start: {b} -> {}", s.cr);
        }
        let report = resume_state(&mut state, None).unwrap();
        assert_eq!(report.rounds, Budget::Tiny.knobs().rounds);
        let alpha3 = report.thm2_alpha.unwrap();
        assert!(report.best_found_cr >= alpha3, "{} < alpha {alpha3}", report.best_found_cr);
        assert!(report.best_found_cr <= report.thm1_cr + THM1_SLACK);
        assert!(report.crosscheck.is_consistent());
        assert!(report.best_schedule.is_some());
    }

    #[test]
    fn cross_check_rejects_sub_lower_bound_measurements() {
        let cert = certify_alpha(3).unwrap();
        assert_eq!(cross_check(Some(&cert), cert.lo - 0.1), CrossCheck::Rejected);
        assert_eq!(cross_check(Some(&cert), cert.hi + 0.1), CrossCheck::Consistent);
        assert_eq!(cross_check(None, 0.5), CrossCheck::Consistent);
    }

    #[test]
    fn stream_seeds_are_pairwise_distinct_for_small_indices() {
        let mut seen = std::collections::HashSet::new();
        for start in 0..8u64 {
            for round in 0..8u64 {
                assert!(seen.insert(stream_seed(17, start, round)));
            }
        }
    }
}
