//! Local search moves: coordinate descent with golden-section line
//! search, and a seeded multiplicative annealing sweep.
//!
//! Both moves are strictly greedy against [`Objective::eval`] — a
//! candidate is only accepted when it measures strictly better than
//! the incumbent — so a sweep can never make a start worse, and both
//! are deterministic functions of their inputs (the annealer consumes
//! a caller-provided RNG stream in a fixed draw order, independent of
//! which proposals are accepted).

use std::cell::Cell;

use faultline_core::numeric::golden_min;
use faultline_core::{FreeRobot, FreeSchedule};
use rand::{rngs::StdRng, Rng};

use crate::objective::{Objective, PENALTY};

/// Relative tolerance for each golden-section line search.
const LINE_SEARCH_TOL: f64 = 1e-4;
/// Iteration cap for each golden-section line search.
const LINE_SEARCH_ITERS: usize = 40;
/// Margin a candidate must beat the incumbent by to be accepted;
/// keeps float noise from flapping accept decisions across replays.
const ACCEPT_MARGIN: f64 = 1e-12;
/// Keep-out factor separating neighbouring turning magnitudes.
const SEPARATION: f64 = 1e-9;
/// How far below its seed value the first turning magnitude may move.
const FIRST_TURN_SHRINK: f64 = 8.0;
/// How far past the previous magnitude the tail magnitude may move.
const TAIL_STRETCH: f64 = 32.0;
/// Cap on `first_turn_time / turns[0]` (the initial glide slowdown).
const MAX_GLIDE: f64 = 8.0;

/// Builds a candidate schedule with robot `r`'s magnitude `k` set to
/// `value` (adjusting the glide time when `k == 0` so unit speed is
/// preserved). Returns `None` when the result fails validation.
fn with_turn(schedule: &FreeSchedule, r: usize, k: usize, value: f64) -> Option<FreeSchedule> {
    let mut robots = schedule.robots().to_vec();
    let robot = &robots[r];
    let mut turns = robot.turns.clone();
    turns[k] = value;
    let first_turn_time =
        if k == 0 { robot.first_turn_time.max(value) } else { robot.first_turn_time };
    robots[r] = FreeRobot::new(robot.side, turns, first_turn_time).ok()?;
    FreeSchedule::new(robots).ok()
}

/// Builds a candidate with robot `r`'s glide time set to `value`.
fn with_glide(schedule: &FreeSchedule, r: usize, value: f64) -> Option<FreeSchedule> {
    let mut robots = schedule.robots().to_vec();
    let robot = &robots[r];
    robots[r] = FreeRobot::new(robot.side, robot.turns.clone(), value).ok()?;
    FreeSchedule::new(robots).ok()
}

/// The line-search bracket for robot `r`'s magnitude `k`, or `None`
/// when neighbouring magnitudes squeeze it shut.
fn turn_bracket(robot: &FreeRobot, k: usize) -> Option<(f64, f64)> {
    let turns = &robot.turns;
    let lo = if k == 0 {
        (turns[0] / FIRST_TURN_SHRINK).max(1e-3)
    } else {
        turns[k - 1] * (1.0 + SEPARATION)
    };
    let hi = if k + 1 < turns.len() {
        turns[k + 1] * (1.0 - SEPARATION)
    } else {
        turns[k - 1] * TAIL_STRETCH
    };
    (lo < hi).then_some((lo, hi))
}

/// One full coordinate-descent sweep: for every robot, line-search
/// each turning magnitude and the initial glide time in turn, keeping
/// any strict improvement. Returns the number of objective
/// evaluations performed.
pub fn coordinate_descent_sweep(
    objective: &Objective,
    schedule: &mut FreeSchedule,
    cr: &mut f64,
) -> u64 {
    let evals = Cell::new(0u64);
    for r in 0..schedule.n() {
        let coords = schedule.robots()[r].turns.len();
        for k in 0..coords {
            let Some((lo, hi)) = turn_bracket(&schedule.robots()[r], k) else {
                continue;
            };
            let probe = |v: f64| {
                evals.set(evals.get() + 1);
                with_turn(schedule, r, k, v).map_or(PENALTY, |s| objective.eval(&s))
            };
            let Ok(best_v) = golden_min(probe, lo, hi, LINE_SEARCH_TOL, LINE_SEARCH_ITERS) else {
                continue;
            };
            if let Some(candidate) = with_turn(schedule, r, k, best_v) {
                evals.set(evals.get() + 1);
                let value = objective.eval(&candidate);
                if value < *cr - ACCEPT_MARGIN {
                    *schedule = candidate;
                    *cr = value;
                }
            }
        }
        // The glide coordinate: how long the robot dawdles before its
        // first turn (Definition 4's slow initial leg, generalized).
        let first = schedule.robots()[r].turns[0];
        let (lo, hi) = (first, first * MAX_GLIDE);
        if lo < hi {
            let probe = |v: f64| {
                evals.set(evals.get() + 1);
                with_glide(schedule, r, v).map_or(PENALTY, |s| objective.eval(&s))
            };
            if let Ok(best_v) = golden_min(probe, lo, hi, LINE_SEARCH_TOL, LINE_SEARCH_ITERS) {
                if let Some(candidate) = with_glide(schedule, r, best_v) {
                    evals.set(evals.get() + 1);
                    let value = objective.eval(&candidate);
                    if value < *cr - ACCEPT_MARGIN {
                        *schedule = candidate;
                        *cr = value;
                    }
                }
            }
        }
    }
    evals.get()
}

/// Applies one multiplicative log-space perturbation to robot `r`,
/// drawing a fixed number of variates from `rng` (independent of
/// whether the result validates).
///
/// The robot is re-parameterized as `(turns[0], log-gaps, glide
/// multiplier, side)`; each component is scaled by `exp(sigma * u)`
/// with `u` uniform in `[-1, 1]`, which preserves positivity and
/// strict monotonicity by construction. The side flips with small
/// probability to explore different interleavings.
pub fn perturb_robot(robot: &FreeRobot, sigma: f64, rng: &mut StdRng) -> Option<FreeRobot> {
    let first = robot.turns[0] * (sigma * rng.random_range(-1.0..=1.0)).exp();
    let mut turns = Vec::with_capacity(robot.turns.len());
    turns.push(first);
    for w in robot.turns.windows(2) {
        let gap = (w[1] / w[0]).ln() * (sigma * rng.random_range(-1.0..=1.0)).exp();
        let prev = *turns.last().expect("turns is seeded with the first magnitude");
        turns.push(prev * gap.exp());
    }
    let glide = robot.first_turn_time / robot.turns[0];
    let glide =
        (1.0 + (glide - 1.0) * (sigma * rng.random_range(-1.0..=1.0)).exp()).clamp(1.0, MAX_GLIDE);
    let side = if rng.random_bool(0.1) { -robot.side } else { robot.side };
    FreeRobot::new(side, turns.clone(), glide * first).ok()
}

/// One annealing sweep: `steps` greedy perturbation proposals at step
/// size `sigma`, each targeting an RNG-chosen robot. Returns the
/// number of objective evaluations performed.
pub fn anneal_sweep(
    objective: &Objective,
    schedule: &mut FreeSchedule,
    cr: &mut f64,
    steps: usize,
    sigma: f64,
    rng: &mut StdRng,
) -> u64 {
    let mut evals = 0u64;
    for _ in 0..steps {
        let r = rng.random_range(0..schedule.n());
        let Some(robot) = perturb_robot(&schedule.robots()[r], sigma, rng) else {
            continue;
        };
        let mut robots = schedule.robots().to_vec();
        robots[r] = robot;
        let Ok(candidate) = FreeSchedule::new(robots) else {
            continue;
        };
        evals += 1;
        let value = objective.eval(&candidate);
        if value < *cr - ACCEPT_MARGIN {
            *schedule = candidate;
            *cr = value;
        }
    }
    evals
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_core::{Algorithm, Params};
    use rand::SeedableRng;

    fn seed_schedule(n: usize, f: usize, turns: usize) -> FreeSchedule {
        let algorithm = Algorithm::design(Params::new(n, f).unwrap()).unwrap();
        FreeSchedule::from_proportional(algorithm.schedule().unwrap(), turns).unwrap()
    }

    #[test]
    fn descent_never_worsens_the_incumbent() {
        let params = Params::new(3, 1).unwrap();
        let objective = Objective::new(params, 8.0, 12).unwrap();
        let mut schedule = seed_schedule(3, 1, 5);
        let mut cr = objective.eval(&schedule);
        let before = cr;
        let evals = coordinate_descent_sweep(&objective, &mut schedule, &mut cr);
        assert!(evals > 0);
        assert!(cr <= before, "descent worsened {before} -> {cr}");
        assert!(cr >= objective.floor());
        assert!((objective.eval(&schedule) - cr).abs() < 1e-12, "cr out of sync with schedule");
    }

    #[test]
    fn descent_is_deterministic() {
        let params = Params::new(3, 1).unwrap();
        let objective = Objective::new(params, 8.0, 12).unwrap();
        let run = || {
            let mut schedule = seed_schedule(3, 1, 5);
            let mut cr = objective.eval(&schedule);
            coordinate_descent_sweep(&objective, &mut schedule, &mut cr);
            (schedule, cr)
        };
        let (s1, c1) = run();
        let (s2, c2) = run();
        assert_eq!(s1, s2);
        assert_eq!(c1.to_bits(), c2.to_bits());
    }

    #[test]
    fn perturbation_draws_a_fixed_variate_count() {
        let robot = seed_schedule(3, 1, 5).robots()[0].clone();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let _ = perturb_robot(&robot, 0.3, &mut a);
        let _ = perturb_robot(&robot, 1e-6, &mut b);
        // Same number of draws regardless of perturbation size, so the
        // stream position stays in lockstep across replays.
        assert_eq!(a.random_range(0..u64::MAX), b.random_range(0..u64::MAX));
    }

    #[test]
    fn anneal_is_greedy_and_deterministic() {
        let params = Params::new(3, 1).unwrap();
        let objective = Objective::new(params, 8.0, 12).unwrap();
        let run = || {
            let mut schedule = seed_schedule(3, 1, 5);
            let mut cr = objective.eval(&schedule);
            let before = cr;
            let mut rng = StdRng::seed_from_u64(42);
            anneal_sweep(&objective, &mut schedule, &mut cr, 6, 0.2, &mut rng);
            assert!(cr <= before);
            (schedule, cr)
        };
        let (s1, c1) = run();
        let (s2, c2) = run();
        assert_eq!(s1, s2);
        assert_eq!(c1.to_bits(), c2.to_bits());
    }
}
