//! Search budgets: named effort tiers mapped to concrete knobs.
//!
//! A [`Budget`] is part of the optimizer's cache identity (the serve
//! route keys on the canonical config, budget included), so it
//! serializes as a lowercase string and parses case-insensitively.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize, Value};

/// Named effort tier for an optimizer run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Budget {
    /// Minimal effort for unit tests and doc examples: one descent
    /// round over a coarse grid. Not intended for real studies.
    Tiny,
    /// The CI smoke tier: a couple of starts and rounds, coarse grid.
    #[default]
    Small,
    /// The `repro optimize` artifact tier.
    Medium,
    /// Overnight-style runs (checkpointing recommended).
    Large,
}

/// Concrete knob settings derived from a [`Budget`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Knobs {
    /// Number of independent starts (start 0 is the exact `A(n, f)`
    /// lowering; the rest are seeded perturbations of it).
    pub starts: usize,
    /// Rounds of descent + annealing applied to every start.
    pub rounds: usize,
    /// Explicit turning points per robot before the geometric tail.
    pub explicit_turns: usize,
    /// Grid points per trajectory interval in the supremum scan.
    pub grid_points: usize,
    /// Annealing proposals per round per start.
    pub anneal_steps: usize,
    /// Initial log-space annealing step size (decays per round).
    pub sigma0: f64,
}

impl Budget {
    /// The concrete knobs for this tier.
    #[must_use]
    pub fn knobs(self) -> Knobs {
        match self {
            Budget::Tiny => Knobs {
                starts: 2,
                rounds: 2,
                explicit_turns: 5,
                grid_points: 16,
                anneal_steps: 4,
                sigma0: 0.20,
            },
            Budget::Small => Knobs {
                starts: 2,
                rounds: 2,
                explicit_turns: 6,
                grid_points: 32,
                anneal_steps: 16,
                sigma0: 0.20,
            },
            Budget::Medium => Knobs {
                starts: 4,
                rounds: 3,
                explicit_turns: 8,
                grid_points: 48,
                anneal_steps: 48,
                sigma0: 0.25,
            },
            Budget::Large => Knobs {
                starts: 8,
                rounds: 6,
                explicit_turns: 10,
                grid_points: 64,
                anneal_steps: 96,
                sigma0: 0.30,
            },
        }
    }

    /// The lowercase name used on the CLI and in JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Budget::Tiny => "tiny",
            Budget::Small => "small",
            Budget::Medium => "medium",
            Budget::Large => "large",
        }
    }
}

impl fmt::Display for Budget {
    fn fmt(&self, fmt: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt.write_str(self.name())
    }
}

impl FromStr for Budget {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Ok(Budget::Tiny),
            "small" => Ok(Budget::Small),
            "medium" => Ok(Budget::Medium),
            "large" => Ok(Budget::Large),
            other => {
                Err(format!("unknown budget `{other}` (expected tiny, small, medium or large)"))
            }
        }
    }
}

impl Serialize for Budget {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::String(self.name().to_string()))
    }
}

impl<'de> Deserialize<'de> for Budget {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::String(s) => s.parse().map_err(serde::de::Error::custom),
            other => Err(serde::de::Error::custom(format!(
                "expected a budget string, got {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_roundtrip_as_lowercase_strings() {
        for budget in [Budget::Tiny, Budget::Small, Budget::Medium, Budget::Large] {
            let json = serde_json::to_string(&budget).unwrap();
            assert_eq!(json, format!("\"{}\"", budget.name()));
            let back: Budget = serde_json::from_str(&json).unwrap();
            assert_eq!(back, budget);
        }
    }

    #[test]
    fn parsing_is_case_insensitive_and_rejects_unknown_tiers() {
        assert_eq!("SMALL".parse::<Budget>().unwrap(), Budget::Small);
        assert_eq!("Medium".parse::<Budget>().unwrap(), Budget::Medium);
        assert!("huge".parse::<Budget>().is_err());
        assert!(serde_json::from_str::<Budget>("3").is_err());
    }

    #[test]
    fn knobs_grow_with_the_tier() {
        let tiers = [Budget::Tiny, Budget::Small, Budget::Medium, Budget::Large];
        for pair in tiers.windows(2) {
            let (lo, hi) = (pair[0].knobs(), pair[1].knobs());
            assert!(lo.starts <= hi.starts);
            assert!(lo.rounds <= hi.rounds);
            assert!(lo.explicit_turns <= hi.explicit_turns);
            assert!(lo.grid_points <= hi.grid_points);
            assert!(lo.anneal_steps <= hi.anneal_steps);
        }
    }
}
