//! The inner worst-case-CR objective with its soundness floor.
//!
//! [`Objective::eval`] wraps `faultline_analysis::measure_free_schedule_cr`
//! — the same supremum scan the rest of the workspace uses — into a
//! totalized function suitable for golden-section line search: every
//! failure mode (invalid candidate, incomplete coverage, non-finite
//! measurement, *or a measurement below the certified lower bound*)
//! maps to the large finite [`PENALTY`] instead of an error or
//! infinity, because `golden_min` rejects non-finite interior values.
//!
//! The lower-bound floor is the crate's soundness guard: a finite
//! window `[1, xmax]` can under-estimate a schedule's true supremum,
//! so any measurement that "beats" the proven `alpha(n)` bound is
//! evidence of window overfitting, not of a breakthrough, and is
//! rejected rather than accepted as progress.

use faultline_analysis::{
    measure_free_schedule_cr, measure_free_schedule_expected_cr, measure_free_schedule_profile,
    FreeScheduleProfile, MeasuredCr,
};
use faultline_core::certificate::certify_alpha;
use faultline_core::lower_bound::{adversary_points, alpha};
use faultline_core::{Error, FreeSchedule, Params, Regime, Result};
use faultline_sim::FaultKind;

/// Large finite sentinel returned by [`Objective::eval`] for
/// candidates that cannot be honestly measured. Finite so it can pass
/// through `golden_min`, large enough that no real schedule competes.
pub const PENALTY: f64 = 1e12;

/// Weight of the peak-pressure tie-breaker in [`Objective::eval`].
///
/// The paper's proportional schedules equalize every worst-case peak,
/// so the hard supremum is a plateau under any single-coordinate move
/// and pure greedy descent stalls at the seed. Adding a small multiple
/// of the pressure (the power-mean mass of near-supremum peaks, in
/// `(0, 1]`) turns "lower one of the tied peaks" into strict progress,
/// letting descent drain the plateau before pushing the supremum
/// itself. The weight keeps the term strictly below any meaningful CR
/// difference, so ranking by `eval` never contradicts ranking by the
/// hard supremum beyond this resolution.
pub const PRESSURE_WEIGHT: f64 = 1e-3;

/// The measurement context shared by every candidate evaluation of an
/// optimizer run: the `(n, f)` pair, the target window, the scan
/// resolution, the paper's adversarial probe targets, and the
/// certified lower-bound floor.
#[derive(Debug, Clone)]
pub struct Objective {
    params: Params,
    xmax: f64,
    grid_points: usize,
    adversary: Vec<f64>,
    floor: f64,
    detect_probability: Option<f64>,
}

impl Objective {
    /// Builds the objective for `(n, f)` over the window `[1, xmax]`.
    ///
    /// For pairs in the lower-bound regime (`n < 2f + 2`) the paper's
    /// adversarial placements `x_i = 2 (alpha-1)^i / (alpha-3)` inside
    /// the window are added as extra probe targets, and the certified
    /// `alpha(n)` interval's lower end becomes the soundness floor.
    ///
    /// The floor is deliberately `alpha(n)` and not the tighter
    /// single-robot bound 9 when `n = f + 1`: that bound is attained
    /// only asymptotically, so even the exact `A(n, f)` seed measures
    /// *below* 9 in any finite window. The driver instead reports such
    /// pairs as `gap_closed`, so their in-window "gains" are never
    /// claimed as improvements.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] when `xmax <= 1` or is non-finite, or
    /// when `grid_points == 0`.
    pub fn new(params: Params, xmax: f64, grid_points: usize) -> Result<Self> {
        if !(xmax > 1.0) || !xmax.is_finite() {
            return Err(Error::domain(format!(
                "objective window must satisfy 1 < xmax < inf, got {xmax}"
            )));
        }
        if grid_points == 0 {
            return Err(Error::domain("objective needs at least one grid point"));
        }
        let n = params.n();
        let mut adversary = Vec::new();
        let mut floor = 0.0;
        if params.regime() == Regime::Proportional && n < 2 * params.f() + 2 {
            let a = alpha(n)?;
            adversary = adversary_points(n, a)?
                .into_iter()
                .filter(|x| x.is_finite() && *x >= 1.0 && *x <= xmax)
                .collect();
            floor = certify_alpha(n)?.lo;
        }
        Ok(Objective { params, xmax, grid_points, adversary, floor, detect_probability: None })
    }

    /// Builds an *expected*-CR objective: every robot is p-faulty with
    /// the given per-visit detection probability and candidates are
    /// scored by the supremum over the window of the exact expected
    /// competitive ratio instead of the worst-case one.
    ///
    /// No certified floor applies (the worst-case lower bound does not
    /// bound an expectation) and the paper's adversarial placements are
    /// dropped — the expectation has no Theorem 2 structure to probe.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] for a window or resolution rejected by
    /// [`Objective::new`], or a probability outside `[0, 1]`.
    pub fn with_detect_probability(
        params: Params,
        xmax: f64,
        grid_points: usize,
        detect_probability: f64,
    ) -> Result<Self> {
        FaultKind::PFaulty { detect_probability }.validate()?;
        let mut objective = Objective::new(params, xmax, grid_points)?;
        objective.adversary = Vec::new();
        objective.floor = 0.0;
        objective.detect_probability = Some(detect_probability);
        Ok(objective)
    }

    /// The default measurement window for `(n, f)`: wide enough to
    /// reach past the adversary's first placement `x_0 = 2/(alpha-3)`
    /// with slack, never narrower than `[1, 25]`.
    #[must_use]
    pub fn default_xmax(params: Params) -> f64 {
        let base = 25.0f64;
        match alpha(params.n()) {
            Ok(a) if a > 3.0 => base.max(1.5 * 2.0 / (a - 3.0)),
            _ => base,
        }
    }

    /// The `(n, f)` pair being optimized.
    #[must_use]
    pub fn params(&self) -> Params {
        self.params
    }

    /// The right end of the measurement window.
    #[must_use]
    pub fn xmax(&self) -> f64 {
        self.xmax
    }

    /// The scan resolution between trajectory-derived targets.
    #[must_use]
    pub fn grid_points(&self) -> usize {
        self.grid_points
    }

    /// The certified lower-bound floor (0 when no bound applies).
    #[must_use]
    pub fn floor(&self) -> f64 {
        self.floor
    }

    /// The p-faulty detection probability, or `None` for the default
    /// worst-case objective.
    #[must_use]
    pub fn detect_probability(&self) -> Option<f64> {
        self.detect_probability
    }

    /// Raw measurement of a schedule's worst-case ratio over the
    /// window, without the penalty totalization — used for reporting
    /// and for the final cross-check.
    ///
    /// # Errors
    ///
    /// Propagates measurement failures (invalid `(n, f)` vs. schedule
    /// size, degenerate window).
    pub fn measure(&self, schedule: &FreeSchedule) -> Result<MeasuredCr> {
        match self.detect_probability {
            Some(p) => measure_free_schedule_expected_cr(schedule, p, self.xmax, self.grid_points),
            None => measure_free_schedule_cr(
                schedule,
                self.params.f(),
                self.xmax,
                self.grid_points,
                &self.adversary,
            ),
        }
    }

    /// Raw measurement plus the peak-pressure tie-breaker.
    ///
    /// In the expected-CR regime the pressure has no analogue — the
    /// expectation already averages over every peak — so it is pinned
    /// to `1.0` (the maximal value), keeping `eval`'s tie-breaker inert
    /// without branching downstream code.
    ///
    /// # Errors
    ///
    /// Propagates measurement failures.
    pub fn profile(&self, schedule: &FreeSchedule) -> Result<FreeScheduleProfile> {
        if let Some(p) = self.detect_probability {
            let measured =
                measure_free_schedule_expected_cr(schedule, p, self.xmax, self.grid_points)?;
            return Ok(FreeScheduleProfile { measured, pressure: 1.0 });
        }
        measure_free_schedule_profile(
            schedule,
            self.params.f(),
            self.xmax,
            self.grid_points,
            &self.adversary,
        )
    }

    /// Totalized objective value: the measured supremum plus
    /// [`PRESSURE_WEIGHT`] times the peak pressure (so tied suprema
    /// rank by how many peaks still bind), or [`PENALTY`] when the
    /// candidate is invalid, leaves targets uncovered, measures
    /// non-finite, or measures *below* the certified lower bound
    /// (window overfitting).
    #[must_use]
    pub fn eval(&self, schedule: &FreeSchedule) -> f64 {
        match self.profile(schedule) {
            Ok(p)
                if p.measured.uncovered == 0
                    && p.measured.empirical.is_finite()
                    && p.measured.empirical >= self.floor =>
            {
                p.measured.empirical + PRESSURE_WEIGHT * p.pressure
            }
            _ => PENALTY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_core::{Algorithm, FreeSchedule};

    fn lowered(n: usize, f: usize, turns: usize) -> FreeSchedule {
        let algorithm = Algorithm::design(Params::new(n, f).unwrap()).unwrap();
        FreeSchedule::from_proportional(algorithm.schedule().unwrap(), turns).unwrap()
    }

    #[test]
    fn objective_scores_the_proportional_seed_near_theorem_1() {
        let params = Params::new(3, 1).unwrap();
        let objective = Objective::new(params, 10.0, 24).unwrap();
        let seed = lowered(3, 1, 6);
        let value = objective.eval(&seed);
        let raw = objective.measure(&seed).unwrap().empirical;
        let analytic = Algorithm::design(params).unwrap().analytic_cr();
        assert!(value.is_finite() && value < PENALTY);
        assert!(raw <= analytic + 1e-9, "measured {raw} vs Thm 1 {analytic}");
        // The score adds at most PRESSURE_WEIGHT (pressure lives in (0, 1]).
        assert!(value > raw && value <= raw + PRESSURE_WEIGHT, "eval {value} vs raw {raw}");
        assert!(value >= objective.floor(), "eval {value} under floor {}", objective.floor());
    }

    #[test]
    fn window_and_resolution_are_validated() {
        let params = Params::new(3, 1).unwrap();
        assert!(Objective::new(params, 1.0, 16).is_err());
        assert!(Objective::new(params, f64::NAN, 16).is_err());
        assert!(Objective::new(params, 10.0, 0).is_err());
    }

    #[test]
    fn default_window_reaches_past_the_first_adversarial_placement() {
        for (n, f) in [(3usize, 1usize), (5, 3), (41, 20)] {
            let params = Params::new(n, f).unwrap();
            let xmax = Objective::default_xmax(params);
            let a = alpha(n).unwrap();
            assert!(xmax >= 25.0);
            assert!(xmax >= 2.0 / (a - 3.0), "window {xmax} too narrow for n = {n}");
        }
    }

    #[test]
    fn mismatched_schedule_size_is_penalized_not_propagated() {
        let params = Params::new(5, 3).unwrap();
        let objective = Objective::new(params, 10.0, 16).unwrap();
        // A 3-robot schedule cannot support f = 3 (needs f + 1 = 4 visits).
        let small = lowered(3, 1, 5);
        assert_eq!(objective.eval(&small), PENALTY);
        assert!(objective.measure(&small).is_err());
    }

    #[test]
    fn bailed_out_schedule_is_penalized_explicitly() {
        use faultline_core::FreeRobot;
        // Two robots whose zigzags never reach the window leave every
        // interval short of the f + 1 = 2 required visits, so the
        // measurement bails out after eight horizon doublings with
        // `uncovered > 0` and an infinite ratio. The objective must
        // map that surfaced bailout to the explicit PENALTY instead of
        // letting the infinity leak into the golden-section search.
        let params = Params::new(3, 1).unwrap();
        let objective = Objective::new(params, 2.0, 16).unwrap();
        let stunted = |side: f64| FreeRobot::new(side, vec![0.5, 0.5 + 5e-8], 0.5).unwrap();
        let doubler = FreeRobot::new(1.0, vec![1.0, 2.0], 1.0).unwrap();
        let schedule = FreeSchedule::new(vec![doubler, stunted(1.0), stunted(-1.0)]).unwrap();
        let measured = objective.measure(&schedule).unwrap();
        assert!(measured.empirical.is_infinite());
        assert!(measured.uncovered > 0, "bailout must surface its uncovered intervals");
        assert_eq!(objective.eval(&schedule), PENALTY);
    }

    #[test]
    fn expected_cr_objective_validates_and_scores_monotonically() {
        let params = Params::new(3, 1).unwrap();
        assert!(Objective::with_detect_probability(params, 10.0, 16, -0.1).is_err());
        assert!(Objective::with_detect_probability(params, 10.0, 16, 1.5).is_err());
        assert!(Objective::with_detect_probability(params, 10.0, 16, f64::NAN).is_err());
        let seed = lowered(3, 1, 6);
        let mut prev = f64::INFINITY;
        for p in [0.25, 0.5, 1.0] {
            let objective = Objective::with_detect_probability(params, 10.0, 24, p).unwrap();
            assert_eq!(objective.detect_probability(), Some(p));
            assert_eq!(objective.floor(), 0.0);
            let value = objective.eval(&seed);
            assert!(value.is_finite() && value < PENALTY);
            assert!(
                value <= prev + 1e-12,
                "expected-CR score must not increase with p: eval({p}) = {value} > {prev}"
            );
            prev = value;
        }
    }

    #[test]
    fn worst_case_objective_reports_no_detect_probability() {
        let objective = Objective::new(Params::new(3, 1).unwrap(), 10.0, 16).unwrap();
        assert_eq!(objective.detect_probability(), None);
    }

    #[test]
    fn floor_applies_only_in_the_lower_bound_regime() {
        let proportional = Objective::new(Params::new(3, 1).unwrap(), 10.0, 16).unwrap();
        assert!(proportional.floor() > 3.0);
        let two_group = Objective::new(Params::new(4, 1).unwrap(), 10.0, 16).unwrap();
        assert_eq!(two_group.floor(), 0.0);
    }
}
