//! The Table-1 gap study: one optimizer run per `(n, f)` pair, folded
//! into a CSV artifact (`repro optimize` → `out/opt_gap.csv`).

use faultline_analysis::table1::TABLE1_PAIRS;
use faultline_core::Result;

use crate::budget::Budget;
use crate::driver::{run, OptimizeConfig, OptimizeReport};

/// One row of the gap study (one Table-1 pair).
#[derive(Debug, Clone)]
pub struct GapRow {
    /// The full report the row summarizes.
    pub report: OptimizeReport,
}

impl GapRow {
    /// The open gap between the best found upper bound and the
    /// regime-tight lower bound.
    #[must_use]
    pub fn open_gap(&self) -> f64 {
        self.report.best_found_cr - self.report.lower_bound
    }
}

/// Runs the optimizer over every Table-1 pair at the given budget and
/// seed, in the paper's row order.
///
/// # Errors
///
/// Propagates the first failing run.
pub fn gap_study(budget: Budget, seed: u64) -> Result<Vec<GapRow>> {
    TABLE1_PAIRS
        .iter()
        .map(|&(n, f)| {
            let mut config = OptimizeConfig::new(n, f);
            config.budget = budget;
            config.seed = seed;
            Ok(GapRow { report: run(&config)? })
        })
        .collect()
}

/// Renders gap rows as the `out/opt_gap.csv` artifact.
#[must_use]
pub fn gap_csv(rows: &[GapRow]) -> String {
    let mut csv = String::from(
        "n,f,regime,thm1_cr,thm2_alpha,lower_bound,baseline_measured,\
         best_found_cr,improvement,gap_closed,improved,certified_lo,certified_hi,consistent\n",
    );
    for row in rows {
        let r = &row.report;
        let regime = match r.regime {
            faultline_core::Regime::TwoGroup => "two-group",
            faultline_core::Regime::Proportional => "proportional",
        };
        let opt = |v: Option<f64>| v.map_or_else(|| "-".to_owned(), |v| format!("{v:.9}"));
        csv.push_str(&format!(
            "{},{},{},{:.9},{},{:.9},{:.9},{:.9},{:.9},{},{},{},{},{}\n",
            r.n,
            r.f,
            regime,
            r.thm1_cr,
            opt(r.thm2_alpha),
            r.lower_bound,
            r.baseline_measured,
            r.best_found_cr,
            r.improvement,
            r.gap_closed,
            r.improved,
            opt(r.certificate.as_ref().map(|c| c.lo)),
            opt(r.certificate.as_ref().map(|c| c.hi)),
            r.crosscheck.is_consistent(),
        ));
    }
    csv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_has_one_row_per_report_and_a_stable_header() {
        let mut config = OptimizeConfig::new(4, 1);
        config.budget = Budget::Tiny;
        let report = run(&config).unwrap();
        let rows = vec![GapRow { report }];
        let csv = gap_csv(&rows);
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("n,f,regime,thm1_cr,thm2_alpha"));
        assert!(lines[1].starts_with("4,1,two-group,1.000000000,-,"));
        assert!(lines[1].ends_with(",true"));
    }
}
