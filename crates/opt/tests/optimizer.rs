//! End-to-end optimizer properties: the Theorem 1 / Theorem 2
//! bracket on Table-1 pairs, and bit-identical checkpoint resume.
//!
//! Debug-build tests run the `tiny` budget on small pairs and a
//! narrow window; the full Table-1 sweep at a real budget is the
//! `repro optimize` artifact, regenerated in release by CI.

use faultline_opt::{
    advance_round, init_state, resume_state, run, run_with_checkpoint, Budget, Checkpoint,
    OptimizeConfig, PRESSURE_WEIGHT, THM1_SLACK,
};

fn tiny_config(n: usize, f: usize, seed: u64) -> OptimizeConfig {
    let mut config = OptimizeConfig::new(n, f);
    config.budget = Budget::Tiny;
    config.seed = seed;
    config.xmax = Some(8.0);
    config.grid_points = Some(12);
    config
}

#[test]
fn table1_pairs_stay_bracketed_between_the_theorems() {
    // Small Table-1 pairs covering all three cases: n = f + 1 (tight
    // 9 bound), f + 1 < n < 2f + 2 (the open gap), and n >= 2f + 2
    // (two-group, no alpha bound).
    for (n, f) in [(2usize, 1usize), (3, 1), (3, 2), (4, 1), (5, 3)] {
        let report = run(&tiny_config(n, f, 7)).unwrap();
        assert!(
            report.best_found_cr <= report.thm1_cr + THM1_SLACK,
            "({n}, {f}): best {} above Thm 1 {}",
            report.best_found_cr,
            report.thm1_cr
        );
        if let Some(alpha) = report.thm2_alpha {
            assert!(
                report.best_found_cr >= alpha,
                "({n}, {f}): best {} below alpha {alpha}",
                report.best_found_cr
            );
            let cert = report.certificate.as_ref().expect("alpha implies a certificate");
            assert!(cert.lo <= alpha && alpha <= cert.hi);
        }
        assert!(report.crosscheck.is_consistent(), "({n}, {f}): rejected");
        // Improvement claims are never silent: the flag, the margin,
        // and the gap-closed guard must agree.
        assert_eq!(report.improved, !report.gap_closed && report.improvement > 1e-6, "({n}, {f})");
        // Theorem 1 is tight exactly for two-group and n = f + 1.
        assert_eq!(report.gap_closed, n >= 2 * f + 2 || n == f + 1, "({n}, {f})");
    }
}

#[test]
fn optimizer_only_improves_on_its_baseline() {
    let report = run(&tiny_config(3, 1, 11)).unwrap();
    // The search ranks by supremum + pressure tie-breaker, so the raw
    // supremum of the winner can trail the baseline by at most the
    // pressure weight.
    assert!(report.best_found_cr <= report.baseline_measured + PRESSURE_WEIGHT);
    assert!(report.improvement >= -PRESSURE_WEIGHT);
    assert!(report.best_schedule.is_some());
    assert!(report.evaluations > 0);
}

#[test]
fn resuming_a_killed_run_is_bit_identical() {
    let config = tiny_config(3, 1, 42);
    let dir = std::env::temp_dir().join("faultline-opt-resume-test");
    std::fs::create_dir_all(&dir).unwrap();

    // The uninterrupted run.
    let uninterrupted = run(&config).unwrap();

    // The "killed" run: initialize, advance one round, snapshot to
    // disk, drop everything — then resume from the file only.
    let kill_point = dir.join("killed.json");
    {
        let mut state = init_state(&config).unwrap();
        advance_round(&mut state).unwrap();
        Checkpoint::snapshot(&state).save(&kill_point).unwrap();
    }
    let mut resumed_state = Checkpoint::load(&kill_point).unwrap().into_state();
    let resumed = resume_state(&mut resumed_state, None).unwrap();

    let a = serde_json::to_string_pretty(&uninterrupted).unwrap();
    let b = serde_json::to_string_pretty(&resumed).unwrap();
    assert_eq!(a, b, "resumed report differs from uninterrupted report");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpointed_and_plain_runs_agree() {
    let config = tiny_config(3, 2, 3);
    let dir = std::env::temp_dir().join("faultline-opt-checkpointed-run");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.json");

    let plain = run(&config).unwrap();
    let checkpointed = run_with_checkpoint(&config, Some(&path)).unwrap();
    assert_eq!(
        serde_json::to_string_pretty(&plain).unwrap(),
        serde_json::to_string_pretty(&checkpointed).unwrap()
    );

    // The final snapshot resumes to the same report trivially (no
    // rounds left to replay).
    let mut final_state = Checkpoint::load(&path).unwrap().into_state();
    let resumed = resume_state(&mut final_state, None).unwrap();
    assert_eq!(
        serde_json::to_string_pretty(&plain).unwrap(),
        serde_json::to_string_pretty(&resumed).unwrap()
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn seeds_change_the_search_but_not_the_bracket() {
    let a = run(&tiny_config(3, 1, 1)).unwrap();
    let b = run(&tiny_config(3, 1, 2)).unwrap();
    // Both seeds respect the bracket...
    for r in [&a, &b] {
        assert!(r.best_found_cr >= r.thm2_alpha.unwrap());
        assert!(r.best_found_cr <= r.thm1_cr + THM1_SLACK);
    }
    // ...and the same seed replays identically.
    let a2 = run(&tiny_config(3, 1, 1)).unwrap();
    assert_eq!(
        serde_json::to_string_pretty(&a).unwrap(),
        serde_json::to_string_pretty(&a2).unwrap()
    );
}
