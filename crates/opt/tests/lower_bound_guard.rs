//! The soundness satellite: a randomly generated valid
//! [`FreeSchedule`] whose *measured* CR beats `alpha(n)` is always
//! rejected by the certificate cross-check, and the optimizer's
//! objective refuses to score it — the optimizer can never "prove" a
//! schedule below the Theorem 2 lower bound, no matter how narrow the
//! measurement window that produced the flattering number.

use faultline_core::certificate::certify_alpha;
use faultline_core::{FreeRobot, FreeSchedule, Params};
use faultline_opt::{cross_check, CrossCheck, Objective, PENALTY, PRESSURE_WEIGHT};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Builds a random valid schedule for `n` robots: random sides,
/// random first magnitudes, random expansion ratios, random glide —
/// valid by construction (magnitudes strictly increase).
fn random_schedule(n: usize, entropy: u64) -> FreeSchedule {
    let mut rng = StdRng::seed_from_u64(entropy);
    let robots = (0..n)
        .map(|_| {
            let side = if rng.random_bool(0.5) { 1.0 } else { -1.0 };
            let mut turns = vec![rng.random_range(0.3..1.5)];
            for _ in 0..3 {
                let prev = *turns.last().unwrap();
                turns.push(prev * rng.random_range(1.3..4.0));
            }
            let glide = rng.random_range(1.0..3.0);
            FreeRobot::new(side, turns.clone(), glide * turns[0]).expect("valid by construction")
        })
        .collect();
    FreeSchedule::new(robots).expect("non-empty")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The cross-check verdict is exactly `measured < cert.lo ->
    /// Rejected`, and every rejected schedule is also unscoreable by
    /// the optimizer's objective.
    #[test]
    fn sub_alpha_measurements_are_always_rejected(
        n in 2usize..=4,
        entropy in any::<u64>(),
        xmax in 1.5f64..6.0,
    ) {
        // n = f + 1 < 2f + 2: the alpha bound applies.
        let f = n - 1;
        let params = Params::new(n, f).unwrap();
        let schedule = random_schedule(n, entropy);
        let objective = Objective::new(params, xmax, 8).unwrap();
        let measured = objective.measure(&schedule).unwrap();
        prop_assume!(measured.uncovered == 0 && measured.empirical.is_finite());

        let cert = certify_alpha(n).unwrap();
        let verdict = cross_check(Some(&cert), measured.empirical);
        if measured.empirical < cert.lo {
            prop_assert_eq!(verdict, CrossCheck::Rejected);
            // The greedy search can never adopt such a schedule: its
            // objective value is the penalty, not the flattering
            // measurement.
            prop_assert_eq!(objective.eval(&schedule), PENALTY);
        } else {
            prop_assert_eq!(verdict, CrossCheck::Consistent);
            // A scoreable schedule evaluates to its supremum plus the
            // bounded pressure tie-breaker.
            let score = objective.eval(&schedule);
            prop_assert!(score > measured.empirical);
            prop_assert!(score <= measured.empirical + PRESSURE_WEIGHT);
        }
    }
}

/// A hand-built window-overfitted schedule: two robots sweep `[1,
/// 1.2]` on both sides so every target is double-visited with ratio
/// about 3.4 — "beating" `alpha(2) ≈ 3.93` inside the window. The
/// cross-check must call this out.
#[test]
fn a_window_overfitted_schedule_is_rejected_not_celebrated() {
    let params = Params::new(2, 1).unwrap();
    let right = FreeRobot::new(1.0, vec![1.201, 3.0], 1.201).unwrap();
    let left = FreeRobot::new(-1.0, vec![1.201, 3.0], 1.201).unwrap();
    let schedule = FreeSchedule::new(vec![right, left]).unwrap();

    let objective = Objective::new(params, 1.2, 8).unwrap();
    let measured = objective.measure(&schedule).unwrap();
    assert_eq!(measured.uncovered, 0);

    let cert = certify_alpha(2).unwrap();
    assert!(
        measured.empirical < cert.lo,
        "expected a sub-bound in-window measurement, got {} vs certified lo {}",
        measured.empirical,
        cert.lo
    );
    assert_eq!(cross_check(Some(&cert), measured.empirical), CrossCheck::Rejected);
    assert_eq!(objective.eval(&schedule), PENALTY);
}
