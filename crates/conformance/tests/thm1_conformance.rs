//! Satellite property tests: `core::closed_form` Theorem 1 values
//! agree with `analysis` measured competitive ratios on every Table-1
//! pair, within the documented exact tolerance.
//!
//! The tolerance regime is the one the `thm1-closed-form-measured`
//! oracle states: the exact critical-point measurement evaluates the
//! turning-point one-sided limits directly, so it may sit *below*
//! the closed form by at most [`EXACT_RTOL`] relatively and *above*
//! it by at most [`ABS_SLACK`] absolutely (rounding only). These
//! tests drive the exact same named oracle the randomized sweep
//! runs, so the deterministic Table-1 anchor and the fuzzed
//! instances can never drift apart.

use faultline_analysis::table1::TABLE1_PAIRS;
use faultline_conformance::{oracle_by_name, Instance, Verdict, ABS_SLACK, EXACT_RTOL};
use proptest::prelude::*;

/// A hand-built instance pointing the oracle at one `(n, f)` pair with
/// an explicit window and grid.
fn thm1_instance(n: usize, f: usize, xmax: f64, grid_points: usize) -> Instance {
    Instance {
        index: 0,
        seed: 0,
        n,
        f,
        strategy: "paper".to_owned(),
        xmax,
        grid_points,
        targets: vec![1.5],
        mask: Vec::new(),
        schedule: None,
        lie_rate: None,
        detect_probability: None,
        speeds: None,
        activation_delays: None,
    }
}

#[test]
fn every_table1_pair_matches_theorem_1_within_exact_tolerance() {
    let oracle = oracle_by_name("thm1-closed-form-measured").unwrap();
    for &(n, f) in TABLE1_PAIRS {
        let verdict = oracle.check(&thm1_instance(n, f, 40.0, 96), false);
        assert_eq!(
            verdict,
            Verdict::Pass,
            "(n={n}, f={f}) vs tolerance band [thm1*(1-{EXACT_RTOL}), thm1+{ABS_SLACK}]: {verdict:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The agreement is not an artifact of one window: any reasonable
    /// `(xmax, grid)` drawn at random stays inside the same band on
    /// every small Table-1 pair. Pairs with large `n` are excluded
    /// only for debug-mode runtime, not correctness — the
    /// deterministic test above covers them.
    #[test]
    fn table1_agreement_holds_across_random_windows(
        pair_idx in 0usize..TABLE1_PAIRS.len(),
        xmax in 24.0f64..64.0,
        grid_points in 64usize..128,
    ) {
        let (n, f) = TABLE1_PAIRS[pair_idx];
        prop_assume!(n <= 11);
        let oracle = oracle_by_name("thm1-closed-form-measured").unwrap();
        let verdict = oracle.check(&thm1_instance(n, f, xmax, grid_points), false);
        prop_assert_eq!(
            verdict.clone(),
            Verdict::Pass,
            "(n={}, f={}), xmax {}, grid {}: {:?}", n, f, xmax, grid_points, verdict
        );
    }
}
