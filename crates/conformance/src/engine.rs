//! The conformance run: generate instances, fan the oracle set out
//! over the work-stealing pool, aggregate a pass/skip/fail matrix per
//! oracle × regime, and shrink + package failures.
//!
//! Determinism contract: the report is a pure function of
//! `(seed, cases, budget, inject)`. Oracle checks are pure per
//! instance and `par_map_with` preserves input order, so the report
//! bytes are identical for any thread count (including
//! `FAULTLINE_THREADS=1`).

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

use faultline_analysis::render_table;
use faultline_core::{par_map_with, Error, ParallelConfig, Result};
use serde::{Deserialize, Serialize};

use crate::counterexample::Counterexample;
use crate::instance::{GenCaps, Instance};
use crate::oracles::{all_oracles, oracle_by_name, Verdict};

/// Report-format version; bump on incompatible schema changes.
pub const CONFORMANCE_VERSION: u32 = 1;

/// Case budget tier: how finely instances scan, not what they assert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Tier {
    /// CI-sized: coarse grids, few targets.
    Smoke,
    /// The standard interactive tier.
    #[default]
    Default,
    /// Fine grids and more targets; used by the `--ignored` deep test.
    Deep,
}

impl Tier {
    /// The generation caps this tier hands to [`Instance::generate`].
    #[must_use]
    pub fn caps(self) -> GenCaps {
        match self {
            Tier::Smoke => GenCaps { grid_lo: 24, grid_hi: 40, targets: 3, explicit_turns: 5 },
            Tier::Default => GenCaps { grid_lo: 32, grid_hi: 72, targets: 4, explicit_turns: 6 },
            Tier::Deep => GenCaps { grid_lo: 48, grid_hi: 112, targets: 6, explicit_turns: 8 },
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Tier::Smoke => "smoke",
            Tier::Default => "default",
            Tier::Deep => "deep",
        })
    }
}

impl FromStr for Tier {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self> {
        match s {
            "smoke" => Ok(Tier::Smoke),
            "default" => Ok(Tier::Default),
            "deep" => Ok(Tier::Deep),
            other => Err(Error::domain(format!(
                "unknown budget tier `{other}` (expected smoke, default, or deep)"
            ))),
        }
    }
}

/// Inputs of one conformance run.
#[derive(Debug, Clone)]
pub struct ConformanceConfig {
    /// Run seed; every instance derives from `(seed, index)`.
    pub seed: u64,
    /// Number of generated instances.
    pub cases: usize,
    /// Generation budget tier.
    pub budget: Tier,
    /// Test-only: name of one oracle whose observations are skewed so
    /// the failure pipeline (shrink, persist, replay) can be exercised
    /// deliberately.
    pub inject: Option<String>,
    /// Thread-pool configuration for the oracle fan-out.
    pub parallel: ParallelConfig,
}

impl Default for ConformanceConfig {
    fn default() -> Self {
        ConformanceConfig {
            seed: 1,
            cases: 200,
            budget: Tier::Default,
            inject: None,
            parallel: ParallelConfig::default(),
        }
    }
}

/// One row of the conformance matrix: an oracle's tallies within one
/// parameter regime.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatrixRow {
    /// Oracle name.
    pub oracle: String,
    /// Regime label (`single-robot`, `proportional`, `two-group`).
    pub regime: String,
    /// Instances on which the oracle held.
    pub pass: usize,
    /// Instances outside the oracle's domain.
    pub skip: usize,
    /// Instances on which the oracle was violated.
    pub fail: usize,
}

/// The aggregated result of a conformance run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConformanceReport {
    /// Report-format version.
    pub version: u32,
    /// The run seed.
    pub seed: u64,
    /// Number of generated instances.
    pub cases: usize,
    /// Budget tier name.
    pub budget: String,
    /// Name of the oracle skewed by test-only injection, if any.
    #[serde(default)]
    pub injected: Option<String>,
    /// The pass/skip/fail matrix, ordered by oracle (report order)
    /// then regime (lexicographic).
    pub rows: Vec<MatrixRow>,
    /// Shrunk, replayable documents for every failure, in case order.
    pub failures: Vec<Counterexample>,
}

impl ConformanceReport {
    /// Whether every oracle held on every instance.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty() && self.rows.iter().all(|r| r.fail == 0)
    }

    /// Serializes the report to pretty-printed JSON (newline
    /// terminated, byte-stable for a given config).
    ///
    /// # Errors
    ///
    /// Propagates serializer failures as [`Error::Domain`].
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self)
            .map(|mut s| {
                s.push('\n');
                s
            })
            .map_err(|e| Error::domain(format!("report serialization failed: {e}")))
    }

    /// Parses a report from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] describing the parse failure.
    pub fn from_json(text: &str) -> Result<ConformanceReport> {
        serde_json::from_str(text).map_err(|e| Error::domain(format!("report parse failed: {e}")))
    }

    /// The matrix as CSV (`oracle,regime,pass,skip,fail`).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("oracle,regime,pass,skip,fail\n");
        for row in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                row.oracle, row.regime, row.pass, row.skip, row.fail
            ));
        }
        out
    }

    /// Renders the matrix as an aligned ASCII table with a verdict
    /// footer.
    #[must_use]
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.oracle.clone(),
                    r.regime.clone(),
                    r.pass.to_string(),
                    r.skip.to_string(),
                    r.fail.to_string(),
                ]
            })
            .collect();
        let mut out = render_table(&["oracle", "regime", "pass", "skip", "fail"], &rows);
        let failed: usize = self.rows.iter().map(|r| r.fail).sum();
        out.push_str(&format!(
            "\nseed {}, {} cases, {} budget: {}\n",
            self.seed,
            self.cases,
            self.budget,
            if failed == 0 {
                "all oracles passed".to_owned()
            } else {
                format!("{failed} oracle violations ({} counterexamples)", self.failures.len())
            }
        ));
        out
    }
}

/// Runs the conformance harness.
///
/// # Errors
///
/// Returns [`Error::Domain`] for a zero case budget or an unknown
/// injection-oracle name; oracle-internal errors never propagate (they
/// are conformance failures and land in the matrix).
pub fn run(config: &ConformanceConfig) -> Result<ConformanceReport> {
    if config.cases == 0 {
        return Err(Error::domain("a conformance run needs at least one case"));
    }
    if let Some(name) = &config.inject {
        if oracle_by_name(name).is_none() {
            return Err(Error::domain(format!("unknown injection oracle `{name}`")));
        }
    }
    let caps = config.budget.caps();
    let instances: Vec<Instance> =
        (0..config.cases as u64).map(|i| Instance::generate(config.seed, i, &caps)).collect();

    // Fan out: one work item per instance, all oracles applied inside
    // the item. Checks are pure, and `par_map_with` preserves order,
    // so the verdict grid is identical for any thread count.
    let verdicts: Vec<Vec<Verdict>> = par_map_with(&instances, &config.parallel, |inst| {
        all_oracles()
            .iter()
            .map(|oracle| oracle.check(inst, config.inject.as_deref() == Some(oracle.name)))
            .collect()
    });

    // Aggregate sequentially (BTreeMap: deterministic row order), and
    // shrink failures serially so counterexample derivation is
    // deterministic too.
    let mut tallies: BTreeMap<(usize, &str), (usize, usize, usize)> = BTreeMap::new();
    let mut failures = Vec::new();
    for (inst, row) in instances.iter().zip(&verdicts) {
        for (oracle_idx, (oracle, verdict)) in all_oracles().iter().zip(row).enumerate() {
            let entry = tallies.entry((oracle_idx, inst.regime_label())).or_default();
            match verdict {
                Verdict::Pass => entry.0 += 1,
                Verdict::Skip(_) => entry.1 += 1,
                Verdict::Fail(mismatch) => {
                    entry.2 += 1;
                    let injected = config.inject.as_deref() == Some(oracle.name);
                    failures.push(Counterexample::build(
                        oracle,
                        inst,
                        mismatch,
                        config.seed,
                        injected,
                    ));
                }
            }
        }
    }

    let rows = tallies
        .into_iter()
        .map(|((oracle_idx, regime), (pass, skip, fail))| MatrixRow {
            oracle: all_oracles()[oracle_idx].name.to_owned(),
            regime: regime.to_owned(),
            pass,
            skip,
            fail,
        })
        .collect();

    Ok(ConformanceReport {
        version: CONFORMANCE_VERSION,
        seed: config.seed,
        cases: config.cases,
        budget: config.budget.to_string(),
        injected: config.inject.clone(),
        rows,
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(cases: usize) -> ConformanceConfig {
        ConformanceConfig { cases, budget: Tier::Smoke, ..ConformanceConfig::default() }
    }

    #[test]
    fn tier_names_round_trip() {
        for tier in [Tier::Smoke, Tier::Default, Tier::Deep] {
            assert_eq!(tier.to_string().parse::<Tier>().unwrap(), tier);
        }
        assert!("nope".parse::<Tier>().is_err());
    }

    #[test]
    fn a_small_run_passes_and_covers_every_regime() {
        let report = run(&small(9)).expect("run succeeds");
        assert!(report.passed(), "failures: {:#?}", report.failures);
        let regimes: std::collections::BTreeSet<&str> =
            report.rows.iter().map(|r| r.regime.as_str()).collect();
        assert_eq!(
            regimes.into_iter().collect::<Vec<_>>(),
            ["proportional", "single-robot", "two-group"]
        );
        let checked: usize = report.rows.iter().map(|r| r.pass + r.skip + r.fail).sum();
        assert_eq!(checked, 9 * crate::all_oracles().len());
        assert!(report.to_csv().starts_with("oracle,regime,pass,skip,fail\n"));
    }

    #[test]
    fn reports_are_byte_deterministic_across_thread_counts() {
        let base = run(&small(6)).unwrap().to_json().unwrap();
        let again = run(&small(6)).unwrap().to_json().unwrap();
        assert_eq!(base, again, "same config must give identical bytes");
        let single = ConformanceConfig { parallel: ParallelConfig::with_threads(1), ..small(6) };
        assert_eq!(base, run(&single).unwrap().to_json().unwrap(), "thread-count invariance");
    }

    #[test]
    fn zero_cases_and_unknown_injection_are_rejected() {
        assert!(run(&small(0)).is_err());
        let bad = ConformanceConfig { inject: Some("no-such-oracle".to_owned()), ..small(3) };
        assert!(run(&bad).is_err());
    }
}
