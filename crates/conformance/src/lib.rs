//! # faultline-conformance
//!
//! Cross-layer differential conformance harness for the faultline
//! workspace. The repo computes the paper's quantities along four
//! independent paths — the discrete-event simulator, the analytic
//! coverage machinery, the Theorem 1 / Lemma 2 closed forms, and the
//! optimizer objective — and this crate holds them to each other:
//!
//! - [`instance`] deterministically generates randomized cases
//!   (regimes, targets, fault masks, registry strategies, lowered or
//!   perturbed [`FreeSchedule`](faultline_core::FreeSchedule)s) from a
//!   `(seed, index)` pair;
//! - [`oracles`] is the declarative oracle set: cross-path agreement
//!   within stated tolerances, the paper's metamorphic relations, and
//!   replay self-consistency;
//! - [`engine`] fans the oracle grid over the work-stealing pool and
//!   aggregates a byte-deterministic pass/skip/fail matrix per
//!   oracle × regime;
//! - [`counterexample`] shrinks failures (instance minimization plus
//!   the PR-1 trace shrinker) into self-contained JSON documents that
//!   `faultline conformance replay <file>` reproduces bit-for-bit.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod counterexample;
pub mod engine;
pub mod instance;
pub mod oracles;

pub use counterexample::{Counterexample, COUNTEREXAMPLE_VERSION};
pub use engine::{run, ConformanceConfig, ConformanceReport, MatrixRow, Tier, CONFORMANCE_VERSION};
pub use instance::{GenCaps, Instance};
pub use oracles::{
    all_oracles, oracle_by_name, Mismatch, Oracle, Verdict, ABS_SLACK, ENCLOSURE_WIDTH_RTOL,
    EXACT_RTOL, EXACT_TOL, FLOOR_RTOL, GRID_RTOL, INJECTED_SKEW, REL_TOL,
};
