//! Self-contained, replayable counterexample documents.
//!
//! When an oracle fails, the engine shrinks the instance (fewer
//! targets, smaller fault mask, no schedule, targets pulled toward the
//! origin) while the failure persists, shrinks any embedded simulator
//! trace with the PR-1 trace shrinker, and persists the result as a
//! JSON document that `faultline conformance replay <file>` reproduces
//! bit-for-bit. Expected/observed values are stored as `f64` bit
//! patterns so non-finite mismatches round-trip losslessly through
//! plain JSON.

use faultline_core::coverage::Fleet;
use faultline_core::{Error, Result};
use faultline_sim::RunTrace;
use serde::{Deserialize, Serialize};

use crate::instance::Instance;
use crate::oracles::{oracle_by_name, Mismatch, Oracle, Verdict, REL_TOL};

/// Document-format version; bump on incompatible schema changes.
pub const COUNTEREXAMPLE_VERSION: u32 = 1;

/// A persisted conformance failure: the shrunk instance, the violated
/// oracle, both sides of the relation (as exact bit patterns), and an
/// optional shrunk simulator trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Counterexample {
    /// Document-format version.
    pub version: u32,
    /// Name of the violated oracle.
    pub oracle: String,
    /// The run seed the instance was generated under.
    pub run_seed: u64,
    /// Whether the failure was produced by the test-only injected
    /// skew (replay re-applies it).
    pub injected: bool,
    /// The shrunk instance that still fails the oracle.
    pub instance: Instance,
    /// Bit pattern (`f64::to_bits`) of the expected side.
    pub expected_bits: u64,
    /// Bit pattern (`f64::to_bits`) of the observed side.
    pub observed_bits: u64,
    /// Human-readable description of the violated sub-check.
    pub detail: String,
    /// Shrunk simulator trace backing the failure, when the oracle ran
    /// the discrete-event engine.
    pub trace: Option<RunTrace>,
}

impl Counterexample {
    /// Shrinks `instance` against `oracle` and packages the final
    /// mismatch as a document.
    #[must_use]
    pub fn build(
        oracle: &Oracle,
        instance: &Instance,
        mismatch: &Mismatch,
        run_seed: u64,
        injected: bool,
    ) -> Counterexample {
        let shrunk = shrink_instance(oracle, instance, injected);
        // Re-check the shrunk instance so the stored mismatch matches
        // what replay will observe (shrinking may move the failure to
        // a different target or sub-check).
        let final_mismatch = match oracle.check(&shrunk, injected) {
            Verdict::Fail(m) => *m,
            // Unreachable by construction (shrinking only keeps
            // still-failing candidates), but degrade gracefully.
            _ => mismatch.clone(),
        };
        let trace = final_mismatch.trace.map(|t| shrink_trace(&shrunk, t));
        Counterexample {
            version: COUNTEREXAMPLE_VERSION,
            oracle: oracle.name.to_owned(),
            run_seed,
            injected,
            instance: shrunk,
            expected_bits: final_mismatch.expected.to_bits(),
            observed_bits: final_mismatch.observed.to_bits(),
            detail: final_mismatch.detail,
            trace,
        }
    }

    /// The expected side of the violated relation.
    #[must_use]
    pub fn expected(&self) -> f64 {
        f64::from_bits(self.expected_bits)
    }

    /// The observed side of the violated relation.
    #[must_use]
    pub fn observed(&self) -> f64 {
        f64::from_bits(self.observed_bits)
    }

    /// Re-runs the oracle on the embedded instance and confirms the
    /// failure reproduces bit-for-bit; also verifies any embedded
    /// trace against its recorded outcome.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] when the document version is
    /// unsupported, the oracle is unknown, the oracle no longer fails,
    /// the reproduced mismatch differs in any bit, or the embedded
    /// trace fails verification.
    pub fn replay(&self) -> Result<()> {
        if self.version != COUNTEREXAMPLE_VERSION {
            return Err(Error::domain(format!(
                "unsupported counterexample version {} (this build reads version {COUNTEREXAMPLE_VERSION})",
                self.version
            )));
        }
        let oracle = oracle_by_name(&self.oracle)
            .ok_or_else(|| Error::domain(format!("unknown oracle `{}`", self.oracle)))?;
        let mismatch = match oracle.check(&self.instance, self.injected) {
            Verdict::Fail(m) => *m,
            verdict => {
                return Err(Error::domain(format!(
                    "oracle `{}` no longer fails on the stored instance: {verdict:?}",
                    self.oracle
                )));
            }
        };
        if mismatch.expected.to_bits() != self.expected_bits
            || mismatch.observed.to_bits() != self.observed_bits
        {
            return Err(Error::domain(format!(
                "reproduced mismatch differs from the stored one: stored (expected {}, observed {}), reproduced (expected {}, observed {})",
                self.expected(),
                self.observed(),
                mismatch.expected,
                mismatch.observed,
            )));
        }
        if let Some(trace) = &self.trace {
            trace.verify()?;
        }
        Ok(())
    }

    /// Serializes the document to pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Propagates serializer failures as [`Error::Domain`].
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self)
            .map(|mut s| {
                s.push('\n');
                s
            })
            .map_err(|e| Error::domain(format!("counterexample serialization failed: {e}")))
    }

    /// Parses a document from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] describing the parse failure.
    pub fn from_json(text: &str) -> Result<Counterexample> {
        serde_json::from_str(text)
            .map_err(|e| Error::domain(format!("counterexample parse failed: {e}")))
    }
}

/// Greedy instance shrinking: each step keeps a candidate only if the
/// oracle still fails on it. Deterministic (no randomness), so replay
/// of the same run re-derives the same document.
fn shrink_instance(oracle: &Oracle, instance: &Instance, injected: bool) -> Instance {
    let still_failing = |cand: &Instance| oracle.check(cand, injected).is_fail();
    let mut best = instance.clone();

    // 1. A single target, preferring the earliest that still fails.
    if best.targets.len() > 1 {
        for &x in &instance.targets {
            let mut cand = best.clone();
            cand.targets = vec![x];
            if still_failing(&cand) {
                best = cand;
                break;
            }
        }
    }

    // 2. Drop the free schedule if the failure does not need it.
    if best.schedule.is_some() {
        let mut cand = best.clone();
        cand.schedule = None;
        if still_failing(&cand) {
            best = cand;
        }
    }

    // 3. Remove fault-mask entries to a fixed point.
    loop {
        let mut improved = false;
        for i in 0..best.mask.len() {
            let mut cand = best.clone();
            cand.mask.remove(i);
            if still_failing(&cand) {
                best = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }

    // 4. Pull each target toward the unit magnitude while the failure
    // persists (halving the excess, bounded pass count).
    for _ in 0..16 {
        let mut improved = false;
        let targets = best.targets.clone();
        for (i, &x) in targets.iter().enumerate() {
            let excess = x.abs() - 1.0;
            if excess <= 1e-3 {
                continue;
            }
            let mut cand = best.clone();
            cand.targets[i] = x.signum() * (1.0 + excess / 2.0);
            if still_failing(&cand) {
                best = cand;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }

    best
}

/// Shrinks an embedded trace with the PR-1 shrinker. The predicate
/// re-derives the coverage bound from the candidate's own trajectories
/// (the shrinker halves the target's excess but leaves `bound` stale),
/// so a candidate is kept only if it genuinely still violates
/// adversary dominance.
fn shrink_trace(instance: &Instance, trace: RunTrace) -> RunTrace {
    let required = instance.f + 1;
    trace.shrunk(|cand| {
        let Ok(fleet) = Fleet::new(cand.trajectories.clone()) else {
            return false;
        };
        match (cand.outcome.detection.as_ref(), fleet.visit_time(cand.target, required)) {
            (None, _) | (_, None) => true,
            (Some(d), Some(bound)) => d.time > bound * (1.0 + REL_TOL),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::GenCaps;
    use crate::oracles::all_oracles;

    const CAPS: GenCaps = GenCaps { grid_lo: 16, grid_hi: 24, targets: 3, explicit_turns: 4 };

    fn first_injected_failure() -> (&'static Oracle, Instance, Mismatch) {
        for oracle in all_oracles() {
            for index in 0..6u64 {
                let instance = Instance::generate(11, index, &CAPS);
                if let Verdict::Fail(m) = oracle.check(&instance, true) {
                    return (oracle, instance, *m);
                }
            }
        }
        panic!("no oracle failed under injection");
    }

    #[test]
    fn injected_failures_shrink_and_replay() {
        let (oracle, instance, mismatch) = first_injected_failure();
        let doc = Counterexample::build(oracle, &instance, &mismatch, 11, true);
        assert!(doc.instance.targets.len() <= instance.targets.len());
        assert!(doc.instance.mask.len() <= instance.mask.len());
        doc.replay().expect("shrunk counterexample replays bit-for-bit");
        let round_trip = Counterexample::from_json(&doc.to_json().unwrap()).unwrap();
        assert_eq!(round_trip, doc);
        round_trip.replay().expect("round-tripped counterexample replays");
    }

    #[test]
    fn replay_rejects_tampered_documents() {
        let (oracle, instance, mismatch) = first_injected_failure();
        let mut doc = Counterexample::build(oracle, &instance, &mismatch, 11, true);
        doc.observed_bits ^= 1;
        assert!(doc.replay().is_err(), "a flipped observed bit must fail replay");
        doc.observed_bits ^= 1;
        doc.version += 1;
        assert!(doc.replay().is_err(), "an unknown version must fail replay");
        doc.version -= 1;
        doc.injected = false;
        assert!(doc.replay().is_err(), "dropping the injection flag must fail replay");
    }
}
