//! The declarative oracle set: named cross-path agreement checks,
//! metamorphic relations, and self-consistency properties.
//!
//! Every oracle is a pure function of an [`Instance`] (plus the
//! test-only injection flag), so the engine can fan instances out over
//! the work-stealing pool and still produce byte-identical reports for
//! any thread count. An oracle answers [`Verdict::Skip`] when the
//! instance is outside its domain (e.g. the closed form does not exist
//! in the two-group regime), never an error.
//!
//! | oracle | relation | tolerance |
//! |---|---|---|
//! | `sim-analytic-detection` | simulator detection time = coverage `T_(f+1)(x)` | [`REL_TOL`] |
//! | `sim-analytic-supremum` | grid and simulator measurement paths agree per strategy | [`REL_TOL`] |
//! | `exact-supremum-dominates-grid` | exact critical-point supremum >= every grid scan | [`REL_TOL`] |
//! | `closed-form-visit` | Lemma 2 closed form = coverage `T_(f+1)(x)` | [`REL_TOL`] |
//! | `thm1-closed-form-measured` | exact measured CR attains Theorem 1 | [`EXACT_RTOL`] below, [`ABS_SLACK`] above |
//! | `cr-monotone-in-f` | `CR(n, f) <= CR(n, f + 1)` | [`EXACT_TOL`] |
//! | `scale-invariance` | `K(E * x) = K(x)` for the proportional ladder | [`REL_TOL`] |
//! | `two-group-unit-cr` | `n >= 2f + 2` has CR exactly 1 | [`REL_TOL`] |
//! | `single-robot-nine` | `n = f + 1` collapses to doubling's CR 9 | [`EXACT_RTOL`] |
//! | `measured-above-certified-floor` | measured CR >= certified lower bound | [`FLOOR_RTOL`] |
//! | `objective-eval-consistency` | optimizer score sits in `(measured, measured + PRESSURE_WEIGHT]` or is `PENALTY` | exact |
//! | `adversary-dominance` | any in-budget mask detects by `T_(f+1)(x)` | [`REL_TOL`] |
//! | `replay-determinism` | recorded runs replay bit-for-bit, twice | exact |
//! | `intermittent-degenerate-equivalence` | `Intermittent{1.0}` ≡ `Sensor`, `Intermittent{0.0}` ≡ `Reliable`, bitwise | exact |
//! | `pfaulty-endpoint-collapse` | `PFaulty{1.0}` ≡ `Reliable`, `PFaulty{0.0}` ≡ `Sensor`, bitwise | exact |
//! | `byzantine-quorum-no-false-confirm` | no coalition of `f` liars confirms a false position; quorum detection = honest `T_votes(x)` | [`REL_TOL`] |
//! | `expected-cr-monotone-in-p` | expected detection time is non-increasing in `p`; `E(1) = T_1(x)` | [`REL_TOL`] |
//! | `enclosure-contains-exact` | `exact_supremum_enclosed` brackets the exact supremum tightly | [`ENCLOSURE_WIDTH_RTOL`] |
//! | `unit-speed-scenario-equivalence` | a unit-speed, immediately-active, full-line scenario document reproduces the legacy runner bitwise | exact |

use std::collections::{BTreeMap, BTreeSet};

use faultline_analysis::scenario::results_to_json;
use faultline_analysis::{
    exact_supremum, exact_supremum_enclosed, measure_strategy_cr, measure_strategy_cr_grid,
    measure_strategy_cr_sim, Scenario, ScenarioResult,
};
use faultline_core::closed_form::ClosedForm;
use faultline_core::coverage::Fleet;
use faultline_core::trajectory::PiecewiseTrajectory;
use faultline_core::{certificate, ratio, Algorithm, Geometry, Params, Result};
use faultline_opt::{Objective, PENALTY, PRESSURE_WEIGHT};
use faultline_scenario::{Activation, RobotSpec, ScenarioDoc, SCENARIO_VERSION};
use faultline_sim::engine::SimConfig;
use faultline_sim::{
    expected_outcome, worst_case_outcome, FaultKind, FaultPlan, QuorumConfig, RunTrace,
    SearchOutcome, Simulation, Target,
};
use faultline_strategies::{strategy_by_name, PaperStrategy};

use crate::instance::Instance;

/// Relative tolerance for cross-path agreement: two independent
/// evaluations of the same exact quantity may differ only by
/// accumulated rounding.
pub const REL_TOL: f64 = 1e-9;

/// Finite-window tolerance: a *grid* supremum samples the ratio at
/// turning-point right-hand limits offset by `TURNING_POINT_EPS`, so
/// it may sit below the closed-form supremum by this relative margin
/// (and no more) at any grid the generator draws. Only the retained
/// grid baselines assert with this; the exact hot paths use
/// [`EXACT_RTOL`].
pub const GRID_RTOL: f64 = 1e-3;

/// Tolerance for the exact critical-point engine against analytic
/// values: the supremum is a max over exact one-sided-limit
/// evaluations, so agreement is at accumulated-rounding precision
/// with a generous margin — three orders tighter than [`GRID_RTOL`].
pub const EXACT_RTOL: f64 = 1e-6;

/// Absolute slack allowed *above* an analytic value by a measurement
/// (probe offsets can overshoot the supremum by rounding, never by
/// more than this).
pub const ABS_SLACK: f64 = 1e-6;

/// Tolerance for relations that hold exactly in real arithmetic
/// between closed-form evaluations.
pub const EXACT_TOL: f64 = 1e-12;

/// Relative slack when comparing a finite-window measurement against a
/// certified (outward-rounded) lower-bound enclosure.
pub const FLOOR_RTOL: f64 = 1e-6;

/// Size of the test-only injected perturbation: large enough to trip
/// every oracle tolerance above, small enough that the perturbed run
/// still executes normally.
pub const INJECTED_SKEW: f64 = 0.01;

/// Maximum relative width of a certified supremum enclosure: the
/// outward rounding accumulates only a handful of ulps per operation,
/// so `hi - lo` beyond this fraction of the supremum means the
/// interval arithmetic degraded.
pub const ENCLOSURE_WIDTH_RTOL: f64 = 1e-9;

/// A failed check: the two sides of the violated relation, a human
/// explanation, and (for sim-involving oracles) a replayable trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Mismatch {
    /// The reference side of the relation.
    pub expected: f64,
    /// The side that violated it.
    pub observed: f64,
    /// Which sub-check failed, with the concrete inputs.
    pub detail: String,
    /// A replayable simulator trace backing the failure, when the
    /// oracle runs the discrete-event engine.
    pub trace: Option<RunTrace>,
}

/// The outcome of one oracle on one instance.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// The relation holds within tolerance.
    Pass,
    /// The instance is outside the oracle's domain (with the reason).
    Skip(String),
    /// The relation is violated.
    Fail(Box<Mismatch>),
}

impl Verdict {
    /// Whether this verdict is a failure.
    #[must_use]
    pub fn is_fail(&self) -> bool {
        matches!(self, Verdict::Fail(_))
    }
}

/// A named conformance oracle.
pub struct Oracle {
    /// Stable name (report rows, counterexample documents, CLI).
    pub name: &'static str,
    /// One-line statement of the relation.
    pub description: &'static str,
    /// The dominant tolerance the oracle asserts with.
    pub tolerance: f64,
    check: fn(&Instance, bool) -> Result<Verdict>,
}

impl Oracle {
    /// Runs the oracle. Internal errors (a path that refuses an input
    /// another path accepted) are themselves conformance failures, so
    /// they surface as [`Verdict::Fail`], never as `Err`.
    #[must_use]
    pub fn check(&self, instance: &Instance, inject: bool) -> Verdict {
        match (self.check)(instance, inject) {
            Ok(verdict) => verdict,
            Err(e) => fail(f64::NAN, f64::NAN, format!("oracle errored: {e}"), None),
        }
    }
}

impl std::fmt::Debug for Oracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Oracle")
            .field("name", &self.name)
            .field("tolerance", &self.tolerance)
            .finish()
    }
}

/// The full oracle set, in report order.
#[must_use]
pub fn all_oracles() -> &'static [Oracle] {
    &ORACLES
}

/// Looks up an oracle by its stable name.
#[must_use]
pub fn oracle_by_name(name: &str) -> Option<&'static Oracle> {
    ORACLES.iter().find(|o| o.name == name)
}

static ORACLES: [Oracle; 19] = [
    Oracle {
        name: "sim-analytic-detection",
        description: "worst-case simulator detection time equals coverage T_(f+1)(x)",
        tolerance: REL_TOL,
        check: sim_analytic_detection,
    },
    Oracle {
        name: "sim-analytic-supremum",
        description: "coverage and simulator measurement paths agree for the instance strategy",
        tolerance: REL_TOL,
        check: sim_analytic_supremum,
    },
    Oracle {
        name: "exact-supremum-dominates-grid",
        description: "the exact critical-point supremum dominates every adversarial-grid scan",
        tolerance: REL_TOL,
        check: exact_supremum_dominates_grid,
    },
    Oracle {
        name: "closed-form-visit",
        description: "Lemma 2 closed-form visit times equal coverage queries",
        tolerance: REL_TOL,
        check: closed_form_visit,
    },
    Oracle {
        name: "thm1-closed-form-measured",
        description: "exact measured CR of A(n, f) attains Theorem 1",
        tolerance: EXACT_RTOL,
        check: thm1_closed_form_measured,
    },
    Oracle {
        name: "cr-monotone-in-f",
        description: "Theorem 1 CR is non-decreasing in f at fixed n",
        tolerance: EXACT_TOL,
        check: cr_monotone_in_f,
    },
    Oracle {
        name: "scale-invariance",
        description: "K(x) is invariant under the ladder period E = r^n",
        tolerance: REL_TOL,
        check: scale_invariance,
    },
    Oracle {
        name: "two-group-unit-cr",
        description: "n >= 2f + 2 yields competitive ratio exactly 1",
        tolerance: REL_TOL,
        check: two_group_unit_cr,
    },
    Oracle {
        name: "single-robot-nine",
        description: "n = f + 1 collapses to the single-robot doubling bound 9",
        tolerance: EXACT_RTOL,
        check: single_robot_nine,
    },
    Oracle {
        name: "measured-above-certified-floor",
        description: "measured CR never dips below the certified lower-bound enclosure",
        tolerance: FLOOR_RTOL,
        check: measured_above_certified_floor,
    },
    Oracle {
        name: "objective-eval-consistency",
        description:
            "optimizer score is measured + pressure tie-break, or PENALTY when unscoreable",
        tolerance: 0.0,
        check: objective_eval_consistency,
    },
    Oracle {
        name: "adversary-dominance",
        description: "every in-budget fault mask detects no later than T_(f+1)(x)",
        tolerance: REL_TOL,
        check: adversary_dominance,
    },
    Oracle {
        name: "replay-determinism",
        description: "recorded simulator runs replay bit-for-bit and re-record identically",
        tolerance: 0.0,
        check: replay_determinism,
    },
    Oracle {
        name: "intermittent-degenerate-equivalence",
        description: "Intermittent{1.0} collapses to Sensor and Intermittent{0.0} to Reliable, bitwise",
        tolerance: 0.0,
        check: intermittent_degenerate_equivalence,
    },
    Oracle {
        name: "pfaulty-endpoint-collapse",
        description: "PFaulty{1.0} collapses to Reliable and PFaulty{0.0} to Sensor, bitwise",
        tolerance: 0.0,
        check: pfaulty_endpoint_collapse,
    },
    Oracle {
        name: "byzantine-quorum-no-false-confirm",
        description:
            "no coalition of liars confirms a false position; quorum detection is the honest sub-fleet's T_votes",
        tolerance: REL_TOL,
        check: byzantine_quorum_no_false_confirm,
    },
    Oracle {
        name: "expected-cr-monotone-in-p",
        description:
            "expected detection time is non-increasing in p and collapses to T_1 at p = 1",
        tolerance: REL_TOL,
        check: expected_cr_monotone_in_p,
    },
    Oracle {
        name: "enclosure-contains-exact",
        description:
            "the certified supremum enclosure brackets the exact scan value and stays tight",
        tolerance: ENCLOSURE_WIDTH_RTOL,
        check: enclosure_contains_exact,
    },
    Oracle {
        name: "unit-speed-scenario-equivalence",
        description:
            "a unit-speed, immediately-active, full-line scenario document reproduces the legacy scenario runner bitwise",
        tolerance: 0.0,
        check: unit_speed_scenario_equivalence,
    },
];

fn fail(expected: f64, observed: f64, detail: String, trace: Option<RunTrace>) -> Verdict {
    Verdict::Fail(Box::new(Mismatch { expected, observed, detail, trace }))
}

/// Relative gap with a unit floor so near-zero references do not blow
/// up the comparison.
fn rel_gap(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(1.0)
}

/// Test-only perturbation pushing `observed` *up* past an upper bound.
fn skew_up(inject: bool, observed: f64) -> f64 {
    if inject {
        observed * (1.0 + INJECTED_SKEW) + INJECTED_SKEW
    } else {
        observed
    }
}

/// Test-only perturbation pushing `observed` *down* past a lower bound.
fn skew_down(inject: bool, observed: f64) -> f64 {
    if inject {
        observed * (1.0 - INJECTED_SKEW) - INJECTED_SKEW
    } else {
        observed
    }
}

/// Designs `A(n, f)` and materializes its fleet far enough to confirm
/// targets up to `max_mag`.
fn fleet_for(params: Params, max_mag: f64) -> Result<(Vec<PiecewiseTrajectory>, Fleet)> {
    let alg = Algorithm::design(params)?;
    let horizon = alg.required_horizon(max_mag * 1.5 + 2.0)?;
    let trajectories: Vec<PiecewiseTrajectory> =
        alg.plans().iter().map(|p| p.materialize(horizon)).collect::<Result<Vec<_>>>()?;
    let fleet = Fleet::new(trajectories.clone())?;
    Ok((trajectories, fleet))
}

/// Caps a strategy-supremum scan so debug-mode smoke tiers stay fast;
/// the bound is a scan resolution, not a correctness parameter.
const SUPREMUM_GRID_CAP: usize = 48;

/// Floor applied to Theorem 1 comparisons so the window always
/// contains several full turning-point periods.
const MEASURE_XMAX_FLOOR: f64 = 24.0;
const MEASURE_GRID_FLOOR: usize = 64;

fn sim_analytic_detection(inst: &Instance, inject: bool) -> Result<Verdict> {
    let params = inst.params()?;
    let (trajectories, fleet) = fleet_for(params, inst.max_target())?;
    for &x in &inst.targets {
        let outcome = worst_case_outcome(
            trajectories.clone(),
            Target::new(x)?,
            params.f(),
            SimConfig::default(),
        )?;
        let Some(detection) = outcome.detection else {
            return Ok(fail(
                0.0,
                f64::INFINITY,
                format!("target {x}: worst-case simulation never detected"),
                None,
            ));
        };
        let Some(analytic) = fleet.visit_time(x, params.required_visits()) else {
            return Ok(fail(
                0.0,
                f64::INFINITY,
                format!("target {x}: coverage failed to confirm within the horizon"),
                None,
            ));
        };
        let observed = skew_up(inject, detection.time);
        if rel_gap(observed, analytic) > REL_TOL {
            return Ok(fail(
                analytic,
                observed,
                format!("target {x}: sim detection diverges from analytic T_(f+1)"),
                None,
            ));
        }
    }
    Ok(Verdict::Pass)
}

fn sim_analytic_supremum(inst: &Instance, inject: bool) -> Result<Verdict> {
    let params = inst.params()?;
    let Some(strategy) = strategy_by_name(&inst.strategy) else {
        return Ok(Verdict::Skip(format!("unknown strategy `{}`", inst.strategy)));
    };
    if let Err(e) = strategy.plans(params) {
        return Ok(Verdict::Skip(format!("{} rejects {params}: {e}", inst.strategy)));
    }
    let grid = inst.grid_points.min(SUPREMUM_GRID_CAP);
    // The simulator scans the same discrete target set as the grid
    // baseline, so the two paths are compared grid-vs-sim; the exact
    // engine can only exceed a grid scan and is checked separately by
    // `exact-supremum-dominates-grid`.
    let a = measure_strategy_cr_grid(strategy.as_ref(), params, inst.xmax, grid)?;
    let b = measure_strategy_cr_sim(strategy.as_ref(), params, inst.xmax, grid)?;
    if a.uncovered != b.uncovered {
        return Ok(fail(
            a.uncovered as f64,
            b.uncovered as f64,
            format!("{}: uncovered-target counts disagree", inst.strategy),
            None,
        ));
    }
    if a.empirical.is_finite() {
        let observed = skew_up(inject, b.empirical);
        if rel_gap(observed, a.empirical) > REL_TOL {
            return Ok(fail(
                a.empirical,
                observed,
                format!("{}: coverage vs simulator supremum", inst.strategy),
                None,
            ));
        }
    } else if b.empirical.is_finite() {
        return Ok(fail(
            f64::INFINITY,
            b.empirical,
            format!("{}: coverage is unbounded but the simulator measured finite", inst.strategy),
            None,
        ));
    }
    Ok(Verdict::Pass)
}

fn exact_supremum_dominates_grid(inst: &Instance, inject: bool) -> Result<Verdict> {
    let params = inst.params()?;
    let Some(strategy) = strategy_by_name(&inst.strategy) else {
        return Ok(Verdict::Skip(format!("unknown strategy `{}`", inst.strategy)));
    };
    if let Err(e) = strategy.plans(params) {
        return Ok(Verdict::Skip(format!("{} rejects {params}: {e}", inst.strategy)));
    }
    let grid_points = inst.grid_points.min(SUPREMUM_GRID_CAP);
    let exact = measure_strategy_cr(strategy.as_ref(), params, inst.xmax, grid_points)?;
    let grid = measure_strategy_cr_grid(strategy.as_ref(), params, inst.xmax, grid_points)?;
    if !grid.empirical.is_finite() {
        // A grid-uncovered point lies in some window interval the
        // exact engine enumerates, so exact coverage can never claim
        // a finite supremum where the grid found a hole.
        if exact.empirical.is_finite() {
            return Ok(fail(
                f64::INFINITY,
                exact.empirical,
                format!(
                    "{}: grid scan found {} uncovered targets but the exact supremum is finite",
                    inst.strategy, grid.uncovered
                ),
                None,
            ));
        }
        return Ok(Verdict::Pass);
    }
    if !exact.empirical.is_finite() {
        // The exact engine found an uncovered interval between grid
        // probes; an infinite supremum trivially dominates.
        return Ok(Verdict::Pass);
    }
    // Slack: grid probes sit at `m * (1 + TURNING_POINT_EPS)`,
    // marginally past the one-sided limits the exact engine evaluates.
    let observed = skew_down(inject, exact.empirical);
    if observed < grid.empirical * (1.0 - REL_TOL) {
        return Ok(fail(
            grid.empirical,
            observed,
            format!(
                "{}: exact supremum fell below the {grid_points}-point grid scan",
                inst.strategy
            ),
            None,
        ));
    }
    Ok(Verdict::Pass)
}

fn closed_form_visit(inst: &Instance, inject: bool) -> Result<Verdict> {
    let params = inst.params()?;
    let alg = Algorithm::design(params)?;
    let Some(schedule) = alg.schedule() else {
        return Ok(Verdict::Skip("no proportional schedule in the two-group regime".to_owned()));
    };
    let closed_form = ClosedForm::new(schedule);
    let (_, fleet) = fleet_for(params, inst.max_target())?;
    for &x in &inst.targets {
        let closed = closed_form.visit_time(x, params.f())?;
        let Some(coverage) = fleet.visit_time(x, params.required_visits()) else {
            return Ok(fail(
                closed,
                f64::INFINITY,
                format!("target {x}: coverage failed to confirm within the horizon"),
                None,
            ));
        };
        let observed = skew_up(inject, coverage);
        if rel_gap(observed, closed) > REL_TOL {
            return Ok(fail(
                closed,
                observed,
                format!("target {x}: closed-form vs coverage T_(f+1)"),
                None,
            ));
        }
    }
    Ok(Verdict::Pass)
}

fn thm1_closed_form_measured(inst: &Instance, inject: bool) -> Result<Verdict> {
    let params = inst.params()?;
    let thm1 = ratio::cr_upper(params);
    let measured = measure_strategy_cr(
        &PaperStrategy::new(),
        params,
        inst.xmax.max(MEASURE_XMAX_FLOOR),
        inst.grid_points.max(MEASURE_GRID_FLOOR),
    )?;
    if measured.uncovered != 0 {
        return Ok(fail(
            0.0,
            measured.uncovered as f64,
            "A(n, f) left scan targets uncovered".to_owned(),
            None,
        ));
    }
    let observed = skew_up(inject, measured.empirical);
    if observed > thm1 + ABS_SLACK {
        return Ok(fail(thm1, observed, "measured CR exceeds Theorem 1".to_owned(), None));
    }
    if observed < thm1 * (1.0 - EXACT_RTOL) {
        return Ok(fail(
            thm1,
            observed,
            "measured CR fell below Theorem 1 by more than the exact tolerance".to_owned(),
            None,
        ));
    }
    Ok(Verdict::Pass)
}

fn cr_monotone_in_f(inst: &Instance, inject: bool) -> Result<Verdict> {
    if inst.f + 1 >= inst.n {
        return Ok(Verdict::Skip("f + 1 faults are not tolerable with n robots".to_owned()));
    }
    let here = ratio::cr_upper(inst.params()?);
    let worse = ratio::cr_upper(Params::new(inst.n, inst.f + 1)?);
    let observed = if inject { skew_up(true, worse) } else { here };
    if observed > worse + EXACT_TOL {
        return Ok(fail(
            worse,
            observed,
            format!("CR({}, {}) exceeds CR({}, {})", inst.n, inst.f, inst.n, inst.f + 1),
            None,
        ));
    }
    Ok(Verdict::Pass)
}

fn scale_invariance(inst: &Instance, inject: bool) -> Result<Verdict> {
    let params = inst.params()?;
    let alg = Algorithm::design(params)?;
    let Some(schedule) = alg.schedule() else {
        return Ok(Verdict::Skip("no proportional ladder in the two-group regime".to_owned()));
    };
    let closed_form = ClosedForm::new(schedule);
    // One full ladder period: each robot's same-side turning points
    // expand by kappa^2 = r^n, and the whole fleet is self-similar
    // under that scaling (kappa alone shifts robots by half a cycle
    // and swaps sides, which is not an invariance of K).
    let period = schedule.expansion_factor().powi(2);
    for &x in &inst.targets {
        let here = closed_form.ratio_at(x, params.f())?;
        let scaled = closed_form.ratio_at(x * period, params.f())?;
        let observed = skew_up(inject, scaled);
        if rel_gap(observed, here) > REL_TOL {
            return Ok(fail(
                here,
                observed,
                format!("K({x}) vs K({}) across one ladder period E = {period}", x * period),
                None,
            ));
        }
    }
    Ok(Verdict::Pass)
}

fn two_group_unit_cr(inst: &Instance, inject: bool) -> Result<Verdict> {
    let params = inst.params()?;
    if params.regime() != faultline_core::Regime::TwoGroup {
        return Ok(Verdict::Skip("n < 2f + 2 is the proportional regime".to_owned()));
    }
    let thm1 = skew_up(inject, ratio::cr_upper(params));
    if thm1 != 1.0 {
        return Ok(fail(1.0, thm1, "two-group Theorem 1 value is not exactly 1".to_owned(), None));
    }
    let measured = measure_strategy_cr(&PaperStrategy::new(), params, inst.xmax.min(16.0), 24)?;
    let observed = skew_up(inject, measured.empirical);
    if measured.uncovered != 0 || (observed - 1.0).abs() > REL_TOL {
        return Ok(fail(
            1.0,
            observed,
            format!("two-group measured CR ({} uncovered)", measured.uncovered),
            None,
        ));
    }
    Ok(Verdict::Pass)
}

fn single_robot_nine(inst: &Instance, inject: bool) -> Result<Verdict> {
    if inst.n != inst.f + 1 {
        return Ok(Verdict::Skip("only n = f + 1 reduces to a single reliable robot".to_owned()));
    }
    let params = inst.params()?;
    let thm1 = skew_up(inject, ratio::cr_upper(params));
    if thm1 != 9.0 {
        return Ok(fail(
            9.0,
            thm1,
            "n = f + 1 Theorem 1 value is not the doubling bound 9".to_owned(),
            None,
        ));
    }
    let measured = measure_strategy_cr(
        &PaperStrategy::new(),
        params,
        inst.xmax.max(MEASURE_XMAX_FLOOR),
        inst.grid_points.max(MEASURE_GRID_FLOOR),
    )?;
    let observed = skew_up(inject, measured.empirical);
    let band = 9.0 * (1.0 - EXACT_RTOL)..=9.0 + ABS_SLACK;
    if measured.uncovered != 0 || !band.contains(&observed) {
        return Ok(fail(
            9.0,
            observed,
            format!("measured doubling CR ({} uncovered)", measured.uncovered),
            None,
        ));
    }
    Ok(Verdict::Pass)
}

fn measured_above_certified_floor(inst: &Instance, inject: bool) -> Result<Verdict> {
    let params = inst.params()?;
    let cert = certificate::certify_lower_bound(params)?;
    let measured = measure_strategy_cr(
        &PaperStrategy::new(),
        params,
        inst.xmax.max(MEASURE_XMAX_FLOOR),
        inst.grid_points.max(MEASURE_GRID_FLOOR),
    )?;
    if measured.uncovered != 0 {
        return Ok(fail(
            0.0,
            measured.uncovered as f64,
            "A(n, f) left scan targets uncovered".to_owned(),
            None,
        ));
    }
    let observed = skew_down(inject, measured.empirical);
    if observed < cert.lo * (1.0 - FLOOR_RTOL) {
        return Ok(fail(
            cert.lo,
            observed,
            "measured CR fell below the certified lower bound".to_owned(),
            None,
        ));
    }
    Ok(Verdict::Pass)
}

fn objective_eval_consistency(inst: &Instance, inject: bool) -> Result<Verdict> {
    let Some(schedule) = &inst.schedule else {
        return Ok(Verdict::Skip("instance carries no free schedule".to_owned()));
    };
    let params = inst.params()?;
    let objective = Objective::new(params, inst.xmax, inst.grid_points)?;
    let score = skew_up(inject, objective.eval(schedule));
    // Re-derive scoreability exactly as `eval` does, from `profile`.
    let scoreable = objective.profile(schedule).ok().and_then(|p| {
        let m = p.measured;
        (m.uncovered == 0 && m.empirical.is_finite() && m.empirical >= objective.floor())
            .then_some(m.empirical)
    });
    match scoreable {
        Some(measured) => {
            if score <= measured || score > measured + PRESSURE_WEIGHT + EXACT_TOL {
                return Ok(fail(
                    measured,
                    score,
                    "score is not measured CR plus a pressure tie-break in (0, PRESSURE_WEIGHT]"
                        .to_owned(),
                    None,
                ));
            }
        }
        None => {
            if score.to_bits() != PENALTY.to_bits() {
                return Ok(fail(
                    PENALTY,
                    score,
                    "unscoreable schedule must score exactly PENALTY".to_owned(),
                    None,
                ));
            }
        }
    }
    Ok(Verdict::Pass)
}

fn adversary_dominance(inst: &Instance, inject: bool) -> Result<Verdict> {
    let params = inst.params()?;
    let (trajectories, fleet) = fleet_for(params, inst.max_target())?;
    let kinds: Vec<FaultKind> = (0..params.n())
        .map(|i| if inst.mask.contains(&i) { FaultKind::Sensor } else { FaultKind::Reliable })
        .collect();
    let plan = FaultPlan::new(kinds)?;
    for &x in &inst.targets {
        let Some(bound) = fleet.visit_time(x, params.required_visits()) else {
            return Ok(fail(
                0.0,
                f64::INFINITY,
                format!("target {x}: coverage failed to confirm within the horizon"),
                None,
            ));
        };
        let trace = RunTrace::record(
            format!("conformance adversary-dominance, case {}", inst.index),
            trajectories.clone(),
            Target::new(x)?,
            &plan,
            inst.seed,
            SimConfig::default(),
            Some(bound),
        )?;
        let Some(detection) = &trace.outcome.detection else {
            return Ok(fail(
                bound,
                f64::INFINITY,
                format!("target {x}, mask {:?}: never detected", inst.mask),
                Some(trace),
            ));
        };
        let observed = skew_up(inject, detection.time);
        if observed > bound * (1.0 + REL_TOL) {
            return Ok(fail(
                bound,
                observed,
                format!("target {x}, mask {:?}: detection after T_(f+1)", inst.mask),
                Some(trace),
            ));
        }
    }
    Ok(Verdict::Pass)
}

fn replay_determinism(inst: &Instance, inject: bool) -> Result<Verdict> {
    let params = inst.params()?;
    let (trajectories, _) = fleet_for(params, inst.max_target())?;
    let kinds: Vec<FaultKind> = (0..params.n())
        .map(|i| if inst.mask.contains(&i) { FaultKind::Sensor } else { FaultKind::Reliable })
        .collect();
    let plan = FaultPlan::new(kinds)?;
    let Some(&x) = inst.targets.first() else {
        return Ok(Verdict::Skip("instance has no targets".to_owned()));
    };
    let target = Target::new(x)?;
    let reason = format!("conformance replay-determinism, case {}", inst.index);
    let first = RunTrace::record(
        reason.clone(),
        trajectories.clone(),
        target,
        &plan,
        inst.seed,
        SimConfig::default(),
        None,
    )?;
    if let Err(e) = first.verify() {
        let detail = format!("trace failed bit-for-bit verification: {e}");
        return Ok(fail(f64::NAN, f64::NAN, detail, Some(first)));
    }
    let second = RunTrace::record(
        reason,
        trajectories,
        target,
        &plan,
        inst.seed,
        SimConfig::default(),
        None,
    )?;
    let recorded = first.outcome.detection.as_ref().map_or(f64::INFINITY, |d| d.time);
    let rerecorded = second.outcome.detection.as_ref().map_or(f64::INFINITY, |d| d.time);
    let observed = skew_up(inject, rerecorded);
    if second != first || observed.to_bits() != recorded.to_bits() {
        return Ok(fail(
            recorded,
            observed,
            "re-recording the identical run diverged".to_owned(),
            Some(first),
        ));
    }
    Ok(Verdict::Pass)
}

/// Runs the instance's fleet against one target with an explicit
/// per-robot fault plan on the instance's coin seed.
fn plan_outcome(
    trajectories: &[PiecewiseTrajectory],
    x: f64,
    kinds: Vec<FaultKind>,
    seed: u64,
) -> Result<SearchOutcome> {
    let plan = FaultPlan::new(kinds)?;
    let sim = Simulation::with_faults(
        trajectories.to_vec(),
        Target::new(x)?,
        &plan,
        seed,
        SimConfig::default(),
    )?;
    Ok(sim.run())
}

/// The scalar signature a degenerate-equivalence check compares after
/// asserting full structural equality: detection time, or the horizon
/// when undetected.
fn outcome_signature(outcome: &SearchOutcome) -> f64 {
    outcome.detection.as_ref().map_or(outcome.horizon, |d| d.time)
}

/// Shared body of the two degenerate-equivalence oracles: the masked
/// robots run under `masked` in one world and `reference` in the
/// other; the two outcomes must be bitwise identical.
fn degenerate_equivalence(
    inst: &Instance,
    inject: bool,
    masked: FaultKind,
    reference: FaultKind,
    label: &str,
) -> Result<Verdict> {
    let params = inst.params()?;
    let (trajectories, _) = fleet_for(params, inst.max_target())?;
    let cast = |kind: FaultKind| -> Vec<FaultKind> {
        (0..params.n())
            .map(|i| if inst.mask.contains(&i) { kind } else { FaultKind::Reliable })
            .collect()
    };
    for &x in &inst.targets {
        let probabilistic = plan_outcome(&trajectories, x, cast(masked), inst.seed)?;
        let degenerate = plan_outcome(&trajectories, x, cast(reference), inst.seed)?;
        let expected = outcome_signature(&degenerate);
        let observed = skew_up(inject, outcome_signature(&probabilistic));
        if (!inject && probabilistic != degenerate) || observed.to_bits() != expected.to_bits() {
            return Ok(fail(
                expected,
                observed,
                format!("target {x}, mask {:?}: {label} runs diverged", inst.mask),
                None,
            ));
        }
    }
    Ok(Verdict::Pass)
}

fn intermittent_degenerate_equivalence(inst: &Instance, inject: bool) -> Result<Verdict> {
    if let v @ Verdict::Fail(_) = degenerate_equivalence(
        inst,
        inject,
        FaultKind::Intermittent { miss_probability: 1.0 },
        FaultKind::Sensor,
        "Intermittent{1.0} vs Sensor",
    )? {
        return Ok(v);
    }
    degenerate_equivalence(
        inst,
        false,
        FaultKind::Intermittent { miss_probability: 0.0 },
        FaultKind::Reliable,
        "Intermittent{0.0} vs Reliable",
    )
}

fn pfaulty_endpoint_collapse(inst: &Instance, inject: bool) -> Result<Verdict> {
    if let v @ Verdict::Fail(_) = degenerate_equivalence(
        inst,
        inject,
        FaultKind::PFaulty { detect_probability: 1.0 },
        FaultKind::Reliable,
        "PFaulty{1.0} vs Reliable",
    )? {
        return Ok(v);
    }
    degenerate_equivalence(
        inst,
        false,
        FaultKind::PFaulty { detect_probability: 0.0 },
        FaultKind::Sensor,
        "PFaulty{0.0} vs Sensor",
    )
}

/// The instance's regime spelled as a v1 scenario document.
fn scenario_doc_for(inst: &Instance, robots: Option<Vec<RobotSpec>>) -> ScenarioDoc {
    ScenarioDoc {
        version: SCENARIO_VERSION,
        n: inst.n,
        f: inst.f,
        strategy: "paper".to_owned(),
        beta: None,
        geometry: Geometry::Line,
        targets: inst.targets.clone(),
        faulty: (!inst.mask.is_empty()).then(|| inst.mask.clone()),
        fault_plan: None,
        quorum: None,
        seed: None,
        robots,
    }
}

/// The scalar signature of a scenario result set: total detection
/// time, with undetected targets contributing `-1`. Never exactly
/// zero (detection times exceed 1 because targets do), so any
/// injected skew perturbs it.
fn results_signature(results: &[ScenarioResult]) -> f64 {
    results.iter().map(|r| r.detection_time.unwrap_or(-1.0)).sum()
}

fn unit_speed_scenario_equivalence(inst: &Instance, inject: bool) -> Result<Verdict> {
    // A document whose fleet is exactly the paper's must reproduce
    // the legacy scenario runner byte-for-byte — both through the
    // `as_legacy` delegation `run()` takes and through the
    // generalized wall-clock path `run_general()`, whose retimings
    // are all bitwise identities at unit speed and zero delay.
    let legacy = Scenario {
        n: inst.n,
        f: inst.f,
        strategy: "paper".to_owned(),
        beta: None,
        targets: inst.targets.clone(),
        faulty: (!inst.mask.is_empty()).then(|| inst.mask.clone()),
        fault_plan: None,
        quorum: None,
        seed: None,
    };
    let reference = legacy.run()?;
    let expected = results_signature(&reference);
    let expected_json = results_to_json(&reference)?;
    let doc = scenario_doc_for(inst, None);
    for (label, observed_results) in [("run", doc.run()?), ("run_general", doc.run_general()?)] {
        let observed = skew_up(inject, results_signature(&observed_results));
        let observed_json = results_to_json(&observed_results)?;
        if (!inject && observed_json != expected_json) || observed.to_bits() != expected.to_bits() {
            return Ok(fail(
                expected,
                observed,
                format!("scenario document {label} diverged from the legacy runner"),
                None,
            ));
        }
    }
    // When the generator drew heterogeneous add-ons, the generalized
    // path must at least be deterministic under re-run: spell them as
    // robot specs and demand bitwise-identical result documents.
    if inst.speeds.is_some() || inst.activation_delays.is_some() {
        let robots: Vec<RobotSpec> = (0..inst.n)
            .map(|i| RobotSpec {
                speed: inst.speeds.as_ref().map_or(1.0, |s| s[i]),
                activation: inst
                    .activation_delays
                    .as_ref()
                    .map_or(Activation::Immediate, |d| Activation::DelayedStart(d[i])),
                fault_onset: None,
            })
            .collect();
        let het = scenario_doc_for(inst, Some(robots));
        let first = results_to_json(&het.run()?)?;
        let second = results_to_json(&het.run()?)?;
        if first != second {
            return Ok(fail(
                0.0,
                1.0,
                "heterogeneous scenario re-run was not byte-deterministic".to_owned(),
                None,
            ));
        }
    }
    Ok(Verdict::Pass)
}

fn byzantine_quorum_no_false_confirm(inst: &Instance, inject: bool) -> Result<Verdict> {
    let Some(lie_rate) = inst.lie_rate else {
        return Ok(Verdict::Skip("instance draws no Byzantine lie rate".to_owned()));
    };
    let params = inst.params()?;
    let (trajectories, _) = fleet_for(params, inst.max_target())?;
    let kinds: Vec<FaultKind> = (0..params.n())
        .map(|i| {
            if inst.mask.contains(&i) {
                FaultKind::Byzantine { lie_rate }
            } else {
                FaultKind::Reliable
            }
        })
        .collect();
    let plan = FaultPlan::new(kinds)?;
    // One more vote than there are liars: the smallest quorum the
    // adversary can never assemble alone.
    let quorum = QuorumConfig::new(inst.mask.len() + 1)?;
    let honest: Vec<PiecewiseTrajectory> = (0..params.n())
        .filter(|i| !inst.mask.contains(i))
        .map(|i| trajectories[i].clone())
        .collect();
    let honest_fleet = Fleet::new(honest)?;
    for &x in &inst.targets {
        let bound = honest_fleet.visit_time(x, quorum.votes);
        let trace = RunTrace::record_with_quorum(
            format!("conformance byzantine-quorum-no-false-confirm, case {}", inst.index),
            trajectories.clone(),
            Target::new(x)?,
            &plan,
            inst.seed,
            SimConfig::default(),
            bound,
            Some(quorum),
        )?;
        // Tally distinct claimants per asserted position: no position
        // other than the true target may ever reach the quorum.
        let mut ballots: BTreeMap<u64, BTreeSet<usize>> = BTreeMap::new();
        for claim in &trace.outcome.claims {
            ballots.entry(claim.position.to_bits()).or_default().insert(claim.robot.0);
        }
        for (position_bits, backers) in &ballots {
            let position = f64::from_bits(*position_bits);
            if position != x && backers.len() >= quorum.votes {
                return Ok(fail(
                    x,
                    position,
                    format!(
                        "target {x}, liars {:?}: false position {position} gathered {} votes",
                        inst.mask,
                        backers.len()
                    ),
                    Some(trace),
                ));
            }
        }
        if let Some(confirmed) = trace.outcome.confirmed_position {
            if confirmed != x {
                return Ok(fail(
                    x,
                    confirmed,
                    format!("target {x}, liars {:?}: quorum confirmed a false position", inst.mask),
                    Some(trace),
                ));
            }
        }
        match (bound, &trace.outcome.detection) {
            (Some(bound), Some(detection)) => {
                let observed = skew_up(inject, detection.time);
                if rel_gap(observed, bound) > REL_TOL {
                    return Ok(fail(
                        bound,
                        observed,
                        format!(
                            "target {x}, liars {:?}: quorum detection diverges from honest T_{}",
                            inst.mask, quorum.votes
                        ),
                        Some(trace),
                    ));
                }
            }
            (Some(bound), None) => {
                return Ok(fail(
                    bound,
                    f64::INFINITY,
                    format!(
                        "target {x}, liars {:?}: honest coverage reaches the quorum but the run never detected",
                        inst.mask
                    ),
                    Some(trace),
                ));
            }
            (None, Some(detection)) => {
                return Ok(fail(
                    f64::INFINITY,
                    detection.time,
                    format!(
                        "target {x}, liars {:?}: detection without honest quorum coverage",
                        inst.mask
                    ),
                    Some(trace),
                ));
            }
            (None, None) => {}
        }
    }
    Ok(Verdict::Pass)
}

fn expected_cr_monotone_in_p(inst: &Instance, inject: bool) -> Result<Verdict> {
    let Some(p) = inst.detect_probability else {
        return Ok(Verdict::Skip("instance draws no detection probability".to_owned()));
    };
    let params = inst.params()?;
    let (trajectories, fleet) = fleet_for(params, inst.max_target())?;
    let ladder = [0.0, 0.5 * p, p, 0.5 * (1.0 + p), 1.0];
    for &x in &inst.targets {
        let mut prev = f64::INFINITY;
        let mut at_one = f64::NAN;
        for &q in &ladder {
            let e = expected_outcome(&trajectories, Target::new(x)?, q)?;
            if e.visits == 0 {
                return Ok(fail(
                    1.0,
                    0.0,
                    format!("target {x}: no visits within the fleet horizon"),
                    None,
                ));
            }
            if e.expected_time > prev * (1.0 + EXACT_TOL) {
                return Ok(fail(
                    prev,
                    e.expected_time,
                    format!("target {x}: expected detection time increased at p = {q}"),
                    None,
                ));
            }
            prev = e.expected_time;
            at_one = e.expected_time;
        }
        // At p = 1 every visit detects, so the expectation collapses
        // to the fleet's first visit — an exact cross-path identity.
        let Some(t1) = fleet.visit_time(x, 1) else {
            return Ok(fail(
                0.0,
                f64::INFINITY,
                format!("target {x}: coverage failed to find a first visit"),
                None,
            ));
        };
        let observed = skew_up(inject, at_one);
        if rel_gap(observed, t1) > REL_TOL {
            return Ok(fail(
                t1,
                observed,
                format!("target {x}: E at p = 1 diverges from the first-visit time T_1"),
                None,
            ));
        }
    }
    Ok(Verdict::Pass)
}

fn enclosure_contains_exact(inst: &Instance, inject: bool) -> Result<Verdict> {
    let params = inst.params()?;
    let xmax = inst.xmax.max(MEASURE_XMAX_FLOOR);
    let (_, fleet) = fleet_for(params, xmax)?;
    let k = params.required_visits();
    let scan = exact_supremum(&fleet, k, xmax)?;
    if !scan.ratio.is_finite() {
        return Ok(Verdict::Skip(format!(
            "window [1, {xmax}] is not fully covered ({} uncovered intervals)",
            scan.uncovered
        )));
    }
    let enclosed = exact_supremum_enclosed(&fleet, k, xmax)?;
    if enclosed.scan != scan {
        return Ok(fail(
            scan.ratio,
            enclosed.scan.ratio,
            "enclosed scan diverges from the plain exact scan".to_owned(),
            None,
        ));
    }
    let (lo, hi) = (enclosed.enclosure.lo(), enclosed.enclosure.hi());
    let observed = skew_up(inject, scan.ratio);
    if !(lo <= observed && observed <= hi) {
        return Ok(fail(
            scan.ratio,
            observed,
            format!("exact supremum escapes its certified enclosure [{lo}, {hi}]"),
            None,
        ));
    }
    let width = hi - lo;
    if width > ENCLOSURE_WIDTH_RTOL * scan.ratio {
        return Ok(fail(
            ENCLOSURE_WIDTH_RTOL * scan.ratio,
            width,
            format!("enclosure [{lo}, {hi}] is wider than the outward-rounding budget"),
            None,
        ));
    }
    Ok(Verdict::Pass)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::GenCaps;

    const CAPS: GenCaps = GenCaps { grid_lo: 16, grid_hi: 24, targets: 2, explicit_turns: 4 };

    #[test]
    fn names_are_unique_and_documented() {
        let mut names: Vec<&str> = all_oracles().iter().map(|o| o.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all_oracles().len());
        for oracle in all_oracles() {
            assert!(!oracle.description.is_empty(), "{}", oracle.name);
            assert!(oracle_by_name(oracle.name).is_some());
        }
        assert!(oracle_by_name("no-such-oracle").is_none());
    }

    #[test]
    fn every_oracle_passes_or_skips_a_small_seeded_sweep() {
        for index in 0..6u64 {
            let instance = Instance::generate(3, index, &CAPS);
            for oracle in all_oracles() {
                let verdict = oracle.check(&instance, false);
                assert!(!verdict.is_fail(), "{} failed on case {index}: {verdict:?}", oracle.name);
            }
        }
    }

    #[test]
    fn injection_trips_every_oracle_somewhere() {
        // Each oracle must fail under injection for at least one of a
        // handful of generated instances (those it does not skip).
        for oracle in all_oracles() {
            let mut tripped = false;
            let mut applicable = false;
            for index in 0..9u64 {
                let instance = Instance::generate(5, index, &CAPS);
                match oracle.check(&instance, true) {
                    Verdict::Fail(_) => {
                        tripped = true;
                        applicable = true;
                        break;
                    }
                    Verdict::Pass => applicable = true,
                    Verdict::Skip(_) => {}
                }
            }
            assert!(applicable, "{} skipped every probe instance", oracle.name);
            assert!(tripped, "{} never failed under injection", oracle.name);
        }
    }
}
