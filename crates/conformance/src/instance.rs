//! Seeded generation of randomized conformance instances.
//!
//! An [`Instance`] is the complete, self-contained input of one
//! differential-testing case: an `(n, f)` pair, a target set, a fault
//! mask, a registry strategy name, and optionally a [`FreeSchedule`]
//! lowered from (or perturbed around) the proportional seed. Every
//! field is derived deterministically from `(run_seed, index)` through
//! a SplitMix64 stream, so a case can be regenerated — and a persisted
//! counterexample replayed — from two integers.

use faultline_core::{Algorithm, FreeRobot, FreeSchedule, Params, ProportionalSchedule, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Generation knobs derived from the engine's budget tier: how finely
/// instances scan, not what they assert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenCaps {
    /// Smallest supremum-scan grid an instance may draw.
    pub grid_lo: usize,
    /// Largest supremum-scan grid an instance may draw.
    pub grid_hi: usize,
    /// Number of random targets per instance.
    pub targets: usize,
    /// Largest explicit-turn count for generated free schedules.
    pub explicit_turns: usize,
}

/// One randomized differential-testing case, serializable so a
/// counterexample document can embed its exact input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// Position of this case in the run (also the generation stream).
    pub index: u64,
    /// The per-instance SplitMix64 stream seed (drives the simulator's
    /// coin streams too, so sim-involving oracles are replayable).
    pub seed: u64,
    /// Number of robots.
    pub n: usize,
    /// Fault tolerance.
    pub f: usize,
    /// Registry strategy name exercised by strategy-level oracles.
    pub strategy: String,
    /// Half-width of the supremum-scan window.
    pub xmax: f64,
    /// Log-grid points per side for supremum scans.
    pub grid_points: usize,
    /// Signed target positions, all with `|x| > 1`.
    pub targets: Vec<f64>,
    /// Faulty robot indices, at most `f` of them, strictly increasing.
    pub mask: Vec<usize>,
    /// A free schedule lowered from the proportional seed (sometimes
    /// perturbed); `None` in the two-group regime, which has no
    /// proportional schedule to lower.
    pub schedule: Option<FreeSchedule>,
    /// Lie rate for Byzantine-regime cases (`index % 5 == 3`): the
    /// masked robots become `Byzantine { lie_rate }` under the
    /// claim-quorum oracles. `None` for every other case; defaulted on
    /// deserialization so pre-Byzantine counterexample documents still
    /// load.
    #[serde(default)]
    pub lie_rate: Option<f64>,
    /// Per-visit detection probability for p-faulty cases
    /// (`index % 5 == 4`), driving the expected-CR oracles. `None`
    /// otherwise.
    #[serde(default)]
    pub detect_probability: Option<f64>,
    /// Per-robot speeds for heterogeneous-fleet cases
    /// (`index % 7 == 2`), in `[0.5, 2.0)`: exercised by the
    /// scenario-DSL oracles' generalized path. `None` otherwise;
    /// defaulted on deserialization so earlier counterexample
    /// documents still load.
    #[serde(default)]
    pub speeds: Option<Vec<f64>>,
    /// Per-robot activation delays for staggered-start cases
    /// (`index % 7 == 5`), in `[0, 2)`. `None` otherwise.
    #[serde(default)]
    pub activation_delays: Option<Vec<f64>>,
}

/// SplitMix64 finalizer: decorrelates per-instance streams drawn from
/// a single run seed (same construction as the optimizer's
/// per-`(seed, start, round)` streams).
fn stream_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Instance {
    /// Deterministically generates case `index` of the run seeded by
    /// `run_seed`. Cycles through the three parameter regimes —
    /// single-robot reduction (`n = f + 1`), proportional with an open
    /// Theorem 1 / Theorem 2 gap, and two-group (`n >= 2f + 2`) — so
    /// every regime appears in any run of three or more cases.
    #[must_use]
    pub fn generate(run_seed: u64, index: u64, caps: &GenCaps) -> Instance {
        let seed = stream_seed(run_seed, index);
        let mut rng = StdRng::seed_from_u64(seed);
        let (n, f) = match index % 3 {
            0 => {
                let f = rng.random_range(1..=3usize);
                (f + 1, f)
            }
            1 => {
                let f = rng.random_range(1..=4usize);
                let lo = f + 2;
                let hi = (2 * f + 1).min(7).max(lo);
                (rng.random_range(lo..=hi), f)
            }
            _ => {
                let f = rng.random_range(1..=2usize);
                (2 * f + 2 + rng.random_range(0..=2usize), f)
            }
        };
        let xmax: f64 = rng.random_range(16.0..48.0);
        let grid_points = rng.random_range(caps.grid_lo..=caps.grid_hi);

        let registry = faultline_strategies::all_strategies();
        let strategy = registry[rng.random_range(0..registry.len())].name().to_owned();

        // Log-uniform magnitudes in (1, 0.9 * xmax], random signs.
        let hi = 0.9 * xmax;
        let mut targets = Vec::with_capacity(caps.targets);
        for _ in 0..caps.targets {
            let mag = (1.0 + 1e-6) * (hi / (1.0 + 1e-6)).powf(rng.random_range(0.0..1.0));
            let sign = if rng.random_bool(0.5) { 1.0 } else { -1.0 };
            targets.push(sign * mag);
        }
        targets.sort_by(f64::total_cmp);
        targets.dedup();

        // A uniformly random fault set of size 0..=f (partial
        // Fisher-Yates over the robot indices).
        let mask_size = rng.random_range(0..=f);
        let mut indices: Vec<usize> = (0..n).collect();
        for i in 0..mask_size {
            let j = rng.random_range(i..n);
            indices.swap(i, j);
        }
        indices.truncate(mask_size);
        indices.sort_unstable();

        let schedule = Params::new(n, f)
            .ok()
            .and_then(|params| Algorithm::design(params).ok())
            .and_then(|alg| {
                let proportional = alg.schedule()?;
                let explicit = rng.random_range(4..=caps.explicit_turns.max(4));
                let lowered = FreeSchedule::from_proportional(proportional, explicit).ok()?;
                if rng.random_bool(0.5) {
                    // Exact lowering: oracles can hold it to the
                    // closed-form Theorem 1 value.
                    Some(lowered)
                } else {
                    perturbed(proportional, explicit, &mut rng).or(Some(lowered))
                }
            });

        // Fault-regime add-ons draw last so every pre-existing field
        // of every pre-existing case is unchanged by their
        // introduction. Two of every five cases get a probabilistic
        // regime: Byzantine liars (the masked robots) or p-faulty
        // sensors.
        let (lie_rate, detect_probability) = match index % 5 {
            3 => (Some(0.25 + 0.75 * rng.random_range(0.0..1.0)), None),
            4 => (None, Some(rng.random_range(0.05..0.95))),
            _ => (None, None),
        };

        // Heterogeneous-fleet add-ons draw after (never between) all
        // earlier draws, preserving every pre-existing field of every
        // pre-existing case bit-for-bit.
        let speeds: Option<Vec<f64>> =
            (index % 7 == 2).then(|| (0..n).map(|_| rng.random_range(0.5..2.0)).collect());
        let activation_delays: Option<Vec<f64>> =
            (index % 7 == 5).then(|| (0..n).map(|_| rng.random_range(0.0..2.0)).collect());

        Instance {
            index,
            seed,
            n,
            f,
            strategy,
            xmax,
            grid_points,
            targets,
            mask: indices,
            schedule,
            lie_rate,
            detect_probability,
            speeds,
            activation_delays,
        }
    }

    /// The instance's `(n, f)` as validated [`Params`].
    ///
    /// # Errors
    ///
    /// Rejects hand-edited instances with `n <= f` or `n = 0`.
    pub fn params(&self) -> Result<Params> {
        Params::new(self.n, self.f)
    }

    /// The regime label used in the conformance matrix: the paper's
    /// two regimes, with the single-robot reduction `n = f + 1`
    /// (where `A(n, f)` degenerates to doubling) split out.
    #[must_use]
    pub fn regime_label(&self) -> &'static str {
        if self.n == self.f + 1 {
            "single-robot"
        } else if self.n >= 2 * self.f + 2 {
            "two-group"
        } else {
            "proportional"
        }
    }

    /// The largest target magnitude (at least 1).
    #[must_use]
    pub fn max_target(&self) -> f64 {
        self.targets.iter().fold(1.0f64, |m, x| m.max(x.abs()))
    }
}

/// Jitters the proportional lowering: each robot keeps its seed and
/// side, but the gap between consecutive explicit turns is raised to a
/// random power near 1 (floored away from 1 so the sequence stays
/// strictly increasing). Returns `None` when validation rejects the
/// perturbation, in which case the caller falls back to the exact
/// lowering.
fn perturbed(
    schedule: &ProportionalSchedule,
    explicit: usize,
    rng: &mut StdRng,
) -> Option<FreeSchedule> {
    let cone = schedule.cone();
    let mut robots = Vec::with_capacity(schedule.n());
    for i in 0..schedule.n() {
        let seed = schedule.seed_for_robot(i);
        let mut exact = Vec::with_capacity(explicit);
        let mut p = seed;
        exact.push(p.x.abs());
        for _ in 1..explicit {
            p = cone.next_turning_point(p);
            exact.push(p.x.abs());
        }
        let mut turns = Vec::with_capacity(explicit);
        let mut prev = exact[0] * (1.0 + 0.1 * (rng.random_range(0.0..1.0) - 0.5));
        turns.push(prev);
        for k in 1..explicit {
            let ratio = (exact[k] / exact[k - 1]).max(1.02);
            let exponent = 0.9 + 0.2 * rng.random_range(0.0..1.0);
            prev *= ratio.powf(exponent).max(1.02);
            turns.push(prev);
        }
        // Rescale the seed's arrival time with the first turn so the
        // unit-speed bound `first_turn_time >= turns[0]` is preserved.
        let first_turn_time = (seed.t * turns[0] / exact[0]).max(turns[0]);
        robots.push(FreeRobot::new(seed.x.signum(), turns, first_turn_time).ok()?);
    }
    FreeSchedule::new(robots).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAPS: GenCaps = GenCaps { grid_lo: 24, grid_hi: 48, targets: 4, explicit_turns: 6 };

    #[test]
    fn generation_is_deterministic_and_valid() {
        for index in 0..24u64 {
            let a = Instance::generate(7, index, &CAPS);
            let b = Instance::generate(7, index, &CAPS);
            assert_eq!(a, b, "case {index} must be a pure function of (seed, index)");
            let params = a.params().expect("generated (n, f) is valid");
            assert!(a.mask.len() <= params.f());
            assert!(a.mask.iter().all(|&i| i < params.n()));
            assert!(a.targets.iter().all(|x| x.abs() > 1.0 && x.abs() <= a.xmax));
            if let Some(schedule) = &a.schedule {
                schedule.validate().expect("generated schedules validate");
                assert_eq!(schedule.n(), a.n);
            }
        }
    }

    #[test]
    fn all_three_regimes_appear() {
        let labels: Vec<&str> =
            (0..6u64).map(|i| Instance::generate(1, i, &CAPS).regime_label()).collect();
        for want in ["single-robot", "proportional", "two-group"] {
            assert!(labels.contains(&want), "missing {want} in {labels:?}");
        }
    }

    #[test]
    fn probabilistic_regimes_cycle_with_valid_parameters() {
        let mut saw_byzantine = false;
        let mut saw_pfaulty = false;
        for index in 0..20u64 {
            let instance = Instance::generate(9, index, &CAPS);
            match index % 5 {
                3 => {
                    let rate = instance.lie_rate.expect("index % 5 == 3 draws a lie rate");
                    assert!((0.25..1.0).contains(&rate), "lie rate {rate} out of range");
                    assert_eq!(instance.detect_probability, None);
                    saw_byzantine = true;
                }
                4 => {
                    let p = instance.detect_probability.expect("index % 5 == 4 draws p");
                    assert!((0.05..0.95).contains(&p), "detect probability {p} out of range");
                    assert_eq!(instance.lie_rate, None);
                    saw_pfaulty = true;
                }
                _ => {
                    assert_eq!(instance.lie_rate, None);
                    assert_eq!(instance.detect_probability, None);
                }
            }
        }
        assert!(saw_byzantine && saw_pfaulty);
    }

    #[test]
    fn pre_byzantine_documents_still_deserialize() {
        let plain = Instance::generate(9, 0, &CAPS);
        let json = serde_json::to_string(&plain).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(plain, back, "new fields round-trip");
        // A document written before the probabilistic regimes existed
        // has neither field; `#[serde(default)]` fills in None.
        let stripped = json
            .replace("\"lie_rate\":null,", "")
            .replace("\"detect_probability\":null,", "")
            .replace(",\"lie_rate\":null", "")
            .replace(",\"detect_probability\":null", "");
        assert!(!stripped.contains("lie_rate") && !stripped.contains("detect_probability"));
        let legacy: Instance = serde_json::from_str(&stripped).unwrap();
        assert_eq!(plain, legacy);
    }

    #[test]
    fn different_seeds_give_different_cases() {
        let a = Instance::generate(1, 5, &CAPS);
        let b = Instance::generate(2, 5, &CAPS);
        assert_ne!(a, b);
    }

    #[test]
    fn heterogeneous_addons_cycle_with_valid_parameters() {
        let mut saw_speeds = false;
        let mut saw_delays = false;
        for index in 0..28u64 {
            let instance = Instance::generate(9, index, &CAPS);
            if index % 7 == 2 {
                let speeds = instance.speeds.as_ref().expect("index % 7 == 2 draws speeds");
                assert_eq!(speeds.len(), instance.n);
                assert!(speeds.iter().all(|s| (0.5..2.0).contains(s)));
                saw_speeds = true;
            } else {
                assert_eq!(instance.speeds, None);
            }
            if index % 7 == 5 {
                let delays = instance
                    .activation_delays
                    .as_ref()
                    .expect("index % 7 == 5 draws activation delays");
                assert_eq!(delays.len(), instance.n);
                assert!(delays.iter().all(|d| (0.0..2.0).contains(d)));
                saw_delays = true;
            } else {
                assert_eq!(instance.activation_delays, None);
            }
        }
        assert!(saw_speeds && saw_delays);
    }

    #[test]
    fn pre_heterogeneous_documents_still_deserialize() {
        let plain = Instance::generate(9, 1, &CAPS);
        let json = serde_json::to_string(&plain).unwrap();
        let stripped = json
            .replace("\"speeds\":null,", "")
            .replace(",\"speeds\":null", "")
            .replace("\"activation_delays\":null,", "")
            .replace(",\"activation_delays\":null", "");
        assert!(!stripped.contains("speeds") && !stripped.contains("activation_delays"));
        let legacy: Instance = serde_json::from_str(&stripped).unwrap();
        assert_eq!(plain, legacy);
    }
}
