//! Benchmark: the beta-ablation sweep (Ablation A1) and the
//! fault-misestimation table (Ablation A3).

use criterion::{criterion_group, criterion_main, Criterion};
use faultline_analysis::ablation;
use faultline_core::Params;
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");

    group.bench_function("beta_sweep_analytic_a3_1", |b| {
        let params = Params::new(3, 1).expect("params");
        b.iter(|| black_box(ablation::beta_sweep(params, 33, false).expect("sweep")));
    });

    group.bench_function("beta_sweep_measured_a3_1", |b| {
        let params = Params::new(3, 1).expect("params");
        b.iter(|| black_box(ablation::beta_sweep(params, 9, true).expect("sweep")));
    });

    group.bench_function("fault_misestimation_n5", |b| {
        b.iter(|| {
            for f_design in [2usize, 3] {
                black_box(ablation::fault_misestimation(5, f_design).expect("misestimation"));
            }
        });
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_ablation
}
criterion_main!(benches);
