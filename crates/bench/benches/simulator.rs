//! Benchmark: discrete-event simulator throughput — single worst-case
//! searches and Monte-Carlo sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use faultline_core::{Algorithm, Params};
use faultline_sim::engine::SimConfig;
use faultline_sim::{run_sweep, worst_case_outcome, BernoulliFaults, MonteCarloConfig, Target};
use faultline_strategies::{PaperStrategy, Strategy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");

    for &(n, f) in &[(3usize, 1usize), (5, 2), (11, 5)] {
        let params = Params::new(n, f).expect("params");
        let alg = Algorithm::design(params).expect("design");
        let horizon = alg.required_horizon(60.0).expect("horizon");
        let trajectories: Vec<_> =
            alg.plans().iter().map(|p| p.materialize(horizon).expect("materialize")).collect();
        group.bench_function(format!("worst_case_search_n{n}_f{f}"), |b| {
            b.iter(|| {
                black_box(
                    worst_case_outcome(
                        trajectories.clone(),
                        Target::new(black_box(47.3)).expect("target"),
                        f,
                        SimConfig::default(),
                    )
                    .expect("outcome"),
                )
            });
        });
    }

    group.bench_function("montecarlo_500_samples_a5_2", |b| {
        let params = Params::new(5, 2).expect("params");
        let strategy = PaperStrategy::new();
        let plans = strategy.plans(params).expect("plans");
        let horizon = strategy.horizon_hint(params, 51.0);
        b.iter(|| {
            let mut faults =
                BernoulliFaults::new(0.3, 2, StdRng::seed_from_u64(5)).expect("faults");
            let mut rng = StdRng::seed_from_u64(7);
            black_box(
                run_sweep(
                    &plans,
                    &mut faults,
                    MonteCarloConfig::new(500, 50.0).expect("config"),
                    horizon,
                    &mut rng,
                )
                .expect("sweep"),
            )
        });
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_simulator
}
criterion_main!(benches);
