//! Benchmark: core data-structure costs — designing `A(n, f)`,
//! materializing zig-zag fleets, and coverage queries.

use criterion::{criterion_group, criterion_main, Criterion};
use faultline_core::coverage::Fleet;
use faultline_core::{Algorithm, Params, ProportionalSchedule};
use std::hint::black_box;

fn bench_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule");

    for &(n, f) in &[(3usize, 1usize), (11, 5), (41, 20), (201, 100)] {
        let params = Params::new(n, f).expect("params");
        group.bench_function(format!("design_n{n}_f{f}"), |b| {
            b.iter(|| black_box(Algorithm::design(black_box(params)).expect("design")));
        });
    }

    for &(n, f) in &[(3usize, 1usize), (11, 5), (41, 20)] {
        let params = Params::new(n, f).expect("params");
        let alg = Algorithm::design(params).expect("design");
        let horizon = alg.required_horizon(100.0).expect("horizon");
        group.bench_function(format!("materialize_fleet_n{n}_f{f}"), |b| {
            let plans = alg.plans();
            b.iter(|| black_box(Fleet::from_plans(&plans, horizon).expect("fleet")));
        });

        let fleet = Fleet::from_plans(&alg.plans(), horizon).expect("fleet");
        group.bench_function(format!("visit_time_query_n{n}_f{f}"), |b| {
            b.iter(|| black_box(fleet.visit_time(black_box(73.2), f + 1)));
        });
    }

    group.bench_function("turning_points_1000", |b| {
        let schedule = ProportionalSchedule::new(11, 13.0 / 11.0).expect("schedule");
        b.iter(|| black_box(schedule.interleaved_turning_points(black_box(1000))));
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_schedule
}
criterion_main!(benches);
