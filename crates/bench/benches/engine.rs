//! Benchmark: the work-stealing parallel engine vs the legacy
//! contiguous chunking on a tail-heavy (cost-skewed) workload, plus
//! the serial floor for reference.

use criterion::{criterion_group, criterion_main, Criterion};
use faultline_bench::baseline::{skewed_cpu_items, skewed_work};
use faultline_core::{par_map_chunked, par_map_with, ParallelConfig};
use std::hint::black_box;

const THREADS: usize = 4;

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    let items = skewed_cpu_items(1_024);

    group.bench_function("skewed_serial", |b| {
        b.iter(|| {
            let out: Vec<u64> = items.iter().map(|&v| skewed_work(v)).collect();
            black_box(out)
        });
    });

    group.bench_function("skewed_chunked_4t", |b| {
        b.iter(|| black_box(par_map_chunked(&items, THREADS, |&v| skewed_work(v))));
    });

    group.bench_function("skewed_stealing_4t", |b| {
        let config = ParallelConfig::with_threads(THREADS);
        b.iter(|| black_box(par_map_with(&items, &config, |&v| skewed_work(v))));
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_engine
}
criterion_main!(benches);
