//! Benchmark: regenerating **Table 1** (analytic closed forms, and the
//! full empirical supremum scan for representative rows).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use faultline_analysis::table1;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");

    group.bench_function("analytic_all_rows", |b| {
        b.iter(|| {
            let rows = table1::regenerate(black_box(false)).expect("regenerate");
            black_box(rows)
        });
    });

    for &(n, f) in &[(3usize, 1usize), (5, 2), (11, 5)] {
        group.bench_function(format!("measured_row_n{n}_f{f}"), |b| {
            b.iter_batched(
                || (),
                |()| {
                    let row = table1::regenerate_row(n, f, true).expect("row");
                    black_box(row)
                },
                BatchSize::SmallInput,
            );
        });
    }

    group.bench_function("render", |b| {
        let rows = table1::regenerate(false).expect("regenerate");
        b.iter(|| black_box(table1::render(black_box(&rows))));
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_table1
}
criterion_main!(benches);
