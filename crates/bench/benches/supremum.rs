//! Benchmark: the empirical competitive-ratio supremum scan — both
//! evaluation paths (analytic coverage vs. event simulation) across
//! representative `(n, f)` pairs.

use criterion::{criterion_group, criterion_main, Criterion};
use faultline_analysis::{measure_strategy_cr, measure_strategy_cr_sim};
use faultline_core::Params;
use faultline_strategies::PaperStrategy;
use std::hint::black_box;

fn bench_supremum(c: &mut Criterion) {
    let mut group = c.benchmark_group("supremum");
    let strategy = PaperStrategy::new();

    for &(n, f) in &[(2usize, 1usize), (3, 1), (5, 2), (11, 5)] {
        let params = Params::new(n, f).expect("params");
        group.bench_function(format!("coverage_path_n{n}_f{f}"), |b| {
            b.iter(|| {
                black_box(measure_strategy_cr(&strategy, params, 30.0, 64).expect("measure"))
            });
        });
    }

    let params = Params::new(3, 1).expect("params");
    group.bench_function("sim_path_n3_f1", |b| {
        b.iter(|| {
            black_box(measure_strategy_cr_sim(&strategy, params, 30.0, 64).expect("measure"))
        });
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_supremum
}
criterion_main!(benches);
