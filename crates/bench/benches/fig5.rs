//! Benchmark: regenerating both **Figure 5** curves, analytically and
//! with the empirical overlay.

use criterion::{criterion_group, criterion_main, Criterion};
use faultline_analysis::fig5;
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");

    group.bench_function("left_analytic_n3_to_41", |b| {
        b.iter(|| black_box(fig5::fig5_left(3, 41, 0).expect("fig5 left")));
    });

    group.bench_function("left_measured_n3_to_9", |b| {
        b.iter(|| black_box(fig5::fig5_left(3, 9, 9).expect("fig5 left measured")));
    });

    group.bench_function("right_101_samples", |b| {
        b.iter(|| black_box(fig5::fig5_right(101).expect("fig5 right")));
    });

    group.bench_function("render_left", |b| {
        let samples = fig5::fig5_left(3, 41, 0).expect("fig5 left");
        b.iter(|| black_box(fig5::render_left(black_box(&samples))));
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fig5
}
criterion_main!(benches);
