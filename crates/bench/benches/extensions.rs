//! Benchmark: the extension experiments — bounded-distance clamping,
//! turn-cost evaluation and the arrival-index spectrum.

use criterion::{criterion_group, criterion_main, Criterion};
use faultline_analysis::{bounded, group_search, turncost};
use faultline_core::Params;
use faultline_strategies::PaperStrategy;
use std::hint::black_box;

fn bench_extensions(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions");
    let params = Params::new(3, 1).expect("params");

    group.bench_function("bounded_cr_d8", |b| {
        b.iter(|| black_box(bounded::bounded_cr(params, 8.0, 48).expect("bounded")));
    });

    group.bench_function("bound_sweep_4_points", |b| {
        b.iter(|| {
            black_box(bounded::bound_sweep(params, &[1.5, 3.0, 8.0, 30.0], 32).expect("sweep"))
        });
    });

    group.bench_function("turncost_cr_c2", |b| {
        b.iter(|| black_box(turncost::cost_cr(params, 5.0 / 3.0, 2.0, 25.0, 48).expect("cost")));
    });

    group.bench_function("turncost_reoptimize_beta_c2", |b| {
        b.iter(|| black_box(turncost::sweep(params, &[2.0], 25.0, 24).expect("sweep")));
    });

    group.bench_function("k_spectrum_a5_2", |b| {
        let params = Params::new(5, 2).expect("params");
        b.iter(|| {
            black_box(
                group_search::k_spectrum(&PaperStrategy::new(), params, 12.0, 24)
                    .expect("spectrum"),
            )
        });
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_extensions
}
criterion_main!(benches);
