//! Benchmark: Theorem 2 machinery — the `alpha(n)` solver, adversarial
//! placements and the executable adversary game against `A(n, f)`.

use criterion::{criterion_group, criterion_main, Criterion};
use faultline_core::{lower_bound, Algorithm, Params};
use std::hint::black_box;

fn bench_lower_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("lower_bound");

    for n in [3usize, 41, 1001] {
        group.bench_function(format!("alpha_n{n}"), |b| {
            b.iter(|| black_box(lower_bound::alpha(black_box(n)).expect("alpha")));
        });
    }

    group.bench_function("adversary_points_n41", |b| {
        let a = lower_bound::alpha(41).expect("alpha");
        b.iter(|| black_box(lower_bound::adversary_points(41, a).expect("points")));
    });

    group.bench_function("adversary_game_a3_1", |b| {
        let params = Params::new(3, 1).expect("params");
        let alg = Algorithm::design(params).expect("design");
        let alpha = lower_bound::alpha(3).expect("alpha");
        let points = lower_bound::adversary_points(3, alpha).expect("points");
        let xmax = points[0] * 1.1;
        let horizon = alg.required_horizon(xmax).expect("horizon");
        let trajectories: Vec<_> =
            alg.plans().iter().map(|p| p.materialize(horizon).expect("materialize")).collect();
        b.iter(|| {
            black_box(lower_bound::adversarial_ratio(&trajectories, 1, 3, alpha).expect("game"))
        });
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_lower_bound
}
criterion_main!(benches);
