//! The perf-baseline emitter: times the canonical workloads on the
//! work-stealing engine, compares it against the legacy contiguous
//! chunking on a skewed workload, and writes a machine-readable JSON
//! document (`BENCH_<date>.json`) so every future change can diff
//! against the recorded trajectory.
//!
//! Three canonical workloads are timed:
//!
//! 1. **Table-1 supremum scan** — the empirical `sup K(x)` measurement
//!    over the paper's `(n, f)` grid.
//! 2. **Exhaustive mask exploration** — every `C(n, f)` fault mask for
//!    the Table-1 pairs with `n <= 5` (PR 1's explorer).
//! 3. **Monte-Carlo sweep** — a 10k-sample random-fault sweep of
//!    `A(5, 2)` (1k in `--quick` mode).
//!
//! Three *path comparisons* time faster engines against their retained
//! baselines on the same measurements: the exact critical-point
//! supremum engine vs the adversarial grid (the optimizer inner loop
//! and the strategy supremum path), and the dominance-pruned
//! adversary-space explorer vs its exhaustive differential baseline.
//! Their `speedup` ratios are host-comparable and gated by
//! [`compare_baselines`] alongside the wall-clock timings.
//!
//! The engine comparison runs the same skewed workload through the
//! work-stealing scheduler and the legacy one-contiguous-chunk-per-core
//! scheduler with four worker threads. Two variants are recorded: a
//! CPU-bound one (meaningful on multi-core hosts) and a latency-bound
//! one built from sleeps, whose wall-clock win is observable on any
//! host because sleeping threads overlap even on a single core.

use std::time::{Instant, SystemTime, UNIX_EPOCH};

use faultline_analysis::{measure_strategy_cr, table1};
use faultline_core::{par_map_chunked, par_map_with, ParallelConfig, Params};
use faultline_sim::{
    explore_fault_space, run_sweep_ratios_seeded, BernoulliFaults, ExplorerConfig,
    MonteCarloConfig, RatioStats, Target,
};
use faultline_strategies::{PaperStrategy, Strategy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Hardware and configuration context a timing is only meaningful
/// against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostInfo {
    /// Logical cores reported by the OS.
    pub logical_cores: usize,
    /// Default worker-thread count the engine resolves on this host
    /// (after the `FAULTLINE_THREADS` override, if set).
    pub default_threads: usize,
    /// Operating system family.
    pub os: String,
    /// CPU architecture.
    pub arch: String,
}

/// Wall-clock timing of one canonical workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadTiming {
    /// Stable workload identifier (diff key across baselines).
    pub name: String,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
    /// Human-readable description of what was run.
    pub detail: String,
}

/// Exact critical-point supremum engine vs the retained
/// adversarial-grid baseline on the same measurement workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathComparison {
    /// Stable comparison identifier.
    pub name: String,
    /// Wall-clock milliseconds for the adversarial-grid scan.
    pub grid_ms: f64,
    /// Wall-clock milliseconds for the exact critical-point engine.
    pub exact_ms: f64,
    /// `grid_ms / exact_ms` — above 1 means the exact engine wins.
    pub speedup: f64,
    /// Human-readable description of what was measured.
    pub detail: String,
}

/// Work-stealing vs legacy contiguous chunking on a skewed workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineComparison {
    /// Stable comparison identifier.
    pub name: String,
    /// Worker threads used by both schedulers.
    pub threads: usize,
    /// Number of items mapped.
    pub items: usize,
    /// Wall-clock milliseconds for the legacy contiguous chunking.
    pub chunked_ms: f64,
    /// Wall-clock milliseconds for the work-stealing engine.
    pub stealing_ms: f64,
    /// `chunked_ms / stealing_ms` — above 1 means work-stealing wins.
    pub speedup: f64,
}

/// The complete perf baseline written to `BENCH_<date>.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchBaseline {
    /// Workspace version the baseline was recorded with.
    pub version: String,
    /// UTC date of the run (`YYYY-MM-DD`).
    pub date: String,
    /// Whether the reduced `--quick` workloads were used.
    pub quick: bool,
    /// Host context.
    pub host: HostInfo,
    /// Canonical workload timings.
    pub workloads: Vec<WorkloadTiming>,
    /// Engine comparisons on skewed workloads.
    pub engine: Vec<EngineComparison>,
    /// Exact-vs-grid supremum path comparisons. Defaults to empty so
    /// baselines recorded before the exact engine still deserialize.
    #[serde(default)]
    pub paths: Vec<PathComparison>,
}

/// Maximum tolerated relative wall-clock growth (and relative speedup
/// loss) against a recorded baseline before the perf gate fails.
pub const REGRESSION_TOLERANCE: f64 = 0.25;

/// Wall-clock floor below which a recorded timing is too small to
/// gate: a 25% swing on a sub-5ms workload is scheduler noise, not a
/// regression. Such entries are still printed, as informational.
pub const MIN_GATED_WALL_MS: f64 = 5.0;

/// Result of diffing a freshly measured baseline against a recorded
/// one: one human-readable line per entry, plus the subset that
/// regressed beyond [`REGRESSION_TOLERANCE`].
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineComparison {
    /// One line per compared (or skipped) entry.
    pub lines: Vec<String>,
    /// Entries that regressed beyond the tolerance.
    pub regressions: Vec<String>,
}

impl BaselineComparison {
    /// Whether the gate passes (no regression beyond tolerance).
    #[must_use]
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares a fresh baseline against a recorded one.
///
/// Wall-clock workload timings are compared only when both runs used
/// the same `--quick` setting (the reduced workloads are not the same
/// experiments) *and* the same host fingerprint (absolute times on
/// different hardware are not comparable), and only gated when the
/// recorded timing is at least [`MIN_GATED_WALL_MS`]. Path-comparison
/// *speedups* are wall-clock ratios and therefore host-comparable:
/// the exact engine must not lose more than [`REGRESSION_TOLERANCE`]
/// of its recorded advantage on any host.
#[must_use]
pub fn compare_baselines(current: &BenchBaseline, recorded: &BenchBaseline) -> BaselineComparison {
    let mut lines = Vec::new();
    let mut regressions = Vec::new();
    if current.quick == recorded.quick && current.host == recorded.host {
        for w in &current.workloads {
            let Some(r) = recorded.workloads.iter().find(|r| r.name == w.name) else {
                lines.push(format!("{}: not in the recorded baseline, skipped", w.name));
                continue;
            };
            let growth = w.wall_ms / r.wall_ms - 1.0;
            let mut line = format!(
                "{}: {:.1} ms vs recorded {:.1} ms ({:+.1}%)",
                w.name,
                w.wall_ms,
                r.wall_ms,
                growth * 100.0
            );
            if r.wall_ms < MIN_GATED_WALL_MS {
                line.push_str(" [below gating floor, informational]");
            } else if growth > REGRESSION_TOLERANCE {
                regressions.push(line.clone());
            }
            lines.push(line);
        }
    } else if current.quick != recorded.quick {
        lines.push(format!(
            "wall-clock comparison skipped: current quick = {}, recorded quick = {}",
            current.quick, recorded.quick
        ));
    } else {
        lines.push(
            "wall-clock comparison skipped: host fingerprint differs from the recorded baseline"
                .to_owned(),
        );
    }
    for p in &current.paths {
        let Some(r) = recorded.paths.iter().find(|r| r.name == p.name) else {
            lines.push(format!("{}: not in the recorded baseline, skipped", p.name));
            continue;
        };
        let line = format!(
            "{}: {:.1}x exact-path speedup vs recorded {:.1}x",
            p.name, p.speedup, r.speedup
        );
        if p.speedup < r.speedup * (1.0 - REGRESSION_TOLERANCE) {
            regressions.push(line.clone());
        }
        lines.push(line);
    }
    BaselineComparison { lines, regressions }
}

/// UTC date of `now`, without a calendar dependency (civil-from-days,
/// Howard Hinnant's algorithm).
#[must_use]
pub fn utc_date() -> String {
    let secs = SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_secs());
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let year = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { year + 1 } else { year };
    format!("{year:04}-{month:02}-{day:02}")
}

fn time_ms(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1e3
}

/// Best-of-five wall clock for the gated timings: the minimum is the
/// least noisy estimator of a workload's true cost on a loaded host,
/// which keeps the [`REGRESSION_TOLERANCE`] gate meaningful.
fn min_time_ms(mut f: impl FnMut()) -> f64 {
    (0..5).map(|_| time_ms(&mut f)).fold(f64::INFINITY, f64::min)
}

fn table1_scan(quick: bool) -> Result<WorkloadTiming, Box<dyn std::error::Error>> {
    let (wall_ms, detail) = if quick {
        let pairs: &[(usize, usize)] = &[(2, 1), (3, 1), (4, 2), (5, 3)];
        let mut err = None;
        let wall = min_time_ms(|| {
            for &(n, f) in pairs {
                let result = Params::new(n, f)
                    .and_then(|p| measure_strategy_cr(&PaperStrategy::new(), p, 16.0, 32));
                if let Err(e) = result {
                    err = Some(e);
                    return;
                }
            }
        });
        if let Some(e) = err {
            return Err(e.into());
        }
        (wall, format!("supremum scan of {} small Table-1 rows (xmax 16, 32 grid)", pairs.len()))
    } else {
        let mut result = Ok(Vec::new());
        let wall = min_time_ms(|| result = table1::regenerate(true));
        result?;
        (wall, "full Table-1 regeneration with empirical supremum scans".to_owned())
    };
    Ok(WorkloadTiming { name: "table1_supremum_scan".to_owned(), wall_ms, detail })
}

fn mask_exploration(quick: bool) -> Result<WorkloadTiming, Box<dyn std::error::Error>> {
    let pairs: &[(usize, usize)] = if quick {
        &[(2, 1), (3, 1), (4, 2)]
    } else {
        &[(2, 1), (3, 1), (3, 2), (4, 2), (4, 3), (5, 2), (5, 3), (5, 4)]
    };
    let targets = [1.5, -2.5, 7.0];
    let config = ExplorerConfig { seed: 0, ..ExplorerConfig::default() };
    let mut err: Option<Box<dyn std::error::Error>> = None;
    let wall_ms = min_time_ms(|| {
        for &(n, f) in pairs {
            let run = || -> Result<(), Box<dyn std::error::Error>> {
                let params = Params::new(n, f)?;
                let alg = faultline_core::Algorithm::design(params)?;
                let horizon = alg.required_horizon(15.0)?;
                let trajectories = alg
                    .plans()
                    .iter()
                    .map(|p| p.materialize(horizon))
                    .collect::<Result<Vec<_>, _>>()?;
                for x in targets {
                    explore_fault_space(&trajectories, Target::new(x)?, f, &config)?;
                }
                Ok(())
            };
            if let Err(e) = run() {
                err = Some(e);
                return;
            }
        }
    });
    if let Some(e) = err {
        return Err(e);
    }
    Ok(WorkloadTiming {
        name: "mask_exploration".to_owned(),
        wall_ms,
        detail: format!(
            "exhaustive C(n, f) fault-mask exploration over {} pairs x {} targets",
            pairs.len(),
            targets.len()
        ),
    })
}

fn montecarlo_sweep(quick: bool) -> Result<WorkloadTiming, Box<dyn std::error::Error>> {
    let samples = if quick { 1_000 } else { 10_000 };
    let params = Params::new(5, 2)?;
    let strategy = PaperStrategy::new();
    let plans = strategy.plans(params)?;
    let horizon = strategy.horizon_hint(params, 101.0);
    let mut faults = BernoulliFaults::new(0.3, params.f(), StdRng::seed_from_u64(5))?;
    let config = MonteCarloConfig::new(samples, 100.0)?;
    let mut result = Ok(Vec::new());
    let wall_ms = min_time_ms(|| {
        result = run_sweep_ratios_seeded(&plans, &mut faults, config, horizon, 7);
    });
    let ratios = result?;
    RatioStats::from_ratios(&ratios)?;
    Ok(WorkloadTiming {
        name: "montecarlo_sweep".to_owned(),
        wall_ms,
        detail: format!("{samples}-sample random-fault Monte-Carlo sweep of A(5, 2)"),
    })
}

/// Times the exact and grid paths *interleaved* over five rounds and
/// returns each path's minimum: transient host-load bursts only ever
/// add time, so the per-path minimum over rounds spread across the
/// same wall-clock window is the most burst-resistant estimator of
/// the true cost ratio.
fn interleaved_min_rounds(mut exact: impl FnMut(), mut grid: impl FnMut()) -> (f64, f64) {
    let mut exact_ms = f64::INFINITY;
    let mut grid_ms = f64::INFINITY;
    for _ in 0..7 {
        exact_ms = exact_ms.min(time_ms(&mut exact));
        grid_ms = grid_ms.min(time_ms(&mut grid));
    }
    (exact_ms, grid_ms)
}

fn optimizer_inner_loop(quick: bool) -> Result<PathComparison, Box<dyn std::error::Error>> {
    use faultline_analysis::{measure_free_schedule_profile, measure_free_schedule_profile_grid};
    use faultline_core::{ratio, FreeSchedule, ProportionalSchedule};

    // The optimizer's hot path: profile the proportional seed of
    // A(5, 3) over its default window, exact critical-point engine vs
    // the retained adversarial-grid baseline at the optimizer's
    // default resolution.
    let params = Params::new(5, 3)?;
    let beta = ratio::optimal_beta(params)?;
    let schedule = FreeSchedule::from_proportional(&ProportionalSchedule::new(5, beta)?, 12)?;
    let (xmax, grid_points) = (25.0, 64);
    let reps = if quick { 100 } else { 500 };
    let mut exact_err = None;
    let mut grid_err = None;
    let (exact_ms, grid_ms) = interleaved_min_rounds(
        || {
            for _ in 0..reps {
                if let Err(e) = measure_free_schedule_profile(&schedule, 3, xmax, grid_points, &[])
                {
                    exact_err = Some(e);
                    return;
                }
            }
        },
        || {
            for _ in 0..reps {
                if let Err(e) =
                    measure_free_schedule_profile_grid(&schedule, 3, xmax, grid_points, &[])
                {
                    grid_err = Some(e);
                    return;
                }
            }
        },
    );
    if let Some(e) = exact_err.or(grid_err) {
        return Err(e.into());
    }
    Ok(PathComparison {
        name: "optimizer_inner_loop".to_owned(),
        grid_ms,
        exact_ms,
        speedup: grid_ms / exact_ms,
        detail: format!(
            "{reps}x free-schedule profile of the A(5, 3) seed (xmax {xmax}, grid {grid_points})"
        ),
    })
}

fn strategy_supremum_paths(quick: bool) -> Result<PathComparison, Box<dyn std::error::Error>> {
    use faultline_analysis::{measure_strategy_cr, measure_strategy_cr_grid};

    // The `/v1/supremum` and Table-1 measurement path over the small
    // paper pairs, exact engine vs the grid baseline.
    let pairs: &[(usize, usize)] = &[(2, 1), (3, 1), (4, 2), (5, 3)];
    let (xmax, grid_points) = (16.0, 48);
    let reps = if quick { 50 } else { 250 };
    let strategy = PaperStrategy::new();
    let mut exact_err = None;
    let mut grid_err = None;
    let (exact_ms, grid_ms) = interleaved_min_rounds(
        || {
            for _ in 0..reps {
                for &(n, f) in pairs {
                    let result = Params::new(n, f)
                        .and_then(|p| measure_strategy_cr(&strategy, p, xmax, grid_points));
                    if let Err(e) = result {
                        exact_err = Some(e);
                        return;
                    }
                }
            }
        },
        || {
            for _ in 0..reps {
                for &(n, f) in pairs {
                    let result = Params::new(n, f)
                        .and_then(|p| measure_strategy_cr_grid(&strategy, p, xmax, grid_points));
                    if let Err(e) = result {
                        grid_err = Some(e);
                        return;
                    }
                }
            }
        },
    );
    if let Some(e) = exact_err.or(grid_err) {
        return Err(e.into());
    }
    Ok(PathComparison {
        name: "strategy_supremum".to_owned(),
        grid_ms,
        exact_ms,
        speedup: grid_ms / exact_ms,
        detail: format!(
            "{reps}x paper-strategy supremum over {} pairs (xmax {xmax}, grid {grid_points})",
            pairs.len()
        ),
    })
}

fn explore_pruning_paths(quick: bool) -> Result<PathComparison, Box<dyn std::error::Error>> {
    use faultline_explore::{explore_pair, ExploreConfig};

    // The dominance-pruned adversary-space frontier vs its exhaustive
    // differential baseline on the largest Table-1 pairs with n <= 5;
    // `grid_ms` records the exhaustive (unpruned) path so the speedup
    // ratio reads the same way as the supremum comparisons.
    let pairs: &[(usize, usize)] =
        if quick { &[(4, 3), (5, 3)] } else { &[(4, 3), (5, 3), (5, 4)] };
    let xmax = 25.0;
    let reps = if quick { 3 } else { 10 };
    let pruned_config = ExploreConfig::default();
    let exhaustive_config = ExploreConfig { exhaustive: true, ..ExploreConfig::default() };
    let mut pruned_err = None;
    let mut exhaustive_err = None;
    let (pruned_ms, exhaustive_ms) = interleaved_min_rounds(
        || {
            for _ in 0..reps {
                for &(n, f) in pairs {
                    if let Err(e) = explore_pair(n, f, xmax, &pruned_config) {
                        pruned_err = Some(e);
                        return;
                    }
                }
            }
        },
        || {
            for _ in 0..reps {
                for &(n, f) in pairs {
                    if let Err(e) = explore_pair(n, f, xmax, &exhaustive_config) {
                        exhaustive_err = Some(e);
                        return;
                    }
                }
            }
        },
    );
    if let Some(e) = pruned_err.or(exhaustive_err) {
        return Err(e.into());
    }
    Ok(PathComparison {
        name: "explore_pruning".to_owned(),
        grid_ms: exhaustive_ms,
        exact_ms: pruned_ms,
        speedup: exhaustive_ms / pruned_ms,
        detail: format!(
            "{reps}x dominance-pruned vs exhaustive exploration over {} pairs (xmax {xmax})",
            pairs.len()
        ),
    })
}

/// Deterministic busy work proportional to `cost`, used by the skewed
/// CPU-bound engine comparison (shared with the criterion bench).
#[must_use]
pub fn skewed_work(cost: u64) -> u64 {
    let mut acc = cost ^ 0x9e37_79b9_7f4a_7c15;
    for i in 0..(cost * 24) {
        acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
    }
    acc
}

/// The tail-heavy item-cost vector of the CPU-bound comparison: linear
/// cost growth, so the last contiguous chunk holds most of the work —
/// the shape a supremum sweep over geometrically spaced targets has.
#[must_use]
pub fn skewed_cpu_items(items: usize) -> Vec<u64> {
    (0..items as u64).collect()
}

const COMPARISON_THREADS: usize = 4;

fn compare_engines_cpu(quick: bool) -> EngineComparison {
    let items = skewed_cpu_items(if quick { 1_024 } else { 2_048 });
    let config = ParallelConfig::with_threads(COMPARISON_THREADS);
    let stealing_ms = time_ms(|| {
        par_map_with(&items, &config, |&c| skewed_work(c));
    });
    let chunked_ms = time_ms(|| {
        par_map_chunked(&items, COMPARISON_THREADS, |&c| skewed_work(c));
    });
    EngineComparison {
        name: "skewed_cpu".to_owned(),
        threads: COMPARISON_THREADS,
        items: items.len(),
        chunked_ms,
        stealing_ms,
        speedup: chunked_ms / stealing_ms,
    }
}

fn compare_engines_latency() -> EngineComparison {
    // Sleeps overlap regardless of core count, so this comparison
    // demonstrates the scheduler property even on single-core CI.
    let sleeps: Vec<u64> = (0..32).map(|i| if i >= 28 { 40 } else { 1 }).collect();
    let config = ParallelConfig::with_threads(COMPARISON_THREADS).grain(1);
    let sleep = |&ms: &u64| std::thread::sleep(std::time::Duration::from_millis(ms));
    let stealing_ms = time_ms(|| {
        par_map_with(&sleeps, &config, sleep);
    });
    let chunked_ms = time_ms(|| {
        par_map_chunked(&sleeps, COMPARISON_THREADS, sleep);
    });
    EngineComparison {
        name: "skewed_latency".to_owned(),
        threads: COMPARISON_THREADS,
        items: sleeps.len(),
        chunked_ms,
        stealing_ms,
        speedup: chunked_ms / stealing_ms,
    }
}

/// Runs every workload and comparison and assembles the baseline.
///
/// # Errors
///
/// Propagates failures from the underlying experiments.
pub fn run_baseline(quick: bool) -> Result<BenchBaseline, Box<dyn std::error::Error>> {
    let host = HostInfo {
        logical_cores: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        default_threads: ParallelConfig::default().resolved_threads(),
        os: std::env::consts::OS.to_owned(),
        arch: std::env::consts::ARCH.to_owned(),
    };
    let workloads = vec![table1_scan(quick)?, mask_exploration(quick)?, montecarlo_sweep(quick)?];
    let engine = vec![compare_engines_cpu(quick), compare_engines_latency()];
    let paths = vec![
        optimizer_inner_loop(quick)?,
        strategy_supremum_paths(quick)?,
        explore_pruning_paths(quick)?,
    ];
    Ok(BenchBaseline {
        version: crate::VERSION.to_owned(),
        date: utc_date(),
        quick,
        host,
        workloads,
        engine,
        paths,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utc_date_is_well_formed() {
        let d = utc_date();
        assert_eq!(d.len(), 10, "{d}");
        assert_eq!(d.as_bytes()[4], b'-');
        assert_eq!(d.as_bytes()[7], b'-');
        let year: i32 = d[..4].parse().unwrap();
        assert!(year >= 2024, "{d}");
    }

    #[test]
    fn baseline_roundtrips_through_json() {
        let baseline = BenchBaseline {
            version: "0.1.0".to_owned(),
            date: "2026-08-06".to_owned(),
            quick: true,
            host: HostInfo {
                logical_cores: 4,
                default_threads: 4,
                os: "linux".to_owned(),
                arch: "x86_64".to_owned(),
            },
            workloads: vec![WorkloadTiming {
                name: "table1_supremum_scan".to_owned(),
                wall_ms: 12.5,
                detail: "test".to_owned(),
            }],
            engine: vec![EngineComparison {
                name: "skewed_latency".to_owned(),
                threads: 4,
                items: 32,
                chunked_ms: 164.0,
                stealing_ms: 47.0,
                speedup: 164.0 / 47.0,
            }],
            paths: vec![PathComparison {
                name: "optimizer_inner_loop".to_owned(),
                grid_ms: 50.0,
                exact_ms: 5.0,
                speedup: 10.0,
                detail: "test".to_owned(),
            }],
        };
        let json = serde_json::to_string_pretty(&baseline).unwrap();
        let back: BenchBaseline = serde_json::from_str(&json).unwrap();
        assert_eq!(back, baseline);
    }

    #[test]
    fn baselines_recorded_before_the_exact_engine_still_deserialize() {
        // `paths` was added with the exact supremum engine; committed
        // baselines from before then must keep loading (empty paths).
        let json = r#"{
            "version": "0.1.0", "date": "2026-08-06", "quick": false,
            "host": {"logical_cores": 1, "default_threads": 1,
                     "os": "linux", "arch": "x86_64"},
            "workloads": [], "engine": []
        }"#;
        let back: BenchBaseline = serde_json::from_str(json).unwrap();
        assert!(back.paths.is_empty());
    }

    #[test]
    fn comparison_gates_on_wall_clock_and_speedup_regressions() {
        let timing = |wall_ms: f64| WorkloadTiming {
            name: "table1_supremum_scan".to_owned(),
            wall_ms,
            detail: "test".to_owned(),
        };
        let path = |speedup: f64| PathComparison {
            name: "optimizer_inner_loop".to_owned(),
            grid_ms: speedup,
            exact_ms: 1.0,
            speedup,
            detail: "test".to_owned(),
        };
        let base = |wall_ms: f64, speedup: f64, quick: bool| BenchBaseline {
            version: "0.1.0".to_owned(),
            date: "2026-08-08".to_owned(),
            quick,
            host: HostInfo {
                logical_cores: 1,
                default_threads: 1,
                os: "linux".to_owned(),
                arch: "x86_64".to_owned(),
            },
            workloads: vec![timing(wall_ms)],
            engine: Vec::new(),
            paths: vec![path(speedup)],
        };
        let recorded = base(100.0, 10.0, false);

        // Within tolerance on both axes: the gate passes.
        assert!(compare_baselines(&base(120.0, 9.0, false), &recorded).passed());
        // A recorded timing under the gating floor never fails the
        // gate, no matter how large the relative swing.
        let tiny = base(1.0, 10.0, false);
        let mut tiny_recorded = recorded.clone();
        tiny_recorded.workloads[0].wall_ms = 0.1;
        let floored = compare_baselines(&tiny, &tiny_recorded);
        assert!(floored.passed(), "{:?}", floored.regressions);
        assert!(floored.lines.iter().any(|l| l.contains("informational")));
        // Wall clock beyond +25%: regression.
        let slow = compare_baselines(&base(130.0, 10.0, false), &recorded);
        assert!(!slow.passed(), "{:?}", slow.regressions);
        // Exact-path speedup collapsed by more than 25%: regression,
        // even though the wall clock held.
        let lost = compare_baselines(&base(100.0, 7.0, false), &recorded);
        assert!(!lost.passed(), "{:?}", lost.regressions);
        // Mismatched --quick: wall clocks are skipped, but the
        // host-comparable speedup ratio is still gated.
        let mixed = compare_baselines(&base(1000.0, 10.0, true), &recorded);
        assert!(mixed.passed(), "{:?}", mixed.regressions);
        assert!(mixed.lines.iter().any(|l| l.contains("skipped")));
        let mixed_lost = compare_baselines(&base(1000.0, 6.0, true), &recorded);
        assert!(!mixed_lost.passed());
        // Different hardware: absolute times are not comparable, so
        // wall clocks are skipped — the speedup ratio still gates.
        let mut other_host = base(1000.0, 10.0, false);
        other_host.host.logical_cores = 64;
        let cross = compare_baselines(&other_host, &recorded);
        assert!(cross.passed(), "{:?}", cross.regressions);
        assert!(cross.lines.iter().any(|l| l.contains("host fingerprint")));
        let mut cross_lost = base(1000.0, 6.0, false);
        cross_lost.host.logical_cores = 64;
        assert!(!compare_baselines(&cross_lost, &recorded).passed());
    }

    #[test]
    fn latency_comparison_shows_the_stealing_win() {
        let cmp = compare_engines_latency();
        assert!(
            cmp.speedup > 2.0,
            "expected ≥ 2x on the sleep-skewed workload, got {:.2}x \
             (chunked {:.1} ms vs stealing {:.1} ms)",
            cmp.speedup,
            cmp.chunked_ms,
            cmp.stealing_ms
        );
    }
}
