//! The perf-baseline emitter: times the canonical workloads on the
//! work-stealing engine, compares it against the legacy contiguous
//! chunking on a skewed workload, and writes a machine-readable JSON
//! document (`BENCH_<date>.json`) so every future change can diff
//! against the recorded trajectory.
//!
//! Three canonical workloads are timed:
//!
//! 1. **Table-1 supremum scan** — the empirical `sup K(x)` measurement
//!    over the paper's `(n, f)` grid.
//! 2. **Exhaustive mask exploration** — every `C(n, f)` fault mask for
//!    the Table-1 pairs with `n <= 5` (PR 1's explorer).
//! 3. **Monte-Carlo sweep** — a 10k-sample random-fault sweep of
//!    `A(5, 2)` (1k in `--quick` mode).
//!
//! The engine comparison runs the same skewed workload through the
//! work-stealing scheduler and the legacy one-contiguous-chunk-per-core
//! scheduler with four worker threads. Two variants are recorded: a
//! CPU-bound one (meaningful on multi-core hosts) and a latency-bound
//! one built from sleeps, whose wall-clock win is observable on any
//! host because sleeping threads overlap even on a single core.

use std::time::{Instant, SystemTime, UNIX_EPOCH};

use faultline_analysis::{measure_strategy_cr, table1};
use faultline_core::{par_map_chunked, par_map_with, ParallelConfig, Params};
use faultline_sim::{
    explore_fault_space, run_sweep_ratios_seeded, BernoulliFaults, ExplorerConfig,
    MonteCarloConfig, RatioStats, Target,
};
use faultline_strategies::{PaperStrategy, Strategy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Hardware and configuration context a timing is only meaningful
/// against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostInfo {
    /// Logical cores reported by the OS.
    pub logical_cores: usize,
    /// Default worker-thread count the engine resolves on this host
    /// (after the `FAULTLINE_THREADS` override, if set).
    pub default_threads: usize,
    /// Operating system family.
    pub os: String,
    /// CPU architecture.
    pub arch: String,
}

/// Wall-clock timing of one canonical workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadTiming {
    /// Stable workload identifier (diff key across baselines).
    pub name: String,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
    /// Human-readable description of what was run.
    pub detail: String,
}

/// Work-stealing vs legacy contiguous chunking on a skewed workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineComparison {
    /// Stable comparison identifier.
    pub name: String,
    /// Worker threads used by both schedulers.
    pub threads: usize,
    /// Number of items mapped.
    pub items: usize,
    /// Wall-clock milliseconds for the legacy contiguous chunking.
    pub chunked_ms: f64,
    /// Wall-clock milliseconds for the work-stealing engine.
    pub stealing_ms: f64,
    /// `chunked_ms / stealing_ms` — above 1 means work-stealing wins.
    pub speedup: f64,
}

/// The complete perf baseline written to `BENCH_<date>.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchBaseline {
    /// Workspace version the baseline was recorded with.
    pub version: String,
    /// UTC date of the run (`YYYY-MM-DD`).
    pub date: String,
    /// Whether the reduced `--quick` workloads were used.
    pub quick: bool,
    /// Host context.
    pub host: HostInfo,
    /// Canonical workload timings.
    pub workloads: Vec<WorkloadTiming>,
    /// Engine comparisons on skewed workloads.
    pub engine: Vec<EngineComparison>,
}

/// UTC date of `now`, without a calendar dependency (civil-from-days,
/// Howard Hinnant's algorithm).
#[must_use]
pub fn utc_date() -> String {
    let secs = SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_secs());
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let year = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { year + 1 } else { year };
    format!("{year:04}-{month:02}-{day:02}")
}

fn time_ms(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1e3
}

fn table1_scan(quick: bool) -> Result<WorkloadTiming, Box<dyn std::error::Error>> {
    let (wall_ms, detail) = if quick {
        let pairs: &[(usize, usize)] = &[(2, 1), (3, 1), (4, 2), (5, 3)];
        let mut err = None;
        let wall = time_ms(|| {
            for &(n, f) in pairs {
                let result = Params::new(n, f)
                    .and_then(|p| measure_strategy_cr(&PaperStrategy::new(), p, 16.0, 32));
                if let Err(e) = result {
                    err = Some(e);
                    return;
                }
            }
        });
        if let Some(e) = err {
            return Err(e.into());
        }
        (wall, format!("supremum scan of {} small Table-1 rows (xmax 16, 32 grid)", pairs.len()))
    } else {
        let mut result = Ok(Vec::new());
        let wall = time_ms(|| result = table1::regenerate(true));
        result?;
        (wall, "full Table-1 regeneration with empirical supremum scans".to_owned())
    };
    Ok(WorkloadTiming { name: "table1_supremum_scan".to_owned(), wall_ms, detail })
}

fn mask_exploration(quick: bool) -> Result<WorkloadTiming, Box<dyn std::error::Error>> {
    let pairs: &[(usize, usize)] = if quick {
        &[(2, 1), (3, 1), (4, 2)]
    } else {
        &[(2, 1), (3, 1), (3, 2), (4, 2), (4, 3), (5, 2), (5, 3), (5, 4)]
    };
    let targets = [1.5, -2.5, 7.0];
    let config = ExplorerConfig { seed: 0, ..ExplorerConfig::default() };
    let mut err: Option<Box<dyn std::error::Error>> = None;
    let wall_ms = time_ms(|| {
        for &(n, f) in pairs {
            let run = || -> Result<(), Box<dyn std::error::Error>> {
                let params = Params::new(n, f)?;
                let alg = faultline_core::Algorithm::design(params)?;
                let horizon = alg.required_horizon(15.0)?;
                let trajectories = alg
                    .plans()
                    .iter()
                    .map(|p| p.materialize(horizon))
                    .collect::<Result<Vec<_>, _>>()?;
                for x in targets {
                    explore_fault_space(&trajectories, Target::new(x)?, f, &config)?;
                }
                Ok(())
            };
            if let Err(e) = run() {
                err = Some(e);
                return;
            }
        }
    });
    if let Some(e) = err {
        return Err(e);
    }
    Ok(WorkloadTiming {
        name: "mask_exploration".to_owned(),
        wall_ms,
        detail: format!(
            "exhaustive C(n, f) fault-mask exploration over {} pairs x {} targets",
            pairs.len(),
            targets.len()
        ),
    })
}

fn montecarlo_sweep(quick: bool) -> Result<WorkloadTiming, Box<dyn std::error::Error>> {
    let samples = if quick { 1_000 } else { 10_000 };
    let params = Params::new(5, 2)?;
    let strategy = PaperStrategy::new();
    let plans = strategy.plans(params)?;
    let horizon = strategy.horizon_hint(params, 101.0);
    let mut faults = BernoulliFaults::new(0.3, params.f(), StdRng::seed_from_u64(5))?;
    let config = MonteCarloConfig::new(samples, 100.0)?;
    let mut result = Ok(Vec::new());
    let wall_ms = time_ms(|| {
        result = run_sweep_ratios_seeded(&plans, &mut faults, config, horizon, 7);
    });
    let ratios = result?;
    RatioStats::from_ratios(&ratios)?;
    Ok(WorkloadTiming {
        name: "montecarlo_sweep".to_owned(),
        wall_ms,
        detail: format!("{samples}-sample random-fault Monte-Carlo sweep of A(5, 2)"),
    })
}

/// Deterministic busy work proportional to `cost`, used by the skewed
/// CPU-bound engine comparison (shared with the criterion bench).
#[must_use]
pub fn skewed_work(cost: u64) -> u64 {
    let mut acc = cost ^ 0x9e37_79b9_7f4a_7c15;
    for i in 0..(cost * 24) {
        acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
    }
    acc
}

/// The tail-heavy item-cost vector of the CPU-bound comparison: linear
/// cost growth, so the last contiguous chunk holds most of the work —
/// the shape a supremum sweep over geometrically spaced targets has.
#[must_use]
pub fn skewed_cpu_items(items: usize) -> Vec<u64> {
    (0..items as u64).collect()
}

const COMPARISON_THREADS: usize = 4;

fn compare_engines_cpu(quick: bool) -> EngineComparison {
    let items = skewed_cpu_items(if quick { 1_024 } else { 2_048 });
    let config = ParallelConfig::with_threads(COMPARISON_THREADS);
    let stealing_ms = time_ms(|| {
        par_map_with(&items, &config, |&c| skewed_work(c));
    });
    let chunked_ms = time_ms(|| {
        par_map_chunked(&items, COMPARISON_THREADS, |&c| skewed_work(c));
    });
    EngineComparison {
        name: "skewed_cpu".to_owned(),
        threads: COMPARISON_THREADS,
        items: items.len(),
        chunked_ms,
        stealing_ms,
        speedup: chunked_ms / stealing_ms,
    }
}

fn compare_engines_latency() -> EngineComparison {
    // Sleeps overlap regardless of core count, so this comparison
    // demonstrates the scheduler property even on single-core CI.
    let sleeps: Vec<u64> = (0..32).map(|i| if i >= 28 { 40 } else { 1 }).collect();
    let config = ParallelConfig::with_threads(COMPARISON_THREADS).grain(1);
    let sleep = |&ms: &u64| std::thread::sleep(std::time::Duration::from_millis(ms));
    let stealing_ms = time_ms(|| {
        par_map_with(&sleeps, &config, sleep);
    });
    let chunked_ms = time_ms(|| {
        par_map_chunked(&sleeps, COMPARISON_THREADS, sleep);
    });
    EngineComparison {
        name: "skewed_latency".to_owned(),
        threads: COMPARISON_THREADS,
        items: sleeps.len(),
        chunked_ms,
        stealing_ms,
        speedup: chunked_ms / stealing_ms,
    }
}

/// Runs every workload and comparison and assembles the baseline.
///
/// # Errors
///
/// Propagates failures from the underlying experiments.
pub fn run_baseline(quick: bool) -> Result<BenchBaseline, Box<dyn std::error::Error>> {
    let host = HostInfo {
        logical_cores: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        default_threads: ParallelConfig::default().resolved_threads(),
        os: std::env::consts::OS.to_owned(),
        arch: std::env::consts::ARCH.to_owned(),
    };
    let workloads = vec![table1_scan(quick)?, mask_exploration(quick)?, montecarlo_sweep(quick)?];
    let engine = vec![compare_engines_cpu(quick), compare_engines_latency()];
    Ok(BenchBaseline {
        version: crate::VERSION.to_owned(),
        date: utc_date(),
        quick,
        host,
        workloads,
        engine,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utc_date_is_well_formed() {
        let d = utc_date();
        assert_eq!(d.len(), 10, "{d}");
        assert_eq!(d.as_bytes()[4], b'-');
        assert_eq!(d.as_bytes()[7], b'-');
        let year: i32 = d[..4].parse().unwrap();
        assert!(year >= 2024, "{d}");
    }

    #[test]
    fn baseline_roundtrips_through_json() {
        let baseline = BenchBaseline {
            version: "0.1.0".to_owned(),
            date: "2026-08-06".to_owned(),
            quick: true,
            host: HostInfo {
                logical_cores: 4,
                default_threads: 4,
                os: "linux".to_owned(),
                arch: "x86_64".to_owned(),
            },
            workloads: vec![WorkloadTiming {
                name: "table1_supremum_scan".to_owned(),
                wall_ms: 12.5,
                detail: "test".to_owned(),
            }],
            engine: vec![EngineComparison {
                name: "skewed_latency".to_owned(),
                threads: 4,
                items: 32,
                chunked_ms: 164.0,
                stealing_ms: 47.0,
                speedup: 164.0 / 47.0,
            }],
        };
        let json = serde_json::to_string_pretty(&baseline).unwrap();
        let back: BenchBaseline = serde_json::from_str(&json).unwrap();
        assert_eq!(back, baseline);
    }

    #[test]
    fn latency_comparison_shows_the_stealing_win() {
        let cmp = compare_engines_latency();
        assert!(
            cmp.speedup > 2.0,
            "expected ≥ 2x on the sleep-skewed workload, got {:.2}x \
             (chunked {:.1} ms vs stealing {:.1} ms)",
            cmp.speedup,
            cmp.chunked_ms,
            cmp.stealing_ms
        );
    }
}
