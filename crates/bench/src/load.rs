//! The load-baseline emitter: runs the deterministic seeded workload
//! from `faultline_serve::loadgen` and writes a machine-readable JSON
//! document (`LOAD_<date>.json`) next to the `BENCH_<date>.json` perf
//! baselines, so the serving trajectory (p50/p99 latency, QPS) is
//! diffable across changes the same way compute timings are.
//!
//! Gating mirrors [`crate::baseline::compare_baselines`]: absolute
//! latencies and throughput are only meaningful on the same hardware
//! running the same workload shape, so the gate fires only when the
//! recorded report carries the same host fingerprint, `quick` flag,
//! and workload shape (requests/concurrency/shards/seed). Anything
//! else is reported as informational, never a failure.

use serde::{Deserialize, Serialize};

use faultline_serve::loadgen::{self, LoadOptions, LoadSummary};

use crate::baseline::{utc_date, HostInfo, REGRESSION_TOLERANCE};
use crate::BaselineComparison;

/// The complete load report written to `LOAD_<date>.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadReport {
    /// Workspace version the report was recorded with.
    pub version: String,
    /// UTC date of the run (`YYYY-MM-DD`).
    pub date: String,
    /// Whether the reduced `--quick` workload was used.
    pub quick: bool,
    /// Host context (same fingerprint rule as the perf baselines).
    pub host: HostInfo,
    /// SO_REUSEPORT shard count the workload ran against.
    pub shards: usize,
    /// Concurrent client threads.
    pub concurrency: usize,
    /// Total requests fired.
    pub requests: u64,
    /// Workload seed.
    pub seed: u64,
    /// Transport-level failures (should be zero).
    pub errors: u64,
    /// Wall-clock of the firing phase in milliseconds.
    pub wall_ms: f64,
    /// Completed requests per second.
    pub qps: f64,
    /// Median response latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile response latency in milliseconds.
    pub p99_ms: f64,
    /// Response count by HTTP status (stringified status codes).
    pub statuses: std::collections::BTreeMap<String, u64>,
    /// Order-stable digest over every `(status, body)` pair; a function
    /// of the seed and the server's semantics, not of timing.
    pub digest: String,
}

/// Runs the seeded load workload and assembles the report.
///
/// # Errors
///
/// Propagates loadgen failures (spawn errors, degenerate options).
pub fn run_load(options: &LoadOptions, quick: bool) -> Result<LoadReport, String> {
    let summary = loadgen::run(options)?;
    Ok(report_from(options, &summary, quick))
}

fn report_from(options: &LoadOptions, summary: &LoadSummary, quick: bool) -> LoadReport {
    LoadReport {
        version: crate::VERSION.to_owned(),
        date: utc_date(),
        quick,
        host: HostInfo {
            logical_cores: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
            default_threads: faultline_core::ParallelConfig::default().resolved_threads(),
            os: std::env::consts::OS.to_owned(),
            arch: std::env::consts::ARCH.to_owned(),
        },
        shards: if options.addr.is_some() { 0 } else { options.shards.max(1) },
        concurrency: options.concurrency,
        requests: options.requests,
        seed: options.seed,
        errors: summary.errors,
        wall_ms: summary.wall_ms,
        qps: summary.qps,
        p50_ms: summary.p50_ms,
        p99_ms: summary.p99_ms,
        statuses: summary.statuses.iter().map(|(&s, &c)| (s.to_string(), c)).collect(),
        digest: summary.digest.clone(),
    }
}

/// Whether two reports measured the same workload shape.
fn same_shape(a: &LoadReport, b: &LoadReport) -> bool {
    a.requests == b.requests
        && a.concurrency == b.concurrency
        && a.shards == b.shards
        && a.seed == b.seed
}

/// Compares a fresh load report against a recorded one.
///
/// p99 latency (must not grow beyond [`REGRESSION_TOLERANCE`]) and QPS
/// (must not lose more than [`REGRESSION_TOLERANCE`]) are gated only
/// when the recorded report has the same host fingerprint, `quick`
/// flag, and workload shape — the same rule `repro bench --baseline=`
/// applies to wall-clock timings. Transport errors always gate: a
/// clean workload that starts failing is a regression on any host.
#[must_use]
pub fn compare_load(current: &LoadReport, recorded: &LoadReport) -> BaselineComparison {
    let mut lines = Vec::new();
    let mut regressions = Vec::new();

    if current.errors > 0 {
        regressions.push(format!(
            "{} transport errors (recorded run had {})",
            current.errors, recorded.errors
        ));
    }
    lines.push(format!("errors: {} vs recorded {}", current.errors, recorded.errors));

    if current.quick != recorded.quick {
        lines.push(format!(
            "latency/QPS comparison skipped: current quick = {}, recorded quick = {}",
            current.quick, recorded.quick
        ));
    } else if current.host != recorded.host {
        lines.push(
            "latency/QPS comparison skipped: host fingerprint differs from the recorded report"
                .to_owned(),
        );
    } else if !same_shape(current, recorded) {
        lines.push(format!(
            "latency/QPS comparison skipped: workload shape differs \
             (requests {} vs {}, concurrency {} vs {}, shards {} vs {}, seed {} vs {})",
            current.requests,
            recorded.requests,
            current.concurrency,
            recorded.concurrency,
            current.shards,
            recorded.shards,
            current.seed,
            recorded.seed,
        ));
    } else {
        let p99_growth = current.p99_ms / recorded.p99_ms - 1.0;
        let p99_line = format!(
            "p99: {:.2} ms vs recorded {:.2} ms ({:+.1}%)",
            current.p99_ms,
            recorded.p99_ms,
            p99_growth * 100.0
        );
        if p99_growth > REGRESSION_TOLERANCE {
            regressions.push(p99_line.clone());
        }
        lines.push(p99_line);

        let qps_loss = 1.0 - current.qps / recorded.qps;
        let qps_line = format!(
            "qps: {:.0} vs recorded {:.0} ({:+.1}%)",
            current.qps,
            recorded.qps,
            -qps_loss * 100.0
        );
        if qps_loss > REGRESSION_TOLERANCE {
            regressions.push(qps_line.clone());
        }
        lines.push(qps_line);

        lines.push(format!("p50: {:.2} ms vs recorded {:.2} ms", current.p50_ms, recorded.p50_ms));
    }

    BaselineComparison { lines, regressions }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host() -> HostInfo {
        HostInfo {
            logical_cores: 4,
            default_threads: 4,
            os: "linux".to_owned(),
            arch: "x86_64".to_owned(),
        }
    }

    fn report(p99_ms: f64, qps: f64) -> LoadReport {
        LoadReport {
            version: "0.2.0".to_owned(),
            date: "2026-08-08".to_owned(),
            quick: true,
            host: host(),
            shards: 2,
            concurrency: 4,
            requests: 1_200,
            seed: 1,
            errors: 0,
            wall_ms: 500.0,
            qps,
            p50_ms: 0.2,
            p99_ms,
            statuses: [("200".to_owned(), 1_200u64)].into_iter().collect(),
            digest: "00000000deadbeef".to_owned(),
        }
    }

    #[test]
    fn reports_roundtrip_through_json() {
        let original = report(1.5, 2_400.0);
        let json = serde_json::to_string_pretty(&original).unwrap();
        let back: LoadReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn the_gate_fires_only_on_same_host_same_shape_runs() {
        let recorded = report(1.0, 2_000.0);

        // Within tolerance on both axes: passes.
        assert!(compare_load(&report(1.2, 1_600.0), &recorded).passed());
        // p99 grew beyond +25%: regression.
        assert!(!compare_load(&report(1.3, 2_000.0), &recorded).passed());
        // QPS lost more than 25%: regression.
        assert!(!compare_load(&report(1.0, 1_400.0), &recorded).passed());

        // A different host fingerprint skips the timing gate entirely.
        let mut other_host = report(9.0, 10.0);
        other_host.host.logical_cores = 64;
        let cross = compare_load(&other_host, &recorded);
        assert!(cross.passed(), "{:?}", cross.regressions);
        assert!(cross.lines.iter().any(|l| l.contains("host fingerprint")));

        // A different workload shape also skips it.
        let mut other_shape = report(9.0, 10.0);
        other_shape.concurrency = 64;
        let reshaped = compare_load(&other_shape, &recorded);
        assert!(reshaped.passed(), "{:?}", reshaped.regressions);
        assert!(reshaped.lines.iter().any(|l| l.contains("workload shape")));

        // A mismatched --quick flag likewise.
        let mut other_quick = report(9.0, 10.0);
        other_quick.quick = false;
        assert!(compare_load(&other_quick, &recorded).passed());

        // Transport errors gate on any host and any shape.
        let mut erroring = other_host;
        erroring.errors = 3;
        assert!(!compare_load(&erroring, &recorded).passed());
    }
}
