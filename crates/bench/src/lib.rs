//! # faultline-bench
//!
//! Criterion benchmarks and the `repro` harness that regenerates every
//! table and figure of the paper. See the `benches/` directory for the
//! per-experiment benchmarks and `src/bin/repro.rs` for the harness.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baseline;
pub mod load;
pub mod output;

pub use baseline::{
    compare_baselines, run_baseline, BaselineComparison, BenchBaseline, EngineComparison, HostInfo,
    PathComparison, WorkloadTiming, MIN_GATED_WALL_MS, REGRESSION_TOLERANCE,
};
pub use load::{compare_load, run_load, LoadReport};
pub use output::resolve_out_path;

/// Workspace version, re-exported for the harness banner.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
