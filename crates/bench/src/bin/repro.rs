//! `repro` — the reproduction harness.
//!
//! Regenerates every table and figure of *Search on a Line with Faulty
//! Robots* (PODC 2016), prints the results next to the paper's values,
//! and exports CSV/SVG artifacts under `out/`.
//!
//! Usage:
//!
//! ```text
//! repro [table1|fig5|figures|ablation|lower-bound|montecarlo|explore|optimize|conformance|scenario|all] [--fast] [--seed=N]
//! repro replay <trace.json>
//! repro bench [--quick] [--out=PATH] [--force] [--baseline=PATH]
//! ```
//!
//! `--seed=N` re-seeds the Monte-Carlo section (fault stream `N`,
//! target stream `N + 2`; default `N = 11`), the fault-space
//! explorer's subsampler, and the optimizer's perturbation streams,
//! keeping every figure reproducible from a single number. `replay`
//! re-executes a recorded failure trace bit-for-bit and exits non-zero
//! if the outcome diverges.
//!
//! `--fast` reduces grids/budgets *and* redirects artifacts to
//! `out/fast/` so quick runs never clobber the tracked full-resolution
//! CSVs under `out/`.

use std::fs;
use std::path::Path;

use faultline_analysis::ascii::{line_chart, render_table, Series};
use faultline_analysis::{ablation, fig5, figures, table1};
use faultline_core::{lower_bound, ratio, Params};
use faultline_strategies::{all_strategies, Strategy};
use rand_free::main_impl;

/// A tiny module to keep `main` testable without rand (the harness
/// itself is deterministic except for the Monte-Carlo section, which
/// seeds explicitly).
mod rand_free {
    use super::*;

    /// Entry point shared by `main`.
    pub fn main_impl() -> Result<(), Box<dyn std::error::Error>> {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let fast = args.iter().any(|a| a == "--fast");
        let quick = args.iter().any(|a| a == "--quick");
        let force = args.iter().any(|a| a == "--force");
        let bench_out: Option<String> =
            args.iter().find_map(|a| a.strip_prefix("--out=")).map(str::to_owned);
        let bench_baseline: Option<String> =
            args.iter().find_map(|a| a.strip_prefix("--baseline=")).map(str::to_owned);
        let seed: Option<u64> = args
            .iter()
            .find_map(|a| a.strip_prefix("--seed="))
            .map(|s| s.parse().map_err(|e| format!("invalid --seed value `{s}`: {e}")))
            .transpose()?;
        let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
        let command = positional.first().map_or("all", |s| s.as_str());
        let operand = positional.get(1).map(|s| s.as_str());
        // Fast runs are lower-resolution: keep them away from the
        // tracked full-resolution artifacts under `out/`.
        let out_dir = if fast { Path::new("out/fast") } else { Path::new("out") };
        fs::create_dir_all(out_dir)?;

        println!(
            "faultline repro v{} — Search on a Line with Faulty Robots (PODC 2016)",
            faultline_bench::VERSION
        );
        println!();

        match command {
            "table1" => run_table1(out_dir, fast)?,
            "fig5" => run_fig5(out_dir, fast)?,
            "figures" => run_figures(out_dir)?,
            "ablation" => run_ablation(out_dir, fast)?,
            "lower-bound" => run_lower_bound()?,
            "montecarlo" => run_montecarlo(seed.unwrap_or(11))?,
            "extensions" => run_extensions(out_dir)?,
            "verify" => run_verify()?,
            "certify" => run_certify()?,
            "explore" => run_explore(out_dir, fast, seed.unwrap_or(0))?,
            "optimize" => run_optimize(out_dir, fast, seed.unwrap_or(0))?,
            "conformance" => run_conformance(out_dir, fast, seed.unwrap_or(1))?,
            "scenario" => run_scenario(out_dir)?,
            "replay" => {
                let path = operand.ok_or("replay needs a trace file: repro replay <trace.json>")?;
                run_replay(path)?;
            }
            "bench" => run_bench(quick, bench_out.as_deref(), force, bench_baseline.as_deref())?,
            "all" => {
                run_table1(out_dir, fast)?;
                run_fig5(out_dir, fast)?;
                run_figures(out_dir)?;
                run_ablation(out_dir, fast)?;
                run_lower_bound()?;
                run_montecarlo(seed.unwrap_or(11))?;
                run_extensions(out_dir)?;
                run_verify()?;
                run_certify()?;
                run_explore(out_dir, fast, seed.unwrap_or(0))?;
                run_optimize(out_dir, fast, seed.unwrap_or(0))?;
                run_conformance(out_dir, fast, seed.unwrap_or(1))?;
                run_scenario(out_dir)?;
            }
            other => {
                eprintln!(
                    "unknown command `{other}`; expected table1 | fig5 | figures | ablation | \
                     lower-bound | montecarlo | extensions | verify | certify | explore | \
                     optimize | conformance | scenario | replay <trace.json> | bench | all"
                );
                std::process::exit(2);
            }
        }
        Ok(())
    }
}

fn run_table1(out_dir: &Path, fast: bool) -> Result<(), Box<dyn std::error::Error>> {
    println!("== Table 1: upper/lower bounds and expansion factors ==");
    let rows = table1::regenerate(!fast)?;
    print!("{}", table1::render(&rows));
    fs::write(out_dir.join("table1.csv"), table1::to_csv(&rows))?;
    println!("(written to {}/table1.csv)\n", out_dir.display());
    Ok(())
}

fn run_fig5(out_dir: &Path, fast: bool) -> Result<(), Box<dyn std::error::Error>> {
    println!("== Figure 5 (left): CR of A(2f+1, f) vs n ==");
    let measure_up_to = if fast { 0 } else { 13 };
    let left = fig5::fig5_left(3, 41, measure_up_to)?;
    print!("{}", fig5::render_left(&left));
    let mut csv = String::from("n,cr,corollary1,corollary2,alpha,measured\n");
    for s in &left {
        csv.push_str(&format!(
            "{},{},{},{},{},{}\n",
            s.n,
            s.cr,
            s.corollary1,
            s.corollary2,
            s.alpha,
            s.measured.map_or(String::new(), |v| v.to_string())
        ));
    }
    fs::write(out_dir.join("fig5_left.csv"), csv)?;

    println!("== Figure 5 (right): asymptotic CR vs a = n/f ==");
    let right = fig5::fig5_right(101)?;
    print!("{}", fig5::render_right(&right));
    let mut csv = String::from("a,cr\n");
    for s in &right {
        csv.push_str(&format!("{},{}\n", s.a, s.cr));
    }
    fs::write(out_dir.join("fig5_right.csv"), csv)?;
    println!("(written to {dir}/fig5_left.csv, {dir}/fig5_right.csv)\n", dir = out_dir.display());
    Ok(())
}

fn run_figures(out_dir: &Path) -> Result<(), Box<dyn std::error::Error>> {
    println!("== Figures 1-4, 6, 7: space-time diagrams ==");
    for fig in figures::all_figures()? {
        println!("{}: {}", fig.name, fig.title);
        fs::write(out_dir.join(format!("{}.svg", fig.name)), fig.to_svg(800.0, 600.0)?)?;
        fs::write(out_dir.join(format!("{}.csv", fig.name)), fig.to_csv())?;
    }

    // Figure 4's shaded "tower" region, rasterized: '#' marks points
    // (x, t) seen by at least f + 1 = 2 robots.
    let params = Params::new(3, 1)?;
    let alg = faultline_core::Algorithm::design(params)?;
    let horizon = alg.required_horizon(6.0)?;
    let trajectories = alg
        .plans()
        .iter()
        .map(|p| p.materialize(horizon.min(45.0)))
        .collect::<Result<Vec<_>, _>>()?;
    let fleet = faultline_core::Fleet::new(trajectories)?;
    let xs = faultline_core::numeric::linspace(-6.0, 6.0, 73);
    let ts = faultline_core::numeric::linspace(0.0, 40.0, 28);
    let raster = fleet.coverage_raster(&xs, &ts)?;
    let rendered = raster.render(params.required_visits());
    fs::write(out_dir.join("fig4_tower.txt"), &rendered)?;
    println!("fig4 tower raster ('#' = 2-covered):");
    print!("{rendered}");
    println!(
        "(SVG + CSV written to {dir}/fig*.svg, {dir}/fig*.csv; raster to {dir}/fig4_tower.txt)\n",
        dir = out_dir.display()
    );
    Ok(())
}

fn run_ablation(out_dir: &Path, fast: bool) -> Result<(), Box<dyn std::error::Error>> {
    println!("== Ablation A1: competitive ratio vs beta (minimum at beta*) ==");
    for (n, f) in [(3usize, 1usize), (5, 2), (5, 3)] {
        let params = Params::new(n, f)?;
        let sweep = ablation::beta_sweep(params, if fast { 9 } else { 17 }, !fast)?;
        println!("A({n}, {f}): beta* = {:.4}, CR(beta*) = {:.4}", sweep.beta_star, sweep.cr_star);
        let series: Vec<(f64, f64)> = sweep.samples.iter().map(|s| (s.beta, s.analytic)).collect();
        print!("{}", line_chart(&[Series::new("CR(beta)", series)], 64, 12));
        let mut csv = String::from("beta,analytic,measured\n");
        for s in &sweep.samples {
            csv.push_str(&format!(
                "{},{},{}\n",
                s.beta,
                s.analytic,
                s.measured.map_or(String::new(), |v| v.to_string())
            ));
        }
        fs::write(out_dir.join(format!("ablation_beta_{n}_{f}.csv")), csv)?;
    }

    println!("== Ablation A3: fault misestimation (n = 5) ==");
    let mut rows = Vec::new();
    for f_design in [2usize, 3] {
        for s in ablation::fault_misestimation(5, f_design)? {
            rows.push(vec![
                s.f_design.to_string(),
                s.f_true.to_string(),
                format!("{:.4}", s.cr),
                format!("{:.4}", s.cr_oracle),
                format!("{:.4}", s.cr / s.cr_oracle),
            ]);
        }
    }
    print!("{}", render_table(&["f designed", "f true", "CR", "CR oracle", "penalty"], &rows));
    println!();
    Ok(())
}

fn run_lower_bound() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Theorem 2: lower bound alpha(n), (alpha-1)^n (alpha-3) = 2^(n+1) ==");
    let mut rows = Vec::new();
    for n in [1usize, 2, 3, 4, 5, 11, 41, 101, 1001] {
        let a = lower_bound::alpha(n)?;
        let c2 =
            if n >= 3 { format!("{:.5}", lower_bound::corollary2_lower(n)?) } else { "-".into() };
        rows.push(vec![n.to_string(), format!("{a:.5}"), c2]);
    }
    print!("{}", render_table(&["n", "alpha(n)", "Cor.2 asymptote"], &rows));

    println!("\n== Baseline comparison at (n, f) = (3, 1) ==");
    let params = Params::new(3, 1)?;
    let mut rows = Vec::new();
    for strategy in all_strategies() {
        let cr = strategy.analytic_cr(params).map_or("n/a".to_owned(), |v| format!("{v:.4}"));
        let measured = faultline_analysis::measure_strategy_cr(strategy.as_ref(), params, 30.0, 48)
            .map(|m| {
                if m.empirical.is_finite() {
                    format!("{:.4}", m.empirical)
                } else {
                    format!("unbounded ({} targets uncovered)", m.uncovered)
                }
            })
            .unwrap_or_else(|e| format!("error: {e}"));
        rows.push(vec![strategy.name().to_owned(), cr, measured]);
    }
    println!(
        "lower bound for any algorithm: alpha(3) = {:.4}; paper's A(3,1): {:.4}",
        lower_bound::alpha(3)?,
        ratio::cr_upper(params)
    );
    print!("{}", render_table(&["strategy", "analytic CR", "measured CR"], &rows));
    println!();
    Ok(())
}

fn run_montecarlo(seed: u64) -> Result<(), Box<dyn std::error::Error>> {
    use faultline_sim::{run_sweep_ratios_seeded, BernoulliFaults, MonteCarloConfig, RatioStats};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    println!("== Monte Carlo: random faults vs the worst case, A(5, 2) ==");
    println!("(seed {seed}: fault stream {seed}, target stream {})", seed + 2);
    let params = Params::new(5, 2)?;
    let strategy = faultline_strategies::PaperStrategy::new();
    let plans = strategy.plans(params)?;
    let horizon = strategy.horizon_hint(params, 101.0);
    let mut rows = Vec::new();
    let mut heavy_tail: Vec<f64> = Vec::new();
    for p in [0.1, 0.3, 0.5] {
        let mut faults = BernoulliFaults::new(p, params.f(), StdRng::seed_from_u64(seed))?;
        let ratios = run_sweep_ratios_seeded(
            &plans,
            &mut faults,
            MonteCarloConfig::new(2000, 100.0)?,
            horizon,
            seed + 2,
        )?;
        let stats = RatioStats::from_ratios(&ratios)?;
        if p == 0.5 {
            heavy_tail = ratios;
        }
        rows.push(vec![
            format!("{p}"),
            format!("{:.4}", stats.mean),
            format!("{:.4}", stats.p50),
            format!("{:.4}", stats.p95),
            format!("{:.4}", stats.max),
        ]);
    }
    println!("worst-case CR (Theorem 1): {:.4}", ratio::cr_upper(params));
    print!("{}", render_table(&["fault prob", "mean", "p50", "p95", "max"], &rows));
    println!();
    println!("achieved-ratio distribution at fault probability 0.5:");
    print!("{}", faultline_analysis::ascii::histogram(&heavy_tail, 12, 48));
    println!();
    Ok(())
}

fn run_extensions(out_dir: &Path) -> Result<(), Box<dyn std::error::Error>> {
    use faultline_analysis::{bounded, group_search, turncost};
    use faultline_strategies::PaperStrategy;

    let params = Params::new(3, 1)?;

    println!("== Extension E1: known distance bound D (A(3,1) clamped) ==");
    let samples = bounded::bound_sweep(params, &[1.5, 2.0, 4.0, 16.0, 64.0], 48)?;
    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            vec![
                format!("{}", s.bound),
                format!("{:.4}", s.measured_cr),
                format!("{:.4}", s.unbounded_cr),
            ]
        })
        .collect();
    print!("{}", render_table(&["D", "bounded CR", "unbounded CR"], &rows));
    let mut csv = String::from("bound,measured_cr,unbounded_cr\n");
    for s in &samples {
        csv.push_str(&format!("{},{},{}\n", s.bound, s.measured_cr, s.unbounded_cr));
    }
    fs::write(out_dir.join("extension_bounded.csv"), csv)?;

    println!("== Extension E2: turn cost (A(3,1)) ==");
    let sweep = turncost::sweep(params, &[0.0, 0.5, 2.0, 8.0], 25.0, 48)?;
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|s| {
            vec![
                format!("{}", s.c),
                format!("{:.4}", s.best_beta),
                format!("{:.4}", s.best_cr),
                format!("{:.4}", s.cr_at_paper_beta),
            ]
        })
        .collect();
    print!("{}", render_table(&["c", "best beta", "best cost-CR", "cost-CR at beta*"], &rows));
    let mut csv = String::from("c,best_beta,best_cr,cr_at_paper_beta\n");
    for s in &sweep {
        csv.push_str(&format!("{},{},{},{}\n", s.c, s.best_beta, s.best_cr, s.cr_at_paper_beta));
    }
    fs::write(out_dir.join("extension_turncost.csv"), csv)?;

    println!("== Extension E3: arrival-index spectrum CR_k (A(5,2)) ==");
    let params = Params::new(5, 2)?;
    let spectrum = group_search::k_spectrum(&PaperStrategy::new(), params, 15.0, 48)?;
    let rows: Vec<Vec<String>> = spectrum
        .iter()
        .map(|s| {
            let marker = if s.k == params.required_visits() { " (= f+1)" } else { "" };
            vec![format!("{}{marker}", s.k), format!("{:.4}", s.cr)]
        })
        .collect();
    print!("{}", render_table(&["k", "CR_k"], &rows));
    let mut csv = String::from("k,cr\n");
    for s in &spectrum {
        csv.push_str(&format!("{},{}\n", s.k, s.cr));
    }
    fs::write(out_dir.join("extension_spectrum.csv"), csv)?;

    println!("== Extension E4: randomized sweeps (expected competitive ratio) ==");
    use faultline_analysis::randomized;
    use faultline_strategies::RandomizedSweepStrategy;
    let kao = RandomizedSweepStrategy::kao_optimal();
    println!(
        "Kao-Reif-Tate expansion r* = {:.5}, single-robot expected CR = {:.5}",
        kao.expansion(),
        kao.single_robot_expected_cr()
    );
    let mut rows = Vec::new();
    for (n, f) in [(1usize, 0usize), (2, 1), (3, 1)] {
        let params = Params::new(n, f)?;
        let result = randomized::expected_cr(&kao, params, 30.0, 16, 200, 17)?;
        let deterministic = ratio::cr_upper(params);
        rows.push(vec![
            format!("({n}, {f})"),
            format!("{:.4}", result.expected_cr),
            format!("{deterministic:.4}"),
            result.uncovered.to_string(),
        ]);
    }
    print!(
        "{}",
        render_table(
            &["(n, f)", "randomized E[CR] (sup over x)", "deterministic CR", "uncovered"],
            &rows
        )
    );

    println!("== Extension E5: crash faults vs sensor faults ==");
    {
        use faultline_core::Fleet;
        use faultline_sim::worst_case_crashes;
        let params = Params::new(3, 1)?;
        let alg = faultline_core::Algorithm::design(params)?;
        let horizon = alg.required_horizon(21.0)?;
        let trajs: Vec<_> =
            alg.plans().iter().map(|p| p.materialize(horizon)).collect::<Result<Vec<_>, _>>()?;
        let fleet = Fleet::new(trajs.clone())?;
        let mut rows = Vec::new();
        for x in [1.0 + 1e-9, -2.5, 7.0, -20.0] {
            let (_, crash_detection) = worst_case_crashes(&trajs, x, params.f())?;
            let sensor = fleet.visit_time(x, params.required_visits()).expect("covered");
            rows.push(vec![
                format!("{x:+.4}"),
                format!("{:.6}", crash_detection.expect("covered")),
                format!("{sensor:.6}"),
            ]);
        }
        print!(
            "{}",
            render_table(&["target", "crash-adversary detection", "sensor T_(f+1)"], &rows)
        );
        println!(
            "finding: for any fixed target the two adversaries coincide — crashing the \
             f earliest visitors just before arrival forces exactly T_(f+1)(x).\n"
        );
    }

    println!("== Extension E6: average case (exact, log-uniform targets up to 100) ==");
    {
        use faultline_analysis::average_case;
        let mut rows = Vec::new();
        for (n, f) in [(2usize, 1usize), (3, 1), (4, 2), (5, 2), (5, 3), (11, 5)] {
            let avg = average_case::exact_average(Params::new(n, f)?, 100.0, 8192)?;
            rows.push(vec![
                format!("({n}, {f})"),
                format!("{:.4}", avg.expected),
                format!("{:.4}", avg.worst_case),
                format!("{:.2}x", avg.pessimism()),
            ]);
        }
        print!("{}", render_table(&["(n, f)", "E[K] exact", "worst case", "pessimism"], &rows));
    }
    println!("(written to {}/extension_*.csv)\n", out_dir.display());
    Ok(())
}

fn run_verify() -> Result<(), Box<dyn std::error::Error>> {
    use faultline_analysis::verification;

    println!("== Verification matrix: closed form vs coverage vs simulator ==");
    let pairs: Vec<(usize, usize)> =
        vec![(2, 1), (3, 1), (3, 2), (4, 2), (4, 3), (5, 2), (5, 3), (5, 4), (7, 3), (9, 4)];
    let reports = verification::run_matrix_batch(&pairs, 30.0, 16)?;
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                format!("({}, {})", r.n, r.f),
                r.cells.len().to_string(),
                format!("{:.2e}", r.worst_gap),
            ]
        })
        .collect();
    print!("{}", render_table(&["(n, f)", "targets checked", "worst relative gap"], &rows));
    let overall = reports.iter().map(|r| r.worst_gap).fold(0.0f64, f64::max);
    println!("overall worst gap across three independent evaluation paths: {overall:.2e}");
    println!();
    Ok(())
}

fn run_certify() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Certified enclosures (outward-rounded interval arithmetic) ==");
    let certs = faultline_core::certificate::certify_table1()?;
    let rows: Vec<Vec<String>> = certs
        .iter()
        .map(|c| {
            vec![
                c.quantity.clone(),
                format!("{:.12}", c.lo),
                format!("{:.12}", c.hi),
                format!("{:.1e}", c.width()),
            ]
        })
        .collect();
    print!("{}", render_table(&["quantity", "certified lo", "certified hi", "width"], &rows));
    println!(
        "every Table-1 value above is PROVEN to lie in its interval \
         (monotone sign argument for alpha, direct interval evaluation for CR)."
    );

    println!("\n== Measured enclosures: exact supremum scans vs the closed forms ==");
    // The exact critical-point engine now carries an outward-rounded
    // enclosure of its own supremum; wrapping it as a certificate lets
    // the *measured* value join the closed forms above, with
    // intersection as the consistency check (disjoint enclosures would
    // prove a discrepancy between the scan and Theorem 1).
    use faultline_core::certificate::Certificate;
    let xmax = 25.0;
    let mut rows = Vec::new();
    for (n, f) in [(2usize, 1usize), (3, 1), (3, 2), (4, 2), (4, 3), (5, 2), (5, 3), (5, 4)] {
        let params = Params::new(n, f)?;
        let alg = faultline_core::Algorithm::design(params)?;
        let horizon = alg.required_horizon(xmax * (1.0 + 1e-6))?;
        let fleet = faultline_core::Fleet::from_plans(&alg.plans(), horizon)?;
        let enclosed = faultline_analysis::exact_supremum_enclosed(&fleet, f + 1, xmax)?;
        let measured = Certificate::from_interval(
            format!("measured sup of A({n}, {f}) on [1, {xmax}]"),
            enclosed.enclosure,
        );
        let quantity = format!("CR of A({n}, {f})");
        let closed_form = certs
            .iter()
            .find(|c| c.quantity == quantity)
            .ok_or_else(|| format!("no Table-1 certificate for {quantity}"))?;
        if !measured.intersects(closed_form) {
            return Err(format!(
                "{}: measured enclosure [{}, {}] is disjoint from the certified closed form \
                 [{}, {}]",
                measured.quantity, measured.lo, measured.hi, closed_form.lo, closed_form.hi
            )
            .into());
        }
        rows.push(vec![
            measured.quantity.clone(),
            format!("{:.12}", measured.lo),
            format!("{:.12}", measured.hi),
            format!("{:.1e}", measured.width()),
            "intersects".to_owned(),
        ]);
    }
    print!(
        "{}",
        render_table(&["quantity", "measured lo", "measured hi", "width", "vs closed form"], &rows)
    );
    println!("every measured supremum enclosure intersects its certified Theorem-1 interval.\n");
    Ok(())
}

fn run_explore(out_dir: &Path, fast: bool, seed: u64) -> Result<(), Box<dyn std::error::Error>> {
    use faultline_explore::{explore_pair, ExploreConfig, ExploreReport};
    use faultline_sim::{explore_fault_space, ExplorerConfig, Target};

    println!("== Systematic adversary-space exploration (dominance-pruned, certified) ==");
    let pairs: &[(usize, usize)] = if fast {
        &[(2, 1), (3, 1), (4, 2)]
    } else {
        // Every Table-1 pair with n <= 5: small enough that the
        // equivalence-class frontier is genuinely exhaustive.
        &[(2, 1), (3, 1), (3, 2), (4, 2), (4, 3), (5, 2), (5, 3), (5, 4)]
    };
    let xmax = 25.0;
    let pruned_config = ExploreConfig { seed, ..ExploreConfig::default() };
    let exhaustive_config = ExploreConfig { seed, exhaustive: true, ..ExploreConfig::default() };
    let mut csv = String::from(ExploreReport::csv_header());
    csv.push('\n');
    let mut rows = Vec::new();
    for &(n, f) in pairs {
        let report = explore_pair(n, f, xmax, &pruned_config)?;
        let baseline = explore_pair(n, f, xmax, &exhaustive_config)?;
        println!("  {}", report.summary());
        if report.worst.value.to_bits() != baseline.worst.value.to_bits() {
            return Err(format!(
                "({n}, {f}): pruned worst value {} diverges from the exhaustive baseline {}",
                report.worst.value, baseline.worst.value
            )
            .into());
        }
        if !report.matches_exact || !baseline.matches_exact {
            return Err(format!(
                "({n}, {f}): explorer worst value diverges from the exact supremum scan"
            )
            .into());
        }
        if report.explored + report.pruned_dominance != report.class_states {
            return Err(format!("({n}, {f}): coverage accounting does not close").into());
        }
        if report.raw_cut_fraction() < 0.30 {
            return Err(format!(
                "({n}, {f}): dominance cut only {:.1}% of raw states (acceptance floor 30%)",
                100.0 * report.raw_cut_fraction()
            )
            .into());
        }
        rows.push(vec![
            format!("({n}, {f})"),
            format!("{}/{}", report.explored, report.class_states),
            report.raw_states.to_string(),
            format!("{:.1}%", 100.0 * report.raw_cut_fraction()),
            baseline.explored.to_string(),
            format!("{:.1e}", report.enclosure_width()),
        ]);
        csv.push_str(&report.csv_row());
        csv.push('\n');
        csv.push_str(&baseline.csv_row());
        csv.push('\n');
    }
    print!(
        "{}",
        render_table(
            &["(n, f)", "explored/classes", "raw states", "raw cut", "exhaustive", "encl. width"],
            &rows
        )
    );
    fs::write(out_dir.join("explore_coverage.csv"), csv)?;
    println!(
        "every pair: 100% equivalence-class coverage, pruned worst bit-identical to the \
         exhaustive baseline and the exact supremum scan."
    );
    println!("(written to {}/explore_coverage.csv)\n", out_dir.display());

    println!("== Legacy fault-mask sweep: detection <= T_(f+1)(x) for every mask ==");
    let targets = [1.5, -2.5, 7.0, -13.0];
    let config = ExplorerConfig { seed, ..ExplorerConfig::default() };
    let mut violations = 0usize;
    for &(n, f) in pairs {
        let params = Params::new(n, f)?;
        let alg = faultline_core::Algorithm::design(params)?;
        let horizon = alg.required_horizon(15.0)?;
        let trajectories =
            alg.plans().iter().map(|p| p.materialize(horizon)).collect::<Result<Vec<_>, _>>()?;
        for x in targets {
            let report = explore_fault_space(&trajectories, Target::new(x)?, f, &config)?;
            println!("  {}", report.summary());
            for (i, trace) in report.violations.iter().enumerate() {
                let path = out_dir.join(format!("violation_n{n}_f{f}_x{x}_{i}.json"));
                fs::write(&path, trace.to_json()?)?;
                println!("    shrunk replayable trace written to {}", path.display());
            }
            violations += report.violations.len();
        }
    }
    if violations > 0 {
        return Err(format!(
            "{violations} adversary-dominance violations found (shrunk traces under out/)"
        )
        .into());
    }
    println!("adversary-dominance invariant holds across every explored fault space.\n");
    Ok(())
}

fn run_optimize(out_dir: &Path, fast: bool, seed: u64) -> Result<(), Box<dyn std::error::Error>> {
    use faultline_opt::{gap_csv, gap_study, Budget};

    let budget = if fast { Budget::Tiny } else { Budget::Small };
    println!("== Optimizer gap study: Theorem 1 vs best found vs Theorem 2 ==");
    println!("(budget {budget}, seed {seed}; free-schedule search over every Table-1 pair)");
    let rows = gap_study(budget, seed)?;
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            let r = &row.report;
            vec![
                format!("({}, {})", r.n, r.f),
                format!("{:.4}", r.thm1_cr),
                format!("{:.4}", r.best_found_cr),
                r.thm2_alpha.map_or("-".into(), |a| format!("{a:.4}")),
                if r.improved {
                    format!("-{:.4}", r.improvement)
                } else if r.gap_closed {
                    "closed".into()
                } else {
                    "none".into()
                },
                if r.crosscheck.is_consistent() { "ok".into() } else { "REJECTED".into() },
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["(n, f)", "Thm 1 CR", "best found", "alpha(n)", "improvement", "cross-check"],
            &table
        )
    );
    for row in &rows {
        let r = &row.report;
        if !r.crosscheck.is_consistent() {
            return Err(format!(
                "optimizer cross-check rejected ({}, {}): best {} beats the certified lower bound",
                r.n, r.f, r.best_found_cr
            )
            .into());
        }
    }
    let improved = rows.iter().filter(|r| r.report.improved).count();
    let closed = rows.iter().filter(|r| r.report.gap_closed).count();
    println!(
        "{improved}/{} pairs found a non-proportional schedule strictly below Theorem 1 at \
         this budget; {closed} are `closed` (Theorem 1 already equals the lower bound, so \
         in-window gains are never claimed); the rest document `none` rather than claiming \
         silently.",
        rows.len()
    );
    fs::write(out_dir.join("opt_gap.csv"), gap_csv(&rows))?;
    println!("(written to {}/opt_gap.csv)\n", out_dir.display());
    Ok(())
}

fn run_conformance(
    out_dir: &Path,
    fast: bool,
    seed: u64,
) -> Result<(), Box<dyn std::error::Error>> {
    use faultline_conformance::{ConformanceConfig, Tier};

    println!("== Conformance matrix: sim / analytic / closed-form / optimizer oracles ==");
    let config = ConformanceConfig {
        seed,
        cases: if fast { 48 } else { 200 },
        budget: if fast { Tier::Smoke } else { Tier::Default },
        ..ConformanceConfig::default()
    };
    println!("(seed {}, {} cases, {} budget)", config.seed, config.cases, config.budget);
    let report = faultline_conformance::run(&config)?;
    print!("{}", report.render());
    fs::write(out_dir.join("conformance.csv"), report.to_csv())?;
    println!("(written to {}/conformance.csv)\n", out_dir.display());
    if !report.passed() {
        for (i, doc) in report.failures.iter().enumerate() {
            let path = out_dir.join(format!("counterexample_{}_{i}.json", doc.oracle));
            fs::write(&path, doc.to_json()?)?;
            println!("shrunk replayable counterexample written to {}", path.display());
        }
        return Err(format!(
            "{} oracle violations (replay with `faultline conformance replay <file>`)",
            report.failures.len()
        )
        .into());
    }
    Ok(())
}

/// Exact supremum vs adversarial-grid baseline for one fleet under
/// one geometry; errors if the two engines disagree beyond
/// [`faultline_conformance::EXACT_RTOL`].
fn geometry_row(
    case: &str,
    fleet: &faultline_core::coverage::Fleet,
    k: usize,
    xmax: f64,
    geometry: faultline_core::Geometry,
) -> Result<String, Box<dyn std::error::Error>> {
    use faultline_analysis::supremum::fleet_targets;
    use faultline_conformance::EXACT_RTOL;

    let scan = faultline_analysis::exact_supremum_geometry(fleet, k, xmax, geometry)?;
    let grid = fleet_targets(fleet, xmax, 96)?
        .iter()
        .filter(|&&x| geometry.admits_target(x))
        .map(|&x| fleet.visit_time(x, k).map_or(f64::INFINITY, |t| t / x.abs()))
        .fold(0.0f64, f64::max);
    let rel_gap = (scan.ratio - grid).abs() / grid.abs().max(1.0);
    if !(scan.ratio.is_finite() && grid.is_finite()) || rel_gap > EXACT_RTOL {
        return Err(format!(
            "{case} / {}: exact supremum {} vs grid baseline {} disagree \
             (rel gap {rel_gap:.3e} > {EXACT_RTOL:.0e})",
            geometry.label(),
            scan.ratio,
            grid
        )
        .into());
    }
    println!(
        "  {case:<24} {:<9}  exact CR {:.6}  grid {:.6}  rel gap {rel_gap:.2e}  argmax {:.4}",
        geometry.label(),
        scan.ratio,
        grid,
        scan.argmax
    );
    Ok(format!(
        "{case},{},{k},{xmax},{:.12e},{:.12e},{rel_gap:.3e},{:.12e}\n",
        geometry.label(),
        scan.ratio,
        grid,
        scan.argmax
    ))
}

fn run_scenario(out_dir: &Path) -> Result<(), Box<dyn std::error::Error>> {
    use faultline_core::coverage::Fleet;
    use faultline_core::Geometry;
    use faultline_scenario::ScenarioDoc;

    println!("== Scenario geometry: full-line vs half-line competitive ratios ==");
    let mut csv = String::from("case,geometry,k,xmax,exact_cr,grid_cr,rel_gap,argmax\n");

    // One Table-1 pair under both geometries: the half-line adversary
    // is strictly weaker (no negative side), so its supremum can
    // never be higher; both geometries must agree with the grid
    // baseline.
    let (n, f) = (3usize, 1usize);
    let params = Params::new(n, f)?;
    let xmax = 40.0;
    let strategy = faultline_analysis::resolve_strategy("paper", None)?;
    let plans = strategy.plans(params)?;
    let probe = strategy.horizon_hint(params, xmax * 1.01);
    let fleet = Fleet::from_plans(&plans, probe)?;
    let case = format!("A({n},{f})");
    csv.push_str(&geometry_row(&case, &fleet, f + 1, xmax, Geometry::Line)?);
    csv.push_str(&geometry_row(&case, &fleet, f + 1, xmax, Geometry::HalfLine)?);

    // The heterogeneous half-line example end-to-end: materialize the
    // document's wall-clock fleet (non-unit speeds), run the exact
    // engine on it, and simulate every declared target.
    let path = "examples/scenarios/half_line.json";
    let doc = ScenarioDoc::from_json(
        &fs::read_to_string(path)
            .map_err(|e| format!("{path}: {e} (run repro from the repository root)"))?,
    )?;
    let doc_xmax = doc.targets.iter().fold(1.0f64, |a, &x| a.max(x.abs()));
    let (trajectories, _) = doc.materialize_fleet()?;
    let het = Fleet::new(trajectories)?;
    csv.push_str(&geometry_row("half_line.json", &het, doc.f + 1, doc_xmax, Geometry::HalfLine)?);
    for result in doc.run()? {
        match result.detection_time {
            Some(t) => println!(
                "  target {:>5}: detected at t = {:.4} (ratio {:.4})",
                result.target, t, result.ratio
            ),
            None => println!("  target {:>5}: undetected within the horizon", result.target),
        }
    }

    fs::write(out_dir.join("scenario_geometry.csv"), csv)?;
    println!("(written to {}/scenario_geometry.csv)\n", out_dir.display());
    Ok(())
}

fn run_bench(
    quick: bool,
    out: Option<&str>,
    force: bool,
    against: Option<&str>,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("== Perf baseline: canonical workloads + engine comparison ==");
    if quick {
        println!("(--quick: reduced workloads, suitable for CI smoke)");
    }
    let baseline = faultline_bench::run_baseline(quick)?;
    println!(
        "host: {} cores ({}, {}), default engine threads {}",
        baseline.host.logical_cores,
        baseline.host.os,
        baseline.host.arch,
        baseline.host.default_threads
    );
    let rows: Vec<Vec<String>> = baseline
        .workloads
        .iter()
        .map(|w| vec![w.name.clone(), format!("{:.1}", w.wall_ms), w.detail.clone()])
        .collect();
    print!("{}", render_table(&["workload", "wall ms", "detail"], &rows));
    let rows: Vec<Vec<String>> = baseline
        .engine
        .iter()
        .map(|e| {
            vec![
                e.name.clone(),
                e.threads.to_string(),
                e.items.to_string(),
                format!("{:.1}", e.chunked_ms),
                format!("{:.1}", e.stealing_ms),
                format!("{:.2}x", e.speedup),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["comparison", "threads", "items", "chunked ms", "stealing ms", "speedup"],
            &rows
        )
    );
    let rows: Vec<Vec<String>> = baseline
        .paths
        .iter()
        .map(|p| {
            vec![
                p.name.clone(),
                format!("{:.1}", p.grid_ms),
                format!("{:.1}", p.exact_ms),
                format!("{:.2}x", p.speedup),
                p.detail.clone(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["supremum path", "grid ms", "exact ms", "speedup", "detail"], &rows)
    );
    // Resolve before writing: create missing parent directories, and
    // refuse to clobber an existing baseline unless --force was given.
    let path =
        faultline_bench::resolve_out_path(out, &format!("BENCH_{}.json", baseline.date), force)?;
    fs::write(&path, serde_json::to_string_pretty(&baseline)? + "\n")?;
    println!("(baseline written to {})\n", path.display());
    if let Some(recorded_path) = against {
        println!("== Perf gate: vs recorded baseline {recorded_path} ==");
        let text = fs::read_to_string(recorded_path)
            .map_err(|e| format!("cannot read baseline `{recorded_path}`: {e}"))?;
        let recorded: faultline_bench::BenchBaseline = serde_json::from_str(&text)
            .map_err(|e| format!("cannot parse baseline `{recorded_path}`: {e}"))?;
        let comparison = faultline_bench::compare_baselines(&baseline, &recorded);
        for line in &comparison.lines {
            println!("  {line}");
        }
        if !comparison.passed() {
            return Err(format!(
                "perf gate failed: {} entr{} regressed beyond {:.0}% \
                 (re-record the baseline if the regression is intended)",
                comparison.regressions.len(),
                if comparison.regressions.len() == 1 { "y" } else { "ies" },
                faultline_bench::REGRESSION_TOLERANCE * 100.0
            )
            .into());
        }
        println!("perf gate passed.\n");
    }
    Ok(())
}

fn run_replay(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    use faultline_sim::RunTrace;

    println!("== Replay: {path} ==");
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read trace `{path}`: {e}"))?;
    let trace = RunTrace::from_json(&text)?;
    println!("reason:   {}", trace.reason);
    println!(
        "fleet:    {} robots, fault plan [{}], seed {}",
        trace.trajectories.len(),
        trace.plan.iter().map(|k| k.name()).collect::<Vec<_>>().join(", "),
        trace.seed,
    );
    println!("target:   {}", trace.target);
    match trace.bound {
        Some(b) => println!("bound:    T_(f+1) = {b}"),
        None => println!("bound:    none recorded"),
    }
    match &trace.outcome.detection {
        Some(d) => println!("recorded: detected by a{} at t = {}", d.robot.0, d.time),
        None => println!("recorded: undetected within the horizon"),
    }
    trace.verify()?;
    println!("replay:   bit-for-bit identical to the recorded outcome.\n");
    Ok(())
}

fn main() {
    if let Err(e) = main_impl() {
        eprintln!("repro failed: {e}");
        std::process::exit(1);
    }
}
