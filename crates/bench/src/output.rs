//! Output-path resolution for harness artifacts: creates missing
//! parent directories and refuses to silently overwrite an existing
//! file unless the caller passed `--force`.

use std::path::PathBuf;

/// Resolves where a harness artifact should be written.
///
/// `out` is the user's `--out=PATH` (if any), `default_name` the
/// fallback filename in the current directory. Missing parent
/// directories of an explicit path are created.
///
/// # Errors
///
/// Returns a message when the parent directory cannot be created, or
/// when the target already exists and `force` is `false`.
pub fn resolve_out_path(
    out: Option<&str>,
    default_name: &str,
    force: bool,
) -> Result<PathBuf, String> {
    let path = PathBuf::from(out.unwrap_or(default_name));
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() && !parent.exists() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create directory `{}`: {e}", parent.display()))?;
        }
    }
    if path.is_dir() {
        return Err(format!("`{}` is a directory, not a writable file", path.display()));
    }
    if path.exists() && !force {
        return Err(format!("`{}` already exists; pass --force to overwrite it", path.display()));
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("faultline-bench-out-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn creates_missing_parent_directories() {
        let dir = scratch("parents");
        let target = dir.join("deeply/nested/bench.json");
        let resolved =
            resolve_out_path(Some(target.to_str().unwrap()), "unused.json", false).unwrap();
        assert_eq!(resolved, target);
        assert!(target.parent().unwrap().is_dir(), "parents were created");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn refuses_silent_overwrite_without_force() {
        let dir = scratch("overwrite");
        let target = dir.join("bench.json");
        std::fs::write(&target, "{}").unwrap();
        let err = resolve_out_path(Some(target.to_str().unwrap()), "unused.json", false)
            .expect_err("existing file without --force");
        assert!(err.contains("--force"), "error mentions the escape hatch: {err}");
        let forced = resolve_out_path(Some(target.to_str().unwrap()), "unused.json", true);
        assert!(forced.is_ok(), "--force allows the overwrite");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn default_name_is_used_when_out_is_absent() {
        let resolved = resolve_out_path(None, "BENCH_2026-01-01.json", true).unwrap();
        assert_eq!(resolved, PathBuf::from("BENCH_2026-01-01.json"));
    }

    #[test]
    fn directories_are_rejected_as_targets() {
        let dir = scratch("dirtarget");
        let err = resolve_out_path(Some(dir.to_str().unwrap()), "unused.json", true)
            .expect_err("a directory is not a file target");
        assert!(err.contains("directory"), "got: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
