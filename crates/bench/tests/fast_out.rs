//! Regression test for the `--fast` / tracked-`out/` interaction: fast
//! runs write reduced-resolution artifacts to `out/fast/` and must
//! never touch the tracked full-resolution CSVs under `out/`. CI has a
//! `git diff --exit-code -- out/` drift gate; this pins the same
//! invariant locally so it fails in `cargo test` before it fails in CI.

use std::path::Path;
use std::process::Command;

/// `git status --porcelain -- out/` in the repository root, or `None`
/// when git is unavailable or this is not a checkout (release
/// tarballs), in which case the test degrades to the artifact check.
fn out_status(repo_root: &Path) -> Option<String> {
    let output = Command::new("git")
        .args(["status", "--porcelain", "--", "out/"])
        .current_dir(repo_root)
        .output()
        .ok()?;
    if !output.status.success() {
        return None;
    }
    Some(String::from_utf8_lossy(&output.stdout).into_owned())
}

#[test]
fn fast_run_leaves_tracked_out_artifacts_untouched() {
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let before = out_status(&repo_root);

    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["table1", "--fast"])
        .current_dir(&repo_root)
        .output()
        .expect("failed to spawn the repro binary");
    assert!(
        output.status.success(),
        "repro table1 --fast failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    // The fast artifact lands under out/fast/, never over the tracked
    // full-resolution CSV.
    let fast_csv = repo_root.join("out/fast/table1.csv");
    assert!(fast_csv.is_file(), "fast artifacts belong in out/fast/");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("out/fast/table1.csv"), "stdout names the fast path: {stdout}");

    match (before, out_status(&repo_root)) {
        (Some(before), Some(after)) => {
            assert_eq!(
                before, after,
                "a fast run must leave `git status -- out/` exactly as it found it"
            );
        }
        _ => eprintln!("git unavailable or not a checkout; artifact-location check only"),
    }
}
