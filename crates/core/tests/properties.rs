//! Property-based tests for the core invariants of the paper.

use faultline_core::closed_form::ClosedForm;
use faultline_core::coverage::Fleet;
use faultline_core::lower_bound;
use faultline_core::plan::TrajectoryPlan;
use faultline_core::ratio;
use faultline_core::{
    Algorithm, BoundedAlgorithm, ClampedZigZagPlan, Cone, Params, ProportionalSchedule, SpaceTime,
    TurnCost, ZigZagPlan,
};
use proptest::prelude::*;

/// Strategy generating valid proportional-regime parameters
/// (`f < n < 2f + 2`, `f >= 1`).
fn proportional_params() -> impl Strategy<Value = Params> {
    (1usize..24).prop_flat_map(|f| {
        ((f + 1)..(2 * f + 2)).prop_map(move |n| Params::new(n, f).expect("valid by range"))
    })
}

/// Strategy generating arbitrary valid parameters (both regimes).
fn any_params() -> impl Strategy<Value = Params> {
    (1usize..40).prop_flat_map(|n| (0usize..n).prop_map(move |f| Params::new(n, f).unwrap()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The cone reflection map and its inverse are mutually inverse, and
    /// consecutive turning points are joined by unit-speed segments.
    #[test]
    fn cone_reflections_are_consistent(
        beta in 1.01f64..20.0,
        x0 in prop_oneof![0.05f64..50.0, -50.0f64..-0.05],
    ) {
        let cone = Cone::new(beta).unwrap();
        let p = cone.boundary_point(x0);
        let q = cone.next_turning_point(p);
        let back = cone.previous_turning_point(q);
        prop_assert!((back.x - p.x).abs() <= 1e-9 * p.x.abs().max(1.0));
        let speed = p.speed_to(&q).unwrap();
        prop_assert!((speed - 1.0).abs() < 1e-9, "speed {speed}");
    }

    /// Materialized zig-zag trajectories never exceed unit speed and
    /// never leave the cone.
    #[test]
    fn zigzag_respects_speed_and_cone(
        beta in 1.05f64..10.0,
        seed in prop_oneof![0.1f64..5.0, -5.0f64..-0.1],
        horizon in 10.0f64..500.0,
    ) {
        let cone = Cone::new(beta).unwrap();
        let plan = ZigZagPlan::new(cone, seed).unwrap();
        let traj = plan.materialize(horizon).unwrap();
        prop_assert!((traj.horizon() - horizon).abs() < 1e-9);
        for seg in traj.segments() {
            prop_assert!(seg.speed() <= 1.0 + 1e-9);
        }
        for step in 0..200 {
            let t = horizon * step as f64 / 199.0;
            if let Some(x) = traj.position_at(t) {
                prop_assert!(cone.contains(SpaceTime::new(x, t + 1e-9)));
            }
        }
    }

    /// Lemma 2: the interleaved turning points of a proportional
    /// schedule form a geometric sequence in position, and the time
    /// recurrence `t_{i+1} = t_i + tau_i * beta * (r - 1)` holds.
    #[test]
    fn proportional_schedule_is_proportional(
        n in 1usize..12,
        beta in 1.05f64..8.0,
    ) {
        let s = ProportionalSchedule::new(n, beta).unwrap();
        let r = s.ratio();
        let pts = s.interleaved_turning_points(3 * n);
        for w in pts.windows(2) {
            let ratio = w[1].1.x / w[0].1.x;
            prop_assert!((ratio - r).abs() < 1e-9 * r);
            let dt_expect = w[0].1.x * beta * (r - 1.0);
            prop_assert!((w[1].1.t - w[0].1.t - dt_expect).abs() < 1e-9 * w[1].1.t.max(1.0));
        }
    }

    /// Theorem 1 + Lemma 5: for the designed algorithm A(n, f), the
    /// empirically measured ratio K(x) never exceeds the closed-form
    /// competitive ratio, for random targets on both sides.
    #[test]
    fn measured_ratio_below_analytic_cr(
        params in proportional_params(),
        xs in prop::collection::vec(1.0f64..30.0, 1..6),
        negate in prop::collection::vec(any::<bool>(), 6),
    ) {
        let alg = Algorithm::design(params).unwrap();
        let horizon = alg.required_horizon(31.0).unwrap();
        let fleet = Fleet::from_plans(&alg.plans(), horizon).unwrap();
        let cr = alg.analytic_cr();
        for (i, &x) in xs.iter().enumerate() {
            let target = if negate[i % negate.len()] { -x } else { x };
            let t = fleet.visit_time(target, params.required_visits());
            prop_assert!(t.is_some(), "target {target} uncovered within horizon");
            let ratio = t.unwrap() / x;
            prop_assert!(
                ratio <= cr + 1e-6,
                "{params}: K({target}) = {ratio} > CR = {cr}"
            );
        }
    }

    /// The detection time is always at least the target distance
    /// (no algorithm is faster than distance / unit speed), and at
    /// least beta * |x| for cone-confined schedules.
    #[test]
    fn detection_time_at_least_distance(
        params in proportional_params(),
        x in 1.0f64..20.0,
    ) {
        let alg = Algorithm::design(params).unwrap();
        let beta = alg.schedule().unwrap().beta();
        let horizon = alg.required_horizon(21.0).unwrap();
        let fleet = Fleet::from_plans(&alg.plans(), horizon).unwrap();
        let t = fleet.visit_time(x, params.required_visits()).unwrap();
        prop_assert!(t >= x);
        // Every visit by every robot happens inside the cone.
        let t1 = fleet.visit_time(x, 1).unwrap();
        prop_assert!(t1 >= beta * x - 1e-9);
    }

    /// Lower bound <= upper bound for every valid parameter pair, and
    /// the two-group regime achieves exactly 1.
    #[test]
    fn bounds_are_ordered(params in any_params()) {
        let lb = lower_bound::lower_bound(params).unwrap();
        let ub = ratio::cr_upper(params);
        prop_assert!(lb <= ub + 1e-9, "{params}: lb = {lb}, ub = {ub}");
        if params.regime() == faultline_core::Regime::TwoGroup {
            prop_assert!((ub - 1.0).abs() < 1e-12);
        } else {
            prop_assert!(ub >= 3.0, "{params}: proportional CR is always above 3");
        }
    }

    /// The closed-form optimal beta really is a minimum of cr_of_beta:
    /// perturbing beta in either direction cannot decrease the ratio.
    #[test]
    fn beta_star_is_locally_optimal(
        params in proportional_params(),
        delta in 0.001f64..0.5,
    ) {
        let beta_star = ratio::optimal_beta(params).unwrap();
        let at_star = ratio::cr_of_beta(params, beta_star).unwrap();
        let up = ratio::cr_of_beta(params, beta_star + delta).unwrap();
        prop_assert!(up >= at_star - 1e-12);
        if beta_star - delta > 1.0 {
            let down = ratio::cr_of_beta(params, beta_star - delta).unwrap();
            prop_assert!(down >= at_star - 1e-12);
        }
    }

    /// Lemma 6 holds on every materialized zig-zag trajectory: whenever
    /// both ±x are visited before 3x + 2, the trajectory is classifiable
    /// as positive or negative for x.
    #[test]
    fn lemma6_never_violated_by_zigzags(
        beta in 1.05f64..6.0,
        seed in prop_oneof![0.1f64..2.0, -2.0f64..-0.1],
        x in 1.01f64..10.0,
    ) {
        let plan = ZigZagPlan::new(Cone::new(beta).unwrap(), seed).unwrap();
        let traj = plan.materialize(40.0 * x).unwrap();
        prop_assert!(lower_bound::lemma6_holds(&traj, x).unwrap());
    }

    /// The exact closed form of T_(f+1)(x) agrees with the numeric
    /// coverage evaluation at random targets on both sides.
    #[test]
    fn closed_form_matches_coverage(
        params in proportional_params(),
        x in 1.0f64..25.0,
        negative in any::<bool>(),
    ) {
        let target = if negative { -x } else { x };
        let alg = Algorithm::design(params).unwrap();
        let schedule = alg.schedule().unwrap();
        let cf = ClosedForm::new(schedule);
        let horizon = alg.required_horizon(26.0).unwrap();
        let fleet = Fleet::from_plans(&alg.plans(), horizon).unwrap();
        let exact = cf.visit_time(target, params.f()).unwrap();
        let numeric = fleet.visit_time(target, params.required_visits()).unwrap();
        prop_assert!(
            (exact - numeric).abs() <= 1e-9 * numeric.max(1.0),
            "{params}, x = {target}: closed {exact} vs fleet {numeric}"
        );
        // And it never exceeds the schedule's supremum.
        prop_assert!(exact / x <= cf.supremum(params.f()) + 1e-9);
    }

    /// Clamped zig-zag plans stay within their bound, respect unit
    /// speed, and coincide with the unclamped plan wherever the bound
    /// does not bite.
    #[test]
    fn clamped_zigzag_invariants(
        beta in 1.05f64..6.0,
        seed in prop_oneof![0.1f64..0.9, -0.9f64..-0.1],
        bound in 1.0f64..20.0,
        horizon in 10.0f64..300.0,
    ) {
        let plan = ZigZagPlan::new(Cone::new(beta).unwrap(), seed).unwrap();
        let clamped = ClampedZigZagPlan::new(plan, bound).unwrap();
        let traj = clamped.materialize(horizon).unwrap();
        prop_assert!((traj.horizon() - horizon).abs() < 1e-9);
        for seg in traj.segments() {
            prop_assert!(seg.speed() <= 1.0 + 1e-9);
        }
        prop_assert!(traj.max_excursion() <= bound * (1.0 + 1e-9));
        // If the free plan never leaves the bound, clamping is a no-op.
        let free = plan.materialize(horizon).unwrap();
        if free.max_excursion() <= bound {
            prop_assert_eq!(traj, free);
        }
    }

    /// The bounded algorithm is never worse than the unbounded one on
    /// its own domain.
    #[test]
    fn bounded_algorithm_never_worse(
        params in proportional_params(),
        bound in 1.2f64..10.0,
        x in 1.0f64..10.0,
    ) {
        prop_assume!(x <= bound);
        let bounded = BoundedAlgorithm::design(params, bound).unwrap();
        let horizon = bounded.required_horizon();
        let fleet = Fleet::from_plans(&bounded.plans().unwrap(), horizon).unwrap();
        let t = fleet.visit_time(x, params.required_visits());
        prop_assert!(t.is_some(), "{params}, D = {bound}: x = {x} unconfirmed");
        let cr = ratio::cr_upper(params);
        prop_assert!(
            t.unwrap() / x <= cr + 1e-6,
            "{params}, D = {bound}, x = {x}: bounded ratio above Theorem 1"
        );
    }

    /// Turn-cost detection costs are consistent: non-negative turn
    /// counts, cost = time + c * turns, monotone in c, and equal to the
    /// plain detection time at c = 0.
    #[test]
    fn turn_cost_consistency(
        params in proportional_params(),
        x in 1.0f64..15.0,
        c in 0.0f64..5.0,
    ) {
        let alg = Algorithm::design(params).unwrap();
        let horizon = alg.required_horizon(16.0).unwrap();
        let trajs: Vec<_> = alg
            .plans()
            .iter()
            .map(|p| p.materialize(horizon).unwrap())
            .collect();
        let k = params.required_visits();
        let free = TurnCost::free().detection_cost(&trajs, x, k).unwrap().unwrap();
        let priced = TurnCost::new(c).unwrap().detection_cost(&trajs, x, k).unwrap().unwrap();
        prop_assert_eq!(free.robot, priced.robot);
        prop_assert_eq!(free.turns, priced.turns);
        prop_assert!((priced.cost - (free.time + c * free.turns as f64)).abs() < 1e-9);
        prop_assert!(free.cost == free.time);
    }

    /// The adversary of Theorem 2 forces at least ratio alpha(n) on the
    /// fleet designed by A(n, f) — i.e. the lower bound is real — while
    /// the fleet stays below its upper bound.
    #[test]
    fn adversary_forces_at_least_alpha(params in proportional_params()) {
        prop_assume!(params.n() >= 2);
        let alg = Algorithm::design(params).unwrap();
        let alpha = lower_bound::alpha(params.n()).unwrap();
        let points = lower_bound::adversary_points(params.n(), alpha).unwrap();
        let xmax = points[0].max(2.0) * 1.1;
        let horizon = alg.required_horizon(xmax).unwrap();
        let plans = alg.plans();
        let trajs: Vec<_> = plans
            .iter()
            .map(|p| p.materialize(horizon).unwrap())
            .collect();
        let outcome = lower_bound::adversarial_ratio(
            &trajs,
            params.f(),
            params.n(),
            alpha,
        )
        .unwrap();
        prop_assert!(outcome.ratio.is_finite());
        prop_assert!(
            outcome.ratio >= alpha - 1e-6,
            "{params}: adversary only forced {} < alpha = {alpha}",
            outcome.ratio
        );
        prop_assert!(outcome.ratio <= alg.analytic_cr() + 1e-6);
    }
}
