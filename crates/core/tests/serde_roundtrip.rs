//! Serde round-trip tests for the serializable data types (C-SERDE):
//! results and schedules survive JSON export/import bit-for-bit.

use faultline_core::coverage::{SupremumScan, TowerSample};
use faultline_core::lower_bound::{AdversaryOutcome, TrajectoryClass};
use faultline_core::turn_cost::DetectionCost;
use faultline_core::{
    Cone, Params, PiecewiseTrajectory, ProportionalSchedule, Regime, SpaceTime, TrajectoryBuilder,
};

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn params_roundtrip() {
    let p = Params::new(11, 5).unwrap();
    assert_eq!(roundtrip(&p), p);
    assert_eq!(roundtrip(&p.regime()), Regime::Proportional);
}

#[test]
fn spacetime_roundtrip() {
    let p = SpaceTime::new(-3.25, 7.5);
    assert_eq!(roundtrip(&p), p);
}

#[test]
fn trajectory_roundtrip_preserves_queries() {
    let t = TrajectoryBuilder::from_origin()
        .sweep_to(1.0)
        .sweep_to(-2.0)
        .sweep_to(4.0)
        .finish()
        .unwrap();
    let back: PiecewiseTrajectory = roundtrip(&t);
    assert_eq!(back, t);
    assert_eq!(back.first_visit(-1.5), t.first_visit(-1.5));
    assert_eq!(back.horizon(), t.horizon());
}

#[test]
fn cone_and_schedule_roundtrip() {
    let cone = Cone::new(2.5).unwrap();
    assert_eq!(roundtrip(&cone), cone);

    let schedule = ProportionalSchedule::with_base(5, 1.4, 2.0).unwrap();
    let back: ProportionalSchedule = roundtrip(&schedule);
    assert_eq!(back, schedule);
    assert_eq!(back.ratio(), schedule.ratio());
    assert_eq!(back.turning_position(3), schedule.turning_position(3));
}

#[test]
fn result_records_roundtrip() {
    let scan = SupremumScan { ratio: 5.233, argmax: 1.0 + 1e-9, uncovered: 0 };
    assert_eq!(roundtrip(&scan), scan);

    let tower = TowerSample { x: -2.0, covered_at: Some(6.5) };
    assert_eq!(roundtrip(&tower), tower);

    let adv = AdversaryOutcome { placement: -2.63, ratio: 5.05, visit_time: Some(13.3) };
    assert_eq!(roundtrip(&adv), adv);

    let cost = DetectionCost { robot: 2, time: 4.25, turns: 3, cost: 7.25 };
    assert_eq!(roundtrip(&cost), cost);

    assert_eq!(roundtrip(&TrajectoryClass::Positive), TrajectoryClass::Positive);
    assert_eq!(roundtrip(&TrajectoryClass::Negative), TrajectoryClass::Negative);
}

#[test]
fn infinite_scan_roundtrips_losslessly() {
    // Incomplete coverage legitimately produces an infinite ratio; the
    // JSON encoding must preserve it (the sentinel `"inf"`) instead of
    // collapsing it to `null` and failing the round-trip.
    let scan = SupremumScan { ratio: f64::INFINITY, argmax: 7.0, uncovered: 3 };
    let json = serde_json::to_string(&scan).expect("serialize");
    assert!(json.contains("\"inf\""), "expected sentinel in: {json}");
    assert!(!json.contains("null"), "lossy null encoding in: {json}");
    assert_eq!(roundtrip(&scan), scan);

    let neg = SupremumScan { ratio: f64::NEG_INFINITY, argmax: -1.0, uncovered: 1 };
    assert_eq!(roundtrip(&neg), neg);
}

#[test]
fn legacy_null_ratio_is_rejected_with_diagnostic() {
    let legacy = "{\"ratio\": null, \"argmax\": 7.0, \"uncovered\": 3}";
    let err = serde_json::from_str::<SupremumScan>(legacy).expect_err("null must not parse");
    assert!(err.to_string().contains("non-finite"), "unhelpful error: {err}");
}

#[test]
fn invalid_json_is_rejected() {
    assert!(serde_json::from_str::<SpaceTime>("{\"x\": 1.0}").is_err());
    assert!(serde_json::from_str::<Params>("{\"n\": 3}").is_err());
}

#[test]
fn deserialization_revalidates_invariants() {
    // n <= f: invalid parameters must not sneak in through JSON.
    assert!(serde_json::from_str::<Params>("{\"n\": 2, \"f\": 5}").is_err());
    // beta <= 1: degenerate cone.
    assert!(serde_json::from_str::<Cone>("{\"beta\": 0.5}").is_err());
    // Superluminal trajectory: speed 5 over one time unit.
    let json = "{\"waypoints\": [{\"x\": 0.0, \"t\": 0.0}, {\"x\": 5.0, \"t\": 1.0}]}";
    assert!(serde_json::from_str::<PiecewiseTrajectory>(json).is_err());
    // Non-monotone time.
    let json = "{\"waypoints\": [{\"x\": 0.0, \"t\": 1.0}, {\"x\": 0.5, \"t\": 0.5}]}";
    assert!(serde_json::from_str::<PiecewiseTrajectory>(json).is_err());
    // Schedule with zero robots or non-positive base.
    let json = "{\"n\": 0, \"cone\": {\"beta\": 2.0}, \"base\": 1.0}";
    assert!(serde_json::from_str::<ProportionalSchedule>(json).is_err());
    let json = "{\"n\": 3, \"cone\": {\"beta\": 2.0}, \"base\": -1.0}";
    assert!(serde_json::from_str::<ProportionalSchedule>(json).is_err());
}
