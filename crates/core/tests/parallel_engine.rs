//! Engine-level tests for the work-stealing parallel map: equivalence
//! with serial `map` under randomly skewed per-item costs, and a
//! load-imbalance regression showing geometric workloads complete
//! without a straggler chunk.

use std::time::{Duration, Instant};

use faultline_core::{par_map_chunked, par_map_with, ParallelConfig};
use proptest::prelude::*;

/// Deterministic busy work whose duration scales with `cost`, so random
/// cost vectors exercise genuinely skewed schedules.
fn skewed_work(cost: u32) -> u64 {
    let mut acc = u64::from(cost) ^ 0x9e37_79b9_7f4a_7c15;
    for i in 0..(u64::from(cost) * 37) {
        acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The work-stealing engine returns exactly what a serial `map`
    /// returns — same values, same order — for any cost skew, thread
    /// count and grain size.
    #[test]
    fn work_stealing_matches_serial_map(
        costs in prop::collection::vec(0u32..64, 1..200),
        threads in 1usize..9,
        grain in 1usize..17,
    ) {
        let serial: Vec<u64> = costs.iter().map(|&c| skewed_work(c)).collect();
        let config = ParallelConfig::with_threads(threads).grain(grain);
        let parallel = par_map_with(&costs, &config, |&c| skewed_work(c));
        prop_assert_eq!(&serial, &parallel);

        let chunked = par_map_chunked(&costs, threads, |&c| skewed_work(c));
        prop_assert_eq!(&serial, &chunked);
    }
}

#[test]
fn geometric_workload_completes_without_straggler_chunk() {
    // Geometric cost growth concentrated at the tail, modeled by sleeps
    // (sleeping threads overlap even on a single-core host, so the
    // scheduling property is observable regardless of hardware): the
    // last four items dominate the total cost, exactly like the largest
    // targets of a supremum sweep (Lemma 2's geometric turning points).
    let sleeps: Vec<u64> = (0..32).map(|i| if i >= 28 { 40 } else { 1 }).collect();
    let run = |f: &dyn Fn() -> Vec<()>| {
        let start = Instant::now();
        let out = f();
        assert_eq!(out.len(), sleeps.len());
        start.elapsed()
    };

    let config = ParallelConfig::with_threads(4).grain(1);
    let stealing = run(&|| {
        par_map_with(&sleeps, &config, |&ms| std::thread::sleep(Duration::from_millis(ms)))
    });
    // The old contiguous chunking puts all four 40 ms items (plus four
    // 1 ms items) into the final chunk: a ≥ 160 ms straggler.
    let chunked =
        run(&|| par_map_chunked(&sleeps, 4, |&ms| std::thread::sleep(Duration::from_millis(ms))));

    assert!(
        chunked >= Duration::from_millis(150),
        "contiguous chunking should straggle on the tail chunk, took {chunked:?}"
    );
    assert!(
        stealing < Duration::from_millis(120),
        "work-stealing left a straggler: {stealing:?} (chunked took {chunked:?})"
    );
    assert!(
        stealing * 2 < chunked,
        "expected ≥ 2x win on the skewed workload: stealing {stealing:?} vs chunked {chunked:?}"
    );
}
