//! Zig-zag motion plans defined by a cone and a seed turning point
//! (Definition 1), including the slow initial leg from the origin used
//! by the proportional schedule algorithm (Definition 4).

use crate::cone::Cone;
use crate::error::{Error, Result};
use crate::plan::{check_horizon, TrajectoryPlan};
use crate::spacetime::SpaceTime;
use crate::trajectory::PiecewiseTrajectory;

/// A zig-zag plan: the robot leaves the origin, travels at constant
/// speed `1 / beta` straight to its *seed* turning point
/// `(x0, beta * |x0|)` on the cone boundary, then zig-zags at unit speed
/// inside the cone forever, reversing on the boundary.
///
/// The initial leg realizes Definition 4 ("robot `a_i` moves from 0 so
/// that it reaches `tau_i'` at time `beta * tau_i'`"); its speed
/// `|x0| / (beta |x0|) = 1/beta < 1` respects the speed limit.
///
/// ```
/// use faultline_core::{Cone, ZigZagPlan, TrajectoryPlan};
/// let cone = Cone::new(3.0)?;
/// let plan = ZigZagPlan::new(cone, 1.0)?;
/// let traj = plan.materialize(50.0)?;
/// // Seed reached at t = beta * x0 = 3, then -2 at t = 6, +4 at t = 12...
/// assert_eq!(traj.first_visit(1.0), Some(3.0));
/// assert_eq!(traj.first_visit(-2.0), Some(6.0));
/// assert_eq!(traj.first_visit(4.0), Some(12.0));
/// # Ok::<(), faultline_core::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZigZagPlan {
    cone: Cone,
    seed_x: f64,
}

impl ZigZagPlan {
    /// Creates a zig-zag plan inside `cone` seeded at boundary position
    /// `seed_x`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] when `seed_x` is zero or non-finite: a
    /// zig-zag movement needs a proper first turning point.
    pub fn new(cone: Cone, seed_x: f64) -> Result<Self> {
        if seed_x == 0.0 || !seed_x.is_finite() {
            return Err(Error::domain(format!(
                "zig-zag seed position must be finite and non-zero, got {seed_x}"
            )));
        }
        Ok(ZigZagPlan { cone, seed_x })
    }

    /// The cone confining this plan.
    #[must_use]
    pub fn cone(&self) -> Cone {
        self.cone
    }

    /// The seed turning point position on the line.
    #[must_use]
    pub fn seed_x(&self) -> f64 {
        self.seed_x
    }

    /// The seed turning point in space–time.
    #[must_use]
    pub fn seed(&self) -> SpaceTime {
        self.cone.boundary_point(self.seed_x)
    }

    /// Turning points of this plan with boundary time at most
    /// `max_time`, starting with the seed.
    #[must_use]
    pub fn turning_points_until(&self, max_time: f64) -> Vec<SpaceTime> {
        self.cone.turning_points_until(self.seed_x, max_time)
    }
}

impl TrajectoryPlan for ZigZagPlan {
    fn materialize(&self, horizon: f64) -> Result<PiecewiseTrajectory> {
        check_horizon(horizon)?;
        let seed = self.seed();
        let mut waypoints = vec![SpaceTime::origin()];

        if horizon <= seed.t {
            // Cut within the initial slow leg (speed 1/beta).
            let x = self.seed_x.signum() * horizon / self.cone.beta();
            waypoints.push(SpaceTime::new(x, horizon));
            return PiecewiseTrajectory::new(waypoints);
        }

        waypoints.push(seed);
        let mut current = seed;
        loop {
            let next = self.cone.next_turning_point(current);
            if next.t >= horizon {
                // Cut the unit-speed sweep from `current` towards `next`.
                let direction = (next.x - current.x).signum();
                let x = current.x + direction * (horizon - current.t);
                if horizon > current.t {
                    waypoints.push(SpaceTime::new(x, horizon));
                } else {
                    // horizon == current.t: the turning point is the end.
                }
                break;
            }
            waypoints.push(next);
            current = next;
        }
        PiecewiseTrajectory::new(waypoints)
    }

    fn label(&self) -> String {
        format!("zigzag(beta = {}, seed = {})", self.cone.beta(), self.seed_x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::approx_eq;

    fn doubling_plan() -> ZigZagPlan {
        ZigZagPlan::new(Cone::new(3.0).unwrap(), 1.0).unwrap()
    }

    #[test]
    fn rejects_zero_seed() {
        assert!(ZigZagPlan::new(Cone::new(2.0).unwrap(), 0.0).is_err());
        assert!(ZigZagPlan::new(Cone::new(2.0).unwrap(), f64::NAN).is_err());
    }

    #[test]
    fn initial_leg_speed_is_one_over_beta() {
        let plan = doubling_plan();
        let traj = plan.materialize(100.0).unwrap();
        let segs: Vec<_> = traj.segments().collect();
        assert!(approx_eq(segs[0].speed(), 1.0 / 3.0, 1e-12));
        for seg in &segs[1..] {
            assert!(approx_eq(seg.speed(), 1.0, 1e-9), "zig-zag legs run at unit speed");
        }
    }

    #[test]
    fn turning_points_follow_lemma1() {
        let plan = doubling_plan();
        let traj = plan.materialize(200.0).unwrap();
        let xs: Vec<f64> = traj.turning_points().iter().map(|p| p.x).collect();
        // x_i = (-2)^i: 1, -2, 4, -8, ...
        for (i, &x) in xs.iter().enumerate() {
            let expect = (-2.0_f64).powi(i as i32);
            assert!(approx_eq(x, expect, 1e-9), "turn {i}: {x} vs {expect}");
        }
        assert!(xs.len() >= 4);
    }

    #[test]
    fn turning_times_on_cone_boundary() {
        let plan = ZigZagPlan::new(Cone::new(5.0 / 3.0).unwrap(), 2.0).unwrap();
        let traj = plan.materialize(500.0).unwrap();
        let cone = plan.cone();
        for p in traj.turning_points() {
            assert!(cone.on_boundary(p, 1e-9), "turning point {p} off the boundary");
        }
    }

    #[test]
    fn horizon_inside_initial_leg() {
        let plan = doubling_plan();
        let traj = plan.materialize(1.5).unwrap();
        assert_eq!(traj.horizon(), 1.5);
        assert_eq!(traj.position_at(1.5), Some(0.5));
        assert_eq!(traj.waypoints().len(), 2);
    }

    #[test]
    fn horizon_exactly_at_turning_point() {
        let plan = doubling_plan();
        // Seed at t = 3, next turning point (-2) at t = 6.
        let traj = plan.materialize(6.0).unwrap();
        assert_eq!(traj.horizon(), 6.0);
        assert!(approx_eq(traj.position_at(6.0).unwrap(), -2.0, 1e-12));
    }

    #[test]
    fn negative_seed_mirrors() {
        let plan = ZigZagPlan::new(Cone::new(3.0).unwrap(), -1.0).unwrap();
        let traj = plan.materialize(50.0).unwrap();
        assert_eq!(traj.first_visit(-1.0), Some(3.0));
        // Turning at -1 at t = 3, the robot sweeps right to +2 at t = 6.
        assert!(approx_eq(traj.first_visit(2.0).unwrap(), 6.0, 1e-12));
    }

    #[test]
    fn materialized_trajectory_stays_in_cone() {
        let plan = ZigZagPlan::new(Cone::new(2.2).unwrap(), 0.7).unwrap();
        let traj = plan.materialize(300.0).unwrap();
        let cone = plan.cone();
        // Sample densely: every occupied point must lie inside the cone.
        for k in 0..3000 {
            let t = 0.1 * k as f64;
            if let Some(x) = traj.position_at(t) {
                assert!(
                    cone.contains(SpaceTime::new(x, t + 1e-9)),
                    "point (x = {x}, t = {t}) escapes the cone"
                );
            }
        }
    }

    #[test]
    fn label_mentions_parameters() {
        let plan = doubling_plan();
        let label = plan.label();
        assert!(label.contains('3') && label.contains('1'));
    }
}
