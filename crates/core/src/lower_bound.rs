//! Lower-bound machinery (Section 4): the root `alpha(n)` of
//! `(alpha-1)^n (alpha-3) = 2^(n+1)`, the adversarial target placements
//! of Theorem 2, positive/negative trajectory classification (Lemmas
//! 6–7), and Corollary 2's asymptotic expression.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::numeric::bisect;
use crate::params::{Params, Regime};
use crate::trajectory::PiecewiseTrajectory;

/// Solves `(alpha - 1)^n (alpha - 3) = 2^(n+1)` for the unique
/// `alpha > 3` (Theorem 2). Every search algorithm with `n < 2f + 2`
/// robots has competitive ratio at least this `alpha`.
///
/// The computation is performed in log space,
/// `n ln(alpha-1) + ln(alpha-3) = (n+1) ln 2`, so it is stable for
/// large `n`.
///
/// # Errors
///
/// Returns [`Error::InvalidParameters`] for `n == 0` and propagates
/// solver failures.
///
/// ```
/// use faultline_core::lower_bound::alpha;
/// // Theorem 2 for n = 3 gives the paper's ≈ 3.76 bound.
/// assert!((alpha(3)? - 3.76).abs() < 5e-3);
/// # Ok::<(), faultline_core::Error>(())
/// ```
pub fn alpha(n: usize) -> Result<f64> {
    if n == 0 {
        return Err(Error::invalid_params(0, 0, "alpha(n) requires n >= 1"));
    }
    let nf = n as f64;
    let h = |a: f64| nf * (a - 1.0).ln() + (a - 3.0).ln() - (nf + 1.0) * 2.0_f64.ln();
    // h is strictly increasing on (3, ∞), h(3+) = -∞ and h(16) > 0 for
    // every n >= 1: at alpha = 16, n ln 15 + ln 13 > (n+1) ln 2.
    bisect(h, 3.0 + 1e-14, 16.0, 1e-14, 300)
}

/// The paper's lower bound on the competitive ratio for a given `(n, f)`:
///
/// * `n >= 2f + 2`: 1 (the two-group strategy is optimal),
/// * `n == f + 1`: 9 (single-robot reduction, Section 1.1),
/// * otherwise (`f + 1 < n < 2f + 2`): `alpha(n)` from Theorem 2.
///
/// # Errors
///
/// Propagates solver failures from [`alpha`].
pub fn lower_bound(params: Params) -> Result<f64> {
    if params.regime() == Regime::TwoGroup {
        return Ok(1.0);
    }
    if params.n() == params.f() + 1 {
        return Ok(9.0);
    }
    alpha(params.n())
}

/// Corollary 2: the asymptotic lower bound
/// `3 + 2 ln n / n - 2 ln ln n / n` (valid for `n >= 3` so that
/// `ln ln n > 0`).
///
/// # Errors
///
/// Returns [`Error::InvalidParameters`] for `n < 3`.
pub fn corollary2_lower(n: usize) -> Result<f64> {
    if n < 3 {
        return Err(Error::invalid_params(n, 0, "corollary 2 applies for n >= 3"));
    }
    let nf = n as f64;
    Ok(3.0 + 2.0 * nf.ln() / nf - 2.0 * nf.ln().ln() / nf)
}

/// The adversarial target magnitudes of Theorem 2,
/// `x_i = 2^(i+1) / ((alpha-1)^i (alpha-3))` for `i = 0, ..., n-1`
/// (Figure 7). They satisfy `x_0 > x_1 > ... > x_(n-1) > 1` and
/// `x_i = (alpha-1)/2 * x_(i+1)`.
///
/// Computed in log space for numerical stability at large `n`.
///
/// # Errors
///
/// Returns [`Error::Domain`] when `alpha <= 3` or the assumption
/// `(alpha-1)^n (alpha-3) <= 2^(n+1)` of Theorem 2 fails (which would
/// break `x_(n-1) > 1`).
pub fn adversary_points(n: usize, alpha: f64) -> Result<Vec<f64>> {
    if !(alpha > 3.0) {
        return Err(Error::domain(format!("adversary points require alpha > 3, got {alpha}")));
    }
    let nf = n as f64;
    let assumption = nf * (alpha - 1.0).ln() + (alpha - 3.0).ln() - (nf + 1.0) * 2.0_f64.ln();
    if assumption > 1e-9 {
        return Err(Error::domain(format!(
            "alpha = {alpha} violates (alpha-1)^n (alpha-3) <= 2^(n+1) for n = {n}"
        )));
    }
    Ok((0..n)
        .map(|i| {
            let ifl = i as f64;
            ((ifl + 1.0) * 2.0_f64.ln() - ifl * (alpha - 1.0).ln() - (alpha - 3.0).ln()).exp()
        })
        .collect())
}

/// Classification of a robot trajectory relative to a distance `x > 1`,
/// following Section 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrajectoryClass {
    /// First visits to `{-x, -1, 1, x}` occur in the order
    /// `1, x, -1, -x`.
    Positive,
    /// First visits occur in the order `-1, -x, 1, x`.
    Negative,
}

/// Classifies a trajectory as positive or negative for `x` (Figure 6),
/// or returns `None` when it visits the four reference points in
/// neither canonical order (or misses some of them).
///
/// # Errors
///
/// Returns [`Error::Domain`] unless `x > 1`.
pub fn classify(traj: &PiecewiseTrajectory, x: f64) -> Result<Option<TrajectoryClass>> {
    if !(x > 1.0) {
        return Err(Error::domain(format!("classification requires x > 1, got {x}")));
    }
    let first = |p: f64| traj.first_visit(p);
    let (v_pos1, v_posx, v_neg1, v_negx) = match (first(1.0), first(x), first(-1.0), first(-x)) {
        (Some(a), Some(b), Some(c), Some(d)) => (a, b, c, d),
        _ => return Ok(None),
    };
    if v_pos1 <= v_posx && v_posx <= v_neg1 && v_neg1 <= v_negx {
        Ok(Some(TrajectoryClass::Positive))
    } else if v_neg1 <= v_negx && v_negx <= v_pos1 && v_pos1 <= v_posx {
        Ok(Some(TrajectoryClass::Negative))
    } else {
        Ok(None)
    }
}

/// Lemma 6 as an executable check: if the trajectory visits both `x` and
/// `-x` strictly before time `3x + 2`, it must follow a positive or a
/// negative trajectory for `x`. Returns `true` when the lemma's
/// conclusion holds (vacuously or otherwise).
///
/// # Errors
///
/// As [`classify`].
pub fn lemma6_holds(traj: &PiecewiseTrajectory, x: f64) -> Result<bool> {
    if !(x > 1.0) {
        return Err(Error::domain(format!("lemma 6 requires x > 1, got {x}")));
    }
    let deadline = 3.0 * x + 2.0;
    let both_early = matches!(
        (traj.first_visit(x), traj.first_visit(-x)),
        (Some(a), Some(b)) if a < deadline && b < deadline
    );
    if !both_early {
        return Ok(true); // premise does not apply
    }
    Ok(classify(traj, x)?.is_some())
}

/// Lemma 7 as an executable check: a robot following a positive or
/// negative trajectory for `x` cannot reach both `y` and `-y` before
/// time `2x + y`. Returns `true` when the conclusion holds (vacuously
/// when the trajectory is unclassified for `x`).
///
/// # Errors
///
/// As [`classify`]; additionally requires `y >= 1`.
pub fn lemma7_holds(traj: &PiecewiseTrajectory, x: f64, y: f64) -> Result<bool> {
    if !(y >= 1.0) {
        return Err(Error::domain(format!("lemma 7 requires y >= 1, got {y}")));
    }
    if classify(traj, x)?.is_none() {
        return Ok(true);
    }
    let deadline = 2.0 * x + y;
    let both_early = matches!(
        (traj.first_visit(y), traj.first_visit(-y)),
        (Some(a), Some(b)) if a < deadline && b < deadline
    );
    Ok(!both_early)
}

/// The best (largest) ratio an adversary can force on a fleet of
/// trajectories by placing the target at one of `±1, ±x_(n-1), ..., ±x_0`
/// and declaring faulty the `f` robots that reach it first.
///
/// This is the constructive counterpart of Theorem 2's proof: the value
/// returned is a certified lower bound on the fleet's competitive ratio.
/// Placements never visited by `f + 1` distinct robots within the fleet
/// horizon count as an infinite ratio.
///
/// # Errors
///
/// Propagates errors from [`adversary_points`].
pub fn adversarial_ratio(
    trajectories: &[PiecewiseTrajectory],
    f: usize,
    n_for_points: usize,
    alpha_for_points: f64,
) -> Result<AdversaryOutcome> {
    let mut placements = vec![1.0, -1.0];
    for x in adversary_points(n_for_points, alpha_for_points)? {
        placements.push(x);
        placements.push(-x);
    }
    let mut best = AdversaryOutcome { placement: 1.0, ratio: 0.0, visit_time: Some(0.0) };
    for &x in &placements {
        let mut visits: Vec<f64> = trajectories.iter().filter_map(|t| t.first_visit(x)).collect();
        visits.sort_by(f64::total_cmp);
        match visits.get(f) {
            Some(&t) => {
                let ratio = t / x.abs();
                if ratio > best.ratio {
                    best = AdversaryOutcome { placement: x, ratio, visit_time: Some(t) };
                }
            }
            None => {
                return Ok(AdversaryOutcome {
                    placement: x,
                    ratio: f64::INFINITY,
                    visit_time: None,
                });
            }
        }
    }
    Ok(best)
}

/// Result of the adversary game of [`adversarial_ratio`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdversaryOutcome {
    /// The chosen target placement.
    pub placement: f64,
    /// The forced ratio `T_(f+1)(placement) / |placement|` (infinite if
    /// the placement is never confirmed).
    pub ratio: f64,
    /// The forced detection time, `None` if never confirmed within the
    /// fleet horizon.
    pub visit_time: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::approx_eq;
    use crate::trajectory::TrajectoryBuilder;

    #[test]
    fn alpha_matches_paper_values() {
        // Lower-bound column of Table 1 (proportional, n > f+1 rows).
        let cases = [(3usize, 3.76), (4, 3.649), (5, 3.57), (11, 3.345)];
        for (n, expect) in cases {
            let a = alpha(n).unwrap();
            assert!((a - expect).abs() < 5e-3, "n = {n}: alpha = {a}, paper {expect}");
        }
        // The paper prints 3.12 for n = 41, but the defining equation's
        // root is 3.1357 (the printed value is rounded conservatively);
        // we check the equation, not the print-out.
        let a41 = alpha(41).unwrap();
        assert!((a41 - 3.1357).abs() < 5e-4, "alpha(41) = {a41}");
    }

    #[test]
    fn alpha_satisfies_defining_equation() {
        for n in [1usize, 2, 3, 7, 20, 100, 1000] {
            let a = alpha(n).unwrap();
            let lhs = n as f64 * (a - 1.0).ln() + (a - 3.0).ln();
            let rhs = (n as f64 + 1.0) * 2.0_f64.ln();
            assert!(approx_eq(lhs, rhs, 1e-9), "n = {n}");
        }
    }

    #[test]
    fn alpha_decreases_towards_three() {
        let mut prev = f64::INFINITY;
        for n in 1..200usize {
            let a = alpha(n).unwrap();
            assert!(a > 3.0);
            assert!(a < prev, "alpha must decrease at n = {n}");
            prev = a;
        }
        assert!(prev < 3.06);
    }

    #[test]
    fn corollary2_asymptotically_bounds_alpha_from_below() {
        for n in [10usize, 50, 100, 1000, 10_000] {
            let a = alpha(n).unwrap();
            let c2 = corollary2_lower(n).unwrap();
            assert!(c2 <= a + 1e-12, "n = {n}: corollary {c2} vs alpha {a}");
        }
        assert!(corollary2_lower(2).is_err());
    }

    #[test]
    fn alpha_agrees_with_corollary2_asymptotically() {
        // Corollary 2 is not just a lower envelope: the gap
        // alpha(n) - (3 + 2 ln n / n - 2 ln ln n / n) shrinks
        // monotonically across decades and is negligible by n = 1e6.
        let mut prev_gap = f64::INFINITY;
        for n in [100usize, 1_000, 10_000, 100_000, 1_000_000] {
            let gap = alpha(n).unwrap() - corollary2_lower(n).unwrap();
            assert!(gap >= 0.0, "corollary must stay below alpha at n = {n}");
            assert!(gap < prev_gap, "gap must shrink with n, stalled at n = {n}");
            prev_gap = gap;
        }
        assert!(prev_gap < 1e-4, "gap at n = 1e6 is {prev_gap}, expected < 1e-4");
    }

    #[test]
    fn single_robot_reduction_pins_the_tight_nine() {
        // n = f + 1: only one robot's report can be trusted, so the
        // classical single-searcher bound 9 applies for every f.
        for f in [0usize, 1, 2, 5, 20, 40] {
            let params = Params::new(f + 1, f).unwrap();
            assert_eq!(lower_bound(params).unwrap(), 9.0, "f = {f}");
        }
    }

    #[test]
    fn degenerate_n_is_an_error_not_a_bound() {
        assert!(alpha(0).is_err());
        assert!(corollary2_lower(0).is_err());
        assert!(adversary_points(0, 4.0).is_ok_and(|xs| xs.is_empty()));
        assert!(Params::new(0, 0).is_err(), "no params exist to ask lower_bound about n = 0");
    }

    #[test]
    fn lower_bound_by_regime() {
        assert_eq!(lower_bound(Params::new(4, 1).unwrap()).unwrap(), 1.0);
        assert_eq!(lower_bound(Params::new(2, 1).unwrap()).unwrap(), 9.0);
        assert_eq!(lower_bound(Params::new(5, 4).unwrap()).unwrap(), 9.0);
        let lb = lower_bound(Params::new(3, 1).unwrap()).unwrap();
        assert!((lb - 3.76).abs() < 5e-3);
    }

    #[test]
    fn lower_bound_never_exceeds_upper_bound() {
        for n in 1..60usize {
            for f in 0..n {
                let params = Params::new(n, f).unwrap();
                let lb = lower_bound(params).unwrap();
                let ub = crate::ratio::cr_upper(params);
                assert!(lb <= ub + 1e-9, "(n = {n}, f = {f}): lower {lb} > upper {ub}");
            }
        }
    }

    #[test]
    fn adversary_points_structure() {
        let n = 5;
        let a = alpha(n).unwrap();
        let xs = adversary_points(n, a).unwrap();
        assert_eq!(xs.len(), n);
        // Strictly decreasing and all above 1 (Eq. 20).
        for w in xs.windows(2) {
            assert!(w[0] > w[1]);
        }
        assert!(*xs.last().unwrap() > 1.0 - 1e-12);
        // Recurrence x_i = (alpha-1)/2 * x_(i+1) (Eq. 16).
        for w in xs.windows(2) {
            assert!(approx_eq(w[0], (a - 1.0) / 2.0 * w[1], 1e-9));
        }
        // x_0 = 2 / (alpha - 3) (proof of Theorem 2).
        assert!(approx_eq(xs[0], 2.0 / (a - 3.0), 1e-9));
    }

    #[test]
    fn adversary_points_validate_alpha() {
        assert!(adversary_points(3, 3.0).is_err());
        assert!(adversary_points(3, 2.5).is_err());
        // Slightly larger alpha than alpha(n) violates the assumption.
        let a = alpha(3).unwrap();
        assert!(adversary_points(3, a + 0.1).is_err());
    }

    fn positive_traj(x: f64) -> PiecewiseTrajectory {
        // 0 -> x (through 1) -> -x (through -1): canonical positive.
        TrajectoryBuilder::from_origin().sweep_to(x).sweep_to(-x).finish().unwrap()
    }

    fn negative_traj(x: f64) -> PiecewiseTrajectory {
        TrajectoryBuilder::from_origin().sweep_to(-x).sweep_to(x).finish().unwrap()
    }

    #[test]
    fn classify_canonical_orders() {
        let x = 2.0;
        assert_eq!(classify(&positive_traj(x), x).unwrap(), Some(TrajectoryClass::Positive));
        assert_eq!(classify(&negative_traj(x), x).unwrap(), Some(TrajectoryClass::Negative));
        assert!(classify(&positive_traj(x), 0.5).is_err());
    }

    #[test]
    fn classify_rejects_mixed_order() {
        // 0 -> -1.5 -> 3 -> -3: visits -1 first but x before -x finishes;
        // order is -1, 1, x, -x: neither canonical.
        let t = TrajectoryBuilder::from_origin()
            .sweep_to(-1.5)
            .sweep_to(3.0)
            .sweep_to(-3.0)
            .finish()
            .unwrap();
        assert_eq!(classify(&t, 3.0).unwrap(), None);
    }

    #[test]
    fn classify_none_when_points_missed() {
        let t = TrajectoryBuilder::from_origin().sweep_to(5.0).finish().unwrap();
        assert_eq!(classify(&t, 2.0).unwrap(), None);
    }

    #[test]
    fn lemma6_on_fast_visitors() {
        // A robot visiting both ±x before 3x + 2 must be classifiable.
        let x = 2.0;
        let t = positive_traj(x);
        // Visits x at t = 2 and -x at t = 6 < 3*2 + 2 = 8: premise holds.
        assert!(lemma6_holds(&t, x).unwrap());
    }

    #[test]
    fn lemma6_vacuous_when_slow() {
        let x = 2.0;
        // Dawdle far left first: misses the deadline, lemma vacuous.
        let t = TrajectoryBuilder::from_origin()
            .sweep_to(-20.0)
            .sweep_to(2.0)
            .sweep_to(-2.0)
            .finish()
            .unwrap();
        assert!(lemma6_holds(&t, x).unwrap());
    }

    #[test]
    fn lemma7_on_canonical_trajectories() {
        let x = 4.0;
        let t = positive_traj(x);
        for y in [1.0, 2.0, 3.0] {
            assert!(
                lemma7_holds(&t, x, y).unwrap(),
                "positive trajectory reached ±{y} before 2x + y"
            );
        }
    }

    #[test]
    fn adversarial_ratio_on_single_doubling_robot() {
        // One reliable robot (f = 0) following doubling: the adversary's
        // placements force a ratio well above the Theorem 2 bound for
        // n = 1 and below the doubling worst case 9.
        let mut b = TrajectoryBuilder::from_origin();
        let mut side = 1.0;
        let mut mag = 1.0;
        for _ in 0..16 {
            b.sweep_to(side * mag);
            side = -side;
            mag *= 2.0;
        }
        let t = b.finish().unwrap();
        let a1 = alpha(1).unwrap();
        let outcome = adversarial_ratio(std::slice::from_ref(&t), 0, 1, a1).unwrap();
        assert!(outcome.ratio >= a1 - 1e-6, "forced {}", outcome.ratio);
        assert!(outcome.ratio <= 9.0 + 1e-9);
    }

    #[test]
    fn adversarial_ratio_detects_uncovered_placement() {
        // A fleet that never goes left cannot confirm negative targets.
        let t = TrajectoryBuilder::from_origin().sweep_to(100.0).finish().unwrap();
        let outcome = adversarial_ratio(&[t], 0, 2, alpha(2).unwrap()).unwrap();
        assert!(outcome.ratio.is_infinite());
        assert!(outcome.visit_time.is_none());
    }
}
