//! Space–time points and segments: the 2D representation `(x, t)` of
//! robot motion used throughout the paper (Section 2, Figure 1).

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// A point `(x, t)` in the space–time half-plane: position `x` on the
/// line at time `t >= 0`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpaceTime {
    /// Position on the infinite line.
    pub x: f64,
    /// Time at which the position is occupied.
    pub t: f64,
}

impl SpaceTime {
    /// Creates a space–time point.
    #[must_use]
    pub fn new(x: f64, t: f64) -> Self {
        SpaceTime { x, t }
    }

    /// The shared starting configuration: the origin at time zero.
    #[must_use]
    pub fn origin() -> Self {
        SpaceTime { x: 0.0, t: 0.0 }
    }

    /// Average speed needed to travel from `self` to `other`
    /// (`|Δx| / Δt`). Returns `None` when `other` is not strictly later.
    #[must_use]
    pub fn speed_to(&self, other: &SpaceTime) -> Option<f64> {
        (other.t > self.t).then(|| (other.x - self.x).abs() / (other.t - self.t))
    }

    /// Returns `true` if both coordinates are finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.t.is_finite()
    }
}

impl std::fmt::Display for SpaceTime {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(fmt, "(x = {}, t = {})", self.x, self.t)
    }
}

/// An oriented space–time segment travelled at constant velocity.
///
/// Robots move at maximum speed 1, so valid motion segments satisfy
/// `|b.x - a.x| <= (b.t - a.t)`; a slope of exactly ±1 is a full-speed
/// sweep, smaller slopes are slow or waiting moves (used by the initial
/// legs of Definition 4, which travel at speed `1/beta`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Start point.
    pub a: SpaceTime,
    /// End point; must be strictly later than `a`.
    pub b: SpaceTime,
}

impl Segment {
    /// Creates a segment and validates time monotonicity and the unit
    /// speed limit (with a small relative tolerance for floating-point
    /// round-off).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidTrajectory`] if `b.t <= a.t` or the speed
    /// exceeds 1.
    pub fn new(a: SpaceTime, b: SpaceTime) -> Result<Self> {
        Segment::with_speed_limit(a, b, 1.0)
    }

    /// Creates a segment for a robot whose maximum speed is `max_speed`
    /// instead of the paper's unit bound — the heterogeneous-speed
    /// scenario generalization. [`Segment::new`] is the `max_speed = 1`
    /// special case.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidTrajectory`] if `b.t <= a.t`, the speed
    /// exceeds `max_speed` (with the same relative tolerance), or
    /// `max_speed` is not finite and positive.
    pub fn with_speed_limit(a: SpaceTime, b: SpaceTime, max_speed: f64) -> Result<Self> {
        if !(max_speed > 0.0) || !max_speed.is_finite() {
            return Err(Error::trajectory(format!(
                "speed limit must be finite and positive, got {max_speed}"
            )));
        }
        if !a.is_finite() || !b.is_finite() {
            return Err(Error::trajectory("segment endpoints must be finite"));
        }
        if b.t <= a.t {
            return Err(Error::trajectory(format!(
                "segment must advance in time: a.t = {}, b.t = {}",
                a.t, b.t
            )));
        }
        let speed = (b.x - a.x).abs() / (b.t - a.t);
        if speed > max_speed * (1.0 + crate::trajectory::SPEED_TOLERANCE) {
            return Err(Error::trajectory(format!(
                "segment speed {speed} exceeds the maximum speed {max_speed}"
            )));
        }
        Ok(Segment { a, b })
    }

    /// Duration `Δt` of the segment.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.b.t - self.a.t
    }

    /// Signed displacement `Δx` of the segment.
    #[must_use]
    pub fn displacement(&self) -> f64 {
        self.b.x - self.a.x
    }

    /// Constant speed along the segment.
    #[must_use]
    pub fn speed(&self) -> f64 {
        self.displacement().abs() / self.duration()
    }

    /// Position at time `t`, or `None` if `t` lies outside `[a.t, b.t]`.
    #[must_use]
    pub fn position_at(&self, t: f64) -> Option<f64> {
        if t < self.a.t || t > self.b.t {
            return None;
        }
        let lambda = (t - self.a.t) / self.duration();
        Some(self.a.x + lambda * self.displacement())
    }

    /// Earliest time within the segment at which position `x` is
    /// occupied, or `None` when the segment does not cross `x`.
    #[must_use]
    pub fn visit_time(&self, x: f64) -> Option<f64> {
        let (xa, xb) = (self.a.x, self.b.x);
        if (x - xa) * (x - xb) > 0.0 {
            return None; // strictly outside the swept interval
        }
        if xa == xb {
            // Stationary (or zero-displacement) segment sitting on x.
            return (x == xa).then_some(self.a.t);
        }
        let lambda = (x - xa) / (xb - xa);
        Some(self.a.t + lambda * self.duration())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, at: f64, bx: f64, bt: f64) -> Segment {
        Segment::new(SpaceTime::new(ax, at), SpaceTime::new(bx, bt)).unwrap()
    }

    #[test]
    fn origin_is_zero() {
        let o = SpaceTime::origin();
        assert_eq!((o.x, o.t), (0.0, 0.0));
    }

    #[test]
    fn speed_to_requires_later_time() {
        let a = SpaceTime::new(0.0, 0.0);
        let b = SpaceTime::new(2.0, 4.0);
        assert_eq!(a.speed_to(&b), Some(0.5));
        assert_eq!(b.speed_to(&a), None);
    }

    #[test]
    fn rejects_superluminal_segment() {
        let a = SpaceTime::new(0.0, 0.0);
        let b = SpaceTime::new(2.0, 1.0);
        assert!(Segment::new(a, b).is_err());
    }

    #[test]
    fn rejects_time_reversal_and_zero_duration() {
        let a = SpaceTime::new(0.0, 1.0);
        assert!(Segment::new(a, SpaceTime::new(0.0, 1.0)).is_err());
        assert!(Segment::new(a, SpaceTime::new(0.0, 0.5)).is_err());
    }

    #[test]
    fn rejects_non_finite() {
        let a = SpaceTime::new(f64::NAN, 0.0);
        assert!(Segment::new(a, SpaceTime::new(0.0, 1.0)).is_err());
    }

    #[test]
    fn position_interpolates_linearly() {
        let s = seg(0.0, 0.0, -4.0, 4.0);
        assert_eq!(s.position_at(2.0), Some(-2.0));
        assert_eq!(s.position_at(0.0), Some(0.0));
        assert_eq!(s.position_at(4.0), Some(-4.0));
        assert_eq!(s.position_at(4.1), None);
    }

    #[test]
    fn visit_time_finds_crossing() {
        let s = seg(1.0, 3.0, -1.0, 5.0);
        assert_eq!(s.visit_time(0.0), Some(4.0));
        assert_eq!(s.visit_time(1.0), Some(3.0));
        assert_eq!(s.visit_time(-1.0), Some(5.0));
        assert_eq!(s.visit_time(1.5), None);
    }

    #[test]
    fn stationary_segment_visits_only_its_position() {
        let s = seg(2.0, 0.0, 2.0, 5.0);
        assert_eq!(s.visit_time(2.0), Some(0.0));
        assert_eq!(s.visit_time(2.1), None);
        assert_eq!(s.speed(), 0.0);
    }

    #[test]
    fn slow_segments_are_allowed() {
        // Initial legs of Definition 4 move at speed 1/beta < 1.
        let s = seg(0.0, 0.0, 1.0, 3.0);
        assert!((s.speed() - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn speed_limit_admits_fast_robots_and_still_validates() {
        let a = SpaceTime::new(0.0, 0.0);
        let b = SpaceTime::new(2.0, 1.0);
        // Speed 2 is superluminal for the paper but fine for a
        // heterogeneous-speed scenario robot with max_speed 2.
        assert!(Segment::new(a, b).is_err());
        let s = Segment::with_speed_limit(a, b, 2.0).unwrap();
        assert_eq!(s.speed(), 2.0);
        assert!(Segment::with_speed_limit(a, SpaceTime::new(2.5, 1.0), 2.0).is_err());
        // The limit itself is validated.
        assert!(Segment::with_speed_limit(a, b, 0.0).is_err());
        assert!(Segment::with_speed_limit(a, b, f64::NAN).is_err());
        // Time monotonicity still holds under any limit.
        assert!(Segment::with_speed_limit(b, a, 5.0).is_err());
    }
}
