//! Parallel map built on crossbeam scoped threads.
//!
//! Lives in `faultline-core` so every downstream crate (the simulator's
//! fault-space explorer, the analysis sweeps) can share one
//! implementation without `faultline-sim` depending on
//! `faultline-analysis`.

use crossbeam::thread;

/// Maps `f` over `items` in parallel, preserving order.
///
/// Work is split into one contiguous chunk per available core; the
/// closure must be `Sync` because it is shared across threads. Panics
/// in worker threads are propagated.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let chunk = items.len().div_ceil(workers);
    thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|slice| scope.spawn(|_| slice.iter().map(&f).collect::<Vec<R>>()))
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("worker thread panicked")).collect()
    })
    .expect("crossbeam scope failed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled = par_map(&items, |&x| x * 2);
        assert_eq!(doubled.len(), 1000);
        for (i, v) in doubled.iter().enumerate() {
            assert_eq!(*v, 2 * i as u64);
        }
    }

    #[test]
    fn handles_empty_input() {
        let out: Vec<u8> = par_map(&Vec::<u8>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn handles_fewer_items_than_cores() {
        let out = par_map(&[1, 2], |&x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn fallible_mapping_collects_results() {
        let items = [1.0f64, 2.0, 3.0];
        let out: Vec<Result<f64, String>> =
            par_map(&items, |&x| if x > 2.5 { Err(format!("{x} too big")) } else { Ok(x) });
        assert!(out[0].is_ok() && out[1].is_ok() && out[2].is_err());
    }
}
