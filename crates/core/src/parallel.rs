//! Work-stealing parallel map built on crossbeam scoped threads.
//!
//! Lives in `faultline-core` so every downstream crate (the simulator's
//! fault-space explorer, the analysis sweeps) can share one
//! implementation without `faultline-sim` depending on
//! `faultline-analysis`.
//!
//! ## Why work-stealing instead of contiguous chunks
//!
//! Simulation cost grows geometrically in the target position `x`: the
//! turning points of `A(n, f)` form a geometric sequence (Lemma 2), so
//! the items at the tail of a sorted target grid are far more expensive
//! than the head. Splitting such a sweep into one contiguous chunk per
//! core puts the entire expensive tail in the last chunk and the sweep
//! degrades toward serial. Here workers instead claim small chunks of
//! `grain` items from a shared atomic index until the work runs out, so
//! a straggler item only delays its own chunk.
//!
//! Results are returned in input order regardless of which worker
//! computed them, and a panic in any worker is re-raised on the caller
//! with its original payload via [`std::panic::resume_unwind`].

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use crossbeam::thread;

/// Environment variable overriding the worker-thread count
/// (`FAULTLINE_THREADS=1` forces serial execution — useful for
/// reproducible CI timings and debugging).
pub const THREADS_ENV: &str = "FAULTLINE_THREADS";

/// Tuning knobs for [`par_map_with`].
///
/// The default configuration resolves the thread count from the
/// `FAULTLINE_THREADS` environment variable when set, falling back to
/// [`std::thread::available_parallelism`], and picks a grain size that
/// yields roughly eight chunks per worker so stolen chunks stay small
/// enough to rebalance geometric cost skew.
#[derive(Debug, Clone, Default)]
pub struct ParallelConfig {
    /// Worker-thread count; `None` defers to `FAULTLINE_THREADS`, then
    /// to the number of available cores.
    pub threads: Option<usize>,
    /// Items claimed per steal; `None` derives a grain from the input
    /// length and thread count.
    pub grain: Option<usize>,
}

impl ParallelConfig {
    /// Configuration with an explicit worker-thread count.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig { threads: Some(threads), grain: None }
    }

    /// Sets the number of items claimed per steal.
    #[must_use]
    pub fn grain(mut self, grain: usize) -> Self {
        self.grain = Some(grain);
        self
    }

    /// The effective worker-thread count: explicit setting, then the
    /// `FAULTLINE_THREADS` environment variable, then the number of
    /// available cores. Never zero.
    #[must_use]
    pub fn resolved_threads(&self) -> usize {
        if let Some(t) = self.threads {
            return t.max(1);
        }
        if let Ok(raw) = std::env::var(THREADS_ENV) {
            if let Ok(t) = raw.trim().parse::<usize>() {
                if t >= 1 {
                    return t;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
    }

    /// The effective grain for `len` items on `threads` workers: the
    /// explicit setting, or `len / (8 * threads)` clamped to at least
    /// one item.
    #[must_use]
    pub fn resolved_grain(&self, len: usize, threads: usize) -> usize {
        match self.grain {
            Some(g) => g.max(1),
            None => (len / (8 * threads.max(1))).max(1),
        }
    }
}

/// Maps `f` over `items` in parallel with the default configuration,
/// preserving order.
///
/// Uses the work-stealing scheduler of [`par_map_with`]; the closure
/// must be `Sync` because it is shared across threads. A panic in a
/// worker is re-raised here with its original payload.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(items, &ParallelConfig::default(), f)
}

/// Maps `f` over `items` on a work-stealing scheduler, preserving
/// order.
///
/// Workers repeatedly claim the next `grain` items from a shared
/// atomic index until the input is exhausted, so expensive items near
/// the end of the input cannot strand the sweep in a single straggler
/// chunk. Results are written into per-chunk slots and flattened in
/// chunk order, so the output matches `items.iter().map(f)` exactly.
///
/// # Panics
///
/// If `f` panics on any item, the first captured payload is re-raised
/// on the caller via [`std::panic::resume_unwind`], preserving the
/// original panic message; remaining workers stop claiming new chunks.
pub fn par_map_with<T, R, F>(items: &[T], config: &ParallelConfig, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let len = items.len();
    if len == 0 {
        return Vec::new();
    }
    let threads = config.resolved_threads().min(len);
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let grain = config.resolved_grain(len, threads);
    let num_chunks = len.div_ceil(grain);

    let next_chunk = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    // One slot per chunk, each written exactly once by whichever worker
    // claims it, so the locks are uncontended.
    let slots: Vec<Mutex<Vec<R>>> = (0..num_chunks).map(|_| Mutex::new(Vec::new())).collect();

    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let chunk = next_chunk.fetch_add(1, Ordering::Relaxed);
                if chunk >= num_chunks {
                    break;
                }
                let start = chunk * grain;
                let end = (start + grain).min(len);
                match catch_unwind(AssertUnwindSafe(|| {
                    items[start..end].iter().map(&f).collect::<Vec<R>>()
                })) {
                    Ok(values) => {
                        *slots[chunk].lock().expect("result slot poisoned") = values;
                    }
                    Err(payload) => {
                        abort.store(true, Ordering::Relaxed);
                        let mut first = panic_payload.lock().expect("panic slot poisoned");
                        if first.is_none() {
                            *first = Some(payload);
                        }
                        break;
                    }
                }
            });
        }
    })
    .expect("worker panics are caught inside the scope");

    if let Some(payload) = panic_payload.into_inner().expect("panic slot poisoned") {
        resume_unwind(payload);
    }

    let mut out = Vec::with_capacity(len);
    for slot in slots {
        out.append(&mut slot.into_inner().expect("result slot poisoned"));
    }
    out
}

/// The pre-work-stealing scheduler: one contiguous chunk per worker.
///
/// Kept as the comparison baseline for the perf-baseline benchmarks
/// (`repro bench`); on cost-skewed inputs the last chunk dominates and
/// this degrades toward serial, which is exactly what the
/// work-stealing engine fixes. New code should call [`par_map`].
///
/// # Panics
///
/// Re-raises the first worker panic with its original payload, like
/// [`par_map_with`].
pub fn par_map_chunked<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let len = items.len();
    if len == 0 {
        return Vec::new();
    }
    let workers = threads.clamp(1, len);
    if workers == 1 {
        return items.iter().map(f).collect();
    }
    let chunk = len.div_ceil(workers);
    let joined = thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(|_| {
                    catch_unwind(AssertUnwindSafe(|| slice.iter().map(&f).collect::<Vec<R>>()))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panics are caught inside the closure"))
            .collect::<Vec<_>>()
    })
    .expect("worker panics are caught inside the closure");

    let mut out = Vec::with_capacity(len);
    for result in joined {
        match result {
            Ok(mut values) => out.append(&mut values),
            Err(payload) => resume_unwind(payload),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled = par_map(&items, |&x| x * 2);
        assert_eq!(doubled.len(), 1000);
        for (i, v) in doubled.iter().enumerate() {
            assert_eq!(*v, 2 * i as u64);
        }
    }

    #[test]
    fn handles_empty_input() {
        let out: Vec<u8> = par_map(&Vec::<u8>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn handles_fewer_items_than_cores() {
        let out = par_map(&[1, 2], |&x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn fallible_mapping_collects_results() {
        let items = [1.0f64, 2.0, 3.0];
        let out: Vec<Result<f64, String>> =
            par_map(&items, |&x| if x > 2.5 { Err(format!("{x} too big")) } else { Ok(x) });
        assert!(out[0].is_ok() && out[1].is_ok() && out[2].is_err());
    }

    #[test]
    fn explicit_grain_and_threads_preserve_order() {
        let items: Vec<u64> = (0..997).collect();
        let config = ParallelConfig::with_threads(7).grain(13);
        let out = par_map_with(&items, &config, |&x| x + 1);
        let expected: Vec<u64> = items.iter().map(|&x| x + 1).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn single_thread_config_runs_serially() {
        let items: Vec<u32> = (0..64).collect();
        let out = par_map_with(&items, &ParallelConfig::with_threads(1), |&x| x * x);
        let expected: Vec<u32> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn chunked_baseline_matches_serial() {
        let items: Vec<u64> = (0..513).collect();
        for threads in [1, 2, 4, 9] {
            let out = par_map_chunked(&items, threads, |&x| x * 3);
            let expected: Vec<u64> = items.iter().map(|&x| x * 3).collect();
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn panic_payload_survives_with_original_message() {
        let items: Vec<u64> = (0..256).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            par_map_with(&items, &ParallelConfig::with_threads(4).grain(8), |&x| {
                assert!(x != 97, "item {x} hit the poison value");
                x
            })
        }))
        .expect_err("the mapping panics on item 97");
        let message = caught
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| caught.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .expect("panic payload is a string");
        assert!(
            message.contains("item 97 hit the poison value"),
            "original panic message lost: {message}"
        );
    }

    #[test]
    fn chunked_baseline_preserves_panic_payload() {
        let items: Vec<u64> = (0..64).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            par_map_chunked(&items, 4, |&x| {
                assert!(x != 42, "chunked poison at {x}");
                x
            })
        }))
        .expect_err("the mapping panics on item 42");
        let message = caught
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| caught.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .expect("panic payload is a string");
        assert!(message.contains("chunked poison at 42"), "payload lost: {message}");
    }

    #[test]
    fn threads_env_override_is_honoured() {
        // `resolved_threads` consults the environment only when no
        // explicit count is set.
        let explicit = ParallelConfig::with_threads(3);
        assert_eq!(explicit.resolved_threads(), 3);
        let default = ParallelConfig::default();
        assert!(default.resolved_threads() >= 1);
    }
}
