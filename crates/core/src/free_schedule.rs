//! Free-form turning-point schedules: the search space of the
//! `faultline-opt` optimizer.
//!
//! A [`FreeSchedule`] describes one robot per [`FreeRobot`]: an
//! arbitrary (finite) strictly-increasing sequence of turning-point
//! magnitudes with alternating sides, plus the arrival time of the
//! first turning point. Beyond the last explicit turn the robot keeps
//! zig-zagging geometrically with the ratio of its last two explicit
//! magnitudes — exactly the Lemma 1 recurrence `x_(i+1) = -kappa x_i`
//! that [`crate::ZigZagPlan`] realizes — so every free schedule lowers
//! onto the same materialization machinery and can be measured by the
//! `analysis::supremum` scan at any horizon.
//!
//! The proportional algorithm `A(n, f)` is a point of this space:
//! [`FreeSchedule::from_proportional`] lowers a
//! [`crate::ProportionalSchedule`] into explicit turning points whose
//! materialized trajectories coincide with the original
//! [`crate::ZigZagPlan`] fleet.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::plan::{check_horizon, TrajectoryPlan};
use crate::schedule::ProportionalSchedule;
use crate::spacetime::SpaceTime;
use crate::trajectory::PiecewiseTrajectory;

/// Largest admissible tail expansion ratio. An enormous ratio makes the
/// geometric tail numerically meaningless (the next magnitude overflows
/// within a few turns), so validation bounds it.
pub const MAX_TAIL_RATIO: f64 = 1e6;

/// One robot of a free schedule: explicit alternating turning points
/// followed by a geometric zig-zag tail.
///
/// Turn `k` happens at position `side * (-1)^k * turns[k]`; the robot
/// reaches its first turn at `first_turn_time` (gliding from the
/// origin at speed `turns[0] / first_turn_time <= 1`, the analogue of
/// Definition 4's slow initial leg) and every later leg runs at unit
/// speed, taking `turns[k-1] + turns[k]` time units. Past the last
/// explicit turn, magnitudes continue geometrically with
/// `tail_ratio() = turns[last] / turns[last - 1]`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FreeRobot {
    /// Sign of the first excursion: `+1.0` (right) or `-1.0` (left).
    pub side: f64,
    /// Strictly increasing turning-point magnitudes (at least two).
    pub turns: Vec<f64>,
    /// Arrival time at the first turning point; at least `turns[0]`.
    pub first_turn_time: f64,
}

// Deserialization re-validates: a checkpoint file is untrusted input.
impl<'de> Deserialize<'de> for FreeRobot {
    fn deserialize<D>(deserializer: D) -> std::result::Result<Self, D::Error>
    where
        D: serde::Deserializer<'de>,
    {
        #[derive(Deserialize)]
        struct Raw {
            side: f64,
            turns: Vec<f64>,
            first_turn_time: f64,
        }
        let raw = Raw::deserialize(deserializer)?;
        FreeRobot::new(raw.side, raw.turns, raw.first_turn_time).map_err(serde::de::Error::custom)
    }
}

impl FreeRobot {
    /// Creates and validates a free robot.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] when `side` is not `±1`, fewer than
    /// two turns are given, any magnitude is non-finite or
    /// non-positive, magnitudes are not strictly increasing, the tail
    /// ratio exceeds [`MAX_TAIL_RATIO`], or `first_turn_time` violates
    /// the unit speed limit (`first_turn_time < turns[0]`).
    pub fn new(side: f64, turns: Vec<f64>, first_turn_time: f64) -> Result<Self> {
        if side != 1.0 && side != -1.0 {
            return Err(Error::domain(format!("robot side must be +1 or -1, got {side}")));
        }
        if turns.len() < 2 {
            return Err(Error::domain(format!(
                "a free robot needs at least two turning points (for its geometric tail), got {}",
                turns.len()
            )));
        }
        for &m in &turns {
            if !(m > 0.0) || !m.is_finite() {
                return Err(Error::domain(format!(
                    "turning magnitudes must be finite and positive, got {m}"
                )));
            }
        }
        for w in turns.windows(2) {
            if !(w[1] > w[0]) {
                return Err(Error::domain(format!(
                    "turning magnitudes must be strictly increasing, got {} then {}",
                    w[0], w[1]
                )));
            }
        }
        let tail = turns[turns.len() - 1] / turns[turns.len() - 2];
        if !(tail <= MAX_TAIL_RATIO) {
            return Err(Error::domain(format!(
                "tail expansion ratio {tail} exceeds the bound {MAX_TAIL_RATIO}"
            )));
        }
        if !first_turn_time.is_finite() || !(first_turn_time >= turns[0]) {
            return Err(Error::domain(format!(
                "first turn at magnitude {} cannot be reached at time {first_turn_time} \
                 without exceeding unit speed",
                turns[0]
            )));
        }
        Ok(FreeRobot { side, turns, first_turn_time })
    }

    /// The geometric expansion ratio of the tail beyond the explicit
    /// turns: `turns[last] / turns[last - 1] > 1`.
    #[must_use]
    pub fn tail_ratio(&self) -> f64 {
        self.turns[self.turns.len() - 1] / self.turns[self.turns.len() - 2]
    }

    /// The signed position of turn `k` (explicit or tail).
    #[must_use]
    pub fn turn_position(&self, k: usize) -> f64 {
        let sign = if k.is_multiple_of(2) { self.side } else { -self.side };
        sign * self.turn_magnitude(k)
    }

    /// The magnitude of turn `k`, continuing the geometric tail past
    /// the explicit turns.
    #[must_use]
    pub fn turn_magnitude(&self, k: usize) -> f64 {
        if k < self.turns.len() {
            return self.turns[k];
        }
        let last = self.turns[self.turns.len() - 1];
        last * self.tail_ratio().powi((k + 1 - self.turns.len()) as i32)
    }

    /// The arrival time of turn `k`: `first_turn_time` plus the
    /// unit-speed leg times `m_(j-1) + m_j` for `j <= k`.
    #[must_use]
    pub fn turn_time(&self, k: usize) -> f64 {
        let mut t = self.first_turn_time;
        let mut prev = self.turn_magnitude(0);
        for j in 1..=k {
            let m = self.turn_magnitude(j);
            t += prev + m;
            prev = m;
        }
        t
    }

    /// Turning points `(position, time)` with time at most `max_time`,
    /// explicit turns first, then the geometric tail.
    #[must_use]
    pub fn turning_points_until(&self, max_time: f64) -> Vec<SpaceTime> {
        let mut points = Vec::new();
        let mut t = self.first_turn_time;
        let mut prev = self.turn_magnitude(0);
        let mut k = 0usize;
        while t <= max_time {
            points.push(SpaceTime::new(self.turn_position(k), t));
            k += 1;
            let m = self.turn_magnitude(k);
            t += prev + m;
            prev = m;
        }
        points
    }
}

/// A plan materializing one [`FreeRobot`] — the free-schedule analogue
/// of [`crate::ZigZagPlan`], sharing the Lemma 1 tail recurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct FreePlan {
    robot: FreeRobot,
}

impl FreePlan {
    /// Wraps an already-validated robot.
    #[must_use]
    pub fn new(robot: FreeRobot) -> Self {
        FreePlan { robot }
    }

    /// The underlying robot description.
    #[must_use]
    pub fn robot(&self) -> &FreeRobot {
        &self.robot
    }
}

impl TrajectoryPlan for FreePlan {
    fn materialize(&self, horizon: f64) -> Result<PiecewiseTrajectory> {
        check_horizon(horizon)?;
        let r = &self.robot;
        let mut waypoints = vec![SpaceTime::origin()];

        if horizon <= r.first_turn_time {
            // Cut within the initial glide (speed turns[0] / first_turn_time).
            let x = r.side * r.turns[0] * horizon / r.first_turn_time;
            waypoints.push(SpaceTime::new(x, horizon));
            return PiecewiseTrajectory::new(waypoints);
        }

        let mut current = SpaceTime::new(r.turn_position(0), r.first_turn_time);
        waypoints.push(current);
        let mut k = 1usize;
        // Accumulate turn times incrementally: `turn_time(k)` is O(k),
        // so calling it per turn would make materialization quadratic
        // in the number of turns.
        let mut t = r.first_turn_time;
        let mut prev_magnitude = r.turn_magnitude(0);
        loop {
            let magnitude = r.turn_magnitude(k);
            t += prev_magnitude + magnitude;
            prev_magnitude = magnitude;
            let next = SpaceTime::new(r.turn_position(k), t);
            if next.t >= horizon {
                // Cut the unit-speed sweep from `current` towards `next`.
                if horizon > current.t {
                    let direction = (next.x - current.x).signum();
                    let x = current.x + direction * (horizon - current.t);
                    waypoints.push(SpaceTime::new(x, horizon));
                }
                break;
            }
            waypoints.push(next);
            current = next;
            k += 1;
        }
        PiecewiseTrajectory::new(waypoints)
    }

    fn label(&self) -> String {
        let r = &self.robot;
        format!(
            "free(side = {:+}, turns = {}, tail = {:.4})",
            r.side,
            r.turns.len(),
            r.tail_ratio()
        )
    }
}

/// A complete free-form schedule: one [`FreeRobot`] per robot.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FreeSchedule {
    robots: Vec<FreeRobot>,
}

// Robots re-validate themselves; the schedule only needs non-emptiness.
impl<'de> Deserialize<'de> for FreeSchedule {
    fn deserialize<D>(deserializer: D) -> std::result::Result<Self, D::Error>
    where
        D: serde::Deserializer<'de>,
    {
        #[derive(Deserialize)]
        struct Raw {
            robots: Vec<FreeRobot>,
        }
        let raw = Raw::deserialize(deserializer)?;
        FreeSchedule::new(raw.robots).map_err(serde::de::Error::custom)
    }
}

impl FreeSchedule {
    /// Creates a schedule from validated robots.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameters`] for an empty robot list.
    pub fn new(robots: Vec<FreeRobot>) -> Result<Self> {
        if robots.is_empty() {
            return Err(Error::invalid_params(0, 0, "a free schedule needs at least one robot"));
        }
        Ok(FreeSchedule { robots })
    }

    /// Number of robots.
    #[must_use]
    pub fn n(&self) -> usize {
        self.robots.len()
    }

    /// The per-robot descriptions.
    #[must_use]
    pub fn robots(&self) -> &[FreeRobot] {
        &self.robots
    }

    /// Mutable access for optimizers; callers must re-establish the
    /// [`FreeRobot`] invariants (use [`FreeSchedule::validate`]).
    pub fn robots_mut(&mut self) -> &mut Vec<FreeRobot> {
        &mut self.robots
    }

    /// Re-checks every robot's invariants after in-place mutation.
    ///
    /// # Errors
    ///
    /// As [`FreeRobot::new`].
    pub fn validate(&self) -> Result<()> {
        for r in &self.robots {
            FreeRobot::new(r.side, r.turns.clone(), r.first_turn_time)?;
        }
        Ok(())
    }

    /// One materializable plan per robot.
    #[must_use]
    pub fn plans(&self) -> Vec<Box<dyn TrajectoryPlan>> {
        self.robots
            .iter()
            .map(|r| Box::new(FreePlan::new(r.clone())) as Box<dyn TrajectoryPlan>)
            .collect()
    }

    /// A horizon heuristic guaranteed to reach magnitude `xmax` on both
    /// sides for every robot: the time of the first turn of magnitude
    /// at least `xmax` plus one extra full sweep, maximized over
    /// robots. Callers measuring coverage should still verify the scan
    /// reports nothing uncovered and re-materialize deeper if needed.
    #[must_use]
    pub fn horizon_hint(&self, xmax: f64) -> f64 {
        let mut worst = 4.0 * xmax;
        for r in &self.robots {
            let mut k = 0usize;
            // Find the first turn whose magnitude clears xmax; the next
            // two legs bracket the last visit of |x| <= xmax.
            while r.turn_magnitude(k) < xmax && k < 4096 {
                k += 1;
            }
            let reach = r.turn_time(k + 1) + r.turn_magnitude(k + 1);
            worst = worst.max(reach);
        }
        worst
    }

    /// Lowers the proportional schedule `S_beta(n)` (the schedule of
    /// `A(n, f)`) into a free schedule with `explicit_turns` explicit
    /// turning points per robot, computed with the same [`crate::Cone`]
    /// recurrence as [`crate::ZigZagPlan`] so the materialized
    /// trajectories coincide.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] when `explicit_turns < 2`.
    pub fn from_proportional(
        schedule: &ProportionalSchedule,
        explicit_turns: usize,
    ) -> Result<Self> {
        if explicit_turns < 2 {
            return Err(Error::domain(format!(
                "lowering needs at least two explicit turns, got {explicit_turns}"
            )));
        }
        let cone = schedule.cone();
        let robots = (0..schedule.n())
            .map(|i| {
                let seed = schedule.seed_for_robot(i);
                let mut turns = Vec::with_capacity(explicit_turns);
                let mut p = seed;
                turns.push(p.x.abs());
                for _ in 1..explicit_turns {
                    p = cone.next_turning_point(p);
                    turns.push(p.x.abs());
                }
                FreeRobot::new(seed.x.signum(), turns, seed.t)
            })
            .collect::<Result<Vec<_>>>()?;
        FreeSchedule::new(robots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::approx_eq;
    use crate::params::Params;
    use crate::ratio;

    fn doubling_robot() -> FreeRobot {
        // Classic doubling: turns at +1, -2, +4, ... reached like a
        // beta = 3 zig-zag (first turn at t = 3).
        FreeRobot::new(1.0, vec![1.0, 2.0, 4.0], 3.0).unwrap()
    }

    #[test]
    fn validation_rejects_malformed_robots() {
        assert!(FreeRobot::new(0.5, vec![1.0, 2.0], 1.0).is_err(), "side must be ±1");
        assert!(FreeRobot::new(1.0, vec![1.0], 1.0).is_err(), "needs two turns");
        assert!(FreeRobot::new(1.0, vec![1.0, 0.5], 1.0).is_err(), "must increase");
        assert!(FreeRobot::new(1.0, vec![1.0, 1.0], 1.0).is_err(), "strictly");
        assert!(FreeRobot::new(1.0, vec![-1.0, 2.0], 1.0).is_err(), "positive");
        assert!(FreeRobot::new(1.0, vec![f64::NAN, 2.0], 1.0).is_err(), "finite");
        assert!(FreeRobot::new(1.0, vec![1.0, 2.0], 0.5).is_err(), "speed limit");
        assert!(FreeRobot::new(1.0, vec![1.0, 2.0], f64::NAN).is_err());
        assert!(FreeRobot::new(1.0, vec![1e-9, 2e3], 1.0).is_err(), "tail ratio bound");
        assert!(FreeSchedule::new(vec![]).is_err(), "empty schedule");
    }

    #[test]
    fn turn_times_follow_unit_speed_legs() {
        let r = doubling_robot();
        // t_0 = 3, t_1 = 3 + (1 + 2) = 6, t_2 = 6 + (2 + 4) = 12.
        assert_eq!(r.turn_time(0), 3.0);
        assert_eq!(r.turn_time(1), 6.0);
        assert_eq!(r.turn_time(2), 12.0);
        // Tail: m_3 = 8 at t = 12 + (4 + 8) = 24.
        assert_eq!(r.turn_magnitude(3), 8.0);
        assert_eq!(r.turn_time(3), 24.0);
        assert_eq!(r.turn_position(3), -8.0);
    }

    #[test]
    fn free_plan_materializes_like_the_doubling_zigzag() {
        use crate::cone::Cone;
        use crate::zigzag::ZigZagPlan;
        let zig = ZigZagPlan::new(Cone::new(3.0).unwrap(), 1.0).unwrap();
        let free = FreePlan::new(doubling_robot());
        for horizon in [1.5, 3.0, 7.0, 50.0, 200.0] {
            let a = zig.materialize(horizon).unwrap();
            let b = free.materialize(horizon).unwrap();
            for k in 0..=40 {
                let t = horizon * k as f64 / 40.0;
                let (pa, pb) = (a.position_at(t), b.position_at(t));
                match (pa, pb) {
                    (Some(x), Some(y)) => {
                        assert!(approx_eq(x, y, 1e-9), "t = {t}: zig {x} vs free {y}")
                    }
                    _ => assert_eq!(pa, pb, "definedness differs at t = {t}"),
                }
            }
        }
    }

    #[test]
    fn lowered_proportional_schedule_matches_zigzag_fleet() {
        // The A(n, f) lowering must reproduce the ZigZagPlan fleet's
        // trajectories exactly (within float noise), including the slow
        // initial legs — this is what makes the optimizer's seed
        // measure at the Theorem 1 ratio.
        for (n, f) in [(3usize, 1usize), (5, 3), (4, 2)] {
            let params = Params::new(n, f).unwrap();
            let beta = ratio::optimal_beta(params).unwrap();
            let schedule = ProportionalSchedule::new(n, beta).unwrap();
            let free = FreeSchedule::from_proportional(&schedule, 8).unwrap();
            let horizon = schedule.required_horizon(f + 1, 20.0);
            let zig_plans = schedule.plans();
            let free_plans = free.plans();
            assert_eq!(free_plans.len(), zig_plans.len());
            for (zp, fp) in zig_plans.iter().zip(&free_plans) {
                let a = zp.materialize(horizon).unwrap();
                let b = fp.materialize(horizon).unwrap();
                for k in 0..=200 {
                    let t = horizon * k as f64 / 200.0;
                    let x = a.position_at(t).unwrap();
                    let y = b.position_at(t).unwrap();
                    assert!(
                        approx_eq(x, y, 1e-6 * (1.0 + x.abs())),
                        "(n = {n}, f = {f}) t = {t}: zigzag {x} vs free {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn tail_extends_geometrically_beyond_explicit_turns() {
        let r = FreeRobot::new(-1.0, vec![1.0, 3.0], 2.0).unwrap();
        assert!(approx_eq(r.tail_ratio(), 3.0, 1e-12));
        assert!(approx_eq(r.turn_magnitude(4), 81.0, 1e-9));
        let plan = FreePlan::new(r);
        let traj = plan.materialize(500.0).unwrap();
        // -1, +3, -9, +27, -81 must all be visited.
        for (k, x) in [(0usize, -1.0), (1, 3.0), (2, -9.0), (3, 27.0), (4, -81.0)] {
            assert!(
                traj.first_visit(x).is_some(),
                "turn {k} at {x} not visited within the horizon"
            );
        }
    }

    #[test]
    fn horizon_hint_covers_the_window() {
        let schedule = FreeSchedule::new(vec![
            FreeRobot::new(1.0, vec![1.0, 2.0], 1.0).unwrap(),
            FreeRobot::new(-1.0, vec![0.5, 1.5], 0.75).unwrap(),
        ])
        .unwrap();
        let xmax = 20.0;
        let horizon = schedule.horizon_hint(xmax);
        for plan in schedule.plans() {
            let traj = plan.materialize(horizon).unwrap();
            assert!(traj.max_excursion() >= xmax, "{}", plan.label());
        }
    }

    #[test]
    fn serde_roundtrips_and_revalidates() {
        let schedule = FreeSchedule::new(vec![doubling_robot()]).unwrap();
        let json = serde_json::to_string(&schedule).unwrap();
        let back: FreeSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(schedule, back);
        // A tampered document must be rejected on deserialization.
        let bad = json.replace("3.0", "0.1");
        assert!(
            serde_json::from_str::<FreeSchedule>(&bad).is_err(),
            "speed-limit violation must not deserialize: {bad}"
        );
    }

    #[test]
    fn plans_are_trajectory_plans() {
        let schedule = FreeSchedule::new(vec![doubling_robot()]).unwrap();
        let plans = schedule.plans();
        assert!(plans[0].label().contains("free"));
        assert!(plans[0].materialize(10.0).is_ok());
        assert!(plans[0].materialize(0.0).is_err());
    }
}
