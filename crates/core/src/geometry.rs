//! Search-domain geometry: the paper's infinite line and the one-sided
//! half-line of *Probabilistically Faulty Searching on a Half-Line*
//! (arXiv:2002.07797).
//!
//! The geometry parametrizes where the adversary may hide the target —
//! and therefore which side(s) of the origin a worst-case scan must
//! cover. On [`Geometry::Line`] the window is `[1, xmax]` on *both*
//! sides; on [`Geometry::HalfLine`] only the positive side exists, so
//! scans skip the mirrored negative cover entirely. Keeping this a core
//! enum (rather than a boolean threaded ad hoc) leaves room for the
//! ring/plane geometries of further successor papers.

use serde::{Deserialize, Serialize};

/// The search domain the adversary places targets in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Geometry {
    /// The paper's infinite line: targets at `±x` for `x >= 1`.
    #[default]
    Line,
    /// The one-sided half-line: targets only at `+x` for `x >= 1`.
    HalfLine,
}

impl Geometry {
    /// Whether the negative side of the origin is part of the domain.
    #[must_use]
    pub fn has_negative_side(self) -> bool {
        matches!(self, Geometry::Line)
    }

    /// Stable lower-case label (report rows, CSV columns).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Geometry::Line => "line",
            Geometry::HalfLine => "half-line",
        }
    }

    /// Whether `x` lies inside the domain's adversary window `[1, xmax]`
    /// (mirrored onto the negative side for the full line).
    #[must_use]
    pub fn admits_target(self, x: f64) -> bool {
        match self {
            Geometry::Line => x.abs() >= 1.0,
            Geometry::HalfLine => x >= 1.0,
        }
    }
}

impl std::fmt::Display for Geometry {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fmt.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_is_the_default_and_two_sided() {
        assert_eq!(Geometry::default(), Geometry::Line);
        assert!(Geometry::Line.has_negative_side());
        assert!(!Geometry::HalfLine.has_negative_side());
    }

    #[test]
    fn target_admission_follows_the_window() {
        assert!(Geometry::Line.admits_target(-2.0));
        assert!(Geometry::Line.admits_target(1.0));
        assert!(!Geometry::Line.admits_target(0.5));
        assert!(Geometry::HalfLine.admits_target(2.0));
        assert!(!Geometry::HalfLine.admits_target(-2.0));
        assert!(!Geometry::HalfLine.admits_target(0.5));
    }

    #[test]
    fn serde_uses_the_variant_names() {
        let json = serde_json::to_string(&Geometry::HalfLine).unwrap();
        assert_eq!(json, "\"HalfLine\"");
        let back: Geometry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Geometry::HalfLine);
        assert!(serde_json::from_str::<Geometry>("\"Ring\"").is_err());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Geometry::Line.to_string(), "line");
        assert_eq!(Geometry::HalfLine.to_string(), "half-line");
    }
}
