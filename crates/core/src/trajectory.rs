//! Piecewise-linear unit-speed-bounded trajectories and their visit
//! queries.
//!
//! A trajectory is the fundamental object of the paper: "the trajectory
//! of such a robot can be represented in the half-plane by a curve
//! consisting of points `(x, t)`" (Section 2). We store it as a sequence
//! of waypoints with strictly increasing times; between consecutive
//! waypoints the robot moves at constant (at most unit) speed.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::spacetime::{Segment, SpaceTime};

/// Relative tolerance accepted on the unit speed limit to absorb
/// floating-point round-off in cone reflections.
pub const SPEED_TOLERANCE: f64 = 1e-9;

/// A piecewise-linear trajectory with strictly increasing waypoint
/// times and speed at most 1 on every piece.
///
/// ```
/// use faultline_core::trajectory::TrajectoryBuilder;
/// // The first leg of the classic doubling strategy: right to +1,
/// // back through the origin to -2.
/// let traj = TrajectoryBuilder::from_origin()
///     .sweep_to(1.0)
///     .sweep_to(-2.0)
///     .finish()?;
/// assert_eq!(traj.first_visit(1.0), Some(1.0));
/// assert_eq!(traj.first_visit(-2.0), Some(4.0));
/// assert_eq!(traj.position_at(2.0), Some(0.0));
/// # Ok::<(), faultline_core::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PiecewiseTrajectory {
    waypoints: Vec<SpaceTime>,
}

// Deserialization must re-validate the invariants (monotone time, unit
// speed): a hand-edited JSON document is untrusted input.
impl<'de> Deserialize<'de> for PiecewiseTrajectory {
    fn deserialize<D>(deserializer: D) -> std::result::Result<Self, D::Error>
    where
        D: serde::Deserializer<'de>,
    {
        #[derive(Deserialize)]
        struct Raw {
            waypoints: Vec<SpaceTime>,
        }
        let raw = Raw::deserialize(deserializer)?;
        PiecewiseTrajectory::new(raw.waypoints).map_err(serde::de::Error::custom)
    }
}

impl PiecewiseTrajectory {
    /// Builds a trajectory from explicit waypoints after validating all
    /// structural invariants.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidTrajectory`] when fewer than two waypoints
    /// are supplied, times are not strictly increasing, any coordinate is
    /// non-finite, or any piece exceeds unit speed.
    pub fn new(waypoints: Vec<SpaceTime>) -> Result<Self> {
        PiecewiseTrajectory::with_speed_limit(waypoints, 1.0)
    }

    /// Builds a trajectory for a robot whose maximum speed is
    /// `max_speed` instead of the paper's unit bound, validating the
    /// same structural invariants. Heterogeneous-speed scenarios retime
    /// unit-speed plans through this constructor; [`Self::new`] is the
    /// `max_speed = 1` special case and remains the only path trusted
    /// by deserialization.
    ///
    /// # Errors
    ///
    /// As [`Self::new`], with the speed bound taken as `max_speed`.
    pub fn with_speed_limit(waypoints: Vec<SpaceTime>, max_speed: f64) -> Result<Self> {
        if waypoints.len() < 2 {
            return Err(Error::trajectory(format!(
                "a trajectory needs at least two waypoints, got {}",
                waypoints.len()
            )));
        }
        for pair in waypoints.windows(2) {
            // Validates monotone time, finiteness and the speed bound.
            Segment::with_speed_limit(pair[0], pair[1], max_speed)?;
        }
        Ok(PiecewiseTrajectory { waypoints })
    }

    /// The validated waypoints, in time order.
    #[must_use]
    pub fn waypoints(&self) -> &[SpaceTime] {
        &self.waypoints
    }

    /// Start time of the trajectory.
    #[must_use]
    pub fn start_time(&self) -> f64 {
        self.waypoints[0].t
    }

    /// Last time at which the trajectory is defined.
    #[must_use]
    pub fn horizon(&self) -> f64 {
        self.waypoints[self.waypoints.len() - 1].t
    }

    /// Iterates over the constant-velocity pieces.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.waypoints.windows(2).map(|w| Segment { a: w[0], b: w[1] })
    }

    /// Position at time `t`, or `None` outside `[start_time, horizon]`.
    #[must_use]
    pub fn position_at(&self, t: f64) -> Option<f64> {
        if t < self.start_time() || t > self.horizon() {
            return None;
        }
        // Binary search for the segment containing t.
        let idx = self.waypoints.partition_point(|w| w.t <= t).min(self.waypoints.len() - 1);
        let seg = Segment { a: self.waypoints[idx - 1], b: self.waypoints[idx] };
        seg.position_at(t)
    }

    /// All times at which the trajectory occupies position `x`, sorted
    /// increasingly, with duplicates at shared waypoints removed.
    #[must_use]
    pub fn visits(&self, x: f64) -> Vec<f64> {
        let mut times = Vec::new();
        for seg in self.segments() {
            if let Some(t) = seg.visit_time(x) {
                if times.last().is_none_or(|last: &f64| t > *last) {
                    times.push(t);
                }
            }
        }
        times
    }

    /// The first time at which the trajectory occupies `x`, or `None`
    /// if it never does within its horizon.
    #[must_use]
    pub fn first_visit(&self, x: f64) -> Option<f64> {
        self.segments().find_map(|seg| seg.visit_time(x))
    }

    /// Interior waypoints at which the direction of motion strictly
    /// reverses — the paper's *turning points*.
    #[must_use]
    pub fn turning_points(&self) -> Vec<SpaceTime> {
        let mut turns = Vec::new();
        for w in self.waypoints.windows(3) {
            let before = w[1].x - w[0].x;
            let after = w[2].x - w[1].x;
            if before * after < 0.0 {
                turns.push(w[1]);
            }
        }
        turns
    }

    /// Total distance travelled over the whole trajectory.
    #[must_use]
    pub fn total_distance(&self) -> f64 {
        self.segments().map(|s| s.displacement().abs()).sum()
    }

    /// The farthest distance from the origin ever reached.
    #[must_use]
    pub fn max_excursion(&self) -> f64 {
        self.waypoints.iter().map(|w| w.x.abs()).fold(0.0, f64::max)
    }

    /// Truncates the trajectory at time `t`, interpolating a final
    /// waypoint exactly at `t`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] if `t` is not strictly inside
    /// `(start_time, horizon]`.
    pub fn truncated(&self, t: f64) -> Result<Self> {
        if t <= self.start_time() || t > self.horizon() {
            return Err(Error::domain(format!(
                "truncation time {t} outside ({}, {}]",
                self.start_time(),
                self.horizon()
            )));
        }
        let mut waypoints: Vec<SpaceTime> =
            self.waypoints.iter().copied().take_while(|w| w.t < t).collect();
        let x = self.position_at(t).expect("t validated to lie within the trajectory");
        if waypoints.last().is_none_or(|w| w.t < t) {
            waypoints.push(SpaceTime::new(x, t));
        }
        PiecewiseTrajectory::new(waypoints)
    }
}

/// Incremental builder for [`PiecewiseTrajectory`] ([C-BUILDER]).
///
/// All motion methods append a waypoint; `sweep_to` moves at full unit
/// speed, `glide_to` at an explicit slower pace, and `hold_until` keeps
/// the robot stationary.
#[derive(Debug, Clone)]
pub struct TrajectoryBuilder {
    waypoints: Vec<SpaceTime>,
}

impl TrajectoryBuilder {
    /// Starts a trajectory at the shared origin `(0, 0)` — the paper's
    /// initial configuration.
    #[must_use]
    pub fn from_origin() -> Self {
        TrajectoryBuilder { waypoints: vec![SpaceTime::origin()] }
    }

    /// Starts a trajectory at an arbitrary space–time point.
    #[must_use]
    pub fn starting_at(p: SpaceTime) -> Self {
        TrajectoryBuilder { waypoints: vec![p] }
    }

    fn last(&self) -> SpaceTime {
        *self.waypoints.last().expect("builder always holds at least one waypoint")
    }

    /// Moves at full unit speed to position `x`.
    pub fn sweep_to(&mut self, x: f64) -> &mut Self {
        let from = self.last();
        let t = from.t + (x - from.x).abs();
        if t > from.t {
            self.waypoints.push(SpaceTime::new(x, t));
        }
        self
    }

    /// Moves to position `x`, arriving exactly at time `t` (speed is
    /// implied; validated on `finish`).
    pub fn glide_to(&mut self, x: f64, t: f64) -> &mut Self {
        self.waypoints.push(SpaceTime::new(x, t));
        self
    }

    /// Stays at the current position until time `t`.
    pub fn hold_until(&mut self, t: f64) -> &mut Self {
        let from = self.last();
        if t > from.t {
            self.waypoints.push(SpaceTime::new(from.x, t));
        }
        self
    }

    /// Validates and produces the trajectory.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidTrajectory`] if any accumulated piece
    /// violates the structural invariants (see
    /// [`PiecewiseTrajectory::new`]).
    pub fn finish(&self) -> Result<PiecewiseTrajectory> {
        PiecewiseTrajectory::new(self.waypoints.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doubling_prefix() -> PiecewiseTrajectory {
        TrajectoryBuilder::from_origin()
            .sweep_to(1.0)
            .sweep_to(-2.0)
            .sweep_to(4.0)
            .sweep_to(-8.0)
            .finish()
            .unwrap()
    }

    #[test]
    fn rejects_too_few_waypoints() {
        assert!(PiecewiseTrajectory::new(vec![SpaceTime::origin()]).is_err());
        assert!(PiecewiseTrajectory::new(Vec::new()).is_err());
    }

    #[test]
    fn rejects_superluminal_piece() {
        let pts = vec![SpaceTime::origin(), SpaceTime::new(5.0, 1.0)];
        assert!(PiecewiseTrajectory::new(pts).is_err());
    }

    #[test]
    fn rejects_non_monotone_time() {
        let pts = vec![SpaceTime::origin(), SpaceTime::new(1.0, 1.0), SpaceTime::new(1.5, 0.5)];
        assert!(PiecewiseTrajectory::new(pts).is_err());
    }

    #[test]
    fn doubling_first_visits() {
        let t = doubling_prefix();
        assert_eq!(t.first_visit(1.0), Some(1.0));
        assert_eq!(t.first_visit(-1.0), Some(3.0));
        assert_eq!(t.first_visit(-2.0), Some(4.0));
        assert_eq!(t.first_visit(3.0), Some(9.0));
        // Target just beyond the first turning point: picked up on the
        // sweep from -2 towards +4 at time 7 + eps (the ratio grows
        // towards the classic 9 at later turning points).
        let x = 1.0 + 1e-6;
        let visit = t.first_visit(x).unwrap();
        assert!((visit / x - 7.0).abs() < 1e-4, "ratio = {}", visit / x);
    }

    #[test]
    fn visits_are_sorted_and_deduplicated() {
        let t = doubling_prefix();
        let vs = t.visits(0.0);
        assert_eq!(vs.len(), 4, "origin is crossed on every direction change: {vs:?}");
        assert!(vs.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(vs[0], 0.0);
    }

    #[test]
    fn turning_points_detected() {
        let t = doubling_prefix();
        let turns = t.turning_points();
        let xs: Vec<f64> = turns.iter().map(|p| p.x).collect();
        assert_eq!(xs, vec![1.0, -2.0, 4.0]);
    }

    #[test]
    fn position_at_boundaries() {
        let t = doubling_prefix();
        assert_eq!(t.position_at(0.0), Some(0.0));
        assert_eq!(t.position_at(t.horizon()), Some(-8.0));
        assert_eq!(t.position_at(-0.1), None);
        assert_eq!(t.position_at(t.horizon() + 0.1), None);
    }

    #[test]
    fn total_distance_and_excursion() {
        let t = doubling_prefix();
        assert_eq!(t.total_distance(), 1.0 + 3.0 + 6.0 + 12.0);
        assert_eq!(t.max_excursion(), 8.0);
    }

    #[test]
    fn truncation_interpolates() {
        let t = doubling_prefix();
        let cut = t.truncated(2.5).unwrap();
        assert_eq!(cut.horizon(), 2.5);
        assert_eq!(cut.position_at(2.5), Some(-0.5));
        assert!(t.truncated(0.0).is_err());
        assert!(t.truncated(1e9).is_err());
    }

    #[test]
    fn truncation_at_existing_waypoint_keeps_it_once() {
        let t = doubling_prefix();
        let cut = t.truncated(1.0).unwrap();
        assert_eq!(cut.waypoints().len(), 2);
        assert_eq!(cut.position_at(1.0), Some(1.0));
    }

    #[test]
    fn builder_hold_and_glide() {
        let t = TrajectoryBuilder::from_origin()
            .glide_to(1.0, 3.0) // speed 1/3 initial leg, as in Definition 4
            .hold_until(5.0)
            .sweep_to(0.0)
            .finish()
            .unwrap();
        assert_eq!(t.position_at(3.0), Some(1.0));
        assert_eq!(t.position_at(4.0), Some(1.0));
        assert_eq!(t.horizon(), 6.0);
    }

    #[test]
    fn builder_ignores_zero_length_moves() {
        let t = TrajectoryBuilder::from_origin()
            .sweep_to(0.0) // no-op
            .sweep_to(2.0)
            .finish()
            .unwrap();
        assert_eq!(t.waypoints().len(), 2);
    }
}
