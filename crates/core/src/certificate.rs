//! Certified enclosures of the paper's headline numbers, built on the
//! outward-rounded interval arithmetic of [`crate::interval`].
//!
//! A *certificate* is an interval that provably contains the exact
//! real-arithmetic value. Certifying Theorem 1's ratio is a direct
//! interval evaluation of the closed form; certifying the lower-bound
//! root `alpha(n)` uses a sign argument: the defining function
//! `h(alpha) = n ln(alpha-1) + ln(alpha-3) - (n+1) ln 2` is strictly
//! increasing on `(3, ∞)`, so if interval evaluation shows
//! `h(a) < 0 < h(b)` with certainty, the root lies in `[a, b]`.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::interval::Interval;
use crate::params::{Params, Regime};

/// A certified enclosure of a named quantity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Certificate {
    /// What is certified, e.g. `"CR of A(3, 1)"`.
    pub quantity: String,
    /// Certified lower bound.
    pub lo: f64,
    /// Certified upper bound.
    pub hi: f64,
}

impl Certificate {
    /// Wraps a certified [`Interval`] enclosure as a named certificate
    /// — the bridge that lets *measured* quantities (the exact
    /// supremum engine's enclosed scans, the exploration engine's
    /// worst-case values) join the Table-1 closed forms in `repro
    /// certify` output.
    #[must_use]
    pub fn from_interval(quantity: impl Into<String>, enclosure: Interval) -> Certificate {
        Certificate { quantity: quantity.into(), lo: enclosure.lo(), hi: enclosure.hi() }
    }

    /// Whether the certificate contains `x`.
    #[must_use]
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Whether two certificates overlap — the consistency check
    /// between a certified closed form and a certified measurement of
    /// the same quantity (disjoint enclosures prove a discrepancy).
    #[must_use]
    pub fn intersects(&self, other: &Certificate) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// The width of the enclosure.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Certifies Theorem 1's competitive ratio
/// `((4f+4)/n)^((2f+2)/n) ((4f+4)/n - 2)^(1-(2f+2)/n) + 1` for a
/// proportional-regime pair, by interval evaluation of the closed form.
///
/// # Errors
///
/// Returns [`Error::InvalidParameters`] outside the proportional regime
/// and propagates interval-arithmetic domain failures.
pub fn certify_cr_upper(params: Params) -> Result<Certificate> {
    if params.regime() != Regime::Proportional {
        return Err(Error::invalid_params(
            params.n(),
            params.f(),
            "certification targets the proportional regime (two-group is exactly 1)",
        ));
    }
    // beta* + 1 = (4f+4)/n and beta* - 1 = (4f+4)/n - 2, both as exact
    // rationals evaluated with one rounding each.
    let four_f4 = (4 * params.f() + 4) as f64;
    let n = params.n() as f64;
    let beta_plus_1 = Interval::around(four_f4 / n)?;
    let beta_minus_1 = beta_plus_1.add_scalar(-2.0);
    if !beta_minus_1.is_positive() {
        return Err(Error::domain(
            "beta* - 1 must be positive in the proportional regime".to_owned(),
        ));
    }
    let e = Interval::around((2 * params.f() + 2) as f64 / n)?;
    let one_minus_e = Interval::point(1.0)?.sub(e);
    let cr =
        beta_plus_1.powi_interval(e)?.mul(beta_minus_1.powi_interval(one_minus_e)?).add_scalar(1.0);
    Ok(Certificate {
        quantity: format!("CR of A({}, {})", params.n(), params.f()),
        lo: cr.lo(),
        hi: cr.hi(),
    })
}

/// Interval evaluation of the lower-bound function
/// `h(alpha) = n ln(alpha-1) + ln(alpha-3) - (n+1) ln 2`.
fn h_interval(n: usize, alpha: f64) -> Result<Interval> {
    let a = Interval::around(alpha)?;
    let term1 = a.add_scalar(-1.0).ln()?.mul_scalar(n as f64);
    let term2 = a.add_scalar(-3.0).ln()?;
    let rhs = Interval::around(std::f64::consts::LN_2)?.mul_scalar((n + 1) as f64);
    Ok(term1.add(term2).sub(rhs))
}

/// Certifies the Theorem 2 root `alpha(n)` of
/// `(alpha-1)^n (alpha-3) = 2^(n+1)`.
///
/// Starting from the `f64` root, the enclosure `[root - eps, root + eps]`
/// is expanded until the interval evaluation proves
/// `h(lo) < 0 < h(hi)`; by strict monotonicity of `h` the exact root
/// lies inside.
///
/// # Errors
///
/// Propagates solver failures and reports certification failure when no
/// enclosure below width `1e-6` can be proven.
pub fn certify_alpha(n: usize) -> Result<Certificate> {
    let root = crate::lower_bound::alpha(n)?;
    let mut eps = 1e-13 * root.max(1.0);
    for _ in 0..40 {
        let lo = root - eps;
        let hi = root + eps;
        if lo > 3.0 {
            let h_lo = h_interval(n, lo)?;
            let h_hi = h_interval(n, hi)?;
            if h_lo.is_negative() && h_hi.is_positive() {
                return Ok(Certificate { quantity: format!("alpha({n})"), lo, hi });
            }
        }
        eps *= 2.0;
        if eps > 1e-6 {
            break;
        }
    }
    Err(Error::numerical(format!("could not certify alpha({n}) to width 1e-6")))
}

/// Certifies the *binding* lower bound on the competitive ratio for
/// `(n, f)` — the certified counterpart of
/// [`crate::lower_bound::lower_bound`]:
///
/// * `n >= 2f + 2`: the exact `[1, 1]` (two-group optimality),
/// * `n == f + 1`: `[9 - 1e-9, 9]` — the single-robot reduction's
///   exact bound 9, padded one measurement epsilon outward so
///   empirical suprema that equalize the bound to float precision
///   still sit inside the enclosure,
/// * otherwise: the [`certify_alpha`] enclosure of Theorem 2's root.
///
/// Note that for `n == f + 1` the Theorem 2 root `alpha(n)` is also a
/// valid lower bound, but it is dominated by 9: any measurement below
/// this certificate's `lo` is evidence of window under-measurement,
/// never of a real sub-9 schedule.
///
/// # Errors
///
/// Propagates [`certify_alpha`] failures.
pub fn certify_lower_bound(params: Params) -> Result<Certificate> {
    if params.regime() == Regime::TwoGroup {
        return Ok(Certificate {
            quantity: format!("lower bound for ({}, {}) (two-group)", params.n(), params.f()),
            lo: 1.0,
            hi: 1.0,
        });
    }
    if params.n() == params.f() + 1 {
        return Ok(Certificate {
            quantity: format!(
                "lower bound for ({}, {}) (single-robot reduction)",
                params.n(),
                params.f()
            ),
            lo: 9.0 - 1e-9,
            hi: 9.0,
        });
    }
    certify_alpha(params.n())
}

/// Certifies every proportional-regime row of the paper's Table 1:
/// both the Theorem 1 ratio and the Theorem 2 root.
///
/// # Errors
///
/// Propagates per-row failures.
pub fn certify_table1() -> Result<Vec<Certificate>> {
    let pairs: [(usize, usize); 10] =
        [(2, 1), (3, 1), (3, 2), (4, 2), (4, 3), (5, 2), (5, 3), (5, 4), (11, 5), (41, 20)];
    let mut out = Vec::new();
    for (n, f) in pairs {
        out.push(certify_cr_upper(Params::new(n, f)?)?);
        out.push(certify_alpha(n)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio;

    #[test]
    fn certified_cr_contains_float_value_and_is_tight() {
        for (n, f) in [(2usize, 1usize), (3, 1), (4, 2), (5, 2), (5, 3), (11, 5), (41, 20)] {
            let params = Params::new(n, f).unwrap();
            let cert = certify_cr_upper(params).unwrap();
            let float_value = ratio::cr_upper(params);
            assert!(
                cert.contains(float_value),
                "(n={n}, f={f}): {float_value} outside [{}, {}]",
                cert.lo,
                cert.hi
            );
            assert!(cert.width() < 1e-9, "(n={n}, f={f}): width {}", cert.width());
        }
    }

    #[test]
    fn from_interval_and_intersects_bridge_measured_enclosures() {
        let enc = Interval::new(5.23, 5.24).unwrap();
        let measured = Certificate::from_interval("measured sup of A(3, 1)", enc);
        assert_eq!(measured.lo, 5.23);
        assert_eq!(measured.hi, 5.24);
        assert!(measured.contains(5.233));
        let closed_form = certify_cr_upper(Params::new(3, 1).unwrap()).unwrap();
        assert!(measured.intersects(&closed_form));
        assert!(closed_form.intersects(&measured));
        let disjoint = Certificate { quantity: "other".into(), lo: 9.0, hi: 9.1 };
        assert!(!measured.intersects(&disjoint));
    }

    #[test]
    fn certified_cr_rejects_two_group() {
        assert!(certify_cr_upper(Params::new(4, 1).unwrap()).is_err());
    }

    #[test]
    fn certified_cr_matches_known_exact_values() {
        // A(f+1, f) has CR exactly 9 = 4^2 / 2 + 1.
        for f in [1usize, 2, 3, 10] {
            let cert = certify_cr_upper(Params::new(f + 1, f).unwrap()).unwrap();
            assert!(cert.contains(9.0), "f = {f}: [{}, {}]", cert.lo, cert.hi);
        }
        // A(4, 2): beta* = 2, CR = 3^(3/2) + 1.
        let cert = certify_cr_upper(Params::new(4, 2).unwrap()).unwrap();
        assert!(cert.contains(3.0_f64.powf(1.5) + 1.0));
    }

    #[test]
    fn certified_alpha_is_a_proven_enclosure() {
        for n in [1usize, 2, 3, 5, 11, 41, 101] {
            let cert = certify_alpha(n).unwrap();
            let float_root = crate::lower_bound::alpha(n).unwrap();
            assert!(cert.contains(float_root), "n = {n}");
            assert!(cert.width() < 1e-9, "n = {n}: width {}", cert.width());
            assert!(cert.lo > 3.0, "n = {n}");
            // Verify the sign argument directly at the certified bounds.
            assert!(h_interval(n, cert.lo).unwrap().is_negative());
            assert!(h_interval(n, cert.hi).unwrap().is_positive());
        }
    }

    #[test]
    fn certified_lower_bound_tracks_the_binding_regime() {
        // Two-group: exactly 1.
        let two_group = certify_lower_bound(Params::new(4, 1).unwrap()).unwrap();
        assert_eq!((two_group.lo, two_group.hi), (1.0, 1.0));
        // n = f + 1: the single-robot 9, not the dominated alpha(n).
        for f in [1usize, 2, 4] {
            let cert = certify_lower_bound(Params::new(f + 1, f).unwrap()).unwrap();
            assert!(cert.contains(9.0), "f = {f}");
            assert!(cert.lo > crate::lower_bound::alpha(f + 1).unwrap(), "f = {f}");
            // `9.0 - 1e-9` rounds, so the width is 1e-9 only up to one
            // ulp of 9.
            assert!(cert.width() <= 1e-9 + f64::EPSILON * 9.0, "f = {f}");
        }
        // Mid-regime: the alpha(n) enclosure.
        let mid = certify_lower_bound(Params::new(5, 3).unwrap()).unwrap();
        assert_eq!(mid, certify_alpha(5).unwrap());
        // Every regime's certificate contains the float lower bound.
        for (n, f) in [(4usize, 1usize), (2, 1), (5, 4), (3, 1), (5, 2), (41, 20)] {
            let params = Params::new(n, f).unwrap();
            let cert = certify_lower_bound(params).unwrap();
            assert!(cert.contains(crate::lower_bound::lower_bound(params).unwrap()), "({n}, {f})");
        }
    }

    #[test]
    fn table1_certificates_cover_paper_values() {
        let certs = certify_table1().unwrap();
        assert_eq!(certs.len(), 20);
        // Spot checks against the paper's printed (2-decimal) values:
        // every certificate must be consistent with the printed value to
        // print precision.
        let find = |q: &str| certs.iter().find(|c| c.quantity == q).unwrap();
        assert!((find("CR of A(3, 1)").lo - 5.24).abs() < 1e-2);
        assert!((find("alpha(3)").lo - 3.76).abs() < 5e-3);
        assert!((find("alpha(41)").lo - 3.1357).abs() < 5e-4);
    }
}
