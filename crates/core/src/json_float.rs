//! Lossless JSON encoding for possibly non-finite `f64` fields.
//!
//! Competitive-ratio fields legitimately become `f64::INFINITY` when a
//! scan finds uncovered targets (see [`crate::coverage::Fleet::supremum`]),
//! but JSON has no literal for infinities or NaN: `serde_json` writes
//! non-finite floats as `null`, which destroys the value on round-trip
//! and makes "uncovered" scans masquerade as missing data. This module
//! encodes finite values as plain JSON numbers and non-finite values as
//! the string sentinels `"inf"`, `"-inf"` and `"nan"`, so every `f64`
//! round-trips losslessly.
//!
//! Use [`encode_f64`] / [`decode_f64`] inside manual `Serialize` /
//! `Deserialize` impls for any struct whose float fields can be
//! non-finite (the stub `serde_derive` has no `#[serde(with = ...)]`).

use serde::Value;

/// Sentinel string for `f64::INFINITY`.
pub const INF_SENTINEL: &str = "inf";
/// Sentinel string for `f64::NEG_INFINITY`.
pub const NEG_INF_SENTINEL: &str = "-inf";
/// Sentinel string for `f64::NAN`.
pub const NAN_SENTINEL: &str = "nan";

/// Encodes an `f64` into the serde data model: finite values become
/// JSON numbers, non-finite values become string sentinels that
/// [`decode_f64`] recognizes.
#[must_use]
pub fn encode_f64(v: f64) -> Value {
    if v.is_finite() {
        Value::Float(v)
    } else if v.is_nan() {
        Value::String(NAN_SENTINEL.to_owned())
    } else if v > 0.0 {
        Value::String(INF_SENTINEL.to_owned())
    } else {
        Value::String(NEG_INF_SENTINEL.to_owned())
    }
}

/// Decodes an `f64` previously encoded by [`encode_f64`]: accepts JSON
/// numbers and the `"inf"` / `"-inf"` / `"nan"` sentinels.
///
/// # Errors
///
/// Returns a message naming `field` when the value is neither a number
/// nor a recognized sentinel. JSON `null` — the lossy legacy encoding
/// of a non-finite float — is rejected with a pointer at the fix.
pub fn decode_f64(value: &Value, field: &str) -> Result<f64, String> {
    match value {
        Value::Float(v) => Ok(*v),
        Value::Int(v) => Ok(*v as f64),
        Value::UInt(v) => Ok(*v as f64),
        Value::String(s) => match s.as_str() {
            INF_SENTINEL | "+inf" => Ok(f64::INFINITY),
            NEG_INF_SENTINEL => Ok(f64::NEG_INFINITY),
            NAN_SENTINEL => Ok(f64::NAN),
            other => Err(format!(
                "field `{field}`: expected a number or one of \
                 \"inf\"/\"-inf\"/\"nan\", got string \"{other}\""
            )),
        },
        Value::Null => Err(format!(
            "field `{field}`: null is the lossy legacy encoding of a non-finite \
             ratio; re-emit the document with a build that writes \"inf\" sentinels"
        )),
        other => Err(format!("field `{field}`: expected a number, got {}", other.kind())),
    }
}

/// Unwraps a [`Value::Object`] into its field list, for manual
/// `Deserialize` impls.
///
/// # Errors
///
/// Returns a message naming `type_name` when the value is not an
/// object.
pub fn object_fields(value: Value, type_name: &str) -> Result<Vec<(String, Value)>, String> {
    match value {
        Value::Object(fields) => Ok(fields),
        other => Err(format!("{type_name}: expected an object, got {}", other.kind())),
    }
}

/// Removes and returns the field `name` from an object's field list.
///
/// # Errors
///
/// Returns a message naming `type_name` when the field is missing.
pub fn take_field(
    fields: &mut Vec<(String, Value)>,
    name: &str,
    type_name: &str,
) -> Result<Value, String> {
    match fields.iter().position(|(key, _)| key == name) {
        Some(i) => Ok(fields.remove(i).1),
        None => Err(format!("{type_name}: missing field `{name}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_values_stay_numbers() {
        assert_eq!(encode_f64(2.5), Value::Float(2.5));
        assert_eq!(decode_f64(&Value::Float(2.5), "x").unwrap(), 2.5);
        assert_eq!(decode_f64(&Value::Int(-3), "x").unwrap(), -3.0);
        assert_eq!(decode_f64(&Value::UInt(7), "x").unwrap(), 7.0);
    }

    #[test]
    fn non_finite_values_round_trip_through_sentinels() {
        for v in [f64::INFINITY, f64::NEG_INFINITY] {
            let encoded = encode_f64(v);
            assert!(matches!(encoded, Value::String(_)), "{v} must encode as a sentinel");
            assert_eq!(decode_f64(&encoded, "ratio").unwrap(), v);
        }
        let nan = decode_f64(&encode_f64(f64::NAN), "ratio").unwrap();
        assert!(nan.is_nan());
    }

    #[test]
    fn null_is_rejected_with_a_diagnostic() {
        let err = decode_f64(&Value::Null, "empirical").unwrap_err();
        assert!(err.contains("empirical"));
        assert!(err.contains("non-finite"));
    }

    #[test]
    fn garbage_strings_are_rejected() {
        let err = decode_f64(&Value::String("infinity-ish".into()), "ratio").unwrap_err();
        assert!(err.contains("ratio"));
    }
}
