//! Numerical substrate: tolerant comparisons, grids, root finding and
//! one-dimensional minimization.
//!
//! Every closed form in the paper is cross-checked numerically somewhere
//! in this workspace (the proportionality ratio `r`, the lower-bound root
//! `alpha(n)`, the optimal cone parameter `beta*`), so the solvers here are
//! written defensively: they validate their brackets, bound their
//! iteration counts and report failures as [`Error::Numerical`] instead of
//! looping forever or returning `NaN`.

use crate::error::{Error, Result};

/// Default relative tolerance used by solvers in this module.
pub const DEFAULT_TOL: f64 = 1e-13;

/// Default iteration cap for bracketing solvers.
pub const DEFAULT_MAX_ITER: usize = 200;

/// Returns `true` when `a` and `b` agree up to relative tolerance `tol`
/// (with an absolute floor of `tol` for values near zero).
///
/// ```
/// use faultline_core::numeric::approx_eq;
/// assert!(approx_eq(1.0 + 1e-15, 1.0, 1e-12));
/// assert!(!approx_eq(1.0, 1.1, 1e-12));
/// ```
#[must_use]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= tol * scale
}

/// Returns `k` evenly spaced values covering `[lo, hi]` inclusive.
///
/// Returns an empty vector for `k == 0` and `[lo]` for `k == 1`.
///
/// ```
/// use faultline_core::numeric::linspace;
/// assert_eq!(linspace(0.0, 1.0, 3), vec![0.0, 0.5, 1.0]);
/// ```
#[must_use]
pub fn linspace(lo: f64, hi: f64, k: usize) -> Vec<f64> {
    match k {
        0 => Vec::new(),
        1 => vec![lo],
        _ => {
            let step = (hi - lo) / (k - 1) as f64;
            (0..k).map(|i| if i + 1 == k { hi } else { lo + step * i as f64 }).collect()
        }
    }
}

/// Returns `k` logarithmically spaced values covering `[lo, hi]`,
/// both strictly positive.
///
/// # Errors
///
/// Returns [`Error::Domain`] if `lo <= 0`, `hi <= 0` or `lo > hi`.
pub fn logspace(lo: f64, hi: f64, k: usize) -> Result<Vec<f64>> {
    if lo <= 0.0 || hi <= 0.0 || lo > hi {
        return Err(Error::domain(format!(
            "logspace requires 0 < lo <= hi, got lo = {lo}, hi = {hi}"
        )));
    }
    Ok(linspace(lo.ln(), hi.ln(), k).into_iter().map(f64::exp).collect())
}

/// Finds a root of `f` inside the bracket `[lo, hi]` by bisection.
///
/// The function values at the bracket ends must have opposite signs
/// (one of them may be zero, in which case that end is returned).
///
/// # Errors
///
/// Returns [`Error::Numerical`] when the bracket is invalid, when either
/// endpoint evaluates to a non-finite value, or when `max_iter` halvings
/// do not reach the requested tolerance.
///
/// ```
/// use faultline_core::numeric::bisect;
/// let root = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-14, 200)?;
/// assert!((root - std::f64::consts::SQRT_2).abs() < 1e-12);
/// # Ok::<(), faultline_core::Error>(())
/// ```
pub fn bisect(f: impl Fn(f64) -> f64, lo: f64, hi: f64, tol: f64, max_iter: usize) -> Result<f64> {
    if !(lo < hi) {
        return Err(Error::numerical(format!("bisect: invalid bracket [{lo}, {hi}]")));
    }
    let flo = f(lo);
    let fhi = f(hi);
    if !flo.is_finite() || !fhi.is_finite() {
        return Err(Error::numerical(format!(
            "bisect: non-finite endpoint values f({lo}) = {flo}, f({hi}) = {fhi}"
        )));
    }
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo.signum() == fhi.signum() {
        return Err(Error::numerical(format!(
            "bisect: no sign change over [{lo}, {hi}] (f = {flo}, {fhi})"
        )));
    }
    let (mut lo, mut hi, mut flo) = (lo, hi, flo);
    for _ in 0..max_iter {
        let mid = 0.5 * (lo + hi);
        let fmid = f(mid);
        if !fmid.is_finite() {
            return Err(Error::numerical(format!("bisect: f({mid}) is not finite")));
        }
        if fmid == 0.0 || (hi - lo) <= tol * mid.abs().max(1.0) {
            return Ok(mid);
        }
        if fmid.signum() == flo.signum() {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Minimizes a unimodal function on `[lo, hi]` by golden-section search
/// and returns the minimizing abscissa.
///
/// Used to cross-check the closed-form optimum `beta* = (4f+4)/n - 1`
/// of the competitive-ratio expression (Theorem 1).
///
/// # Errors
///
/// Returns [`Error::Numerical`] when the bracket is invalid or the
/// function evaluates to a non-finite value inside it.
pub fn golden_min(
    f: impl Fn(f64) -> f64,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64> {
    if !(lo < hi) {
        return Err(Error::numerical(format!("golden_min: invalid bracket [{lo}, {hi}]")));
    }
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let (mut a, mut b) = (lo, hi);
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    for _ in 0..max_iter {
        if !fc.is_finite() || !fd.is_finite() {
            return Err(Error::numerical("golden_min: non-finite interior value".to_owned()));
        }
        if (b - a) <= tol * a.abs().max(1.0) {
            break;
        }
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - INV_PHI * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + INV_PHI * (b - a);
            fd = f(d);
        }
    }
    Ok(0.5 * (a + b))
}

/// Composite Simpson integration of `f` over `[a, b]` with `panels`
/// subdivisions (rounded up to even).
///
/// # Errors
///
/// Returns [`Error::Numerical`] for an invalid range, zero panels, or a
/// non-finite integrand value.
///
/// ```
/// use faultline_core::numeric::integrate_simpson;
/// let integral = integrate_simpson(|x| x * x, 0.0, 1.0, 64)?;
/// assert!((integral - 1.0 / 3.0).abs() < 1e-12);
/// # Ok::<(), faultline_core::Error>(())
/// ```
pub fn integrate_simpson(f: impl Fn(f64) -> f64, a: f64, b: f64, panels: usize) -> Result<f64> {
    if !(a < b) || !a.is_finite() || !b.is_finite() {
        return Err(Error::numerical(format!("integrate: invalid range [{a}, {b}]")));
    }
    if panels == 0 {
        return Err(Error::numerical("integrate: at least one panel required".to_owned()));
    }
    let n = if panels.is_multiple_of(2) { panels } else { panels + 1 };
    let h = (b - a) / n as f64;
    let mut sum = 0.0;
    for i in 0..=n {
        let x = if i == n { b } else { a + h * i as f64 };
        let fx = f(x);
        if !fx.is_finite() {
            return Err(Error::numerical(format!("integrate: f({x}) is not finite")));
        }
        let weight = if i == 0 || i == n {
            1.0
        } else if i % 2 == 1 {
            4.0
        } else {
            2.0
        };
        sum += weight * fx;
    }
    Ok(sum * h / 3.0)
}

/// Composite Simpson integration with the integrand evaluated on the
/// work-stealing engine ([`crate::parallel::par_map`]).
///
/// Numerically identical to [`integrate_simpson`]: the nodes, weights
/// and accumulation order are the same — only the `f(x)` evaluations
/// run in parallel — so the two functions return bit-for-bit equal
/// results for the same deterministic integrand.
///
/// # Errors
///
/// Returns [`Error::Numerical`] for an invalid range, zero panels, or a
/// non-finite integrand value.
pub fn integrate_simpson_par(
    f: impl Fn(f64) -> f64 + Sync,
    a: f64,
    b: f64,
    panels: usize,
) -> Result<f64> {
    if !(a < b) || !a.is_finite() || !b.is_finite() {
        return Err(Error::numerical(format!("integrate: invalid range [{a}, {b}]")));
    }
    if panels == 0 {
        return Err(Error::numerical("integrate: at least one panel required".to_owned()));
    }
    let n = if panels.is_multiple_of(2) { panels } else { panels + 1 };
    let h = (b - a) / n as f64;
    let nodes: Vec<f64> = (0..=n).map(|i| if i == n { b } else { a + h * i as f64 }).collect();
    let values = crate::parallel::par_map(&nodes, |&x| f(x));
    let mut sum = 0.0;
    for (i, (&x, &fx)) in nodes.iter().zip(&values).enumerate() {
        if !fx.is_finite() {
            return Err(Error::numerical(format!("integrate: f({x}) is not finite")));
        }
        let weight = if i == 0 || i == n {
            1.0
        } else if i % 2 == 1 {
            4.0
        } else {
            2.0
        };
        sum += weight * fx;
    }
    Ok(sum * h / 3.0)
}

/// Newton's method with a bisection fallback bracket.
///
/// Performs Newton iterations from `x0`; whenever an iterate escapes
/// `[lo, hi]` or the derivative is tiny, falls back to a bisection step
/// on the bracket. The bracket must contain a sign change.
///
/// # Errors
///
/// Propagates bracket errors from [`bisect`] and reports non-finite
/// evaluations.
pub fn newton_bracketed(
    f: impl Fn(f64) -> f64,
    df: impl Fn(f64) -> f64,
    x0: f64,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64> {
    let mut x = x0.clamp(lo, hi);
    for _ in 0..max_iter {
        let fx = f(x);
        if !fx.is_finite() {
            return Err(Error::numerical(format!("newton: f({x}) is not finite")));
        }
        if fx.abs() <= tol {
            return Ok(x);
        }
        let dfx = df(x);
        let next =
            if dfx.abs() > f64::MIN_POSITIVE && dfx.is_finite() { x - fx / dfx } else { f64::NAN };
        if next.is_finite() && next > lo && next < hi {
            if (next - x).abs() <= tol * x.abs().max(1.0) {
                return Ok(next);
            }
            x = next;
        } else {
            // Newton stepped outside the bracket: finish with bisection.
            return bisect(f, lo, hi, tol, max_iter);
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints_exact() {
        let xs = linspace(1.0, 3.0, 11);
        assert_eq!(xs.len(), 11);
        assert_eq!(xs[0], 1.0);
        assert_eq!(xs[10], 3.0);
    }

    #[test]
    fn linspace_degenerate_counts() {
        assert!(linspace(0.0, 1.0, 0).is_empty());
        assert_eq!(linspace(2.0, 5.0, 1), vec![2.0]);
    }

    #[test]
    fn logspace_is_geometric() {
        let xs = logspace(1.0, 100.0, 3).unwrap();
        assert!(approx_eq(xs[1], 10.0, 1e-12));
        assert!(approx_eq(xs[2], 100.0, 1e-12));
    }

    #[test]
    fn logspace_rejects_nonpositive() {
        assert!(logspace(0.0, 1.0, 4).is_err());
        assert!(logspace(-1.0, 1.0, 4).is_err());
        assert!(logspace(2.0, 1.0, 4).is_err());
    }

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-14, 200).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn bisect_accepts_root_at_endpoint() {
        let r = bisect(|x| x, 0.0, 1.0, 1e-14, 100).unwrap();
        assert_eq!(r, 0.0);
    }

    #[test]
    fn bisect_rejects_bad_bracket() {
        assert!(bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100).is_err());
        assert!(bisect(|x| x, 1.0, 1.0, 1e-12, 100).is_err());
    }

    #[test]
    fn golden_min_finds_parabola_vertex() {
        let m = golden_min(|x| (x - 1.25) * (x - 1.25) + 3.0, 0.0, 4.0, 1e-12, 500).unwrap();
        assert!((m - 1.25).abs() < 1e-6, "m = {m}");
    }

    #[test]
    fn simpson_exact_for_cubics() {
        // Simpson is exact on polynomials of degree <= 3.
        let integral = integrate_simpson(|x| x * x * x - 2.0 * x + 1.0, -1.0, 2.0, 2).unwrap();
        let exact = (16.0 / 4.0 - 4.0 + 2.0) - (1.0 / 4.0 - 1.0 - 1.0);
        assert!((integral - exact).abs() < 1e-12, "{integral} vs {exact}");
    }

    #[test]
    fn simpson_converges_on_transcendentals() {
        let integral = integrate_simpson(f64::sin, 0.0, std::f64::consts::PI, 128).unwrap();
        // Composite Simpson error ~ (b-a)^5 / (180 n^4) * max|f''''| ≈ 6e-9 here.
        assert!((integral - 2.0).abs() < 1e-7);
    }

    #[test]
    fn simpson_validates_inputs() {
        assert!(integrate_simpson(|x| x, 1.0, 0.0, 8).is_err());
        assert!(integrate_simpson(|x| x, 0.0, 1.0, 0).is_err());
        assert!(integrate_simpson(|_| f64::NAN, 0.0, 1.0, 8).is_err());
        // Odd panel counts are rounded up, not rejected.
        assert!(integrate_simpson(|x| x, 0.0, 1.0, 3).is_ok());
    }

    #[test]
    fn parallel_simpson_is_bit_identical_to_serial() {
        let f = |x: f64| (x * 1.7).sin() * x.exp() + 1.0 / (1.0 + x * x);
        for panels in [2usize, 7, 64, 501] {
            let serial = integrate_simpson(f, -1.5, 3.25, panels).unwrap();
            let parallel = integrate_simpson_par(f, -1.5, 3.25, panels).unwrap();
            assert_eq!(serial.to_bits(), parallel.to_bits(), "panels = {panels}");
        }
        assert!(integrate_simpson_par(|x| x, 1.0, 0.0, 8).is_err());
        assert!(integrate_simpson_par(|x| x, 0.0, 1.0, 0).is_err());
        assert!(integrate_simpson_par(|_| f64::NAN, 0.0, 1.0, 8).is_err());
    }

    #[test]
    fn newton_matches_bisection() {
        let f = |x: f64| x.powi(3) - 5.0;
        let df = |x: f64| 3.0 * x * x;
        let newton = newton_bracketed(f, df, 2.0, 1.0, 3.0, 1e-14, 100).unwrap();
        let bis = bisect(f, 1.0, 3.0, 1e-14, 200).unwrap();
        assert!(approx_eq(newton, bis, 1e-10));
    }

    #[test]
    fn newton_falls_back_outside_bracket() {
        // Flat derivative at the start pushes Newton far away; fallback
        // bisection must still find the root of x - 0.5 on [0, 1].
        let f = |x: f64| x - 0.5;
        let df = |_: f64| 1e-300;
        let r = newton_bracketed(f, df, 0.9, 0.0, 1.0, 1e-13, 100).unwrap();
        assert!(approx_eq(r, 0.5, 1e-10));
    }
}
