//! Exact piecewise closed form of the visit-time function `T_(f+1)(x)`
//! for a proportional schedule — an O(1) evaluator that complements the
//! numeric coverage machinery.
//!
//! ## Derivation
//!
//! Fix the schedule `S_beta(n)` normalized to `tau_0 = base`, with
//! proportionality ratio `r` (Lemma 2). On the positive side the
//! interleaved turning points are `tau_j = base * r^j`; on the negative
//! side the turning magnitudes are `base * r^(j + n/2)` (one half-cycle
//! offset — robot `a_0` turns at `+base`, sweeps left, and turns at
//! `-kappa * base = -base * r^(n/2)`).
//!
//! For a target `x` with `|x| >= base`, let `tau_(j*)` be the smallest
//! turning point on `x`'s side with `tau_(j*) >= |x|`. Every robot
//! first reaches `x` on its *outbound* sweep towards its next turning
//! point at or beyond `x`, arriving at
//!
//! ```text
//! W_i = t(tau_(j*+i)) - (tau_(j*+i) - |x|) = tau_(j*+i) * (beta - 1) + |x|
//! ```
//!
//! (using `t(tau) = beta * tau` on the cone boundary). The `(f+1)`-st
//! distinct visitor is `i = f` (consecutive ladder turning points belong
//! to distinct robots as long as `f <= n - 1`), hence **exactly**
//!
//! ```text
//! T_(f+1)(x) = base * r^(j* + f + offset) * (beta - 1) + |x|,
//! ```
//!
//! with `offset = 0` on the positive side and `n/2` on the negative
//! side. Lemmas 3–5 all follow: `K` is decreasing between ladder points,
//! jumps at them, and its supremum (the right-hand limit at any ladder
//! point) is `r^(f+1) (beta - 1) + 1` — Theorem 1's value at
//! `beta = beta*`.

use crate::error::{Error, Result};
use crate::schedule::ProportionalSchedule;

/// Exact piecewise-closed-form evaluator for a proportional schedule's
/// visit times, equivalent to (but O(1) instead of) materializing the
/// fleet of [`crate::algorithm::Algorithm::plans`] and querying
/// [`crate::coverage::Fleet::visit_time`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClosedForm<'a> {
    schedule: &'a ProportionalSchedule,
}

impl<'a> ClosedForm<'a> {
    /// Wraps a schedule.
    #[must_use]
    pub fn new(schedule: &'a ProportionalSchedule) -> Self {
        ClosedForm { schedule }
    }

    /// The ladder exponent offset for the side of `x`: 0 on the
    /// positive side, `n/2` on the negative side.
    fn side_offset(&self, x: f64) -> f64 {
        if x >= 0.0 {
            0.0
        } else {
            self.schedule.n() as f64 / 2.0
        }
    }

    /// The smallest ladder index `j*` (possibly fractional exponent
    /// `j* + offset`) whose turning point is at or beyond `|x|` on
    /// `x`'s side, returned as the full exponent `j* + offset`.
    fn ladder_exponent(&self, x: f64) -> f64 {
        let r = self.schedule.ratio();
        let offset = self.side_offset(x);
        let magnitude = x.abs() / self.schedule.base();
        // Smallest integer j with r^(j + offset) >= magnitude.
        let raw = magnitude.ln() / r.ln() - offset;
        let mut j = raw.ceil();
        // Guard against floating-point: ensure r^(j + offset) >= magnitude,
        // and that j - 1 is strictly below (tight ladder choice).
        while r.powf(j + offset) < magnitude * (1.0 - 1e-12) {
            j += 1.0;
        }
        while j >= 1.0 && r.powf(j - 1.0 + offset) >= magnitude * (1.0 + 1e-12) {
            j -= 1.0;
        }
        j + offset
    }

    /// Exact `T_(f+1)(x)`: the time at which the `(f+1)`-st distinct
    /// robot first visits `x`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] when `|x| < base` (the schedule's
    /// guarantee only covers targets at distance at least `base`) or
    /// [`Error::InvalidParameters`] when `f >= n`.
    pub fn visit_time(&self, x: f64, f: usize) -> Result<f64> {
        if f >= self.schedule.n() {
            return Err(Error::invalid_params(
                self.schedule.n(),
                f,
                "the closed form needs f + 1 <= n distinct visitors",
            ));
        }
        if x.abs() < self.schedule.base() * (1.0 - 1e-12) {
            return Err(Error::domain(format!(
                "closed form covers |x| >= base = {}, got {x}",
                self.schedule.base()
            )));
        }
        let r = self.schedule.ratio();
        let beta = self.schedule.beta();
        let exponent = self.ladder_exponent(x) + f as f64;
        Ok(self.schedule.base() * r.powf(exponent) * (beta - 1.0) + x.abs())
    }

    /// Exact `K(x) = T_(f+1)(x) / |x|`.
    ///
    /// # Errors
    ///
    /// As [`ClosedForm::visit_time`].
    pub fn ratio_at(&self, x: f64, f: usize) -> Result<f64> {
        Ok(self.visit_time(x, f)? / x.abs())
    }

    /// The exact supremum of `K` over each side — the right-hand limit
    /// at any ladder point — which equals Lemma 5's
    /// `r^(f+1) (beta - 1) + 1` independent of the side.
    #[must_use]
    pub fn supremum(&self, f: usize) -> f64 {
        self.schedule.competitive_ratio(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Algorithm;
    use crate::coverage::Fleet;
    use crate::numeric::{approx_eq, logspace};
    use crate::params::Params;

    fn fleet_for(alg: &Algorithm, xmax: f64) -> Fleet {
        let horizon = alg.required_horizon(xmax).unwrap();
        Fleet::new(alg.plans().iter().map(|p| p.materialize(horizon).unwrap()).collect()).unwrap()
    }

    #[test]
    fn matches_fleet_on_dense_grids_both_sides() {
        for (n, f) in [(2usize, 1usize), (3, 1), (3, 2), (4, 2), (5, 2), (5, 3), (7, 3)] {
            let params = Params::new(n, f).unwrap();
            let alg = Algorithm::design(params).unwrap();
            let schedule = alg.schedule().unwrap();
            let cf = ClosedForm::new(schedule);
            let fleet = fleet_for(&alg, 33.0);
            for x in logspace(1.0, 30.0, 40).unwrap() {
                for target in [x, -x] {
                    let exact = cf.visit_time(target, f).unwrap();
                    let numeric = fleet.visit_time(target, f + 1).unwrap();
                    assert!(
                        approx_eq(exact, numeric, 1e-9),
                        "(n={n}, f={f}), x={target}: closed {exact} vs fleet {numeric}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_fleet_at_and_just_past_turning_points() {
        let params = Params::new(3, 1).unwrap();
        let alg = Algorithm::design(params).unwrap();
        let schedule = alg.schedule().unwrap();
        let cf = ClosedForm::new(schedule);
        let fleet = fleet_for(&alg, 70.0);
        for j in 0..4i64 {
            let tau = schedule.turning_position(j);
            for x in [tau, tau * (1.0 + 1e-9)] {
                let exact = cf.visit_time(x, 1).unwrap();
                let numeric = fleet.visit_time(x, 2).unwrap();
                assert!(
                    approx_eq(exact, numeric, 1e-6),
                    "x = {x}: closed {exact} vs fleet {numeric}"
                );
            }
        }
    }

    #[test]
    fn lemma4_is_the_right_hand_limit() {
        let schedule = ProportionalSchedule::new(5, 1.4).unwrap();
        let cf = ClosedForm::new(&schedule);
        for f in 0..4usize {
            let just_past = cf.ratio_at(1.0 + 1e-12, f).unwrap();
            assert!(
                approx_eq(just_past, schedule.competitive_ratio(f), 1e-6),
                "f = {f}: {just_past}"
            );
        }
    }

    #[test]
    fn ratio_never_exceeds_supremum() {
        let schedule = ProportionalSchedule::new(4, 2.0).unwrap();
        let cf = ClosedForm::new(&schedule);
        for x in logspace(1.0, 500.0, 300).unwrap() {
            for target in [x, -x] {
                let k = cf.ratio_at(target, 2).unwrap();
                assert!(
                    k <= cf.supremum(2) + 1e-9,
                    "K({target}) = {k} above sup {}",
                    cf.supremum(2)
                );
            }
        }
    }

    #[test]
    fn domain_validation() {
        let schedule = ProportionalSchedule::new(3, 5.0 / 3.0).unwrap();
        let cf = ClosedForm::new(&schedule);
        assert!(cf.visit_time(0.5, 1).is_err());
        assert!(cf.visit_time(2.0, 3).is_err());
        assert!(cf.visit_time(1.0, 1).is_ok());
        assert!(cf.visit_time(-1.0, 1).is_ok());
    }

    #[test]
    fn scaled_base_shifts_the_domain() {
        let schedule = ProportionalSchedule::with_base(3, 5.0 / 3.0, 10.0).unwrap();
        let cf = ClosedForm::new(&schedule);
        assert!(cf.visit_time(5.0, 1).is_err());
        let t = cf.visit_time(10.0, 1).unwrap();
        // Scale invariance: 10x the unit-base answer at x = 1.
        let unit = ProportionalSchedule::new(3, 5.0 / 3.0).unwrap();
        let unit_t = ClosedForm::new(&unit).visit_time(1.0, 1).unwrap();
        assert!(approx_eq(t, 10.0 * unit_t, 1e-9));
    }

    #[test]
    fn negative_side_uses_half_cycle_offset() {
        // For even n the negative ladder aligns with integer powers; for
        // odd n it interleaves at half-integer powers. Check against the
        // fleet at a point just past the first negative turning point.
        for n in [3usize, 4] {
            let f = n - 2;
            let params = Params::new(n, f).unwrap();
            let alg = Algorithm::design(params).unwrap();
            let schedule = alg.schedule().unwrap();
            let cf = ClosedForm::new(schedule);
            let first_negative = schedule.ratio().powf(n as f64 / 2.0);
            let fleet = fleet_for(&alg, first_negative * 4.0);
            let x = -(first_negative * (1.0 + 1e-9));
            let exact = cf.visit_time(x, f).unwrap();
            let numeric = fleet.visit_time(x, f + 1).unwrap();
            assert!(approx_eq(exact, numeric, 1e-6), "n = {n}: closed {exact} vs fleet {numeric}");
        }
    }
}
