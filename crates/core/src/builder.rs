//! A builder for proportional schedules ([C-BUILDER]): configure by
//! whichever parameter is natural — cone slope `beta`, expansion factor
//! `kappa`, or proportionality ratio `r` — and let the builder derive
//! the rest.
//!
//! The three parameterizations are linked by
//! `kappa = (beta + 1)/(beta - 1)` and `r = kappa^(2/n)`, so exactly
//! one of them must be supplied.

use crate::error::{Error, Result};
use crate::schedule::ProportionalSchedule;

/// Builder for [`ProportionalSchedule`].
///
/// ```
/// use faultline_core::builder::ScheduleBuilder;
/// // A(3, 1) three equivalent ways:
/// let by_beta = ScheduleBuilder::new(3).beta(5.0 / 3.0).build()?;
/// let by_kappa = ScheduleBuilder::new(3).expansion_factor(4.0).build()?;
/// let by_ratio = ScheduleBuilder::new(3).ratio(4.0_f64.powf(2.0 / 3.0)).build()?;
/// assert!((by_beta.beta() - by_kappa.beta()).abs() < 1e-12);
/// assert!((by_beta.beta() - by_ratio.beta()).abs() < 1e-12);
/// # Ok::<(), faultline_core::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleBuilder {
    n: usize,
    base: f64,
    shape: Option<Shape>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Shape {
    Beta(f64),
    Kappa(f64),
    Ratio(f64),
    OptimalFor { f: usize },
}

impl ScheduleBuilder {
    /// Starts a builder for `n` robots with `base = 1`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        ScheduleBuilder { n, base: 1.0, shape: None }
    }

    /// Sets the cone slope `beta` directly.
    #[must_use]
    pub fn beta(mut self, beta: f64) -> Self {
        self.shape = Some(Shape::Beta(beta));
        self
    }

    /// Sets the per-robot expansion factor `kappa` (`beta` is derived
    /// as `(kappa + 1)/(kappa - 1)`).
    #[must_use]
    pub fn expansion_factor(mut self, kappa: f64) -> Self {
        self.shape = Some(Shape::Kappa(kappa));
        self
    }

    /// Sets the interleaved proportionality ratio `r` (`kappa = r^(n/2)`).
    #[must_use]
    pub fn ratio(mut self, r: f64) -> Self {
        self.shape = Some(Shape::Ratio(r));
        self
    }

    /// Uses the Theorem 1 optimal `beta* = (4f+4)/n - 1` for a fault
    /// budget `f` (requires `f < n < 2f + 2` at build time).
    #[must_use]
    pub fn optimal_for_faults(mut self, f: usize) -> Self {
        self.shape = Some(Shape::OptimalFor { f });
        self
    }

    /// Sets the normalization `base` (robot `a_0`'s reference turning
    /// point; default 1).
    #[must_use]
    pub fn base(mut self, base: f64) -> Self {
        self.base = base;
        self
    }

    /// Builds the schedule.
    ///
    /// # Errors
    ///
    /// Returns an error when no shape parameter was supplied, the
    /// derived `beta` is not above 1, `n == 0`, or `base <= 0`.
    pub fn build(&self) -> Result<ProportionalSchedule> {
        let shape = self.shape.ok_or_else(|| {
            Error::domain(
                "schedule builder needs exactly one of beta / expansion_factor / ratio / \
                 optimal_for_faults",
            )
        })?;
        let beta = match shape {
            Shape::Beta(beta) => beta,
            Shape::Kappa(kappa) => {
                if !(kappa > 1.0) || !kappa.is_finite() {
                    return Err(Error::domain(format!(
                        "expansion factor must exceed 1, got {kappa}"
                    )));
                }
                (kappa + 1.0) / (kappa - 1.0)
            }
            Shape::Ratio(r) => {
                if !(r > 1.0) || !r.is_finite() {
                    return Err(Error::domain(format!(
                        "proportionality ratio must exceed 1, got {r}"
                    )));
                }
                let kappa = r.powf(self.n as f64 / 2.0);
                (kappa + 1.0) / (kappa - 1.0)
            }
            Shape::OptimalFor { f } => {
                let params = crate::params::Params::new(self.n, f)?;
                crate::ratio::optimal_beta(params)?
            }
        };
        ProportionalSchedule::with_base(self.n, beta, self.base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::approx_eq;

    #[test]
    fn requires_a_shape_parameter() {
        assert!(ScheduleBuilder::new(3).build().is_err());
    }

    #[test]
    fn three_parameterizations_agree() {
        let n = 5;
        let beta = 1.4_f64;
        let kappa = (beta + 1.0) / (beta - 1.0);
        let r = kappa.powf(2.0 / n as f64);
        let a = ScheduleBuilder::new(n).beta(beta).build().unwrap();
        let b = ScheduleBuilder::new(n).expansion_factor(kappa).build().unwrap();
        let c = ScheduleBuilder::new(n).ratio(r).build().unwrap();
        assert!(approx_eq(a.beta(), b.beta(), 1e-12));
        assert!(approx_eq(a.beta(), c.beta(), 1e-12));
        assert!(approx_eq(a.ratio(), r, 1e-12));
    }

    #[test]
    fn optimal_shape_matches_theorem1() {
        let s = ScheduleBuilder::new(3).optimal_for_faults(1).build().unwrap();
        assert!(approx_eq(s.beta(), 5.0 / 3.0, 1e-12));
        // Out of regime: (4, 1) is two-group.
        assert!(ScheduleBuilder::new(4).optimal_for_faults(1).build().is_err());
    }

    #[test]
    fn base_is_threaded_through() {
        let s = ScheduleBuilder::new(3).beta(2.0).base(5.0).build().unwrap();
        assert_eq!(s.base(), 5.0);
        assert!(ScheduleBuilder::new(3).beta(2.0).base(0.0).build().is_err());
    }

    #[test]
    fn invalid_shapes_rejected() {
        assert!(ScheduleBuilder::new(3).beta(1.0).build().is_err());
        assert!(ScheduleBuilder::new(3).expansion_factor(0.9).build().is_err());
        assert!(ScheduleBuilder::new(3).ratio(1.0).build().is_err());
        assert!(ScheduleBuilder::new(0).beta(2.0).build().is_err());
    }

    #[test]
    fn last_shape_wins() {
        let s = ScheduleBuilder::new(3).beta(9.0).expansion_factor(4.0).build().unwrap();
        assert!(approx_eq(s.beta(), 5.0 / 3.0, 1e-12));
    }
}
