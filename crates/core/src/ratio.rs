//! Closed-form competitive-ratio analytics: Theorem 1, its optimal cone
//! parameter `beta*`, Corollary 1 and the asymptotic expressions plotted
//! in Figure 5.

use crate::error::{Error, Result};
use crate::params::{Params, Regime};

/// Competitive ratio of the proportional schedule `S_beta(n)` against
/// `f` faulty robots (Lemma 5):
///
/// ```text
/// CR(beta) = (beta+1)^((2f+2)/n) * (beta-1)^(1-(2f+2)/n) + 1
/// ```
///
/// # Errors
///
/// Returns [`Error::InvalidBeta`] for `beta <= 1`.
///
/// ```
/// use faultline_core::{ratio, Params};
/// let p = Params::new(4, 2)?;
/// // beta* = 2 gives 3^(3/2) + 1 ≈ 6.196.
/// assert!((ratio::cr_of_beta(p, 2.0)? - 6.196).abs() < 1e-3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn cr_of_beta(params: Params, beta: f64) -> Result<f64> {
    if !beta.is_finite() || beta <= 1.0 {
        return Err(Error::InvalidBeta { beta });
    }
    let e = params.exponent();
    Ok((beta + 1.0).powf(e) * (beta - 1.0).powf(1.0 - e) + 1.0)
}

/// The optimal cone parameter `beta* = (4f+4)/n - 1` minimizing
/// [`cr_of_beta`] (derived by setting `F'(beta) = 0` in Section 3).
///
/// # Errors
///
/// Returns [`Error::InvalidParameters`] when the parameters are not in
/// the proportional regime (`n >= 2f + 2` gives `beta* <= 1`, where the
/// cone degenerates and the two-group strategy applies instead).
pub fn optimal_beta(params: Params) -> Result<f64> {
    if params.regime() != Regime::Proportional {
        return Err(Error::invalid_params(
            params.n(),
            params.f(),
            "beta* is only defined in the proportional regime f < n < 2f + 2",
        ));
    }
    Ok((4 * params.f() + 4) as f64 / params.n() as f64 - 1.0)
}

/// The competitive ratio of the paper's algorithm `A(n, f)`:
/// 1 in the two-group regime, otherwise Theorem 1's expression
///
/// ```text
/// ((4f+4)/n)^((2f+2)/n) * ((4f+4)/n - 2)^(1-(2f+2)/n) + 1.
/// ```
#[must_use]
pub fn cr_upper(params: Params) -> f64 {
    match params.regime() {
        Regime::TwoGroup => 1.0,
        Regime::Proportional => {
            let beta = (4 * params.f() + 4) as f64 / params.n() as f64 - 1.0;
            cr_of_beta(params, beta).expect("beta* > 1 in the proportional regime")
        }
    }
}

/// The expansion factor `(beta* + 1)/(beta* - 1) = (4f+4)/(4f+4-2n)` of
/// `A(n, f)`.
///
/// # Errors
///
/// As [`optimal_beta`].
pub fn expansion_factor(params: Params) -> Result<f64> {
    let beta = optimal_beta(params)?;
    Ok((beta + 1.0) / (beta - 1.0))
}

/// The proportionality ratio `r = kappa^(2/n)` of `A(n, f)`.
///
/// # Errors
///
/// As [`optimal_beta`].
pub fn proportionality_ratio(params: Params) -> Result<f64> {
    Ok(expansion_factor(params)?.powf(2.0 / params.n() as f64))
}

/// Figure 5 (left): competitive ratio of `A(2f+1, f)` as a function of
/// `n = 2f + 1`,
///
/// ```text
/// (2 + 2/n)^(1 + 1/n) * (2/n)^(-1/n) + 1,
/// ```
///
/// which tends to 3 as `n → ∞`.
///
/// # Errors
///
/// Returns [`Error::InvalidParameters`] unless `n` is odd and at least 3
/// (so that `n = 2f + 1` for some `f >= 1`).
pub fn cr_odd_n(n: usize) -> Result<f64> {
    if n < 3 || n.is_multiple_of(2) {
        return Err(Error::invalid_params(
            n,
            0,
            "cr_odd_n requires odd n >= 3 (n = 2f + 1 with f >= 1)",
        ));
    }
    let nf = n as f64;
    Ok((2.0 + 2.0 / nf).powf(1.0 + 1.0 / nf) * (2.0 / nf).powf(-1.0 / nf) + 1.0)
}

/// Figure 5 (right): the asymptotic competitive ratio when a fixed
/// proportion `a = n/f` of the robots may be reliable, `1 < a <= 2`:
///
/// ```text
/// (4/a)^(2/a) * (4/a - 2)^(1 - 2/a) + 1.
/// ```
///
/// At `a = 2` the expression is interpreted by continuity as 3 (the
/// `0^0`-style limit: `(1 - 2/a) ln(4/a - 2) → 0`).
///
/// # Errors
///
/// Returns [`Error::Domain`] for `a` outside `(1, 2]`.
pub fn asymptotic_cr(a: f64) -> Result<f64> {
    if !(a > 1.0 && a <= 2.0) {
        return Err(Error::domain(format!("asymptotic_cr requires 1 < a <= 2, got {a}")));
    }
    if a == 2.0 {
        return Ok(3.0);
    }
    Ok((4.0 / a).powf(2.0 / a) * (4.0 / a - 2.0).powf(1.0 - 2.0 / a) + 1.0)
}

/// Corollary 1: the upper bound `3 + 4 ln n / n` (excluding `O(1)/n`
/// terms) on the competitive ratio of `A(2f+1, f)`.
///
/// # Errors
///
/// As [`cr_odd_n`].
pub fn corollary1_upper(n: usize) -> Result<f64> {
    if n < 3 || n.is_multiple_of(2) {
        return Err(Error::invalid_params(n, 0, "corollary 1 applies to odd n >= 3"));
    }
    let nf = n as f64;
    Ok(3.0 + 4.0 * nf.ln() / nf)
}

/// Numerically minimizes [`cr_of_beta`] over `beta` by golden-section
/// search; used to cross-check the closed form [`optimal_beta`].
///
/// # Errors
///
/// Propagates solver failures and regime errors.
pub fn optimal_beta_numeric(params: Params) -> Result<f64> {
    if params.regime() != Regime::Proportional {
        return Err(Error::invalid_params(
            params.n(),
            params.f(),
            "numeric beta search is only meaningful in the proportional regime",
        ));
    }
    let objective = |beta: f64| cr_of_beta(params, beta).unwrap_or(f64::INFINITY);
    crate::numeric::golden_min(objective, 1.0 + 1e-9, 64.0, 1e-12, 500)
}

/// Fleet planning: the smallest number of robots guaranteeing a
/// competitive ratio at most `target_cr` while tolerating `f` faults.
///
/// `cr_upper` is strictly decreasing in `n` for fixed `f` (down to 1 at
/// `n = 2f + 2`), so a linear scan from `n = f + 1` terminates.
///
/// # Errors
///
/// Returns [`Error::Domain`] when `target_cr < 1` (unachievable by any
/// fleet).
pub fn min_robots(f: usize, target_cr: f64) -> Result<usize> {
    if !(target_cr >= 1.0) {
        return Err(Error::domain(format!(
            "no fleet achieves a competitive ratio below 1, requested {target_cr}"
        )));
    }
    Ok((f + 1..=2 * f + 2)
        .find(|&n| cr_upper(Params::new(n, f).expect("n > f by construction")) <= target_cr)
        .unwrap_or(2 * f + 2))
}

/// Fleet planning: the largest fault budget `f` a fleet of `n` robots
/// can tolerate while keeping the competitive ratio at most
/// `target_cr`. Returns `None` when even `f = 0` misses the target
/// (impossible, since `f = 0` achieves 1 for `n >= 2`, and 9 for
/// `n = 1`).
///
/// # Errors
///
/// Returns [`Error::Domain`] when `target_cr < 1`.
pub fn max_faults(n: usize, target_cr: f64) -> Result<Option<usize>> {
    if !(target_cr >= 1.0) {
        return Err(Error::domain(format!(
            "no fleet achieves a competitive ratio below 1, requested {target_cr}"
        )));
    }
    // cr_upper is increasing in f for fixed n: scan downward.
    Ok((0..n).rev().find(|&f| cr_upper(Params::new(n, f).expect("f < n")) <= target_cr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::approx_eq;

    fn p(n: usize, f: usize) -> Params {
        Params::new(n, f).unwrap()
    }

    #[test]
    fn theorem1_matches_paper_table() {
        // (n, f, expected CR) from Table 1.
        let cases = [
            (2, 1, 9.0),
            (3, 1, 5.233),
            (3, 2, 9.0),
            (4, 2, 6.196),
            (4, 3, 9.0),
            (5, 2, 4.434),
            (5, 3, 6.76),
            (5, 4, 9.0),
            (11, 5, 3.736),
            (41, 20, 3.24),
        ];
        for (n, f, expect) in cases {
            let cr = cr_upper(p(n, f));
            assert!(
                (cr - expect).abs() < 5e-3,
                "(n = {n}, f = {f}): CR = {cr}, paper says {expect}"
            );
        }
    }

    #[test]
    fn two_group_regime_is_one() {
        assert_eq!(cr_upper(p(4, 1)), 1.0);
        assert_eq!(cr_upper(p(5, 1)), 1.0);
        assert_eq!(cr_upper(p(100, 3)), 1.0);
    }

    #[test]
    fn optimal_beta_closed_form() {
        assert!(approx_eq(optimal_beta(p(3, 1)).unwrap(), 5.0 / 3.0, 1e-12));
        assert!(approx_eq(optimal_beta(p(2, 1)).unwrap(), 3.0, 1e-12));
        assert!(approx_eq(optimal_beta(p(4, 2)).unwrap(), 2.0, 1e-12));
        assert!(optimal_beta(p(4, 1)).is_err());
    }

    #[test]
    fn optimal_beta_agrees_with_numeric_minimum() {
        for (n, f) in [(2, 1), (3, 1), (3, 2), (4, 2), (5, 2), (5, 3), (11, 5), (41, 20)] {
            let params = p(n, f);
            let closed = optimal_beta(params).unwrap();
            let numeric = optimal_beta_numeric(params).unwrap();
            assert!(
                (closed - numeric).abs() < 1e-5,
                "(n = {n}, f = {f}): beta* = {closed}, numeric = {numeric}"
            );
        }
    }

    #[test]
    fn expansion_factors_match_table1() {
        let cases = [
            (2, 1, 2.0),
            (3, 1, 4.0),
            (3, 2, 2.0),
            (4, 2, 3.0),
            (5, 2, 6.0),
            (5, 3, 8.0 / 3.0),
            (5, 4, 2.0),
            (11, 5, 12.0),
            (41, 20, 42.0),
        ];
        for (n, f, expect) in cases {
            let kappa = expansion_factor(p(n, f)).unwrap();
            assert!(
                approx_eq(kappa, expect, 1e-9),
                "(n = {n}, f = {f}): kappa = {kappa}, expected {expect}"
            );
        }
    }

    #[test]
    fn expansion_factor_for_n_2f_plus_1_is_n_plus_1() {
        // Paper, Section 1.1: "for n = 2f+1 ... the expansion factor ...
        // is always n + 1".
        for f in 1..40usize {
            let n = 2 * f + 1;
            let kappa = expansion_factor(p(n, f)).unwrap();
            assert!(approx_eq(kappa, (n + 1) as f64, 1e-9), "f = {f}");
        }
    }

    #[test]
    fn expansion_factor_for_n_f_plus_1_is_2() {
        for f in 1..40usize {
            let kappa = expansion_factor(p(f + 1, f)).unwrap();
            assert!(approx_eq(kappa, 2.0, 1e-9), "f = {f}");
        }
    }

    #[test]
    fn n_equals_f_plus_one_gives_nine() {
        for f in 0..40usize {
            let cr = cr_upper(p(f + 1, f));
            assert!(approx_eq(cr, 9.0, 1e-9), "f = {f}: CR = {cr}");
        }
    }

    #[test]
    fn cr_odd_n_matches_general_formula() {
        for f in 1..30usize {
            let n = 2 * f + 1;
            let from_general = cr_upper(p(n, f));
            let from_odd = cr_odd_n(n).unwrap();
            assert!(
                approx_eq(from_general, from_odd, 1e-10),
                "n = {n}: {from_general} vs {from_odd}"
            );
        }
    }

    #[test]
    fn cr_odd_n_tends_to_three_from_above() {
        let mut prev = f64::INFINITY;
        for n in (3..2001usize).step_by(2) {
            let cr = cr_odd_n(n).unwrap();
            assert!(cr > 3.0, "n = {n}");
            assert!(cr < prev, "sequence must decrease at n = {n}");
            prev = cr;
        }
        assert!(prev < 3.03, "CR(1999) = {prev} should be close to 3");
    }

    #[test]
    fn corollary1_bounds_cr_odd_n_asymptotically() {
        for n in (31..500usize).step_by(2) {
            let cr = cr_odd_n(n).unwrap();
            // The paper's bound excludes O(1)/n terms; allow that slack.
            let bound = corollary1_upper(n).unwrap() + 6.0 / n as f64;
            assert!(cr <= bound, "n = {n}: CR = {cr} > bound {bound}");
        }
    }

    #[test]
    fn cr_odd_n_rejects_even_or_small() {
        assert!(cr_odd_n(4).is_err());
        assert!(cr_odd_n(1).is_err());
        assert!(corollary1_upper(2).is_err());
    }

    #[test]
    fn asymptotic_cr_limits() {
        // a -> 1+: ratio approaches the single-group value 9.
        assert!((asymptotic_cr(1.0 + 1e-9).unwrap() - 9.0).abs() < 1e-6);
        // a = 2: ratio is 3 by continuity.
        assert_eq!(asymptotic_cr(2.0).unwrap(), 3.0);
        // Approaching 2 from below converges to 3.
        assert!((asymptotic_cr(2.0 - 1e-7).unwrap() - 3.0).abs() < 1e-4);
        assert!(asymptotic_cr(1.0).is_err());
        assert!(asymptotic_cr(2.5).is_err());
    }

    #[test]
    fn asymptotic_cr_is_monotone_decreasing() {
        let grid = crate::numeric::linspace(1.01, 2.0, 200);
        for w in grid.windows(2) {
            let hi = asymptotic_cr(w[0]).unwrap();
            let lo = asymptotic_cr(w[1]).unwrap();
            assert!(hi > lo, "not decreasing at a = {}", w[0]);
        }
    }

    #[test]
    fn cr_of_beta_validates() {
        assert!(cr_of_beta(p(3, 1), 1.0).is_err());
        assert!(cr_of_beta(p(3, 1), f64::NAN).is_err());
    }

    #[test]
    fn min_robots_planning() {
        // Tolerating 2 faults: ratio 1 needs 6 robots; ratio 5 needs 5;
        // ratio 7 is met by 4 (CR 6.196); ratio 9 by 3 (CR 9).
        assert_eq!(min_robots(2, 1.0).unwrap(), 6);
        assert_eq!(min_robots(2, 5.0).unwrap(), 5);
        assert_eq!(min_robots(2, 7.0).unwrap(), 4);
        assert_eq!(min_robots(2, 9.0).unwrap(), 3);
        assert!(min_robots(2, 0.5).is_err());
        // The returned fleet really meets the target, and one fewer
        // robot really does not.
        for f in 1..12usize {
            for target in [1.0, 3.9, 5.0, 9.0] {
                let n = min_robots(f, target).unwrap();
                assert!(cr_upper(p(n, f)) <= target, "f = {f}, target = {target}");
                if n > f + 1 {
                    assert!(cr_upper(p(n - 1, f)) > target, "f = {f}, target = {target}");
                }
            }
        }
    }

    #[test]
    fn max_faults_planning() {
        // 6 robots: ratio 1 tolerates f = 2; ratio 5 tolerates f = 3
        // (CR(6,3) = 4.49 <= 5? compute: beta* = 16/6-1 = 5/3 ... the
        // assertion below checks the invariant rather than a constant).
        for n in 2..14usize {
            for target in [1.0, 4.0, 9.0] {
                if let Some(f) = max_faults(n, target).unwrap() {
                    assert!(cr_upper(p(n, f)) <= target, "n = {n}, target = {target}");
                    if f + 1 < n {
                        assert!(
                            cr_upper(p(n, f + 1)) > target,
                            "n = {n}, target = {target}: f + 1 also meets it"
                        );
                    }
                }
            }
        }
        assert_eq!(max_faults(6, 1.0).unwrap(), Some(2));
        // Ratio 9 is achievable with every fault budget up to n - 1.
        assert_eq!(max_faults(5, 9.0).unwrap(), Some(4));
        assert!(max_faults(3, 0.99).is_err());
    }

    #[test]
    fn asymptotic_formula_is_limit_of_finite_formula() {
        // For a = n/f fixed, cr_upper(n, f) -> asymptotic_cr(a).
        let a = 1.5;
        let mut last_gap = f64::INFINITY;
        for f in [10usize, 100, 1000] {
            let n = (a * f as f64).round() as usize;
            let finite = cr_upper(p(n, f));
            let asym = asymptotic_cr(a).unwrap();
            let gap = (finite - asym).abs();
            assert!(gap < last_gap, "gap must shrink (f = {f})");
            last_gap = gap;
        }
        assert!(last_gap < 1e-2);
    }
}
