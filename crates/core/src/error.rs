//! Error types for the `faultline-core` crate.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// The error type returned by fallible operations in `faultline-core`.
///
/// Every public constructor and solver validates its inputs
/// ([C-VALIDATE]) and reports failures through this type rather than
/// panicking.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The `(n, f)` robot/fault configuration is not solvable or not
    /// well-formed (for example `n <= f`, which makes `f + 1` distinct
    /// visits impossible).
    InvalidParameters {
        /// Total number of robots requested.
        n: usize,
        /// Number of tolerated faulty robots requested.
        f: usize,
        /// Human-readable explanation of the rejection.
        reason: String,
    },
    /// A cone parameter `beta` outside the open interval `(1, ∞)` was
    /// supplied; the cone `C_beta` is only defined for `beta > 1`.
    InvalidBeta {
        /// The rejected value.
        beta: f64,
    },
    /// A numerical routine (root finder, minimizer) failed to converge
    /// or was given an invalid bracket.
    Numerical {
        /// Description of the failing computation.
        what: String,
    },
    /// A trajectory violated a structural invariant (non-monotone time,
    /// speed above 1, empty waypoint list, ...).
    InvalidTrajectory {
        /// Description of the violated invariant.
        reason: String,
    },
    /// A query was made outside the domain on which the object is
    /// defined (for example a target closer than the minimum distance).
    Domain {
        /// Description of the domain violation.
        what: String,
    },
    /// A quantity that must be a finite number was NaN or infinite
    /// (a coordinate, a time, a probability, a degradation factor).
    /// Kept separate from [`Error::Domain`] so callers can distinguish
    /// "out of range" from "not a number at all" — the latter usually
    /// indicates corrupted input (e.g. a hand-edited trace file).
    NonFinite {
        /// Name of the offending quantity.
        what: String,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, fmt: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParameters { n, f, reason } => {
                write!(fmt, "invalid parameters (n = {n}, f = {f}): {reason}")
            }
            Error::InvalidBeta { beta } => {
                write!(fmt, "invalid cone parameter beta = {beta}; beta > 1 is required")
            }
            Error::Numerical { what } => write!(fmt, "numerical failure: {what}"),
            Error::InvalidTrajectory { reason } => write!(fmt, "invalid trajectory: {reason}"),
            Error::Domain { what } => write!(fmt, "domain error: {what}"),
            Error::NonFinite { what, value } => {
                write!(fmt, "non-finite value: {what} = {value}")
            }
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Builds an [`Error::InvalidParameters`] with the given reason.
    pub fn invalid_params(n: usize, f: usize, reason: impl Into<String>) -> Self {
        Error::InvalidParameters { n, f, reason: reason.into() }
    }

    /// Builds an [`Error::Numerical`] with the given description.
    pub fn numerical(what: impl Into<String>) -> Self {
        Error::Numerical { what: what.into() }
    }

    /// Builds an [`Error::InvalidTrajectory`] with the given reason.
    pub fn trajectory(reason: impl Into<String>) -> Self {
        Error::InvalidTrajectory { reason: reason.into() }
    }

    /// Builds an [`Error::Domain`] with the given description.
    pub fn domain(what: impl Into<String>) -> Self {
        Error::Domain { what: what.into() }
    }

    /// Builds an [`Error::NonFinite`] for the named quantity.
    pub fn non_finite(what: impl Into<String>, value: f64) -> Self {
        Error::NonFinite { what: what.into(), value }
    }

    /// Checks that `value` is finite, reporting [`Error::NonFinite`]
    /// for the named quantity otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NonFinite`] when `value` is NaN or infinite.
    pub fn ensure_finite(what: &str, value: f64) -> Result<f64> {
        if value.is_finite() {
            Ok(value)
        } else {
            Err(Error::non_finite(what, value))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = Error::invalid_params(3, 5, "n must exceed f");
        let text = err.to_string();
        assert!(text.contains("n = 3"));
        assert!(text.contains("f = 5"));
        assert!(text.contains("n must exceed f"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn beta_error_mentions_value() {
        let err = Error::InvalidBeta { beta: 0.5 };
        assert!(err.to_string().contains("0.5"));
    }

    #[test]
    fn helpers_build_expected_variants() {
        assert!(matches!(Error::numerical("x"), Error::Numerical { .. }));
        assert!(matches!(Error::trajectory("x"), Error::InvalidTrajectory { .. }));
        assert!(matches!(Error::domain("x"), Error::Domain { .. }));
        assert!(matches!(Error::non_finite("x", f64::NAN), Error::NonFinite { .. }));
    }

    #[test]
    fn ensure_finite_passes_numbers_and_rejects_nan() {
        assert_eq!(Error::ensure_finite("t", 2.5).unwrap(), 2.5);
        assert!(Error::ensure_finite("t", f64::NAN).is_err());
        assert!(Error::ensure_finite("t", f64::INFINITY).is_err());
        let err = Error::ensure_finite("latency", f64::INFINITY).unwrap_err();
        assert!(err.to_string().contains("latency"));
    }
}
