//! Extension: search with a **known upper bound** on the target
//! distance (after Bose, De Carufel and Durocher, *Revisiting the
//! problem of searching on a line*, cited by the paper as [10]).
//!
//! When the robots know `|x| <= D`, zig-zag excursions past `D` are
//! wasted. The bounded variant clamps every turning point of the
//! proportional schedule to `±D`: once a robot reaches the boundary it
//! oscillates over the full interval `[-D, D]`, revisiting every point.
//! The bounded competitive ratio `sup_{1 <= |x| <= D} T_(f+1)(x)/|x|`
//! is never worse than the unbounded one, approaches it as `D` grows,
//! and improves sharply for small `D` — quantified by
//! `faultline-analysis`'s bounded-distance experiment.

use crate::algorithm::Algorithm;
use crate::cone::Cone;
use crate::error::{Error, Result};
use crate::params::Params;
use crate::plan::{check_horizon, TrajectoryPlan};
use crate::spacetime::SpaceTime;
use crate::trajectory::PiecewiseTrajectory;
use crate::zigzag::ZigZagPlan;

/// A zig-zag plan whose excursions are clamped to `[-bound, bound]`.
///
/// Inside the bound it reproduces the cone zig-zag exactly; the first
/// turning point that would exceed the bound is moved onto it, after
/// which the robot shuttles between `-bound` and `+bound` at unit
/// speed forever.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClampedZigZagPlan {
    inner: ZigZagPlan,
    bound: f64,
}

impl ClampedZigZagPlan {
    /// Clamps `plan` to `[-bound, bound]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] when the bound is not finite, below 1
    /// (targets live at distance at least 1), or smaller than the
    /// plan's seed excursion.
    pub fn new(plan: ZigZagPlan, bound: f64) -> Result<Self> {
        if !bound.is_finite() || bound < 1.0 {
            return Err(Error::domain(format!("distance bound must be >= 1, got {bound}")));
        }
        if plan.seed_x().abs() > bound {
            return Err(Error::domain(format!(
                "seed excursion {} already exceeds the bound {bound}",
                plan.seed_x()
            )));
        }
        Ok(ClampedZigZagPlan { inner: plan, bound })
    }

    /// The distance bound `D`.
    #[must_use]
    pub fn bound(&self) -> f64 {
        self.bound
    }

    /// The unclamped plan.
    #[must_use]
    pub fn inner(&self) -> &ZigZagPlan {
        &self.inner
    }
}

impl TrajectoryPlan for ClampedZigZagPlan {
    fn materialize(&self, horizon: f64) -> Result<PiecewiseTrajectory> {
        check_horizon(horizon)?;
        let cone: Cone = self.inner.cone();
        let seed = self.inner.seed();
        let mut waypoints = vec![SpaceTime::origin()];

        if horizon <= seed.t {
            let x = self.inner.seed_x().signum() * horizon / cone.beta();
            waypoints.push(SpaceTime::new(x, horizon));
            return PiecewiseTrajectory::new(waypoints);
        }
        waypoints.push(seed);

        // Phase 1: follow the cone zig-zag while turning points stay
        // inside the bound.
        let mut current = seed;
        let clamp_start = loop {
            let next = cone.next_turning_point(current);
            if next.x.abs() > self.bound {
                // Head towards the clamped position instead.
                let x = next.x.signum() * self.bound;
                let t = current.t + (x - current.x).abs();
                break SpaceTime::new(x, t);
            }
            if next.t >= horizon {
                let dir = (next.x - current.x).signum();
                waypoints.push(SpaceTime::new(current.x + dir * (horizon - current.t), horizon));
                return PiecewiseTrajectory::new(waypoints);
            }
            waypoints.push(next);
            current = next;
        };

        // Phase 2: shuttle between the bounds at unit speed.
        let mut current = clamp_start;
        loop {
            if current.t >= horizon {
                let prev = waypoints.last().expect("at least the seed is present");
                let dir = (current.x - prev.x).signum();
                waypoints.push(SpaceTime::new(prev.x + dir * (horizon - prev.t), horizon));
                return PiecewiseTrajectory::new(waypoints);
            }
            waypoints.push(current);
            current = SpaceTime::new(-current.x, current.t + 2.0 * self.bound);
        }
    }

    fn label(&self) -> String {
        format!("{} clamped to ±{}", self.inner.label(), self.bound)
    }
}

/// The bounded-distance variant of the paper's algorithm: every robot
/// of `A(n, f)` (or of the two-group strategy, which needs no change)
/// has its plan clamped to `[-bound, bound]`.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundedAlgorithm {
    algorithm: Algorithm,
    bound: f64,
}

impl BoundedAlgorithm {
    /// Designs the bounded variant for `params` with known distance
    /// bound `D = bound`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] for `bound < 1` and propagates design
    /// failures.
    pub fn design(params: Params, bound: f64) -> Result<Self> {
        if !bound.is_finite() || bound < 1.0 {
            return Err(Error::domain(format!("distance bound must be >= 1, got {bound}")));
        }
        Ok(BoundedAlgorithm { algorithm: Algorithm::design(params)?, bound })
    }

    /// The distance bound `D`.
    #[must_use]
    pub fn bound(&self) -> f64 {
        self.bound
    }

    /// The underlying unbounded algorithm.
    #[must_use]
    pub fn unbounded(&self) -> &Algorithm {
        &self.algorithm
    }

    /// Per-robot plans with clamped excursions.
    ///
    /// # Errors
    ///
    /// Propagates clamping failures (cannot happen for bounds `>= 1`
    /// since all seeds have magnitude `< 1`... except robot `a_0`, whose
    /// seed sits exactly at 1, which any valid bound accommodates).
    pub fn plans(&self) -> Result<Vec<Box<dyn TrajectoryPlan>>> {
        match self.algorithm.schedule() {
            None => Ok(self.algorithm.plans()), // two-group: already minimal
            Some(schedule) => schedule
                .plans()
                .into_iter()
                .map(|p| {
                    Ok(Box::new(ClampedZigZagPlan::new(p, self.bound)?) as Box<dyn TrajectoryPlan>)
                })
                .collect(),
        }
    }

    /// A horizon sufficient to confirm every target `1 <= |x| <= bound`:
    /// after at most the unbounded horizon, every robot has swept the
    /// whole interval `f + 1` times over.
    #[must_use]
    pub fn required_horizon(&self) -> f64 {
        let base = self
            .algorithm
            .required_horizon(self.bound.max(1.0 + 1e-9) * 1.001)
            .unwrap_or(16.0 * self.bound);
        // Add full shuttle periods so clamped robots re-cover the
        // interval even if clamping bit early.
        base + 2.0 * (self.algorithm.params().f() as f64 + 2.0) * 2.0 * self.bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::Fleet;
    use crate::ratio;

    fn clamped(beta: f64, seed: f64, bound: f64) -> ClampedZigZagPlan {
        let plan = ZigZagPlan::new(Cone::new(beta).unwrap(), seed).unwrap();
        ClampedZigZagPlan::new(plan, bound).unwrap()
    }

    #[test]
    fn validates_bound() {
        let plan = ZigZagPlan::new(Cone::new(3.0).unwrap(), 1.0).unwrap();
        assert!(ClampedZigZagPlan::new(plan, 0.5).is_err());
        assert!(ClampedZigZagPlan::new(plan, f64::NAN).is_err());
        let far_seed = ZigZagPlan::new(Cone::new(3.0).unwrap(), 5.0).unwrap();
        assert!(ClampedZigZagPlan::new(far_seed, 2.0).is_err());
    }

    #[test]
    fn matches_unclamped_before_the_bound_bites() {
        let plan = clamped(3.0, 1.0, 100.0);
        let free = plan.inner();
        let t_clamped = plan.materialize(50.0).unwrap();
        let t_free = free.materialize(50.0).unwrap();
        // Doubling reaches ±excursions 1, -2, 4, -8, 16 < 100 by t = 50:
        // identical trajectories.
        for step in 0..500 {
            let t = 0.1 * step as f64;
            assert_eq!(t_clamped.position_at(t), t_free.position_at(t), "t = {t}");
        }
    }

    #[test]
    fn clamps_and_shuttles() {
        // Doubling clamped to ±3: turning points 1, -2, then 4 clamps
        // to 3, then shuttles -3, 3, -3...
        let plan = clamped(3.0, 1.0, 3.0);
        let traj = plan.materialize(60.0).unwrap();
        let turns: Vec<f64> = traj.turning_points().iter().map(|p| p.x).collect();
        assert_eq!(&turns[..3], &[1.0, -2.0, 3.0]);
        for &x in &turns[2..] {
            assert!((x.abs() - 3.0).abs() < 1e-12, "shuttle turning point {x}");
        }
        // All positions stay within the bound.
        for step in 0..600 {
            let t = 0.1 * step as f64;
            if let Some(x) = traj.position_at(t) {
                assert!(x.abs() <= 3.0 + 1e-12);
            }
        }
        // Speed stays legal.
        for seg in traj.segments() {
            assert!(seg.speed() <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn bounded_fleet_confirms_every_target_within_bound() {
        let params = Params::new(3, 1).unwrap();
        let bounded = BoundedAlgorithm::design(params, 5.0).unwrap();
        let horizon = bounded.required_horizon();
        let fleet = Fleet::from_plans(&bounded.plans().unwrap(), horizon).unwrap();
        for x in [1.0, -1.0, 2.5, -4.9, 5.0, -5.0] {
            assert!(
                fleet.visit_time(x, 2).is_some(),
                "target {x} unconfirmed within horizon {horizon}"
            );
        }
    }

    #[test]
    fn bounded_never_worse_than_unbounded() {
        let params = Params::new(3, 1).unwrap();
        let cr_free = ratio::cr_upper(params);
        for bound in [2.0, 5.0, 20.0] {
            let bounded = BoundedAlgorithm::design(params, bound).unwrap();
            let horizon = bounded.required_horizon();
            let fleet = Fleet::from_plans(&bounded.plans().unwrap(), horizon).unwrap();
            // Scan K over [1, bound] including turning-point limits.
            let targets =
                crate::coverage::adversarial_targets(&[1.0, bound], bound, 60, 1e-9).unwrap();
            let inside: Vec<f64> = targets.into_iter().filter(|x| x.abs() <= bound).collect();
            let scan = fleet.supremum(&inside, 2).unwrap();
            assert!(
                scan.ratio <= cr_free + 1e-6,
                "bound {bound}: bounded CR {} above unbounded {cr_free}",
                scan.ratio
            );
        }
    }

    #[test]
    fn tiny_bound_gives_strict_improvement() {
        // With D barely above 1, clamped robots return sooner and the
        // supremum strictly improves (the geometry near x = 1 still
        // costs, so the gain is measurable but not dramatic).
        let params = Params::new(3, 1).unwrap();
        let bounded = BoundedAlgorithm::design(params, 1.5).unwrap();
        let horizon = bounded.required_horizon();
        let fleet = Fleet::from_plans(&bounded.plans().unwrap(), horizon).unwrap();
        let targets: Vec<f64> =
            crate::numeric::linspace(1.0, 1.5, 41).into_iter().flat_map(|x| [x, -x]).collect();
        let scan = fleet.supremum(&targets, 2).unwrap();
        let cr_free = ratio::cr_upper(params);
        assert!(
            scan.ratio < cr_free - 0.1,
            "expected a strict improvement: bounded {} vs free {cr_free}",
            scan.ratio
        );
        // Targets right at the bound improve dramatically: the clamped
        // fleet confirms ±D much faster than the free schedule's ratio.
        let at_bound = fleet.ratio_at(1.5, 2).unwrap().unwrap();
        assert!(at_bound < cr_free - 0.5, "K(D) = {at_bound}");
    }

    #[test]
    fn two_group_regime_is_unchanged() {
        let params = Params::new(6, 2).unwrap();
        let bounded = BoundedAlgorithm::design(params, 4.0).unwrap();
        let plans = bounded.plans().unwrap();
        assert_eq!(plans.len(), 6);
        assert!(plans.iter().all(|p| p.label().starts_with("ray")));
    }

    #[test]
    fn bounded_design_validates() {
        let params = Params::new(3, 1).unwrap();
        assert!(BoundedAlgorithm::design(params, 0.9).is_err());
        assert!(BoundedAlgorithm::design(params, f64::INFINITY).is_err());
    }
}
