//! Exact critical-point enumeration over a positive target window.
//!
//! Lemma 3 says `K(x) = T_(f+1)(x) / |x|` is piecewise smooth with
//! discontinuities only at turning-point images. This module makes that
//! structure computable: project every waypoint of every materialized
//! trajectory onto the x-axis, and between two consecutive projections
//! ("cuts") each robot's visit times are *affine* functions of the
//! target position — a segment's x-span has waypoint projections as
//! endpoints, so over an open inter-cut interval the segment either
//! covers the whole interval or misses it entirely. `T_k(x)` is then a
//! k-th order statistic of affines, and its supremum over the interval
//! is attained at the interval endpoints or at pairwise crossings — a
//! finite, exact candidate set that replaces dense grid scans.
//!
//! The window `[lo, hi]` is one-sided (positive positions); callers
//! handle the negative half-line by [`mirrored`] trajectories. Beyond
//! `hi`, one extra interval `(hi, beyond)` is tracked, where `beyond`
//! is the smallest waypoint projection strictly past `hi`: evaluating
//! its affines *at* `hi` yields the exact right-hand limit of the visit
//! times at the window edge — the quantity the historical grid scan
//! approximated with `xmax * (1 + eps)` probes.

use crate::error::{Error, Result};
use crate::interval::Interval;
use crate::spacetime::SpaceTime;
use crate::trajectory::PiecewiseTrajectory;

/// A visit-time function `t(x) = slope * x + intercept`, valid for
/// target positions `x` inside one open inter-cut interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Affine {
    /// `dt/dx` along the covering segment; `|slope| >= 1` for moving
    /// unit-speed-bounded segments.
    pub slope: f64,
    /// Visit time extrapolated to `x = 0`.
    pub intercept: f64,
}

impl Affine {
    /// The visit time at position `x`.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// The position where `self` and `other` predict the same visit
    /// time, or `None` for parallel lines.
    #[must_use]
    pub fn crossing(&self, other: &Affine) -> Option<f64> {
        let ds = self.slope - other.slope;
        if ds == 0.0 {
            return None;
        }
        Some((other.intercept - self.intercept) / ds)
    }

    /// The position where the visit time reaches `t`, or `None` for a
    /// constant (zero-slope) function.
    #[must_use]
    pub fn position_of_time(&self, t: f64) -> Option<f64> {
        if self.slope == 0.0 {
            return None;
        }
        Some((t - self.intercept) / self.slope)
    }

    /// Outward-rounded enclosure of the visit time at the exact point
    /// `x`, mirroring [`Affine::eval`]'s rounding order (`mul` then
    /// `add`): contains both the real-arithmetic value and the `f64`
    /// evaluation at the same `x`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] for non-finite inputs.
    pub fn enclosure_at(&self, x: f64) -> Result<Interval> {
        Ok(Interval::around(self.slope * x)?.add_scalar(self.intercept))
    }

    /// Outward-rounded enclosure of `eval(x) / x` at the exact point
    /// `x` (see [`Interval::affine_ratio`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] for `x == 0` or non-finite inputs.
    pub fn ratio_enclosure(&self, x: f64) -> Result<Interval> {
        Interval::affine_ratio(self.slope, self.intercept, x)
    }

    /// Outward-rounded enclosure of `eval(x) / x` over every `x` in the
    /// zero-free interval `xs` (see [`Interval::affine_ratio_over`]) —
    /// used to bracket a supremum across an imprecisely known crossing.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] when `xs` contains zero.
    pub fn ratio_enclosure_over(&self, xs: Interval) -> Result<Interval> {
        Interval::affine_ratio_over(self.slope, self.intercept, xs)
    }

    /// An enclosure of the *true* crossing position of `self` and
    /// `other`: [`Affine::crossing`] rounds twice (`sub` then `div`),
    /// so the real crossing lies inside the outward-rounded quotient.
    /// `None` when the lines are parallel or the slope difference is so
    /// small that its enclosure straddles zero (the crossing position
    /// is then numerically unbounded and cannot be certified).
    #[must_use]
    pub fn crossing_enclosure(&self, other: &Affine) -> Option<Interval> {
        let ds = self.slope - other.slope;
        if ds == 0.0 {
            return None;
        }
        let num = Interval::around(other.intercept - self.intercept).ok()?;
        let den = Interval::around(ds).ok()?;
        num.div(den).ok()
    }

    fn from_segment(a: SpaceTime, b: SpaceTime) -> Affine {
        let slope = (b.t - a.t) / (b.x - a.x);
        Affine { slope, intercept: a.t - slope * a.x }
    }
}

/// The exact piecewise-affine structure of a fleet's visit times over
/// a positive window `[lo, hi]`, produced by [`first_visit_cover`] or
/// [`all_visit_cover`].
#[derive(Debug, Clone, PartialEq)]
pub struct WindowCover {
    /// Sorted, deduplicated critical points within `[lo, hi]`,
    /// including both window endpoints.
    cuts: Vec<f64>,
    /// The smallest waypoint projection strictly beyond `hi`, if any
    /// robot's trajectory reaches past the window.
    beyond: Option<f64>,
    /// `intervals[i]` holds the affines valid on the open interval
    /// `(cuts[i], cuts[i+1])`; when `beyond` is present a final entry
    /// covers `(hi, beyond)`.
    intervals: Vec<Vec<Affine>>,
}

impl WindowCover {
    /// The critical points within the window, endpoints included.
    #[must_use]
    pub fn cuts(&self) -> &[f64] {
        &self.cuts
    }

    /// The first waypoint projection strictly beyond the window, if
    /// any trajectory reaches past `hi`.
    #[must_use]
    pub fn beyond(&self) -> Option<f64> {
        self.beyond
    }

    /// Per-interval affine sets (see the struct docs for the layout).
    #[must_use]
    pub fn intervals(&self) -> &[Vec<Affine>] {
        &self.intervals
    }

    /// Whether interval `i` is the beyond-window interval `(hi,
    /// beyond)`, whose affines should only be evaluated at `hi` (the
    /// right-hand limit at the window edge).
    #[must_use]
    pub fn is_beyond(&self, i: usize) -> bool {
        self.beyond.is_some() && i + 1 == self.intervals.len()
    }

    /// The open bounds `(lo_i, hi_i)` of interval `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[must_use]
    pub fn interval_bounds(&self, i: usize) -> (f64, f64) {
        if self.is_beyond(i) {
            (self.cuts[self.cuts.len() - 1], self.beyond.expect("beyond interval exists"))
        } else {
            (self.cuts[i], self.cuts[i + 1])
        }
    }
}

/// Collects the cut set and the extended interval boundary list for a
/// window: waypoint projections inside `(lo, hi)`, the endpoints, and
/// the first projection strictly beyond `hi`.
fn collect_cuts(
    trajectories: &[PiecewiseTrajectory],
    lo: f64,
    hi: f64,
) -> (Vec<f64>, Option<f64>, Vec<f64>) {
    let mut cuts = vec![lo, hi];
    let mut beyond: Option<f64> = None;
    for traj in trajectories {
        for w in traj.waypoints() {
            if w.x > lo && w.x < hi {
                cuts.push(w.x);
            } else if w.x > hi {
                beyond = Some(beyond.map_or(w.x, |b| b.min(w.x)));
            }
        }
    }
    cuts.sort_by(f64::total_cmp);
    cuts.dedup();
    let mut boundaries = cuts.clone();
    if let Some(b) = beyond {
        boundaries.push(b);
    }
    (cuts, beyond, boundaries)
}

fn validate_window(trajectories: &[PiecewiseTrajectory], lo: f64, hi: f64) -> Result<()> {
    if trajectories.is_empty() {
        return Err(Error::domain("critical-point enumeration needs at least one trajectory"));
    }
    if !(lo > 0.0) || !(hi > lo) || !hi.is_finite() {
        return Err(Error::domain(format!(
            "critical-point window needs 0 < lo < hi finite, got [{lo}, {hi}]"
        )));
    }
    Ok(())
}

/// Returns the interval-index range `[start, end)` fully covered by a
/// moving segment spanning `[s_lo, s_hi]`, against the sorted boundary
/// list. Span endpoints are waypoint projections, hence never strictly
/// inside any interval: coverage is all-or-nothing per interval.
fn covered_range(boundaries: &[f64], s_lo: f64, s_hi: f64) -> (usize, usize) {
    let start = boundaries.partition_point(|&c| c < s_lo);
    let end = boundaries.partition_point(|&c| c <= s_hi);
    // Intervals start .. end-1 satisfy boundaries[j] >= s_lo and
    // boundaries[j + 1] <= s_hi.
    (start, end.saturating_sub(1))
}

/// First-unfilled lookup with path compression over the per-robot
/// assignment pointers: `next[j]` points at the first interval index
/// `>= j` not yet assigned a first-visit affine.
fn find_unfilled(next: &mut [u32], j: usize) -> usize {
    let mut root = j;
    while next[root] as usize != root {
        root = next[root] as usize;
    }
    let mut cur = j;
    while next[cur] as usize != cur {
        let succ = next[cur] as usize;
        next[cur] = root as u32;
        cur = succ;
    }
    root
}

/// Enumerates the critical points of a fleet over `[lo, hi]` and the
/// *first-visit* affine of every robot on every inter-cut interval:
/// per robot, the earliest (in time order) segment covering the
/// interval. `T_k(x)` restricted to an interval is the k-th order
/// statistic of its affines, so an interval with fewer than `k`
/// affines is not `k`-covered anywhere in its interior.
///
/// # Errors
///
/// Returns [`Error::Domain`] for an empty fleet or a window violating
/// `0 < lo < hi < inf`.
pub fn first_visit_cover(
    trajectories: &[PiecewiseTrajectory],
    lo: f64,
    hi: f64,
) -> Result<WindowCover> {
    validate_window(trajectories, lo, hi)?;
    let (cuts, beyond, boundaries) = collect_cuts(trajectories, lo, hi);
    let m = boundaries.len() - 1;
    let mut intervals: Vec<Vec<Affine>> = vec![Vec::new(); m];
    let mut next: Vec<u32> = Vec::with_capacity(m + 1);
    for traj in trajectories {
        next.clear();
        next.extend(0..=m as u32); // identity: everything unfilled
        for seg in traj.segments() {
            if seg.a.x == seg.b.x {
                continue; // stationary: never covers an open interval
            }
            let (s_lo, s_hi) =
                if seg.a.x < seg.b.x { (seg.a.x, seg.b.x) } else { (seg.b.x, seg.a.x) };
            let (start, last) = covered_range(&boundaries, s_lo, s_hi);
            if start >= last {
                continue;
            }
            let affine = Affine::from_segment(seg.a, seg.b);
            let mut j = find_unfilled(&mut next, start);
            while j < last {
                intervals[j].push(affine);
                next[j] = j as u32 + 1;
                j = find_unfilled(&mut next, j + 1);
            }
        }
    }
    Ok(WindowCover { cuts, beyond, intervals })
}

/// A [`WindowCover`] whose affines carry the index of the robot that
/// contributes them — the form the fault-space exploration engine
/// needs to restrict an interval's visit structure to a fault mask's
/// reliable sub-fleet without rebuilding covers per mask.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributedCover {
    /// Sorted, deduplicated critical points, window endpoints included
    /// (identical to the unattributed cover's cuts).
    cuts: Vec<f64>,
    /// The smallest waypoint projection strictly beyond `hi`, if any.
    beyond: Option<f64>,
    /// `intervals[i]` holds `(robot, affine)` pairs valid on the open
    /// interval `(cuts[i], cuts[i+1])`, in the same order as
    /// [`first_visit_cover`] produces the bare affines.
    intervals: Vec<Vec<(u32, Affine)>>,
}

impl AttributedCover {
    /// The critical points within the window, endpoints included.
    #[must_use]
    pub fn cuts(&self) -> &[f64] {
        &self.cuts
    }

    /// The first waypoint projection strictly beyond the window.
    #[must_use]
    pub fn beyond(&self) -> Option<f64> {
        self.beyond
    }

    /// Per-interval `(robot, affine)` sets.
    #[must_use]
    pub fn intervals(&self) -> &[Vec<(u32, Affine)>] {
        &self.intervals
    }

    /// Whether interval `i` is the beyond-window interval (see
    /// [`WindowCover::is_beyond`]).
    #[must_use]
    pub fn is_beyond(&self, i: usize) -> bool {
        self.beyond.is_some() && i + 1 == self.intervals.len()
    }

    /// The open bounds `(lo_i, hi_i)` of interval `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[must_use]
    pub fn interval_bounds(&self, i: usize) -> (f64, f64) {
        if self.is_beyond(i) {
            (self.cuts[self.cuts.len() - 1], self.beyond.expect("beyond interval exists"))
        } else {
            (self.cuts[i], self.cuts[i + 1])
        }
    }
}

/// [`first_visit_cover`] with robot attribution: identical cuts,
/// identical affine values in identical order, each tagged with the
/// index of the contributing trajectory. Restricting an interval's
/// affines to a subset of robots yields exactly the sub-fleet's visit
/// structure there (a robot's first-visit affine depends only on its
/// own trajectory).
///
/// # Errors
///
/// Same contract as [`first_visit_cover`].
pub fn attributed_first_visit_cover(
    trajectories: &[PiecewiseTrajectory],
    lo: f64,
    hi: f64,
) -> Result<AttributedCover> {
    validate_window(trajectories, lo, hi)?;
    let (cuts, beyond, boundaries) = collect_cuts(trajectories, lo, hi);
    let m = boundaries.len() - 1;
    let mut intervals: Vec<Vec<(u32, Affine)>> = vec![Vec::new(); m];
    let mut next: Vec<u32> = Vec::with_capacity(m + 1);
    for (robot, traj) in trajectories.iter().enumerate() {
        next.clear();
        next.extend(0..=m as u32); // identity: everything unfilled
        for seg in traj.segments() {
            if seg.a.x == seg.b.x {
                continue; // stationary: never covers an open interval
            }
            let (s_lo, s_hi) =
                if seg.a.x < seg.b.x { (seg.a.x, seg.b.x) } else { (seg.b.x, seg.a.x) };
            let (start, last) = covered_range(&boundaries, s_lo, s_hi);
            if start >= last {
                continue;
            }
            let affine = Affine::from_segment(seg.a, seg.b);
            let mut j = find_unfilled(&mut next, start);
            while j < last {
                intervals[j].push((robot as u32, affine));
                next[j] = j as u32 + 1;
                j = find_unfilled(&mut next, j + 1);
            }
        }
    }
    Ok(AttributedCover { cuts, beyond, intervals })
}

/// Like [`first_visit_cover`], but collects *every* covering segment's
/// affine per interval (all robots, all passes) — the visit multiset
/// needed by expected-cost evaluation, where later revisits still
/// carry probability mass.
///
/// # Errors
///
/// Same contract as [`first_visit_cover`].
pub fn all_visit_cover(
    trajectories: &[PiecewiseTrajectory],
    lo: f64,
    hi: f64,
) -> Result<WindowCover> {
    validate_window(trajectories, lo, hi)?;
    let (cuts, beyond, boundaries) = collect_cuts(trajectories, lo, hi);
    let m = boundaries.len() - 1;
    let mut intervals: Vec<Vec<Affine>> = vec![Vec::new(); m];
    for traj in trajectories {
        for seg in traj.segments() {
            if seg.a.x == seg.b.x {
                continue;
            }
            let (s_lo, s_hi) =
                if seg.a.x < seg.b.x { (seg.a.x, seg.b.x) } else { (seg.b.x, seg.a.x) };
            let (start, last) = covered_range(&boundaries, s_lo, s_hi);
            if start >= last {
                continue;
            }
            let affine = Affine::from_segment(seg.a, seg.b);
            for interval in intervals.iter_mut().take(last).skip(start) {
                interval.push(affine);
            }
        }
    }
    Ok(WindowCover { cuts, beyond, intervals })
}

/// Reflects trajectories across the origin (`x -> -x`), so the
/// negative half-line can be analyzed with the positive-window
/// machinery above.
///
/// # Errors
///
/// Propagates trajectory re-validation failures (mirroring preserves
/// every structural invariant, so this only fires on corrupt input).
pub fn mirrored(trajectories: &[PiecewiseTrajectory]) -> Result<Vec<PiecewiseTrajectory>> {
    trajectories
        .iter()
        .map(|t| {
            // Reflection preserves segment speeds exactly, so carry the
            // source trajectory's own speed bound: heterogeneous-speed
            // fleets (speeds above 1) mirror as freely as unit fleets.
            let max_speed = t.segments().map(|s| s.speed()).fold(1.0f64, f64::max);
            PiecewiseTrajectory::with_speed_limit(
                t.waypoints().iter().map(|w| SpaceTime::new(-w.x, w.t)).collect(),
                max_speed,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trajectory::TrajectoryBuilder;

    fn doubling_prefix() -> PiecewiseTrajectory {
        TrajectoryBuilder::from_origin()
            .sweep_to(1.0)
            .sweep_to(-2.0)
            .sweep_to(4.0)
            .sweep_to(-8.0)
            .finish()
            .unwrap()
    }

    #[test]
    fn affine_eval_and_crossing() {
        let a = Affine { slope: 1.0, intercept: 6.0 };
        let b = Affine { slope: -1.0, intercept: 14.0 };
        assert_eq!(a.eval(2.0), 8.0);
        assert_eq!(a.crossing(&b), Some(4.0));
        assert_eq!(b.crossing(&a), Some(4.0));
        assert_eq!(a.crossing(&a), None);
        assert_eq!(b.position_of_time(9.0), Some(5.0));
        assert_eq!(Affine { slope: 0.0, intercept: 3.0 }.position_of_time(9.0), None);
    }

    #[test]
    fn window_rejects_bad_input() {
        let t = doubling_prefix();
        assert!(first_visit_cover(&[], 1.0, 6.0).is_err());
        assert!(first_visit_cover(std::slice::from_ref(&t), 0.0, 6.0).is_err());
        assert!(first_visit_cover(std::slice::from_ref(&t), 2.0, 2.0).is_err());
        assert!(first_visit_cover(std::slice::from_ref(&t), 1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn doubling_cover_matches_pointwise_first_visits() {
        let t = doubling_prefix();
        let cover = first_visit_cover(std::slice::from_ref(&t), 1.0, 6.0).unwrap();
        // Waypoint projections inside (1, 6): only +4.
        assert_eq!(cover.cuts(), &[1.0, 4.0, 6.0]);
        assert_eq!(cover.beyond(), None, "no waypoint beyond +6");
        assert_eq!(cover.intervals().len(), 2);
        // (1, 4): first covered by the sweep -2 -> +4, t(x) = x + 6.
        let a = cover.intervals()[0][0];
        assert_eq!((a.slope, a.intercept), (1.0, 6.0));
        for x in [1.5, 2.0, 3.9] {
            let exact = cover.intervals()[0][0].eval(x);
            assert_eq!(Some(exact), t.first_visit(x), "x = {x}");
        }
        // (4, 6): the trajectory never exceeds +4, so the interval has
        // no covering affine — exactly how incomplete coverage shows.
        assert!(cover.intervals()[1].is_empty());
        assert_eq!(t.first_visit(5.0), None);
    }

    #[test]
    fn interval_endpoint_evaluation_is_the_one_sided_limit() {
        // At the turning cut x = 1 the pointwise first visit is t = 1,
        // while the right-hand interval's affine evaluated at 1 gives
        // the limit from above, t = 7 (the return sweep -2 -> +4) —
        // strictly later, which is exactly why the supremum probes
        // interval limits instead of pointwise values at cuts.
        let t = doubling_prefix();
        let cover = first_visit_cover(std::slice::from_ref(&t), 1.0, 6.0).unwrap();
        assert_eq!(t.first_visit(1.0), Some(1.0));
        assert_eq!(cover.intervals()[0][0].eval(1.0), 7.0);
        // At x = 4 (a turning waypoint reached on the way up) the
        // left-hand limit coincides with the pointwise visit, t = 10.
        assert_eq!(t.first_visit(4.0), Some(10.0));
        assert_eq!(cover.intervals()[0][0].eval(4.0), 10.0);
    }

    #[test]
    fn beyond_interval_tracks_the_first_projection_past_the_window() {
        let t = doubling_prefix();
        let cover = first_visit_cover(std::slice::from_ref(&t), 1.0, 3.0).unwrap();
        assert_eq!(cover.cuts(), &[1.0, 3.0]);
        assert_eq!(cover.beyond(), Some(4.0));
        assert_eq!(cover.intervals().len(), 2);
        assert!(cover.is_beyond(1));
        assert!(!cover.is_beyond(0));
        assert_eq!(cover.interval_bounds(1), (3.0, 4.0));
        // Evaluated at the window edge: the right-hand limit of the
        // first visit at 3 is on the sweep -2 -> +4 (t = x + 6 = 9).
        assert_eq!(cover.intervals()[1][0].eval(3.0), 9.0);
    }

    #[test]
    fn first_visit_cover_keeps_only_the_earliest_covering_segment() {
        // The sweep -2 -> +4 and the sweep +4 -> -8 both cover (1, 2);
        // first-visit keeps only the earlier one per robot.
        let t = doubling_prefix();
        let cover = first_visit_cover(std::slice::from_ref(&t), 1.0, 2.0).unwrap();
        assert_eq!(cover.intervals()[0].len(), 1);
        assert_eq!(cover.intervals()[0][0].slope, 1.0);
    }

    #[test]
    fn all_visit_cover_collects_every_pass() {
        let t = doubling_prefix();
        let cover = all_visit_cover(std::slice::from_ref(&t), 1.0, 2.0).unwrap();
        // (1, 2) is crossed by -2 -> +4 and by +4 -> -8 (and by the
        // initial 0 -> 1 sweep? no: its span [0, 1] stops at the cut).
        assert_eq!(cover.intervals()[0].len(), 2);
        let times: Vec<f64> = cover.intervals()[0].iter().map(|a| a.eval(1.5)).collect();
        assert_eq!(times, t.visits(1.5));
    }

    #[test]
    fn multi_robot_cuts_partition_by_every_waypoint() {
        let a = doubling_prefix();
        let b = TrajectoryBuilder::from_origin().sweep_to(3.0).sweep_to(-5.0).finish().unwrap();
        let cover = first_visit_cover(&[a.clone(), b.clone()], 1.0, 6.0).unwrap();
        assert_eq!(cover.cuts(), &[1.0, 3.0, 4.0, 6.0]);
        // On (1, 3) both robots contribute a first-visit affine.
        assert_eq!(cover.intervals()[0].len(), 2);
        for x in [1.5, 2.5] {
            let mut exact: Vec<f64> = cover.intervals()[0].iter().map(|f| f.eval(x)).collect();
            exact.sort_by(f64::total_cmp);
            let mut pointwise = vec![a.first_visit(x).unwrap(), b.first_visit(x).unwrap()];
            pointwise.sort_by(f64::total_cmp);
            assert_eq!(exact, pointwise, "x = {x}");
        }
        // (3, 4) is reached only by the doubling robot's -2 -> +4
        // sweep; (4, 6) is beyond every excursion and stays empty.
        assert_eq!(cover.intervals()[1].len(), 1);
        assert_eq!((cover.intervals()[1][0].slope, cover.intervals()[1][0].intercept), (1.0, 6.0));
        assert!(cover.intervals()[2].is_empty());
    }

    #[test]
    fn mirrored_trajectories_swap_sides_losslessly() {
        let t = doubling_prefix();
        let m = mirrored(std::slice::from_ref(&t)).unwrap();
        assert_eq!(m.len(), 1);
        for x in [-1.5, 2.0, -4.0] {
            assert_eq!(m[0].first_visit(x), t.first_visit(-x), "x = {x}");
        }
        let back = mirrored(&m).unwrap();
        assert_eq!(back[0], t);
    }

    #[test]
    fn enclosures_bracket_evaluations_and_crossings() {
        let a = Affine { slope: 1.0, intercept: 6.0 };
        let b = Affine { slope: -1.0, intercept: 14.0 };
        for x in [1.0, 2.5, 3.75] {
            let t = a.enclosure_at(x).unwrap();
            assert!(t.contains(a.eval(x)), "x = {x}");
            let r = a.ratio_enclosure(x).unwrap();
            assert!(r.contains(a.eval(x) / x), "x = {x}");
        }
        // The crossing enclosure contains the f64 crossing (and the
        // real one: these coefficients are exact, so they coincide).
        let xc = a.crossing(&b).unwrap();
        let enc = a.crossing_enclosure(&b).unwrap();
        assert!(enc.contains(xc));
        assert!(enc.width() < 1e-12 * xc.abs());
        assert!(a.crossing_enclosure(&a).is_none(), "parallel lines have no crossing");
        // The range form covers every point of the span.
        let span = Interval::new(2.0, 3.0).unwrap();
        let over = a.ratio_enclosure_over(span).unwrap();
        for x in [2.0, 2.4, 3.0] {
            assert!(over.contains(a.slope + a.intercept / x), "x = {x}");
        }
    }

    #[test]
    fn attributed_cover_matches_the_bare_cover_with_robot_tags() {
        let a = doubling_prefix();
        let b = TrajectoryBuilder::from_origin().sweep_to(3.0).sweep_to(-5.0).finish().unwrap();
        let fleet = [a, b];
        let bare = first_visit_cover(&fleet, 1.0, 6.0).unwrap();
        let tagged = attributed_first_visit_cover(&fleet, 1.0, 6.0).unwrap();
        assert_eq!(tagged.cuts(), bare.cuts());
        assert_eq!(tagged.beyond(), bare.beyond());
        assert_eq!(tagged.intervals().len(), bare.intervals().len());
        for (i, (bare_affines, tagged_affines)) in
            bare.intervals().iter().zip(tagged.intervals()).enumerate()
        {
            let stripped: Vec<Affine> = tagged_affines.iter().map(|&(_, f)| f).collect();
            assert_eq!(&stripped, bare_affines, "interval {i}");
            for &(robot, _) in tagged_affines {
                assert!((robot as usize) < fleet.len(), "interval {i}");
            }
            assert_eq!(tagged.is_beyond(i), bare.is_beyond(i));
            assert_eq!(tagged.interval_bounds(i), bare.interval_bounds(i));
        }
        // On (1, 3) robot 0's affine is the -2 -> +4 sweep and robot
        // 1's is the 0 -> +3 sweep: attribution is by index.
        let first = &tagged.intervals()[0];
        assert_eq!(first.iter().map(|&(r, _)| r).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn stationary_segments_never_cover_an_interval() {
        let t = TrajectoryBuilder::from_origin()
            .sweep_to(2.0)
            .hold_until(10.0)
            .sweep_to(5.0)
            .finish()
            .unwrap();
        let cover = first_visit_cover(std::slice::from_ref(&t), 1.0, 4.0).unwrap();
        assert_eq!(cover.cuts(), &[1.0, 2.0, 4.0]);
        // (2, 4) is covered only by the final sweep, not by the hold.
        assert_eq!(cover.intervals()[1].len(), 1);
        assert_eq!(cover.intervals()[1][0].eval(3.0), 11.0);
    }
}
