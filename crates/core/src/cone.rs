//! The cone `C_beta` (Definition 1, Figure 2) and its turning-point
//! geometry (Lemma 1).
//!
//! For a fixed `beta > 1`, the cone `C_beta` is the region of the
//! space–time half-plane delimited by the lines `t = beta * x` for
//! `x >= 0` and `t = -beta * x` for `x < 0`. A robot zig-zagging inside
//! the cone at unit speed reverses direction exactly on the boundary;
//! Lemma 1 shows its turning points form a geometric sequence with
//! *expansion factor* `kappa = (beta + 1) / (beta - 1)` and alternating
//! sign.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::spacetime::SpaceTime;

/// The cone `C_beta` for some `beta > 1`.
///
/// ```
/// use faultline_core::Cone;
/// let cone = Cone::new(3.0)?; // doubling: kappa = 2
/// assert_eq!(cone.expansion_factor(), 2.0);
/// let next = cone.next_turning_point(cone.boundary_point(1.0));
/// assert_eq!((next.x, next.t), (-2.0, 6.0));
/// # Ok::<(), faultline_core::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Cone {
    beta: f64,
}

// Deserialization re-validates `beta > 1`.
impl<'de> Deserialize<'de> for Cone {
    fn deserialize<D>(deserializer: D) -> std::result::Result<Self, D::Error>
    where
        D: serde::Deserializer<'de>,
    {
        #[derive(Deserialize)]
        struct Raw {
            beta: f64,
        }
        let raw = Raw::deserialize(deserializer)?;
        Cone::new(raw.beta).map_err(serde::de::Error::custom)
    }
}

impl Cone {
    /// Creates the cone `C_beta`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidBeta`] unless `beta` is finite and
    /// strictly greater than 1.
    pub fn new(beta: f64) -> Result<Self> {
        if !beta.is_finite() || beta <= 1.0 {
            return Err(Error::InvalidBeta { beta });
        }
        Ok(Cone { beta })
    }

    /// The slope parameter `beta`.
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The expansion factor `kappa = (beta + 1) / (beta - 1)` of zig-zag
    /// strategies confined to this cone (Lemma 1).
    #[must_use]
    pub fn expansion_factor(&self) -> f64 {
        (self.beta + 1.0) / (self.beta - 1.0)
    }

    /// Inverse of [`Cone::expansion_factor`]: recovers the cone from a
    /// desired expansion factor `kappa > 1` (`beta = (kappa + 1)/(kappa - 1)`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidBeta`] when `kappa <= 1` or non-finite.
    pub fn from_expansion_factor(kappa: f64) -> Result<Self> {
        if !kappa.is_finite() || kappa <= 1.0 {
            return Err(Error::InvalidBeta { beta: f64::NAN });
        }
        Cone::new((kappa + 1.0) / (kappa - 1.0))
    }

    /// The boundary time `beta * |x|` at which a turning point at
    /// position `x` occurs.
    #[must_use]
    pub fn boundary_time(&self, x: f64) -> f64 {
        self.beta * x.abs()
    }

    /// The boundary point `(x, beta * |x|)` above position `x`.
    #[must_use]
    pub fn boundary_point(&self, x: f64) -> SpaceTime {
        SpaceTime::new(x, self.boundary_time(x))
    }

    /// Whether the space–time point lies inside (or on) the cone.
    #[must_use]
    pub fn contains(&self, p: SpaceTime) -> bool {
        p.t >= self.boundary_time(p.x)
    }

    /// Whether the point lies on the cone boundary up to relative
    /// tolerance `tol`.
    #[must_use]
    pub fn on_boundary(&self, p: SpaceTime, tol: f64) -> bool {
        crate::numeric::approx_eq(p.t, self.boundary_time(p.x), tol)
    }

    /// The turning point following `p` for a robot zig-zagging in the
    /// cone: position `-kappa * p.x` reached at the corresponding
    /// boundary time.
    ///
    /// `p` is assumed to be a boundary point with `p.x != 0`; the
    /// geometry (travel at unit speed towards the opposite boundary)
    /// then yields the next reflection (Lemma 1).
    #[must_use]
    pub fn next_turning_point(&self, p: SpaceTime) -> SpaceTime {
        let x = -self.expansion_factor() * p.x;
        self.boundary_point(x)
    }

    /// The turning point preceding `p`: position `-p.x / kappa`.
    ///
    /// Extending a zig-zag movement "backwards in the time interval
    /// `(0, t_0)` by any number of steps" is exactly the construction of
    /// Definition 4.
    #[must_use]
    pub fn previous_turning_point(&self, p: SpaceTime) -> SpaceTime {
        let x = -p.x / self.expansion_factor();
        self.boundary_point(x)
    }

    /// Turning points of the zig-zag movement seeded at boundary
    /// position `x0` (Lemma 1): `x_i = x0 * kappa^i * (-1)^i`, produced
    /// while their boundary times do not exceed `max_time`.
    ///
    /// The seed itself is included as the first element whenever its
    /// boundary time is within `max_time`.
    #[must_use]
    pub fn turning_points_until(&self, x0: f64, max_time: f64) -> Vec<SpaceTime> {
        let mut points = Vec::new();
        let mut p = self.boundary_point(x0);
        while p.t <= max_time {
            points.push(p);
            p = self.next_turning_point(p);
            if p.x == 0.0 {
                break; // degenerate seed at the apex
            }
        }
        points
    }
}

impl std::fmt::Display for Cone {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(fmt, "C_beta(beta = {}, kappa = {})", self.beta, self.expansion_factor())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::approx_eq;

    #[test]
    fn rejects_invalid_beta() {
        assert!(Cone::new(1.0).is_err());
        assert!(Cone::new(0.5).is_err());
        assert!(Cone::new(f64::NAN).is_err());
        assert!(Cone::new(f64::INFINITY).is_err());
    }

    #[test]
    fn doubling_cone_has_kappa_two() {
        let cone = Cone::new(3.0).unwrap();
        assert_eq!(cone.expansion_factor(), 2.0);
    }

    #[test]
    fn expansion_factor_roundtrip() {
        for kappa in [1.5, 2.0, 4.0, 12.0, 42.0] {
            let cone = Cone::from_expansion_factor(kappa).unwrap();
            assert!(approx_eq(cone.expansion_factor(), kappa, 1e-12));
        }
        assert!(Cone::from_expansion_factor(1.0).is_err());
        assert!(Cone::from_expansion_factor(0.9).is_err());
    }

    #[test]
    fn containment() {
        let cone = Cone::new(2.0).unwrap();
        assert!(cone.contains(SpaceTime::new(1.0, 2.0)));
        assert!(cone.contains(SpaceTime::new(1.0, 5.0)));
        assert!(cone.contains(SpaceTime::new(-1.0, 2.0)));
        assert!(!cone.contains(SpaceTime::new(1.0, 1.9)));
        assert!(cone.contains(SpaceTime::origin()));
    }

    #[test]
    fn next_turning_point_alternates_sides() {
        let cone = Cone::new(5.0 / 3.0).unwrap(); // A(3,1): kappa = 4
        assert!(approx_eq(cone.expansion_factor(), 4.0, 1e-12));
        let p0 = cone.boundary_point(1.0);
        let p1 = cone.next_turning_point(p0);
        let p2 = cone.next_turning_point(p1);
        assert!(approx_eq(p1.x, -4.0, 1e-12));
        assert!(approx_eq(p2.x, 16.0, 1e-12));
        // Unit-speed check between consecutive reflections.
        assert!(approx_eq(p0.speed_to(&p1).unwrap(), 1.0, 1e-12));
        assert!(approx_eq(p1.speed_to(&p2).unwrap(), 1.0, 1e-12));
    }

    #[test]
    fn previous_inverts_next() {
        let cone = Cone::new(2.4).unwrap();
        let p = cone.boundary_point(-3.0);
        let q = cone.previous_turning_point(cone.next_turning_point(p));
        assert!(approx_eq(q.x, p.x, 1e-12));
        assert!(approx_eq(q.t, p.t, 1e-12));
    }

    #[test]
    fn lemma1_power_formula() {
        // x_i = x0 * kappa^i * (-1)^i
        let cone = Cone::new(3.0).unwrap();
        let pts = cone.turning_points_until(1.0, 1e6);
        for (i, p) in pts.iter().enumerate() {
            let expect = (2.0_f64).powi(i as i32) * if i % 2 == 0 { 1.0 } else { -1.0 };
            assert!(approx_eq(p.x, expect, 1e-9), "i = {i}: {} vs {expect}", p.x);
        }
        assert!(pts.len() >= 15);
    }

    #[test]
    fn turning_points_respect_max_time() {
        let cone = Cone::new(3.0).unwrap();
        let pts = cone.turning_points_until(1.0, 100.0);
        assert!(pts.iter().all(|p| p.t <= 100.0));
        assert!(!pts.is_empty());
    }

    #[test]
    fn boundary_point_is_on_boundary() {
        let cone = Cone::new(1.7).unwrap();
        assert!(cone.on_boundary(cone.boundary_point(-2.5), 1e-12));
        assert!(!cone.on_boundary(SpaceTime::new(-2.5, 100.0), 1e-12));
    }
}
