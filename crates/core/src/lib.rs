//! # faultline-core
//!
//! A faithful implementation of *Search on a Line with Faulty Robots*
//! (Czyzowicz, Kranakis, Krizanc, Narayanan, Opatrny — PODC 2016).
//!
//! `n` unit-speed robots start together at the origin of an infinite
//! line and search for a target at unknown distance `|x| >= 1`. Up to
//! `f` of the robots are *faulty*: they move exactly like reliable
//! robots but never detect the target, so a point is only confirmed
//! once `f + 1` distinct robots have visited it. The objective is the
//! competitive ratio: the worst case over target positions of
//! (detection time) / (target distance).
//!
//! ## What this crate provides
//!
//! * [`Params`] / [`Regime`] — validated `(n, f)` pairs and the paper's
//!   case split (`n >= 2f + 2` trivial, `f < n < 2f + 2` interesting).
//! * [`trajectory`] — piecewise-linear unit-speed trajectories with
//!   visit queries; [`plan`] — materializable infinite motion plans.
//! * [`Cone`] / [`ZigZagPlan`] — the cone `C_beta` of Definition 1 and
//!   zig-zag movements with expansion factor `(beta+1)/(beta-1)`
//!   (Lemma 1).
//! * [`ProportionalSchedule`] — `S_beta(n)` of Definition 2/Lemma 2 and
//!   the per-robot construction of Definition 4.
//! * [`Algorithm`] — the complete algorithm `A(n, f)` (Theorem 1) plus
//!   the two-group strategy.
//! * [`ratio`] — every closed form of Section 3 (Theorem 1, Corollary 1,
//!   both Figure 5 curves).
//! * [`lower_bound`] — Section 4: the `alpha(n)` root, adversarial
//!   placements, Lemmas 6–7 as executable checks, Corollary 2.
//! * [`coverage`] — `T_(f+1)(x)`, `K(x)` and supremum scans (Lemmas
//!   3–5), plus the coverage "tower" of Figure 4.
//!
//! ## Quick start
//!
//! ```
//! use faultline_core::{Algorithm, coverage::Fleet, Params};
//!
//! // Five robots, at most two faulty: the proportional regime.
//! let params = Params::new(5, 2)?;
//! let algorithm = Algorithm::design(params)?;
//! assert!((algorithm.analytic_cr() - 4.434).abs() < 1e-3);
//!
//! // Materialize the fleet and measure the detection time of a target.
//! let horizon = algorithm.required_horizon(10.0)?;
//! let fleet = Fleet::from_plans(&algorithm.plans(), horizon)?;
//! let detection = fleet.visit_time(7.5, params.required_visits()).unwrap();
//! assert!(detection / 7.5 <= algorithm.analytic_cr() + 1e-9);
//! # Ok::<(), faultline_core::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// `!(x > limit)` is used deliberately throughout: unlike `x <= limit`,
// it also rejects NaN, which must never pass validation.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod algorithm;
pub mod bounded;
pub mod builder;
pub mod certificate;
pub mod closed_form;
pub mod cone;
pub mod coverage;
pub mod error;
pub mod exact;
pub mod free_schedule;
pub mod geometry;
pub mod interval;
pub mod json_float;
pub mod lower_bound;
pub mod numeric;
pub mod parallel;
pub mod params;
pub mod plan;
pub mod query;
pub mod ratio;
pub mod schedule;
pub mod spacetime;
pub mod trajectory;
pub mod turn_cost;
pub mod zigzag;

pub use algorithm::Algorithm;
pub use bounded::{BoundedAlgorithm, ClampedZigZagPlan};
pub use builder::ScheduleBuilder;
pub use certificate::Certificate;
pub use closed_form::ClosedForm;
pub use cone::Cone;
pub use coverage::Fleet;
pub use error::{Error, Result};
pub use free_schedule::{FreePlan, FreeRobot, FreeSchedule};
pub use geometry::Geometry;
pub use interval::Interval;
pub use parallel::{par_map, par_map_chunked, par_map_with, ParallelConfig};
pub use params::{Params, Regime};
pub use plan::{Direction, IdlePlan, RayPlan, TrajectoryPlan, WaypointCyclePlan};
pub use query::{canonical_hash64, canonical_string, CrQuery, CrReport};
pub use schedule::ProportionalSchedule;
pub use spacetime::{Segment, SpaceTime};
pub use trajectory::{PiecewiseTrajectory, TrajectoryBuilder};
pub use turn_cost::{DetectionCost, TurnCost};
pub use zigzag::ZigZagPlan;
