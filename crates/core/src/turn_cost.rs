//! Extension: search with **turn cost** (after Demaine, Fekete and Gal,
//! *Online searching with turn cost*, cited by the paper as [19]).
//!
//! Each direction reversal costs an additional `c >= 0` time units
//! (mechanical deceleration, sensor re-calibration, ...). The cost of
//! finding a target at `x` with `f` faulty robots becomes
//!
//! ```text
//! cost(x) = T_(f+1)(x) + c * turns(x)
//! ```
//!
//! where `turns(x)` counts the reversals performed by the `(f+1)`-st
//! distinct visitor strictly before it reaches `x`. The turn-cost
//! competitive ratio is `sup_x cost(x) / |x|`.
//!
//! The paper leaves this combination (faults × turn cost) open; this
//! module provides the evaluation machinery, and
//! `faultline-analysis::turncost` studies how the optimal cone
//! parameter drifts as `c` grows (wider cones, fewer turns).

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::trajectory::PiecewiseTrajectory;

/// The turn-cost model: a fixed cost per direction reversal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TurnCost {
    cost_per_turn: f64,
}

impl TurnCost {
    /// Creates the model.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] for a negative or non-finite cost.
    pub fn new(cost_per_turn: f64) -> Result<Self> {
        if !(cost_per_turn >= 0.0) || !cost_per_turn.is_finite() {
            return Err(Error::domain(format!(
                "turn cost must be finite and non-negative, got {cost_per_turn}"
            )));
        }
        Ok(TurnCost { cost_per_turn })
    }

    /// The zero-cost model (reduces to the paper's setting).
    #[must_use]
    pub fn free() -> Self {
        TurnCost { cost_per_turn: 0.0 }
    }

    /// The per-reversal cost.
    #[must_use]
    pub fn cost_per_turn(&self) -> f64 {
        self.cost_per_turn
    }

    /// Number of reversals a trajectory performs strictly before time
    /// `t`.
    #[must_use]
    pub fn turns_before(&self, traj: &PiecewiseTrajectory, t: f64) -> usize {
        traj.turning_points().iter().filter(|p| p.t < t).count()
    }

    /// The turn-cost detection cost for target `x` with `k` required
    /// distinct visits: the `k`-th visitor's arrival time plus `c`
    /// times the reversals it made on the way.
    ///
    /// Returns `None` when fewer than `k` robots reach `x` within their
    /// horizons.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameters`] for `k == 0` or an empty
    /// fleet.
    pub fn detection_cost(
        &self,
        trajectories: &[PiecewiseTrajectory],
        x: f64,
        k: usize,
    ) -> Result<Option<DetectionCost>> {
        if k == 0 || trajectories.is_empty() {
            return Err(Error::invalid_params(
                trajectories.len(),
                k,
                "detection cost needs k >= 1 and a non-empty fleet",
            ));
        }
        let mut arrivals: Vec<(usize, f64)> = trajectories
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.first_visit(x).map(|time| (i, time)))
            .collect();
        arrivals.sort_by(|a, b| a.1.total_cmp(&b.1));
        let Some(&(robot, time)) = arrivals.get(k - 1) else {
            return Ok(None);
        };
        let turns = self.turns_before(&trajectories[robot], time);
        Ok(Some(DetectionCost {
            robot,
            time,
            turns,
            cost: time + self.cost_per_turn * turns as f64,
        }))
    }

    /// The turn-cost ratio `cost(x) / |x|`, or `None` when uncovered.
    ///
    /// # Errors
    ///
    /// As [`TurnCost::detection_cost`], plus [`Error::Domain`] at
    /// `x == 0`.
    pub fn ratio(
        &self,
        trajectories: &[PiecewiseTrajectory],
        x: f64,
        k: usize,
    ) -> Result<Option<f64>> {
        if x == 0.0 {
            return Err(Error::domain("turn-cost ratio undefined at the origin"));
        }
        Ok(self.detection_cost(trajectories, x, k)?.map(|d| d.cost / x.abs()))
    }

    /// The supremum of the turn-cost ratio over a target grid.
    /// Uncovered targets yield an infinite supremum.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures; rejects an empty grid.
    pub fn supremum(
        &self,
        trajectories: &[PiecewiseTrajectory],
        targets: &[f64],
        k: usize,
    ) -> Result<(f64, f64)> {
        if targets.is_empty() {
            return Err(Error::domain("turn-cost supremum needs targets"));
        }
        let mut best = (0.0f64, targets[0]);
        for &x in targets {
            match self.ratio(trajectories, x, k)? {
                Some(r) if r > best.0 => best = (r, x),
                Some(_) => {}
                None => return Ok((f64::INFINITY, x)),
            }
        }
        Ok(best)
    }
}

/// A detection cost breakdown under the turn-cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionCost {
    /// Index of the `(f+1)`-st distinct visitor.
    pub robot: usize,
    /// Its arrival time at the target.
    pub time: f64,
    /// Reversals it performed strictly before arrival.
    pub turns: usize,
    /// Total cost `time + c * turns`.
    pub cost: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Algorithm;
    use crate::params::Params;
    use crate::trajectory::TrajectoryBuilder;

    fn doubling(horizon_targets: usize) -> PiecewiseTrajectory {
        let mut b = TrajectoryBuilder::from_origin();
        let mut side = 1.0;
        let mut mag = 1.0;
        for _ in 0..horizon_targets {
            b.sweep_to(side * mag);
            side = -side;
            mag *= 2.0;
        }
        b.finish().unwrap()
    }

    #[test]
    fn validates_cost() {
        assert!(TurnCost::new(-1.0).is_err());
        assert!(TurnCost::new(f64::NAN).is_err());
        assert_eq!(TurnCost::free().cost_per_turn(), 0.0);
    }

    #[test]
    fn free_model_reduces_to_plain_detection_time() {
        let t = doubling(10);
        let model = TurnCost::free();
        let d = model.detection_cost(std::slice::from_ref(&t), 3.0, 1).unwrap().unwrap();
        assert_eq!(d.cost, d.time);
        assert_eq!(d.time, t.first_visit(3.0).unwrap());
    }

    #[test]
    fn turns_are_counted_strictly_before_arrival() {
        let t = doubling(10);
        let model = TurnCost::new(1.0).unwrap();
        // Target +3 is reached on the sweep from -2 to 4, after turning
        // at +1 and at -2: exactly 2 turns.
        let d = model.detection_cost(&[t], 3.0, 1).unwrap().unwrap();
        assert_eq!(d.turns, 2);
        assert_eq!(d.cost, d.time + 2.0);
    }

    #[test]
    fn cost_grows_linearly_in_c() {
        let t = doubling(12);
        let base =
            TurnCost::free().detection_cost(std::slice::from_ref(&t), -5.0, 1).unwrap().unwrap();
        for c in [0.5, 1.0, 2.0, 10.0] {
            let model = TurnCost::new(c).unwrap();
            let d = model.detection_cost(std::slice::from_ref(&t), -5.0, 1).unwrap().unwrap();
            assert_eq!(d.turns, base.turns);
            assert!((d.cost - (base.time + c * base.turns as f64)).abs() < 1e-12);
        }
    }

    #[test]
    fn kth_visitor_selection_matches_plain_coverage() {
        let params = Params::new(3, 1).unwrap();
        let alg = Algorithm::design(params).unwrap();
        let horizon = alg.required_horizon(10.0).unwrap();
        let trajs: Vec<_> = alg.plans().iter().map(|p| p.materialize(horizon).unwrap()).collect();
        let fleet = crate::coverage::Fleet::new(trajs.clone()).unwrap();
        let model = TurnCost::free();
        for x in [1.5, -2.5, 7.0] {
            let d = model.detection_cost(&trajs, x, 2).unwrap().unwrap();
            assert!((d.time - fleet.visit_time(x, 2).unwrap()).abs() < 1e-12, "x = {x}");
        }
    }

    #[test]
    fn uncovered_targets_reported() {
        let t = TrajectoryBuilder::from_origin().sweep_to(5.0).finish().unwrap();
        let model = TurnCost::new(1.0).unwrap();
        assert!(model.detection_cost(std::slice::from_ref(&t), -2.0, 1).unwrap().is_none());
        let (sup, at) = model.supremum(&[t], &[2.0, -2.0], 1).unwrap();
        assert!(sup.is_infinite());
        assert_eq!(at, -2.0);
    }

    #[test]
    fn supremum_over_grid() {
        let t = doubling(14);
        let model = TurnCost::new(0.5).unwrap();
        let targets: Vec<f64> = vec![1.0, 1.5, 2.0, 3.0, -1.0, -2.5, 4.1];
        let (sup, _) = model.supremum(std::slice::from_ref(&t), &targets, 1).unwrap();
        let free = TurnCost::free();
        let (sup_free, _) = free.supremum(&[t], &targets, 1).unwrap();
        assert!(sup > sup_free, "turn cost must hurt: {sup} vs {sup_free}");
    }

    #[test]
    fn input_validation() {
        let t = doubling(6);
        let model = TurnCost::free();
        assert!(model.detection_cost(&[], 1.0, 1).is_err());
        assert!(model.detection_cost(std::slice::from_ref(&t), 1.0, 0).is_err());
        assert!(model.ratio(std::slice::from_ref(&t), 0.0, 1).is_err());
        assert!(model.supremum(&[t], &[], 1).is_err());
    }

    #[test]
    fn larger_expansion_pays_fewer_turns() {
        // The expansion factor kappa = (beta+1)/(beta-1) DEcreases in
        // beta: a small beta means huge excursions and few reversals, a
        // large beta means tight oscillation and many reversals before
        // reaching a far target — the trade-off the turn-cost
        // experiment quantifies.
        let params = Params::new(3, 1).unwrap();
        let few_turns = Algorithm::design_with_beta(params, 1.2).unwrap(); // kappa = 11
        let many_turns = Algorithm::design_with_beta(params, 4.0).unwrap(); // kappa = 5/3
        let x = 40.0;
        let count = |alg: &Algorithm| {
            let horizon = alg.required_horizon(50.0).unwrap();
            let trajs: Vec<_> =
                alg.plans().iter().map(|p| p.materialize(horizon).unwrap()).collect();
            TurnCost::free().detection_cost(&trajs, x, 2).unwrap().unwrap().turns
        };
        assert!(count(&many_turns) > count(&few_turns));
    }
}
