//! Outward-rounded interval arithmetic.
//!
//! The reproduction's headline numbers (Theorem 1 ratios, the
//! lower-bound roots `alpha(n)`) are computed in `f64`. This module
//! provides conservative interval enclosures — every operation widens
//! its result by one ULP in each direction after the `f64` computation,
//! so the true real-arithmetic value is guaranteed to lie inside the
//! returned interval (for the monotone operations used here). The
//! [`crate::certificate`] module uses it to *certify* the paper's
//! Table 1 to provable precision.

use std::fmt;

use crate::error::{Error, Result};

/// A closed interval `[lo, hi]` of finite `f64` values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// Creates an interval.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] when `lo > hi` or either bound is not
    /// finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self> {
        if !lo.is_finite() || !hi.is_finite() || lo > hi {
            return Err(Error::domain(format!("invalid interval [{lo}, {hi}]")));
        }
        Ok(Interval { lo, hi })
    }

    /// The degenerate interval `[x, x]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] for non-finite `x`.
    pub fn point(x: f64) -> Result<Self> {
        Interval::new(x, x)
    }

    /// An interval around `x` widened by one ULP on each side — the
    /// correct enclosure for a value computed by a single rounded
    /// `f64` operation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] for non-finite `x`.
    pub fn around(x: f64) -> Result<Self> {
        if !x.is_finite() {
            return Err(Error::domain(format!("cannot enclose non-finite value {x}")));
        }
        Ok(Interval { lo: x.next_down(), hi: x.next_up() })
    }

    /// Lower bound.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Width `hi - lo`.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint.
    #[must_use]
    pub fn mid(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Whether the interval contains `x`.
    #[must_use]
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Whether every point of the interval is strictly positive.
    #[must_use]
    pub fn is_positive(&self) -> bool {
        self.lo > 0.0
    }

    /// Whether every point of the interval is strictly negative.
    #[must_use]
    pub fn is_negative(&self) -> bool {
        self.hi < 0.0
    }

    fn outward(lo: f64, hi: f64) -> Interval {
        Interval { lo: lo.next_down(), hi: hi.next_up() }
    }

    /// Interval addition (outward rounded).
    #[must_use]
    pub fn add(&self, other: Interval) -> Interval {
        Interval::outward(self.lo + other.lo, self.hi + other.hi)
    }

    /// Adds a scalar (outward rounded).
    #[must_use]
    pub fn add_scalar(&self, x: f64) -> Interval {
        Interval::outward(self.lo + x, self.hi + x)
    }

    /// Interval subtraction (outward rounded).
    #[must_use]
    pub fn sub(&self, other: Interval) -> Interval {
        Interval::outward(self.lo - other.hi, self.hi - other.lo)
    }

    /// Interval multiplication (outward rounded).
    #[must_use]
    pub fn mul(&self, other: Interval) -> Interval {
        let products =
            [self.lo * other.lo, self.lo * other.hi, self.hi * other.lo, self.hi * other.hi];
        let lo = products.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = products.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Interval::outward(lo, hi)
    }

    /// Multiplies by a scalar (outward rounded).
    #[must_use]
    pub fn mul_scalar(&self, x: f64) -> Interval {
        let (a, b) = (self.lo * x, self.hi * x);
        Interval::outward(a.min(b), a.max(b))
    }

    /// Interval division (outward rounded).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] when the divisor contains zero.
    pub fn div(&self, other: Interval) -> Result<Interval> {
        if other.contains(0.0) {
            return Err(Error::domain(format!(
                "interval division by [{}, {}] containing zero",
                other.lo, other.hi
            )));
        }
        let quotients =
            [self.lo / other.lo, self.lo / other.hi, self.hi / other.lo, self.hi / other.hi];
        let lo = quotients.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = quotients.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Ok(Interval::outward(lo, hi))
    }

    /// Natural logarithm (requires a strictly positive interval).
    ///
    /// `ln` is increasing, so the enclosure is `[ln lo, ln hi]` widened
    /// outward by one ULP to absorb the rounding of `f64::ln` (which is
    /// faithfully rounded to within 1 ULP on all mainstream platforms;
    /// we widen by 2 ULPs for margin).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] unless the interval is strictly
    /// positive.
    pub fn ln(&self) -> Result<Interval> {
        if !self.is_positive() {
            return Err(Error::domain(format!(
                "ln of non-positive interval [{}, {}]",
                self.lo, self.hi
            )));
        }
        let lo = self.lo.ln().next_down().next_down();
        let hi = self.hi.ln().next_up().next_up();
        Ok(Interval { lo, hi })
    }

    /// Exponential (increasing; same 2-ULP widening as [`Interval::ln`]).
    #[must_use]
    pub fn exp(&self) -> Interval {
        let lo = self.lo.exp().next_down().next_down();
        let hi = self.hi.exp().next_up().next_up();
        Interval { lo, hi }
    }

    /// Interval power `self^exponent` for a strictly positive base,
    /// computed as `exp(exponent * ln(self))`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] unless the base is strictly positive.
    pub fn powi_interval(&self, exponent: Interval) -> Result<Interval> {
        Ok(self.ln()?.mul(exponent).exp())
    }

    /// Interval power with a scalar exponent.
    ///
    /// # Errors
    ///
    /// As [`Interval::powi_interval`].
    pub fn pow_scalar(&self, exponent: f64) -> Result<Interval> {
        self.powi_interval(Interval::point(exponent)?)
    }

    /// The convex hull of two intervals.
    #[must_use]
    pub fn hull(&self, other: Interval) -> Interval {
        Interval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Componentwise maximum: the enclosure of `max(a, b)` for
    /// `a ∈ self`, `b ∈ other`.
    ///
    /// Exact (no widening): `max` over reals maps the bound pairs to
    /// the bound pair, and `f64::max` on finite bounds is exact.
    #[must_use]
    pub fn max_enclosure(&self, other: Interval) -> Interval {
        Interval { lo: self.lo.max(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Componentwise minimum: the enclosure of `min(a, b)` for
    /// `a ∈ self`, `b ∈ other`. Exact, like
    /// [`Interval::max_enclosure`].
    #[must_use]
    pub fn min_enclosure(&self, other: Interval) -> Interval {
        Interval { lo: self.lo.min(other.lo), hi: self.hi.min(other.hi) }
    }

    /// Enclosure of the affine ratio `(slope * x + intercept) / x` at
    /// the exact point `x`, mirroring the `f64` evaluation order of the
    /// exact supremum engine (`mul`, `add`, `div`, one rounding each):
    /// the result contains both the real-arithmetic value and every
    /// `f64` evaluation of the same expression at the same `x`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] for `x == 0` or non-finite inputs.
    pub fn affine_ratio(slope: f64, intercept: f64, x: f64) -> Result<Interval> {
        if x == 0.0 {
            return Err(Error::domain("affine ratio is undefined at x = 0"));
        }
        Interval::around(slope * x)?.add_scalar(intercept).div(Interval::point(x)?)
    }

    /// Enclosure of the affine ratio `slope + intercept / x` over every
    /// `x` in the positive interval `xs` — the range form used to
    /// bracket a supremum near an imprecisely known critical point
    /// (e.g. a pairwise crossing enclosed by [`Interval::around`]
    /// arithmetic).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] when `xs` contains zero or the inputs
    /// are non-finite.
    pub fn affine_ratio_over(slope: f64, intercept: f64, xs: Interval) -> Result<Interval> {
        Ok(Interval::point(intercept)?.div(xs)?.add_scalar(slope))
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, fmt: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(fmt, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(Interval::new(2.0, 1.0).is_err());
        assert!(Interval::new(f64::NAN, 1.0).is_err());
        assert!(Interval::new(0.0, f64::INFINITY).is_err());
        assert!(Interval::point(f64::NAN).is_err());
    }

    #[test]
    fn around_encloses_and_is_tight() {
        let x = 1.234_567_890_123;
        let i = Interval::around(x).unwrap();
        assert!(i.contains(x));
        assert!(i.width() < 1e-12);
    }

    #[test]
    fn arithmetic_encloses_exact_results() {
        let a = iv(1.0, 2.0);
        let b = iv(3.0, 4.0);
        let sum = a.add(b);
        assert!(sum.contains(4.0) && sum.contains(6.0));
        let diff = a.sub(b);
        assert!(diff.contains(-3.0) && diff.contains(-1.0));
        let prod = a.mul(b);
        assert!(prod.contains(3.0) && prod.contains(8.0));
        let quot = a.div(b).unwrap();
        assert!(quot.contains(0.25) && quot.contains(2.0 / 3.0));
    }

    #[test]
    fn mul_handles_signs() {
        let a = iv(-2.0, 3.0);
        let b = iv(-5.0, 4.0);
        let p = a.mul(b);
        // Extremes: -2*4 = -8 ... wait min is 3 * -5 = -15, max -2*-5 = 10 or 3*4 = 12.
        assert!(p.contains(-15.0) && p.contains(12.0));
    }

    #[test]
    fn division_by_zero_interval_rejected() {
        assert!(iv(1.0, 2.0).div(iv(-1.0, 1.0)).is_err());
        assert!(iv(1.0, 2.0).div(iv(0.0, 1.0)).is_err());
    }

    #[test]
    fn ln_exp_roundtrip_contains_identity() {
        let a = iv(0.5, 3.0);
        let round = a.ln().unwrap().exp();
        assert!(round.lo <= 0.5 && round.hi >= 3.0);
        assert!(round.width() < 3.0 * 1e-12 + a.width() * 1.001);
        assert!(iv(-1.0, 1.0).ln().is_err());
    }

    #[test]
    fn pow_encloses_known_values() {
        // 2^10 = 1024.
        let p = Interval::point(2.0).unwrap().pow_scalar(10.0).unwrap();
        assert!(p.contains(1024.0));
        assert!(p.width() < 1e-9);
        // (8/3)^(4/3) * (2/3)^(-1/3) + 1 = CR of A(3, 1) ~ 5.2331.
        let b = Interval::around(8.0 / 3.0).unwrap();
        let c = Interval::around(2.0 / 3.0).unwrap();
        let cr =
            b.pow_scalar(4.0 / 3.0).unwrap().mul(c.pow_scalar(-1.0 / 3.0).unwrap()).add_scalar(1.0);
        assert!(cr.contains(5.233_069_471_915_2), "{cr}");
        assert!(cr.width() < 1e-10, "{cr}");
    }

    #[test]
    fn scalar_helpers() {
        let a = iv(1.0, 2.0).mul_scalar(-3.0);
        assert!(a.contains(-6.0) && a.contains(-3.0));
        let b = iv(1.0, 2.0).add_scalar(10.0);
        assert!(b.contains(11.0) && b.contains(12.0));
    }

    #[test]
    fn max_min_enclosures_are_componentwise_and_exact() {
        let a = iv(1.0, 4.0);
        let b = iv(2.0, 3.0);
        let mx = a.max_enclosure(b);
        assert_eq!((mx.lo(), mx.hi()), (2.0, 4.0));
        let mn = a.min_enclosure(b);
        assert_eq!((mn.lo(), mn.hi()), (1.0, 3.0));
        // Enclosure property on sample points: max(x, y) for x in a,
        // y in b always lands inside the componentwise max.
        for (x, y) in [(1.0f64, 2.0f64), (4.0, 3.0), (2.5, 2.5)] {
            assert!(mx.contains(x.max(y)), "max({x}, {y})");
            assert!(mn.contains(x.min(y)), "min({x}, {y})");
        }
    }

    #[test]
    fn affine_ratio_encloses_real_and_f64_evaluations() {
        let (slope, intercept) = (3.0, 7.0);
        for x in [1.0, 2.5, 19.75, -4.0] {
            let enc = Interval::affine_ratio(slope, intercept, x).unwrap();
            // The f64 evaluation order of the exact engine.
            let f64_value = (slope * x + intercept) / x;
            assert!(enc.contains(f64_value), "x = {x}: {f64_value} outside {enc}");
            assert!(
                enc.width() <= 1e-12 * f64_value.abs().max(1.0),
                "x = {x}: width {}",
                enc.width()
            );
        }
        assert!(Interval::affine_ratio(1.0, 1.0, 0.0).is_err());
    }

    #[test]
    fn affine_ratio_over_covers_the_whole_range() {
        let xs = iv(2.0, 4.0);
        let enc = Interval::affine_ratio_over(1.5, 6.0, xs).unwrap();
        for i in 0..=10 {
            let x = 2.0 + 2.0 * i as f64 / 10.0;
            assert!(enc.contains(1.5 + 6.0 / x), "x = {x}");
        }
        assert!(Interval::affine_ratio_over(1.0, 1.0, iv(-1.0, 1.0)).is_err());
    }

    #[test]
    fn hull_and_predicates() {
        let h = iv(1.0, 2.0).hull(iv(5.0, 6.0));
        assert_eq!((h.lo(), h.hi()), (1.0, 6.0));
        assert!(iv(0.1, 0.2).is_positive());
        assert!(iv(-0.2, -0.1).is_negative());
        assert!(!iv(-0.1, 0.1).is_positive());
        assert!((iv(1.0, 3.0).mid() - 2.0).abs() < 1e-15);
    }
}
