//! Proportional schedules `S_beta(n)` (Definition 2, Lemma 2) and their
//! conversion into concrete per-robot zig-zag plans (Definition 4).
//!
//! In a proportional schedule all `n` robots zig-zag inside the same
//! cone `C_beta`; the interleaved sequence of their positive turning
//! points `tau_0 < tau_1 < tau_2 < ...` is geometric with
//! *proportionality ratio*
//!
//! ```text
//! r = ((beta + 1) / (beta - 1))^(2/n)          (Lemma 2, Eq. 2)
//! ```
//!
//! so `tau_j = tau_0 * r^j`, and the robot owning `tau_j` is `a_(j mod n)`.

use serde::{Deserialize, Serialize};

use crate::cone::Cone;
use crate::error::{Error, Result};
use crate::spacetime::SpaceTime;
use crate::zigzag::ZigZagPlan;

/// The proportional schedule `S_beta(n)`: `n` robots zig-zagging in the
/// cone `C_beta` with interleaved geometric turning points.
///
/// The schedule is normalized so that robot `a_0` has a positive turning
/// point at `base` (default 1, matching the paper's assumption that the
/// target is at distance at least one).
///
/// ```
/// use faultline_core::ProportionalSchedule;
/// // A(3, 1): beta* = 8/3 - 1 = 5/3, expansion factor 4.
/// let s = ProportionalSchedule::new(3, 5.0 / 3.0)?;
/// assert!((s.expansion_factor() - 4.0).abs() < 1e-12);
/// assert!((s.competitive_ratio(1) - 5.233) .abs() < 1e-3);
/// # Ok::<(), faultline_core::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ProportionalSchedule {
    n: usize,
    cone: Cone,
    base: f64,
}

// Deserialization re-validates `n >= 1` and `base > 0` (the cone
// validates its own `beta`).
impl<'de> Deserialize<'de> for ProportionalSchedule {
    fn deserialize<D>(deserializer: D) -> std::result::Result<Self, D::Error>
    where
        D: serde::Deserializer<'de>,
    {
        #[derive(Deserialize)]
        struct Raw {
            n: usize,
            cone: Cone,
            base: f64,
        }
        let raw = Raw::deserialize(deserializer)?;
        ProportionalSchedule::with_base(raw.n, raw.cone.beta(), raw.base)
            .map_err(serde::de::Error::custom)
    }
}

impl ProportionalSchedule {
    /// Creates the schedule `S_beta(n)` with `base = 1`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameters`] when `n == 0` and
    /// [`Error::InvalidBeta`] when `beta <= 1`.
    pub fn new(n: usize, beta: f64) -> Result<Self> {
        Self::with_base(n, beta, 1.0)
    }

    /// Creates the schedule with an explicit normalization `base > 0`:
    /// robot `a_0` turns at position `base` at time `beta * base`.
    ///
    /// # Errors
    ///
    /// As [`ProportionalSchedule::new`], plus [`Error::Domain`] for a
    /// non-positive `base`.
    pub fn with_base(n: usize, beta: f64, base: f64) -> Result<Self> {
        if n == 0 {
            return Err(Error::invalid_params(0, 0, "a schedule needs at least one robot"));
        }
        if !(base > 0.0) || !base.is_finite() {
            return Err(Error::domain(format!("schedule base must be positive, got {base}")));
        }
        let cone = Cone::new(beta)?;
        Ok(ProportionalSchedule { n, cone, base })
    }

    /// Number of robots in the schedule.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The cone `C_beta` confining every robot.
    #[must_use]
    pub fn cone(&self) -> Cone {
        self.cone
    }

    /// The cone slope parameter `beta`.
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.cone.beta()
    }

    /// Normalization: the position of robot `a_0`'s reference turning
    /// point.
    #[must_use]
    pub fn base(&self) -> f64 {
        self.base
    }

    /// The per-robot expansion factor `kappa = (beta + 1)/(beta - 1)`.
    #[must_use]
    pub fn expansion_factor(&self) -> f64 {
        self.cone.expansion_factor()
    }

    /// The proportionality ratio `r = kappa^(2/n)` (Lemma 2, Eq. 2).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.expansion_factor().powf(2.0 / self.n as f64)
    }

    /// The `j`-th interleaved positive turning point `tau_j = base * r^j`
    /// (negative `j` extends the sequence backwards).
    #[must_use]
    pub fn turning_position(&self, j: i64) -> f64 {
        self.base * self.ratio().powi(j as i32)
    }

    /// The robot owning turning point `tau_j`: `a_(j mod n)`.
    #[must_use]
    pub fn robot_of_turning_point(&self, j: i64) -> usize {
        j.rem_euclid(self.n as i64) as usize
    }

    /// The first `count` interleaved positive turning points, as
    /// `(robot index, space–time point)` pairs, starting at `tau_0`.
    #[must_use]
    pub fn interleaved_turning_points(&self, count: usize) -> Vec<(usize, SpaceTime)> {
        (0..count as i64)
            .map(|j| {
                let x = self.turning_position(j);
                (self.robot_of_turning_point(j), self.cone.boundary_point(x))
            })
            .collect()
    }

    /// The seed turning point `tau_i'` of robot `a_i` per Definition 4:
    /// robot `a_0` seeds at `base`; every other robot extends its
    /// zig-zag backwards inside the cone until the first turning point of
    /// magnitude strictly below `base`.
    #[must_use]
    pub fn seed_for_robot(&self, i: usize) -> SpaceTime {
        assert!(i < self.n, "robot index {i} out of range for n = {}", self.n);
        let start = self.cone.boundary_point(self.base * self.ratio().powi(i as i32));
        if i == 0 {
            return start;
        }
        let mut p = start;
        loop {
            p = self.cone.previous_turning_point(p);
            // Strictly below base, with a relative tolerance: for even n
            // the walk lands on magnitude exactly `base` (e.g. robot
            // n/2's predecessor of tau_(n/2) is -base), where round-off
            // must not end the walk one step early.
            if p.x.abs() < self.base * (1.0 - 1e-9) {
                return p;
            }
        }
    }

    /// The complete set of per-robot zig-zag plans of the algorithm
    /// `A(n, f)` built on this schedule (Definition 4).
    ///
    /// Robot `a_i` travels from the origin at speed `1/beta` to its seed
    /// and then zig-zags inside the cone.
    #[must_use]
    pub fn plans(&self) -> Vec<ZigZagPlan> {
        (0..self.n)
            .map(|i| {
                let seed = self.seed_for_robot(i);
                ZigZagPlan::new(self.cone, seed.x)
                    .expect("seed positions are non-zero by construction")
            })
            .collect()
    }

    /// Lemma 4 closed form: the limit, as `x` approaches the turning
    /// point `tau_0 = base` from above, of the time at which the
    /// `(f+1)`-st distinct robot visits `x`:
    ///
    /// ```text
    /// T_(f+1) = base * ((beta+1)^((2f+2)/n) (beta-1)^(1-(2f+2)/n) + 1)
    ///         = base * (r^(f+1) (beta - 1) + 1)
    /// ```
    #[must_use]
    pub fn lemma4_visit_time(&self, f: usize) -> f64 {
        self.base * (self.ratio().powi(f as i32 + 1) * (self.beta() - 1.0) + 1.0)
    }

    /// Lemma 5: the competitive ratio of this schedule against `f`
    /// faulty robots,
    /// `CR = (beta+1)^((2f+2)/n) (beta-1)^(1-(2f+2)/n) + 1`.
    ///
    /// The value is `lemma4_visit_time(f) / base` and is independent of
    /// the normalization.
    #[must_use]
    pub fn competitive_ratio(&self, f: usize) -> f64 {
        self.ratio().powi(f as i32 + 1) * (self.beta() - 1.0) + 1.0
    }

    /// A materialization horizon guaranteed to contain the `k`-th
    /// distinct robot visit of every point with `base <= |x| <= xmax`.
    ///
    /// The `k`-th visitor of `x` arrives no later than
    /// `x * (r^k (beta-1) + 1)` scaled by one extra ratio step for the
    /// discontinuity, doubled for safety.
    #[must_use]
    pub fn required_horizon(&self, k: usize, xmax: f64) -> f64 {
        let r = self.ratio();
        2.0 * xmax * r.powi(k as i32 + 1) * (self.beta() + 1.0)
    }
}

impl std::fmt::Display for ProportionalSchedule {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            fmt,
            "S_beta(n = {}, beta = {}, r = {}, base = {})",
            self.n,
            self.beta(),
            self.ratio(),
            self.base
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::approx_eq;
    use crate::plan::TrajectoryPlan;

    fn a31() -> ProportionalSchedule {
        // A(3, 1): beta* = (4*1+4)/3 - 1 = 5/3.
        ProportionalSchedule::new(3, 5.0 / 3.0).unwrap()
    }

    #[test]
    fn validates_inputs() {
        assert!(ProportionalSchedule::new(0, 2.0).is_err());
        assert!(ProportionalSchedule::new(3, 1.0).is_err());
        assert!(ProportionalSchedule::with_base(3, 2.0, 0.0).is_err());
        assert!(ProportionalSchedule::with_base(3, 2.0, -1.0).is_err());
    }

    #[test]
    fn ratio_formula_lemma2() {
        let s = a31();
        // kappa = 4, r = 4^(2/3).
        assert!(approx_eq(s.ratio(), 4.0_f64.powf(2.0 / 3.0), 1e-13));
    }

    #[test]
    fn turning_positions_are_geometric() {
        let s = a31();
        for j in -3..10 {
            let ratio = s.turning_position(j + 1) / s.turning_position(j);
            assert!(approx_eq(ratio, s.ratio(), 1e-12));
        }
    }

    #[test]
    fn robot_assignment_wraps() {
        let s = a31();
        assert_eq!(s.robot_of_turning_point(0), 0);
        assert_eq!(s.robot_of_turning_point(1), 1);
        assert_eq!(s.robot_of_turning_point(2), 2);
        assert_eq!(s.robot_of_turning_point(3), 0);
        assert_eq!(s.robot_of_turning_point(-1), 2);
    }

    #[test]
    fn seed_for_robot_zero_is_base() {
        let s = a31();
        let seed = s.seed_for_robot(0);
        assert_eq!(seed.x, 1.0);
        assert!(approx_eq(seed.t, 5.0 / 3.0, 1e-12));
    }

    #[test]
    fn seeds_have_magnitude_below_base() {
        for (n, beta) in [(2, 3.0), (3, 5.0 / 3.0), (4, 2.0), (5, 1.4), (7, 1.2), (8, 1.5)] {
            let s = ProportionalSchedule::new(n, beta).unwrap();
            for i in 1..n {
                let seed = s.seed_for_robot(i);
                assert!(
                    seed.x.abs() < s.base(),
                    "n = {n}, robot {i}: seed {} not below base",
                    seed.x
                );
                // The seed is a genuine turning point of robot i: walking
                // forwards must reach tau_i = r^i exactly.
                let mut p = seed;
                let target = s.turning_position(i as i64);
                let mut hit = false;
                for _ in 0..4 {
                    p = s.cone().next_turning_point(p);
                    if approx_eq(p.x, target, 1e-9) {
                        hit = true;
                        break;
                    }
                }
                assert!(hit, "n = {n}, robot {i}: seed does not lead back to tau_i");
            }
        }
    }

    #[test]
    fn plans_have_distinct_turning_points() {
        let s = a31();
        let plans = s.plans();
        assert_eq!(plans.len(), 3);
        let mut all_turns: Vec<f64> = Vec::new();
        for plan in &plans {
            for p in plan.turning_points_until(1_000.0) {
                all_turns.push(p.x);
            }
        }
        all_turns.sort_by(f64::total_cmp);
        for w in all_turns.windows(2) {
            assert!(
                (w[0] - w[1]).abs() > 1e-9,
                "two robots share turning point {} (paper assumes distinct)",
                w[0]
            );
        }
    }

    #[test]
    fn interleaved_positive_turning_points_are_covered_by_plans() {
        // Every interleaved turning point tau_j must actually be a
        // turning point of the materialized trajectory of robot j mod n.
        let s = ProportionalSchedule::new(4, 2.0).unwrap();
        let horizon = s.required_horizon(4, 30.0);
        let trajs: Vec<_> = s.plans().iter().map(|p| p.materialize(horizon).unwrap()).collect();
        for (robot, pt) in s.interleaved_turning_points(9) {
            let turns = trajs[robot].turning_points();
            let found =
                turns.iter().any(|q| approx_eq(q.x, pt.x, 1e-9) && approx_eq(q.t, pt.t, 1e-9));
            assert!(found, "tau at x = {} missing from robot {robot}", pt.x);
        }
    }

    #[test]
    fn lemma2_time_recurrence() {
        // t_{i+1} = t_i + tau_i * beta * (r - 1) for the interleaved
        // sequence (second part of Lemma 2).
        let s = ProportionalSchedule::new(5, 1.4).unwrap();
        let pts = s.interleaved_turning_points(12);
        let r = s.ratio();
        for w in pts.windows(2) {
            let (tau_i, t_i) = (w[0].1.x, w[0].1.t);
            let t_next = w[1].1.t;
            assert!(
                approx_eq(t_next, t_i + tau_i * s.beta() * (r - 1.0), 1e-9),
                "time recurrence violated at tau = {tau_i}"
            );
        }
    }

    #[test]
    fn lemma5_competitive_ratio_closed_forms_agree() {
        // r^(f+1)(beta-1) + 1 == (beta+1)^e (beta-1)^(1-e) + 1.
        for (n, f, beta) in [(3usize, 1usize, 5.0 / 3.0), (5, 2, 1.4), (5, 3, 2.2), (2, 1, 3.0)] {
            let s = ProportionalSchedule::new(n, beta).unwrap();
            let e = (2 * f + 2) as f64 / n as f64;
            let direct = (beta + 1.0).powf(e) * (beta - 1.0).powf(1.0 - e) + 1.0;
            assert!(approx_eq(s.competitive_ratio(f), direct, 1e-12), "n = {n}, f = {f}");
        }
    }

    #[test]
    fn base_scales_positions_not_ratio() {
        let unit = ProportionalSchedule::new(3, 5.0 / 3.0).unwrap();
        let scaled = ProportionalSchedule::with_base(3, 5.0 / 3.0, 10.0).unwrap();
        assert!(approx_eq(scaled.turning_position(2), 10.0 * unit.turning_position(2), 1e-12));
        assert!(approx_eq(scaled.competitive_ratio(1), unit.competitive_ratio(1), 1e-12));
    }

    #[test]
    fn single_robot_schedule_is_classic_cow_path() {
        // n = 1, beta = 3: doubling with CR 9 (f = 0).
        let s = ProportionalSchedule::new(1, 3.0).unwrap();
        assert!(approx_eq(s.competitive_ratio(0), 9.0, 1e-12));
        assert!(approx_eq(s.expansion_factor(), 2.0, 1e-12));
        assert!(approx_eq(s.ratio(), 4.0, 1e-12));
    }

    #[test]
    fn horizon_is_generous() {
        let s = a31();
        let h = s.required_horizon(2, 100.0);
        // Must exceed the Lemma 4 visit time at xmax by a comfortable margin.
        assert!(h > 100.0 * s.competitive_ratio(1) * s.ratio());
    }
}
