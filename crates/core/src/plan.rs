//! Trajectory *plans*: potentially infinite motion descriptions that can
//! be materialized into finite [`PiecewiseTrajectory`] values up to any
//! time horizon.
//!
//! Zig-zag strategies have infinitely many turning points, so algorithms
//! hand out plans rather than trajectories; simulators and evaluators
//! choose the horizon they need.

use crate::error::{Error, Result};
use crate::spacetime::SpaceTime;
use crate::trajectory::{PiecewiseTrajectory, TrajectoryBuilder};

/// A motion plan for a single robot, materializable to any horizon.
///
/// Implementors must produce trajectories that are defined exactly on
/// `[0, horizon]` and respect the unit speed limit. The trait is
/// object-safe so heterogeneous fleets can be stored as
/// `Vec<Box<dyn TrajectoryPlan>>` ([C-OBJECT]).
pub trait TrajectoryPlan: std::fmt::Debug + Send + Sync {
    /// Materializes the plan as a finite trajectory on `[0, horizon]`.
    ///
    /// # Errors
    ///
    /// Returns an error when `horizon` is not strictly positive or the
    /// plan cannot produce a valid trajectory.
    fn materialize(&self, horizon: f64) -> Result<PiecewiseTrajectory>;

    /// Short human-readable description of the plan.
    fn label(&self) -> String;
}

/// A plan that moves straight from the origin in one direction at unit
/// speed forever — one member of the trivial two-group strategy for
/// `n >= 2f + 2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RayPlan {
    direction: Direction,
}

/// Direction of travel along the line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Towards positive positions.
    Right,
    /// Towards negative positions.
    Left,
}

impl Direction {
    /// Sign of the direction: `+1.0` or `-1.0`.
    #[must_use]
    pub fn sign(&self) -> f64 {
        match self {
            Direction::Right => 1.0,
            Direction::Left => -1.0,
        }
    }
}

impl RayPlan {
    /// Creates a ray plan in the given direction.
    #[must_use]
    pub fn new(direction: Direction) -> Self {
        RayPlan { direction }
    }

    /// The travel direction.
    #[must_use]
    pub fn direction(&self) -> Direction {
        self.direction
    }
}

impl TrajectoryPlan for RayPlan {
    fn materialize(&self, horizon: f64) -> Result<PiecewiseTrajectory> {
        check_horizon(horizon)?;
        PiecewiseTrajectory::new(vec![
            SpaceTime::origin(),
            SpaceTime::new(self.direction.sign() * horizon, horizon),
        ])
    }

    fn label(&self) -> String {
        match self.direction {
            Direction::Right => "ray(+)".to_owned(),
            Direction::Left => "ray(-)".to_owned(),
        }
    }
}

/// A plan that keeps the robot parked at the origin.
///
/// Useful as a degenerate baseline and for modelling robots that a
/// strategy deliberately does not deploy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdlePlan;

impl IdlePlan {
    /// Creates an idle plan.
    #[must_use]
    pub fn new() -> Self {
        IdlePlan
    }
}

impl TrajectoryPlan for IdlePlan {
    fn materialize(&self, horizon: f64) -> Result<PiecewiseTrajectory> {
        check_horizon(horizon)?;
        TrajectoryBuilder::from_origin().hold_until(horizon).finish()
    }

    fn label(&self) -> String {
        "idle".to_owned()
    }
}

/// A plan that repeats an explicit, finite cycle of target positions at
/// unit speed and then holds its final position; the workhorse for
/// hand-rolled baselines such as the classic doubling strategy when
/// expressed with explicit turning points.
#[derive(Debug, Clone, PartialEq)]
pub struct WaypointCyclePlan {
    targets: Vec<f64>,
    label: String,
}

impl WaypointCyclePlan {
    /// Creates a plan that visits `targets` in order at unit speed
    /// starting from the origin, then holds the last target.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidTrajectory`] when `targets` is empty or
    /// contains non-finite values.
    pub fn new(targets: Vec<f64>, label: impl Into<String>) -> Result<Self> {
        if targets.is_empty() {
            return Err(Error::trajectory("waypoint plan needs at least one target"));
        }
        if targets.iter().any(|x| !x.is_finite()) {
            return Err(Error::trajectory("waypoint targets must be finite"));
        }
        Ok(WaypointCyclePlan { targets, label: label.into() })
    }

    /// The target positions visited by the plan.
    #[must_use]
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }
}

impl TrajectoryPlan for WaypointCyclePlan {
    fn materialize(&self, horizon: f64) -> Result<PiecewiseTrajectory> {
        check_horizon(horizon)?;
        let mut builder = TrajectoryBuilder::from_origin();
        let mut clock = 0.0;
        let mut position = 0.0;
        for &target in &self.targets {
            let arrive = clock + (target - position).abs();
            if arrive >= horizon {
                // Cut the final sweep exactly at the horizon.
                let direction = (target - position).signum();
                let cut = position + direction * (horizon - clock);
                builder.glide_to(cut, horizon);
                return builder.finish();
            }
            builder.sweep_to(target);
            clock = arrive;
            position = target;
        }
        builder.hold_until(horizon);
        builder.finish()
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

/// Validates a materialization horizon.
pub(crate) fn check_horizon(horizon: f64) -> Result<()> {
    if !(horizon > 0.0) || !horizon.is_finite() {
        return Err(Error::domain(format!(
            "materialization horizon must be finite and positive, got {horizon}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ray_reaches_horizon() {
        let t = RayPlan::new(Direction::Left).materialize(10.0).unwrap();
        assert_eq!(t.position_at(10.0), Some(-10.0));
        assert_eq!(t.first_visit(-3.0), Some(3.0));
        assert_eq!(t.first_visit(3.0), None);
    }

    #[test]
    fn ray_rejects_bad_horizon() {
        assert!(RayPlan::new(Direction::Right).materialize(0.0).is_err());
        assert!(RayPlan::new(Direction::Right).materialize(-1.0).is_err());
        assert!(RayPlan::new(Direction::Right).materialize(f64::INFINITY).is_err());
    }

    #[test]
    fn idle_stays_put() {
        let t = IdlePlan::new().materialize(7.0).unwrap();
        assert_eq!(t.position_at(3.5), Some(0.0));
        assert_eq!(t.horizon(), 7.0);
    }

    #[test]
    fn waypoint_plan_cuts_at_horizon() {
        let plan = WaypointCyclePlan::new(vec![1.0, -2.0, 4.0], "doubling-prefix").unwrap();
        // Horizon 5 lands mid-sweep from -2 towards +4 (sweep starts at t = 4).
        let t = plan.materialize(5.0).unwrap();
        assert_eq!(t.horizon(), 5.0);
        assert_eq!(t.position_at(5.0), Some(-1.0));
    }

    #[test]
    fn waypoint_plan_holds_after_targets() {
        let plan = WaypointCyclePlan::new(vec![2.0], "one-stop").unwrap();
        let t = plan.materialize(6.0).unwrap();
        assert_eq!(t.position_at(6.0), Some(2.0));
        assert_eq!(t.first_visit(2.0), Some(2.0));
    }

    #[test]
    fn waypoint_plan_validates_targets() {
        assert!(WaypointCyclePlan::new(vec![], "empty").is_err());
        assert!(WaypointCyclePlan::new(vec![f64::NAN], "nan").is_err());
    }

    #[test]
    fn plans_are_object_safe() {
        let fleet: Vec<Box<dyn TrajectoryPlan>> =
            vec![Box::new(RayPlan::new(Direction::Right)), Box::new(IdlePlan::new())];
        assert_eq!(fleet.len(), 2);
        assert!(fleet[0].materialize(1.0).is_ok());
    }

    #[test]
    fn direction_signs() {
        assert_eq!(Direction::Right.sign(), 1.0);
        assert_eq!(Direction::Left.sign(), -1.0);
    }
}
