//! The paper's complete algorithm for every parameter regime: the
//! trivial two-group strategy for `n >= 2f + 2` and the proportional
//! schedule algorithm `A(n, f)` for `f < n < 2f + 2` (Definition 4,
//! Theorem 1).

use crate::error::{Error, Result};
use crate::params::{Params, Regime};
use crate::plan::{Direction, RayPlan, TrajectoryPlan};
use crate::ratio;
use crate::schedule::ProportionalSchedule;

/// A fully designed search algorithm for a validated `(n, f)` pair.
///
/// ```
/// use faultline_core::{Algorithm, Params};
/// let alg = Algorithm::design(Params::new(5, 2)?)?;
/// assert!((alg.analytic_cr() - 4.434).abs() < 1e-3);
/// assert_eq!(alg.plans().len(), 5);
/// # Ok::<(), faultline_core::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Algorithm {
    params: Params,
    inner: Inner,
}

#[derive(Debug, Clone, PartialEq)]
enum Inner {
    /// Two groups of at least `f + 1` robots sent in opposite directions.
    TwoGroup { right: usize, left: usize },
    /// Proportional schedule `S_beta(n)` with per-robot plans from
    /// Definition 4.
    Proportional(ProportionalSchedule),
}

impl Algorithm {
    /// Designs the paper's algorithm for `params`: two-group when
    /// `n >= 2f + 2`, otherwise `A(n, f)` with the optimal
    /// `beta* = (4f+4)/n - 1`.
    ///
    /// # Errors
    ///
    /// Never fails for validated [`Params`]; the `Result` accommodates
    /// downstream construction errors.
    pub fn design(params: Params) -> Result<Self> {
        match params.regime() {
            Regime::TwoGroup => {
                // Split as evenly as possible; both halves have >= f + 1
                // robots because n >= 2f + 2.
                let right = params.n().div_ceil(2);
                let left = params.n() - right;
                debug_assert!(right > params.f() && left > params.f());
                Ok(Algorithm { params, inner: Inner::TwoGroup { right, left } })
            }
            Regime::Proportional => {
                let beta = ratio::optimal_beta(params)?;
                let schedule = ProportionalSchedule::new(params.n(), beta)?;
                Ok(Algorithm { params, inner: Inner::Proportional(schedule) })
            }
        }
    }

    /// Designs a proportional schedule algorithm with an explicit,
    /// possibly sub-optimal `beta` — the knob used by the beta-ablation
    /// experiment.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidBeta`] for `beta <= 1`.
    pub fn design_with_beta(params: Params, beta: f64) -> Result<Self> {
        let schedule = ProportionalSchedule::new(params.n(), beta)?;
        Ok(Algorithm { params, inner: Inner::Proportional(schedule) })
    }

    /// The parameters the algorithm was designed for.
    #[must_use]
    pub fn params(&self) -> Params {
        self.params
    }

    /// The underlying proportional schedule, when in that regime.
    #[must_use]
    pub fn schedule(&self) -> Option<&ProportionalSchedule> {
        match &self.inner {
            Inner::Proportional(s) => Some(s),
            Inner::TwoGroup { .. } => None,
        }
    }

    /// Per-robot motion plans, one per robot, in robot order.
    #[must_use]
    pub fn plans(&self) -> Vec<Box<dyn TrajectoryPlan>> {
        match &self.inner {
            Inner::TwoGroup { right, left } => {
                let mut plans: Vec<Box<dyn TrajectoryPlan>> = Vec::new();
                for _ in 0..*right {
                    plans.push(Box::new(RayPlan::new(Direction::Right)));
                }
                for _ in 0..*left {
                    plans.push(Box::new(RayPlan::new(Direction::Left)));
                }
                plans
            }
            Inner::Proportional(schedule) => schedule
                .plans()
                .into_iter()
                .map(|p| Box::new(p) as Box<dyn TrajectoryPlan>)
                .collect(),
        }
    }

    /// The analytic competitive ratio of the designed algorithm:
    /// 1 for the two-group regime, Lemma 5's closed form otherwise.
    #[must_use]
    pub fn analytic_cr(&self) -> f64 {
        match &self.inner {
            Inner::TwoGroup { .. } => 1.0,
            Inner::Proportional(s) => s.competitive_ratio(self.params.f()),
        }
    }

    /// A horizon guaranteed to contain the `(f+1)`-st visit of every
    /// target with `1 <= |x| <= xmax`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] for `xmax <= 1`.
    pub fn required_horizon(&self, xmax: f64) -> Result<f64> {
        if !(xmax > 1.0) {
            return Err(Error::domain(format!("xmax must exceed 1, got {xmax}")));
        }
        Ok(match &self.inner {
            Inner::TwoGroup { .. } => xmax * 1.5,
            Inner::Proportional(s) => s.required_horizon(self.params.f() + 1, xmax),
        })
    }

    /// Human-readable description of the designed algorithm.
    #[must_use]
    pub fn describe(&self) -> String {
        match &self.inner {
            Inner::TwoGroup { right, left } => format!(
                "two-group strategy for {}: {right} robots right, {left} robots left, CR = 1",
                self.params
            ),
            Inner::Proportional(s) => format!(
                "proportional schedule A{} with beta = {:.6}, expansion factor {:.6}, CR = {:.6}",
                self.params,
                s.beta(),
                s.expansion_factor(),
                self.analytic_cr()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::Fleet;
    use crate::numeric::approx_eq;

    #[test]
    fn two_group_design_splits_evenly() {
        let alg = Algorithm::design(Params::new(7, 2).unwrap()).unwrap();
        assert_eq!(alg.analytic_cr(), 1.0);
        assert_eq!(alg.plans().len(), 7);
        assert!(alg.schedule().is_none());
        assert!(alg.describe().contains("two-group"));
    }

    #[test]
    fn two_group_fleet_achieves_ratio_one() {
        let params = Params::new(6, 2).unwrap();
        let alg = Algorithm::design(params).unwrap();
        let horizon = alg.required_horizon(50.0).unwrap();
        let fleet = Fleet::from_plans(&alg.plans(), horizon).unwrap();
        for x in [1.0, -1.0, 10.0, -49.0] {
            let t = fleet.visit_time(x, params.f() + 1).unwrap();
            assert!(approx_eq(t, x.abs(), 1e-12), "x = {x}");
        }
    }

    #[test]
    fn proportional_design_uses_optimal_beta() {
        let alg = Algorithm::design(Params::new(3, 1).unwrap()).unwrap();
        let s = alg.schedule().unwrap();
        assert!(approx_eq(s.beta(), 5.0 / 3.0, 1e-12));
        assert!(approx_eq(alg.analytic_cr(), 5.233, 1e-3));
        assert!(alg.describe().contains("proportional"));
    }

    #[test]
    fn design_with_beta_is_suboptimal() {
        let params = Params::new(3, 1).unwrap();
        let optimal = Algorithm::design(params).unwrap();
        for beta in [1.2, 1.4, 2.0, 3.0, 5.0] {
            let ablated = Algorithm::design_with_beta(params, beta).unwrap();
            assert!(
                ablated.analytic_cr() >= optimal.analytic_cr() - 1e-12,
                "beta = {beta} beat the optimum"
            );
        }
        assert!(Algorithm::design_with_beta(params, 1.0).is_err());
    }

    #[test]
    fn plans_count_matches_n() {
        for (n, f) in [(1usize, 0usize), (2, 1), (3, 2), (5, 2), (8, 3), (9, 1)] {
            let alg = Algorithm::design(Params::new(n, f).unwrap()).unwrap();
            assert_eq!(alg.plans().len(), n, "(n = {n}, f = {f})");
        }
    }

    #[test]
    fn required_horizon_validates() {
        let alg = Algorithm::design(Params::new(3, 1).unwrap()).unwrap();
        assert!(alg.required_horizon(1.0).is_err());
        assert!(alg.required_horizon(10.0).unwrap() > 10.0);
    }

    #[test]
    fn single_robot_design_is_doubling() {
        let alg = Algorithm::design(Params::new(1, 0).unwrap()).unwrap();
        let s = alg.schedule().unwrap();
        assert!(approx_eq(s.beta(), 3.0, 1e-12));
        assert!(approx_eq(s.expansion_factor(), 2.0, 1e-12));
        assert!(approx_eq(alg.analytic_cr(), 9.0, 1e-12));
    }
}
