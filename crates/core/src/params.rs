//! Validated problem parameters `(n, f)` and the regime classification
//! used throughout the paper.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// The algorithmic regime a parameter pair `(n, f)` falls into.
///
/// The paper splits the problem in two: with `n >= 2f + 2` robots the
/// trivial two-group strategy achieves competitive ratio 1; with
/// `f < n < 2f + 2` the proportional schedule algorithm `A(n, f)` is
/// used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Regime {
    /// `n >= 2f + 2`: send two groups of at least `f + 1` robots in
    /// opposite directions; competitive ratio 1 (optimal).
    TwoGroup,
    /// `f < n < 2f + 2`: run the proportional schedule algorithm
    /// `A(n, f)` of Section 3.
    Proportional,
}

impl std::fmt::Display for Regime {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Regime::TwoGroup => write!(fmt, "two-group (n >= 2f + 2)"),
            Regime::Proportional => write!(fmt, "proportional schedule (f < n < 2f + 2)"),
        }
    }
}

/// A validated `(n, f)` pair: `n` robots of which at most `f` are faulty.
///
/// Construction enforces `n >= 1` and `n > f`; with `n <= f` every robot
/// could be faulty and no algorithm can guarantee detection, so such
/// pairs are rejected ([C-VALIDATE]).
///
/// ```
/// use faultline_core::{Params, Regime};
/// let p = Params::new(5, 2)?;
/// assert_eq!(p.regime(), Regime::Proportional);
/// assert_eq!(Params::new(6, 2)?.regime(), Regime::TwoGroup);
/// assert!(Params::new(2, 2).is_err());
/// # Ok::<(), faultline_core::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct Params {
    n: usize,
    f: usize,
}

// Deserialization re-validates `n >= 1` and `n > f`.
impl<'de> Deserialize<'de> for Params {
    fn deserialize<D>(deserializer: D) -> std::result::Result<Self, D::Error>
    where
        D: serde::Deserializer<'de>,
    {
        #[derive(Deserialize)]
        struct Raw {
            n: usize,
            f: usize,
        }
        let raw = Raw::deserialize(deserializer)?;
        Params::new(raw.n, raw.f).map_err(serde::de::Error::custom)
    }
}

impl Params {
    /// Creates a validated parameter pair.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameters`] when `n == 0` or `n <= f`.
    pub fn new(n: usize, f: usize) -> Result<Self> {
        if n == 0 {
            return Err(Error::invalid_params(n, f, "at least one robot is required"));
        }
        if n <= f {
            return Err(Error::invalid_params(
                n,
                f,
                "n must exceed f: with n <= f all robots could be faulty and \
                 the target can never be confirmed",
            ));
        }
        Ok(Params { n, f })
    }

    /// Total number of robots.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Maximum number of faulty robots tolerated.
    #[must_use]
    pub fn f(&self) -> usize {
        self.f
    }

    /// Number of distinct robot visits required to certify detection
    /// (`f + 1`).
    #[must_use]
    pub fn required_visits(&self) -> usize {
        self.f + 1
    }

    /// The algorithmic regime this pair falls into.
    #[must_use]
    pub fn regime(&self) -> Regime {
        if self.n >= 2 * self.f + 2 {
            Regime::TwoGroup
        } else {
            Regime::Proportional
        }
    }

    /// The ratio `a = n / f` used for the paper's asymptotic analysis
    /// (Section 1.1). Returns `None` when `f == 0`.
    #[must_use]
    pub fn fault_proportion(&self) -> Option<f64> {
        (self.f > 0).then(|| self.n as f64 / self.f as f64)
    }

    /// Exponent `(2f + 2) / n` appearing in Theorem 1 and Lemma 4.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        (2 * self.f + 2) as f64 / self.n as f64
    }
}

impl std::fmt::Display for Params {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(fmt, "(n = {}, f = {})", self.n, self.f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_robots() {
        assert!(Params::new(0, 0).is_err());
    }

    #[test]
    fn rejects_all_faulty() {
        assert!(Params::new(3, 3).is_err());
        assert!(Params::new(3, 7).is_err());
    }

    #[test]
    fn regime_boundaries() {
        // n = 2f + 2 is the first two-group size.
        assert_eq!(Params::new(4, 1).unwrap().regime(), Regime::TwoGroup);
        assert_eq!(Params::new(3, 1).unwrap().regime(), Regime::Proportional);
        // Single robot, no faults: the classic cow-path setting.
        assert_eq!(Params::new(1, 0).unwrap().regime(), Regime::Proportional);
        assert_eq!(Params::new(2, 0).unwrap().regime(), Regime::TwoGroup);
    }

    #[test]
    fn n_equals_f_plus_one_is_proportional() {
        for f in 1..20 {
            let p = Params::new(f + 1, f).unwrap();
            assert_eq!(p.regime(), Regime::Proportional, "f = {f}");
        }
    }

    #[test]
    fn n_equals_two_f_plus_one_is_proportional() {
        for f in 1..20 {
            let p = Params::new(2 * f + 1, f).unwrap();
            assert_eq!(p.regime(), Regime::Proportional, "f = {f}");
        }
    }

    #[test]
    fn accessors() {
        let p = Params::new(5, 2).unwrap();
        assert_eq!(p.n(), 5);
        assert_eq!(p.f(), 2);
        assert_eq!(p.required_visits(), 3);
        assert_eq!(p.exponent(), 6.0 / 5.0);
        assert_eq!(p.fault_proportion(), Some(2.5));
        assert_eq!(Params::new(1, 0).unwrap().fault_proportion(), None);
    }

    #[test]
    fn display_contains_both_values() {
        let text = Params::new(11, 5).unwrap().to_string();
        assert!(text.contains("11") && text.contains('5'));
    }
}
