//! Multi-robot coverage evaluation: the visit-time function `T_k(x)`,
//! the ratio function `K(x) = T_(f+1)(x) / |x|` (Definition 3), its
//! supremum, and the `(f+1)`-coverage "tower" region of Figure 4.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::json_float;
use crate::plan::TrajectoryPlan;
use crate::trajectory::PiecewiseTrajectory;

/// A fleet of materialized robot trajectories sharing a common horizon,
/// ready for coverage queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fleet {
    trajectories: Vec<PiecewiseTrajectory>,
    horizon: f64,
}

impl Fleet {
    /// Builds a fleet from already materialized trajectories.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameters`] when `trajectories` is
    /// empty.
    pub fn new(trajectories: Vec<PiecewiseTrajectory>) -> Result<Self> {
        if trajectories.is_empty() {
            return Err(Error::invalid_params(0, 0, "a fleet needs at least one robot"));
        }
        let horizon =
            trajectories.iter().map(PiecewiseTrajectory::horizon).fold(f64::INFINITY, f64::min);
        Ok(Fleet { trajectories, horizon })
    }

    /// Materializes a set of plans to the given horizon and builds the
    /// fleet.
    ///
    /// # Errors
    ///
    /// Propagates materialization failures and empty-fleet errors.
    pub fn from_plans(plans: &[Box<dyn TrajectoryPlan>], horizon: f64) -> Result<Self> {
        let trajectories =
            plans.iter().map(|p| p.materialize(horizon)).collect::<Result<Vec<_>>>()?;
        Fleet::new(trajectories)
    }

    /// Number of robots in the fleet.
    #[must_use]
    pub fn len(&self) -> usize {
        self.trajectories.len()
    }

    /// Whether the fleet is empty (never true for a constructed fleet).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trajectories.is_empty()
    }

    /// The common horizon: the earliest end time among the robots.
    /// Queries are only trustworthy for visit times up to this value.
    #[must_use]
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// The underlying trajectories.
    #[must_use]
    pub fn trajectories(&self) -> &[PiecewiseTrajectory] {
        &self.trajectories
    }

    /// First-visit times of position `x`, one entry per robot that ever
    /// visits `x`, sorted increasingly.
    #[must_use]
    pub fn first_visits(&self, x: f64) -> Vec<f64> {
        let mut times: Vec<f64> =
            self.trajectories.iter().filter_map(|t| t.first_visit(x)).collect();
        times.sort_by(f64::total_cmp);
        times
    }

    /// `T_k(x)`: the time at which the `k`-th **distinct** robot first
    /// visits `x` (`k >= 1`), or `None` when fewer than `k` robots reach
    /// `x` within the horizon.
    ///
    /// With `k = f + 1` this is the paper's `T_(f+1)` (Definition 3):
    /// the worst-case detection time with `f` faulty robots.
    #[must_use]
    pub fn visit_time(&self, x: f64, k: usize) -> Option<f64> {
        if k == 0 {
            return Some(0.0);
        }
        self.first_visits(x).get(k - 1).copied()
    }

    /// `K(x) = T_k(x) / |x|` (Definition 3). `None` when `T_k` is
    /// undefined within the horizon.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] when `x == 0`.
    pub fn ratio_at(&self, x: f64, k: usize) -> Result<Option<f64>> {
        if x == 0.0 {
            return Err(Error::domain("K(x) is undefined at the origin"));
        }
        Ok(self.visit_time(x, k).map(|t| t / x.abs()))
    }

    /// Scans `K(x)` over the given target positions and returns the
    /// supremum together with its argmax.
    ///
    /// Positions not covered by `k` robots within the horizon yield an
    /// infinite supremum, faithfully signalling incomplete coverage.
    ///
    /// The argmax is deterministic under ties regardless of the target
    /// order (see [`prefer_argmax`]): among equal ratios the smallest
    /// magnitude wins, and between exact mirror images the positive
    /// side wins. Uncovered scans report the uncovered target closest
    /// to the origin under the same preference.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] when `targets` is empty or contains 0.
    pub fn supremum(&self, targets: &[f64], k: usize) -> Result<SupremumScan> {
        if targets.is_empty() {
            return Err(Error::domain("supremum scan needs at least one target"));
        }
        let mut best: Option<(f64, f64)> = None; // (ratio, argmax) over covered targets
        let mut worst_uncovered: Option<f64> = None;
        let mut uncovered = 0usize;
        for &x in targets {
            match self.ratio_at(x, k)? {
                Some(r) => {
                    let replace = match best {
                        None => true,
                        Some((br, bx)) => r > br || (r == br && prefer_argmax(x, bx)),
                    };
                    if replace {
                        best = Some((r, x));
                    }
                }
                None => {
                    uncovered += 1;
                    if worst_uncovered.is_none_or(|u| prefer_argmax(x, u)) {
                        worst_uncovered = Some(x);
                    }
                }
            }
        }
        Ok(if let Some(u) = worst_uncovered {
            SupremumScan { ratio: f64::INFINITY, argmax: u, uncovered }
        } else {
            let (ratio, argmax) = best.expect("non-empty target list with no uncovered targets");
            SupremumScan { ratio, argmax, uncovered: 0 }
        })
    }

    /// The number of distinct robots that have visited position `x` at
    /// or before time `t`.
    ///
    /// A point `(x, t)` lies inside the paper's "tower" region (Figure
    /// 4) exactly when this count is at least `f + 1`.
    #[must_use]
    pub fn visitors_by(&self, x: f64, t: f64) -> usize {
        self.trajectories.iter().filter(|traj| traj.first_visit(x).is_some_and(|v| v <= t)).count()
    }

    /// Rasterizes the visit-count field over a space–time grid: cell
    /// `(i, j)` holds [`Fleet::visitors_by`] at position `xs[i]` and
    /// time `ts[j]`. The raster reproduces Figure 4's shaded region
    /// (cells with count `>= f + 1`) faithfully at any resolution.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] when either axis is empty.
    pub fn coverage_raster(&self, xs: &[f64], ts: &[f64]) -> Result<CoverageRaster> {
        if xs.is_empty() || ts.is_empty() {
            return Err(Error::domain("coverage raster needs non-empty axes"));
        }
        // Visit times per position are computed once per column.
        let mut counts = Vec::with_capacity(xs.len());
        for &x in xs {
            let visits = self.first_visits(x);
            let column: Vec<usize> =
                ts.iter().map(|&t| visits.partition_point(|&v| v <= t)).collect();
            counts.push(column);
        }
        Ok(CoverageRaster { xs: xs.to_vec(), ts: ts.to_vec(), counts })
    }

    /// Samples the boundary of the `k`-coverage region ("tower" shape of
    /// Figure 4): for each target `x` in `targets`, the earliest time by
    /// which `k` distinct robots have visited `x`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] for an empty target list.
    pub fn tower_profile(&self, targets: &[f64], k: usize) -> Result<Vec<TowerSample>> {
        if targets.is_empty() {
            return Err(Error::domain("tower profile needs at least one target"));
        }
        Ok(targets.iter().map(|&x| TowerSample { x, covered_at: self.visit_time(x, k) }).collect())
    }
}

/// Result of a supremum scan over `K(x)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupremumScan {
    /// The largest observed ratio (infinite when some target was not
    /// covered by `k` robots within the horizon).
    pub ratio: f64,
    /// The target achieving the supremum.
    pub argmax: f64,
    /// Number of scanned targets not covered by `k` robots.
    pub uncovered: usize,
}

// Manual serde impls: `ratio` is legitimately `f64::INFINITY` on
// incomplete coverage, which a derived impl would serialize as lossy
// JSON `null`. Non-finite ratios go through the string sentinels of
// [`crate::json_float`] instead so the round-trip is lossless.
impl Serialize for SupremumScan {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        serializer.serialize_value(serde::Value::Object(vec![
            ("ratio".to_owned(), json_float::encode_f64(self.ratio)),
            ("argmax".to_owned(), json_float::encode_f64(self.argmax)),
            ("uncovered".to_owned(), serde::Value::UInt(self.uncovered as u64)),
        ]))
    }
}

impl<'de> Deserialize<'de> for SupremumScan {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        use serde::de::Error as _;
        let mut fields = json_float::object_fields(deserializer.take_value()?, "SupremumScan")
            .map_err(D::Error::custom)?;
        let mut float = |name: &str| -> std::result::Result<f64, D::Error> {
            let value = json_float::take_field(&mut fields, name, "SupremumScan")
                .map_err(D::Error::custom)?;
            json_float::decode_f64(&value, name).map_err(D::Error::custom)
        };
        let ratio = float("ratio")?;
        let argmax = float("argmax")?;
        let uncovered = json_float::take_field(&mut fields, "uncovered", "SupremumScan")
            .map_err(D::Error::custom)
            .and_then(|v| serde::from_value(v).map_err(D::Error::custom))?;
        Ok(SupremumScan { ratio, argmax, uncovered })
    }
}

/// A rasterized visit-count field over a space–time grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageRaster {
    /// Position axis.
    pub xs: Vec<f64>,
    /// Time axis.
    pub ts: Vec<f64>,
    /// `counts[i][j]` = distinct visitors of `xs[i]` by time `ts[j]`.
    pub counts: Vec<Vec<usize>>,
}

impl CoverageRaster {
    /// The visitor count at grid cell `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of range.
    #[must_use]
    pub fn count(&self, i: usize, j: usize) -> usize {
        self.counts[i][j]
    }

    /// Renders the raster as text: one row per time sample (earliest at
    /// the bottom, like the paper's figures), digits for counts,
    /// `#` for `>= threshold` (the tower interior).
    #[must_use]
    pub fn render(&self, threshold: usize) -> String {
        let mut out = String::new();
        for (j, t) in self.ts.iter().enumerate().rev() {
            out.push_str(&format!("t = {t:8.2} "));
            for column in &self.counts {
                let c = column[j];
                out.push(if c >= threshold {
                    '#'
                } else if c == 0 {
                    '.'
                } else {
                    char::from_digit(c.min(9) as u32, 10).expect("digit")
                });
            }
            out.push('\n');
        }
        out
    }
}

/// One sample of the `k`-coverage boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TowerSample {
    /// Target position.
    pub x: f64,
    /// Time at which the `k`-th distinct robot visited `x`, if within
    /// the horizon.
    pub covered_at: Option<f64>,
}

/// The deterministic argmax tie-break shared by the grid scan and the
/// exact critical-point engine: candidate `x` is preferred over the
/// incumbent `best` when it sits strictly closer to the origin, or at
/// equal magnitude when it is the positive mirror image. This makes
/// every reported argmax independent of target enumeration order.
#[must_use]
pub fn prefer_argmax(x: f64, best: f64) -> bool {
    x.abs() < best.abs() || (x.abs() == best.abs() && x > best)
}

/// Builds the canonical adversarial target grid for measuring the
/// competitive ratio of a schedule empirically: for each interleaved
/// turning point `tau` in `[1, xmax]`, the points `tau` and
/// `tau * (1 + eps)` (the supremum of `K` lives in the right-hand limits
/// at turning points, Lemma 3), plus a uniform log grid, mirrored onto
/// the negative side.
///
/// # Errors
///
/// Returns [`Error::Domain`] for invalid ranges.
pub fn adversarial_targets(
    turning_points: &[f64],
    xmax: f64,
    grid_points: usize,
    eps: f64,
) -> Result<Vec<f64>> {
    adversarial_targets_geometry(turning_points, xmax, grid_points, eps, crate::Geometry::Line)
}

/// Geometry-parametric variant of [`adversarial_targets`]: on
/// [`crate::Geometry::HalfLine`] the negative mirror images are
/// omitted, matching the one-sided adversary window `[1, xmax]`.
///
/// # Errors
///
/// Returns [`Error::Domain`] for invalid ranges.
pub fn adversarial_targets_geometry(
    turning_points: &[f64],
    xmax: f64,
    grid_points: usize,
    eps: f64,
    geometry: crate::Geometry,
) -> Result<Vec<f64>> {
    if !(xmax > 1.0) {
        return Err(Error::domain(format!("xmax must exceed 1, got {xmax}")));
    }
    let mirror = geometry.has_negative_side();
    let mut targets = Vec::new();
    for &tau in turning_points {
        let m = tau.abs();
        if (1.0..=xmax).contains(&m) {
            targets.push(m);
            targets.push(m * (1.0 + eps));
            if mirror {
                targets.push(-m);
                targets.push(-m * (1.0 + eps));
            }
        }
    }
    for x in crate::numeric::logspace(1.0, xmax, grid_points)? {
        targets.push(x);
        if mirror {
            targets.push(-x);
        }
    }
    targets.sort_by(f64::total_cmp);
    targets.dedup();
    Ok(targets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::approx_eq;
    use crate::plan::{Direction, RayPlan};
    use crate::schedule::ProportionalSchedule;
    use crate::trajectory::TrajectoryBuilder;

    fn two_rays() -> Fleet {
        let plans: Vec<Box<dyn TrajectoryPlan>> =
            vec![Box::new(RayPlan::new(Direction::Right)), Box::new(RayPlan::new(Direction::Left))];
        Fleet::from_plans(&plans, 100.0).unwrap()
    }

    #[test]
    fn empty_fleet_rejected() {
        assert!(Fleet::new(Vec::new()).is_err());
    }

    #[test]
    fn visit_time_counts_distinct_robots() {
        let fleet = two_rays();
        // Only the right-bound robot ever reaches +5.
        assert_eq!(fleet.visit_time(5.0, 1), Some(5.0));
        assert_eq!(fleet.visit_time(5.0, 2), None);
        // Everybody starts at the origin.
        assert_eq!(fleet.visit_time(0.0, 2), Some(0.0));
        assert_eq!(fleet.visit_time(5.0, 0), Some(0.0));
    }

    #[test]
    fn ratio_at_origin_is_domain_error() {
        assert!(two_rays().ratio_at(0.0, 1).is_err());
    }

    #[test]
    fn two_group_fleet_has_ratio_one() {
        let fleet = two_rays();
        for x in [1.0, -1.0, 3.5, -42.0] {
            let r = fleet.ratio_at(x, 1).unwrap().unwrap();
            assert!(approx_eq(r, 1.0, 1e-12), "x = {x}: ratio = {r}");
        }
    }

    #[test]
    fn supremum_flags_uncovered_targets() {
        let fleet = two_rays();
        let scan = fleet.supremum(&[1.0, 2.0], 2).unwrap();
        assert!(scan.ratio.is_infinite());
        assert_eq!(scan.uncovered, 2);
    }

    #[test]
    fn supremum_requires_targets() {
        assert!(two_rays().supremum(&[], 1).is_err());
    }

    #[test]
    fn supremum_argmax_is_deterministic_under_ties() {
        // The two-ray fleet has K(x) = 1 everywhere: every target ties.
        // Regardless of enumeration order the reported argmax must be
        // the positive target closest to the origin.
        let fleet = two_rays();
        for targets in [[-3.0, -1.0, 1.0, 3.0], [3.0, 1.0, -1.0, -3.0], [1.0, -1.0, 3.0, -3.0]] {
            let scan = fleet.supremum(&targets, 1).unwrap();
            assert_eq!(scan.argmax, 1.0, "order {targets:?}");
            assert_eq!(scan.ratio, 1.0);
        }
        // Duplicate probes (the historical grid-collision case) change
        // nothing.
        let scan = fleet.supremum(&[2.0, 2.0, -2.0, 1.0, 1.0], 1).unwrap();
        assert_eq!(scan.argmax, 1.0);
    }

    #[test]
    fn supremum_uncovered_argmax_is_the_closest_uncovered_target() {
        // Only the right ray covers positive targets, so k = 2 leaves
        // them all uncovered; the argmax must name the uncovered target
        // closest to the origin, not the last one enumerated.
        let fleet = two_rays();
        for targets in [[5.0, 2.0, 7.0], [7.0, 5.0, 2.0], [2.0, 7.0, 5.0]] {
            let scan = fleet.supremum(&targets, 2).unwrap();
            assert!(scan.ratio.is_infinite());
            assert_eq!(scan.uncovered, 3);
            assert_eq!(scan.argmax, 2.0, "order {targets:?}");
        }
    }

    #[test]
    fn prefer_argmax_orders_by_magnitude_then_sign() {
        assert!(prefer_argmax(1.0, 2.0));
        assert!(prefer_argmax(1.0, -2.0));
        assert!(prefer_argmax(1.0, -1.0), "positive mirror wins");
        assert!(!prefer_argmax(-1.0, 1.0));
        assert!(!prefer_argmax(2.0, 1.0));
        assert!(!prefer_argmax(1.0, 1.0), "no self-replacement");
    }

    #[test]
    fn lemma4_visit_time_matches_fleet_evaluation() {
        // The heart of the upper-bound proof: just past robot a_0's
        // turning point tau_0 = 1, the (f+1)-st distinct visitor arrives
        // at the Lemma 4 closed form.
        for (n, f) in [(2usize, 1usize), (3, 1), (3, 2), (4, 2), (5, 2), (5, 3)] {
            let beta = (4 * f + 4) as f64 / n as f64 - 1.0;
            let s = ProportionalSchedule::new(n, beta).unwrap();
            let horizon = s.required_horizon(f + 1, 4.0);
            let trajs: Vec<_> = s.plans().iter().map(|p| p.materialize(horizon).unwrap()).collect();
            let fleet = Fleet::new(trajs).unwrap();
            let x = 1.0 + 1e-9;
            let measured = fleet.visit_time(x, f + 1).unwrap();
            let predicted = s.lemma4_visit_time(f);
            assert!(
                approx_eq(measured, predicted, 1e-6),
                "(n = {n}, f = {f}): measured {measured}, Lemma 4 {predicted}"
            );
        }
    }

    #[test]
    fn ratio_function_decreases_between_turning_points() {
        // Lemma 3: K is decreasing on intervals free of turning points.
        let s = ProportionalSchedule::new(3, 5.0 / 3.0).unwrap();
        let horizon = s.required_horizon(2, 10.0);
        let fleet = Fleet::new(s.plans().iter().map(|p| p.materialize(horizon).unwrap()).collect())
            .unwrap();
        let tau0 = 1.0;
        let tau1 = s.turning_position(1);
        let xs = crate::numeric::linspace(tau0 * 1.001, tau1 * 0.999, 50);
        let mut prev = f64::INFINITY;
        for x in xs {
            let k = fleet.ratio_at(x, 2).unwrap().unwrap();
            assert!(k < prev + 1e-12, "K must decrease, x = {x}");
            prev = k;
        }
    }

    #[test]
    fn visitors_by_counts_monotonically() {
        let fleet = two_rays();
        assert_eq!(fleet.visitors_by(5.0, 4.9), 0);
        assert_eq!(fleet.visitors_by(5.0, 5.0), 1);
        assert_eq!(fleet.visitors_by(0.0, 0.0), 2, "everyone starts at the origin");
        // Counts never decrease in t.
        for x in [1.0, -3.0] {
            let mut prev = 0;
            for step in 0..50 {
                let c = fleet.visitors_by(x, step as f64 * 0.2);
                assert!(c >= prev);
                prev = c;
            }
        }
    }

    #[test]
    fn coverage_raster_matches_pointwise_queries() {
        let s = ProportionalSchedule::new(3, 5.0 / 3.0).unwrap();
        let horizon = s.required_horizon(2, 6.0);
        let fleet = Fleet::new(s.plans().iter().map(|p| p.materialize(horizon).unwrap()).collect())
            .unwrap();
        let xs = crate::numeric::linspace(-5.0, 5.0, 21);
        let ts = crate::numeric::linspace(0.0, horizon.min(40.0), 17);
        let raster = fleet.coverage_raster(&xs, &ts).unwrap();
        for (i, &x) in xs.iter().enumerate() {
            for (j, &t) in ts.iter().enumerate() {
                assert_eq!(raster.count(i, j), fleet.visitors_by(x, t), "cell ({x}, {t})");
            }
        }
        // The rendered tower uses '#' for 2-coverage.
        let text = raster.render(2);
        assert!(text.contains('#'));
        assert!(text.contains('.'));
        assert_eq!(text.lines().count(), 17);
        assert!(fleet.coverage_raster(&[], &ts).is_err());
    }

    #[test]
    fn raster_tower_boundary_agrees_with_t2() {
        // The smallest time row where a column turns '#' brackets the
        // analytic T_2 at that position.
        let s = ProportionalSchedule::new(3, 5.0 / 3.0).unwrap();
        let horizon = s.required_horizon(2, 4.0);
        let fleet = Fleet::new(s.plans().iter().map(|p| p.materialize(horizon).unwrap()).collect())
            .unwrap();
        let x = 2.0;
        let ts = crate::numeric::linspace(0.0, horizon, 4001);
        let raster = fleet.coverage_raster(&[x], &ts).unwrap();
        let first_covered = ts
            .iter()
            .enumerate()
            .find(|&(j, _)| raster.count(0, j) >= 2)
            .map(|(_, &t)| t)
            .expect("covered within the horizon");
        let t2 = fleet.visit_time(x, 2).unwrap();
        let dt = ts[1] - ts[0];
        assert!((first_covered - t2).abs() <= dt + 1e-9);
    }

    #[test]
    fn tower_profile_shape() {
        let fleet = two_rays();
        let profile = fleet.tower_profile(&[-2.0, -1.0, 1.0, 2.0], 1).unwrap();
        assert_eq!(profile.len(), 4);
        for s in profile {
            assert_eq!(s.covered_at, Some(s.x.abs()));
        }
        assert!(fleet.tower_profile(&[], 1).is_err());
    }

    #[test]
    fn adversarial_targets_include_turning_point_limits() {
        let targets = adversarial_targets(&[2.0, -4.0], 10.0, 5, 1e-9).unwrap();
        assert!(targets.contains(&2.0));
        assert!(targets.iter().any(|&x| x > 2.0 && x < 2.0 + 1e-6));
        assert!(targets.contains(&-4.0));
        assert!(targets.iter().all(|&x| x.abs() >= 1.0 - 1e-12));
        assert!(targets.windows(2).all(|w| w[0] < w[1]), "sorted, deduplicated");
        assert!(adversarial_targets(&[], 0.5, 5, 1e-9).is_err());
    }

    #[test]
    fn half_line_targets_are_one_sided() {
        let two_sided = adversarial_targets(&[2.0, -4.0], 10.0, 5, 1e-9).unwrap();
        let one_sided =
            adversarial_targets_geometry(&[2.0, -4.0], 10.0, 5, 1e-9, crate::Geometry::HalfLine)
                .unwrap();
        assert!(one_sided.iter().all(|&x| x >= 1.0), "no negative-side probes");
        // The one-sided grid is exactly the positive half of the full grid.
        let positive: Vec<f64> = two_sided.iter().copied().filter(|&x| x > 0.0).collect();
        assert_eq!(one_sided, positive);
    }

    #[test]
    fn fleet_horizon_is_minimum() {
        let a = TrajectoryBuilder::from_origin().sweep_to(5.0).finish().unwrap();
        let b = TrajectoryBuilder::from_origin().sweep_to(-2.0).finish().unwrap();
        let fleet = Fleet::new(vec![a, b]).unwrap();
        assert_eq!(fleet.horizon(), 2.0);
        assert_eq!(fleet.len(), 2);
        assert!(!fleet.is_empty());
    }
}
