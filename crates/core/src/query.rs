//! Stable typed query API and canonical request-parameter hashing.
//!
//! The serving layer (`faultline-serve`) memoizes query results keyed
//! on the *fully resolved* request parameters. Two requests that mean
//! the same thing must map to the same cache entry even when their
//! JSON spells the fields in a different order or writes `3` where
//! another client writes `3.0`; two requests that differ in any
//! parameter (notably the seed) must never share an entry. This module
//! provides that canonical form:
//!
//! * [`canonicalize`] — recursively sorts object fields and unifies
//!   numerically equal `Int`/`UInt`/`Float` representations.
//! * [`canonical_string`] — a type-tagged, injective text encoding of a
//!   canonicalized [`Value`]; equal canonical strings imply equal
//!   request parameters.
//! * [`canonical_hash64`] — FNV-1a 64-bit hash of the canonical
//!   string, used for cache shard selection (the full string remains
//!   the collision-proof key).
//!
//! It also exposes the first typed query: [`CrQuery`] resolves the
//! closed-form competitive-ratio facts for a validated `(n, f)` pair
//! into a serde-serializable [`CrReport`], shared by the CLI and the
//! query service so both always agree.

use serde::{Deserialize, Serialize, Value};

use crate::error::Result;
use crate::params::{Params, Regime};
use crate::{lower_bound, ratio};

/// Returns the canonical form of a value: object fields sorted by key
/// (recursively) and numeric representations unified so that
/// `Int(3)`, `UInt(3)` and `Float(3.0)` compare and hash identically.
#[must_use]
pub fn canonicalize(value: &Value) -> Value {
    match value {
        Value::UInt(v) => match i64::try_from(*v) {
            Ok(i) => Value::Int(i),
            Err(_) => Value::UInt(*v),
        },
        Value::Float(v) => canonical_float(*v),
        Value::Array(items) => Value::Array(items.iter().map(canonicalize).collect()),
        Value::Object(fields) => {
            let mut sorted: Vec<(String, Value)> =
                fields.iter().map(|(k, v)| (k.clone(), canonicalize(v))).collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            Value::Object(sorted)
        }
        other => other.clone(),
    }
}

/// Collapses an `f64` onto the canonical numeric representation: an
/// integral float in the exactly-representable range becomes `Int`
/// (`-0.0` normalizes to `0`), everything else stays `Float`.
fn canonical_float(v: f64) -> Value {
    const EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
    if v.is_finite() && v == v.trunc() && v.abs() <= EXACT {
        Value::Int(v as i64)
    } else {
        Value::Float(v)
    }
}

fn write_canonical(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push('n'),
        Value::Bool(true) => out.push('t'),
        Value::Bool(false) => out.push('f'),
        Value::Int(v) => {
            out.push('i');
            out.push_str(&v.to_string());
        }
        Value::UInt(v) => {
            out.push('u');
            out.push_str(&v.to_string());
        }
        // Shortest-roundtrip `{}` formatting is deterministic and
        // injective on f64 (distinct bit patterns other than -0.0/0.0
        // print differently; the integral cases were folded to Int).
        Value::Float(v) => {
            out.push('d');
            out.push_str(&v.to_string());
        }
        Value::String(s) => {
            out.push('"');
            for ch in s.chars() {
                match ch {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_canonical(out, item);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                for ch in key.chars() {
                    match ch {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        c => out.push(c),
                    }
                }
                out.push_str("\":");
                write_canonical(out, item);
            }
            out.push('}');
        }
    }
}

/// Encodes a value into its canonical string form: [`canonicalize`]d,
/// then written with type tags so that values of different kinds can
/// never produce the same encoding (a string `"inf"` and the float
/// infinity stay distinct, unlike in plain JSON-with-sentinels).
#[must_use]
pub fn canonical_string(value: &Value) -> String {
    let mut out = String::new();
    write_canonical(&mut out, &canonicalize(value));
    out
}

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes raw bytes with FNV-1a 64 (stable across platforms and runs,
/// unlike `std::hash::DefaultHasher` which is randomly keyed).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The canonical 64-bit hash of a request-parameter value: FNV-1a of
/// [`canonical_string`]. Stable across field ordering and numeric
/// spelling; used for cache sharding while the canonical string itself
/// remains the exact cache key.
#[must_use]
pub fn canonical_hash64(value: &Value) -> u64 {
    fnv1a64(canonical_string(value).as_bytes())
}

/// A typed closed-form competitive-ratio query for one `(n, f)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrQuery {
    /// Number of robots.
    pub n: usize,
    /// Fault tolerance.
    pub f: usize,
}

/// Every closed-form fact about `(n, f)` in one serializable report:
/// what `faultline bounds` prints and what `GET /v1/cr` serves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrReport {
    /// Number of robots.
    pub n: usize,
    /// Fault tolerance.
    pub f: usize,
    /// The regime the pair falls into.
    pub regime: Regime,
    /// Visits required to confirm a target (`f + 1`).
    pub required_visits: usize,
    /// Competitive ratio of `A(n, f)` (Theorem 1).
    pub cr_upper: f64,
    /// Lower bound on any algorithm's competitive ratio (Section 4).
    pub lower_bound: f64,
    /// Optimal cone parameter `beta*` (proportional regime only).
    pub optimal_beta: Option<f64>,
    /// Expansion factor of `A(n, f)` (proportional regime only).
    pub expansion_factor: Option<f64>,
    /// Proportionality ratio `r` (proportional regime only).
    pub proportionality_ratio: Option<f64>,
}

impl CrQuery {
    /// Evaluates the query against the paper's closed forms.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::InvalidParameters`] for invalid `(n, f)`
    /// and propagates closed-form evaluation failures.
    pub fn evaluate(&self) -> Result<CrReport> {
        let params = Params::new(self.n, self.f)?;
        let (optimal_beta, expansion_factor, proportionality_ratio) = match params.regime() {
            Regime::Proportional => (
                Some(ratio::optimal_beta(params)?),
                Some(ratio::expansion_factor(params)?),
                Some(ratio::proportionality_ratio(params)?),
            ),
            Regime::TwoGroup => (None, None, None),
        };
        Ok(CrReport {
            n: self.n,
            f: self.f,
            regime: params.regime(),
            required_visits: params.required_visits(),
            cr_upper: ratio::cr_upper(params),
            lower_bound: lower_bound::lower_bound(params)?,
            optimal_beta,
            expansion_factor,
            proportionality_ratio,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(fields: Vec<(&str, Value)>) -> Value {
        Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    #[test]
    fn field_order_does_not_change_the_hash() {
        let a = obj(vec![("n", Value::Int(3)), ("f", Value::Int(1))]);
        let b = obj(vec![("f", Value::Int(1)), ("n", Value::Int(3))]);
        assert_eq!(canonical_string(&a), canonical_string(&b));
        assert_eq!(canonical_hash64(&a), canonical_hash64(&b));
    }

    #[test]
    fn numeric_spellings_unify() {
        assert_eq!(canonical_string(&Value::Float(3.0)), canonical_string(&Value::Int(3)),);
        assert_eq!(canonical_string(&Value::UInt(3)), canonical_string(&Value::Int(3)),);
        assert_eq!(canonical_string(&Value::Float(-0.0)), canonical_string(&Value::Int(0)));
        assert_ne!(canonical_string(&Value::Float(3.5)), canonical_string(&Value::Int(3)));
    }

    #[test]
    fn kinds_never_collide() {
        // A string spelling of a number is not the number.
        assert_ne!(canonical_string(&Value::String("3".into())), canonical_string(&Value::Int(3)));
        assert_ne!(
            canonical_string(&Value::String("inf".into())),
            canonical_string(&Value::Float(f64::INFINITY))
        );
        assert_ne!(canonical_string(&Value::Null), canonical_string(&Value::String("n".into())));
        assert_ne!(
            canonical_string(&Value::Bool(true)),
            canonical_string(&Value::String("t".into()))
        );
    }

    #[test]
    fn nested_objects_sort_recursively() {
        let a = obj(vec![(
            "scenario",
            obj(vec![("targets", Value::Array(vec![Value::Float(2.0)])), ("n", Value::Int(3))]),
        )]);
        let b = obj(vec![(
            "scenario",
            obj(vec![("n", Value::Int(3)), ("targets", Value::Array(vec![Value::Int(2)]))]),
        )]);
        assert_eq!(canonical_string(&a), canonical_string(&b));
    }

    #[test]
    fn distinct_seeds_hash_distinctly() {
        let key = |seed: u64| {
            canonical_string(&obj(vec![
                ("name", Value::String("mc".into())),
                ("seed", Value::UInt(seed)),
            ]))
        };
        let mut seen = std::collections::HashSet::new();
        for seed in 0..10_000u64 {
            assert!(seen.insert(key(seed)), "seed {seed} collided");
        }
    }

    #[test]
    fn cr_query_matches_closed_forms() {
        let report = CrQuery { n: 3, f: 1 }.evaluate().unwrap();
        assert_eq!(report.regime, Regime::Proportional);
        assert!((report.cr_upper - 5.2331).abs() < 1e-3);
        assert!(report.optimal_beta.is_some());
        assert_eq!(report.required_visits, 2);

        let trivial = CrQuery { n: 6, f: 2 }.evaluate().unwrap();
        assert_eq!(trivial.regime, Regime::TwoGroup);
        assert_eq!(trivial.cr_upper, 1.0);
        assert_eq!(trivial.expansion_factor, None);

        assert!(CrQuery { n: 2, f: 2 }.evaluate().is_err());
    }

    #[test]
    fn cr_report_roundtrips_through_json() {
        let report = CrQuery { n: 5, f: 2 }.evaluate().unwrap();
        let json = serde_json::to_string(&report).unwrap();
        let back: CrReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
