//! Markdown report generation: the machinery behind EXPERIMENTS.md,
//! recording paper-vs-measured values for every table and figure.

use serde::{Deserialize, Serialize};

/// One paper-vs-measured comparison line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// What is being compared (e.g. `"CR of A(3,1)"`).
    pub quantity: String,
    /// The value the paper reports.
    pub paper: String,
    /// The value this reproduction measures or computes.
    pub measured: String,
    /// Whether the reproduction matches to the printed precision (or
    /// the documented shape criterion).
    pub matches: bool,
    /// Free-form note (tolerance, known rounding discrepancy, ...).
    pub note: String,
}

/// A report section for one experiment (a table or a figure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Experiment id, e.g. `"table1"` or `"fig5-left"`.
    pub id: String,
    /// Section title.
    pub title: String,
    /// How the experiment is regenerated (`cargo` command).
    pub regenerate: String,
    /// The comparisons.
    pub comparisons: Vec<Comparison>,
}

impl ExperimentReport {
    /// Renders the section as markdown.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## {} — {}\n\n", self.id, self.title);
        out.push_str(&format!("Regenerate with: `{}`\n\n", self.regenerate));
        out.push_str("| quantity | paper | measured | match | note |\n");
        out.push_str("|---|---|---|---|---|\n");
        for c in &self.comparisons {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} |\n",
                c.quantity,
                c.paper,
                c.measured,
                if c.matches { "yes" } else { "NO" },
                c.note
            ));
        }
        out.push('\n');
        out
    }

    /// Whether every comparison in the section matches.
    #[must_use]
    pub fn all_match(&self) -> bool {
        self.comparisons.iter().all(|c| c.matches)
    }
}

/// Renders a full report document from sections.
#[must_use]
pub fn render_report(title: &str, sections: &[ExperimentReport]) -> String {
    let mut out = format!("# {title}\n\n");
    let total: usize = sections.iter().map(|s| s.comparisons.len()).sum();
    let matching: usize =
        sections.iter().map(|s| s.comparisons.iter().filter(|c| c.matches).count()).sum();
    out.push_str(&format!("{matching}/{total} comparisons match.\n\n"));
    for s in sections {
        out.push_str(&s.to_markdown());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentReport {
        ExperimentReport {
            id: "table1".into(),
            title: "Table 1".into(),
            regenerate: "cargo run -p faultline-bench --bin repro -- table1".into(),
            comparisons: vec![
                Comparison {
                    quantity: "CR of A(3,1)".into(),
                    paper: "5.24".into(),
                    measured: "5.233".into(),
                    matches: true,
                    note: "within print precision".into(),
                },
                Comparison {
                    quantity: "alpha(41)".into(),
                    paper: "3.12".into(),
                    measured: "3.1357".into(),
                    matches: false,
                    note: "paper prints a conservative rounding".into(),
                },
            ],
        }
    }

    #[test]
    fn markdown_structure() {
        let md = sample().to_markdown();
        assert!(md.contains("## table1"));
        assert!(md.contains("| CR of A(3,1) | 5.24 | 5.233 | yes |"));
        assert!(md.contains("| alpha(41) | 3.12 | 3.1357 | NO |"));
    }

    #[test]
    fn all_match_detects_mismatch() {
        assert!(!sample().all_match());
    }

    #[test]
    fn report_counts_matches() {
        let doc = render_report("EXPERIMENTS", &[sample()]);
        assert!(doc.contains("1/2 comparisons match."));
        assert!(doc.starts_with("# EXPERIMENTS"));
    }
}
