//! Scenario files: declarative JSON descriptions of a search
//! experiment, runnable from the CLI (`faultline scenario <file>`)
//! or programmatically.
//!
//! ```json
//! {
//!   "n": 3,
//!   "f": 1,
//!   "strategy": "paper",
//!   "targets": [2.0, -4.5, 7.25],
//!   "faulty": [0]
//! }
//! ```
//!
//! * `strategy` — any registry name (default `"paper"`),
//!   `"fixed-beta"` together with a `"beta"` field, or
//!   `"randomized-sweep"` with an optional `"seed"` field.
//! * `faulty` — explicit faulty robot indices; omit to use the
//!   worst-case adversary per target.
//! * `fault_plan` — one [`faultline_sim::FaultKind`] per robot (e.g.
//!   `["Reliable", {"Byzantine": {"lie_rate": 0.75}}]`), engaging the
//!   extended taxonomy; mutually exclusive with `faulty`.
//! * `quorum` — number of distinct claimants required to confirm a
//!   position (requires `fault_plan`); omit for the paper's
//!   first-report rule.
//! * `seed` — explicit RNG seed for `"randomized-sweep"` or for the
//!   per-visit coins of a coin-driven `fault_plan` (default 0); the
//!   same seed always reproduces the same coin flips.
//!
//! The CLI also accepts a recorded failure trace
//! ([`faultline_sim::RunTrace`] JSON) wherever a scenario file is
//! expected: [`run_document`] detects the document kind, re-executes a
//! trace bit-for-bit, and reports it in the same result format.

use faultline_core::{json_float, Error, Params, Result, TrajectoryPlan};
use faultline_sim::engine::SimConfig;
use faultline_sim::{
    worst_case_outcome, FaultKind, FaultMask, FaultPlan, QuorumConfig, RunTrace, SearchOutcome,
    Simulation, Target,
};
use faultline_strategies::{
    strategy_by_name, RandomizedStrategy, RandomizedSweepStrategy, Strategy,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::supremum::resolve_strategy;
use serde::{Deserialize, Serialize};

/// A declarative scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Number of robots.
    pub n: usize,
    /// Fault tolerance.
    pub f: usize,
    /// Strategy name from the registry (default `"paper"`).
    #[serde(default = "default_strategy")]
    pub strategy: String,
    /// Cone parameter, only for `strategy = "fixed-beta"`.
    #[serde(default)]
    pub beta: Option<f64>,
    /// Target positions to search for (each simulated independently).
    pub targets: Vec<f64>,
    /// Explicit faulty robots; `None` = worst-case adversary.
    #[serde(default)]
    pub faulty: Option<Vec<usize>>,
    /// Explicit per-robot fault kinds from the extended taxonomy;
    /// mutually exclusive with `faulty`.
    #[serde(default)]
    pub fault_plan: Option<Vec<FaultKind>>,
    /// Claim-quorum votes (requires `fault_plan`); `None` = the
    /// paper's first-report rule.
    #[serde(default)]
    pub quorum: Option<usize>,
    /// Explicit RNG seed for `strategy = "randomized-sweep"` or for
    /// the coins of a coin-driven `fault_plan` (defaults to 0).
    #[serde(default)]
    pub seed: Option<u64>,
}

fn default_strategy() -> String {
    "paper".to_owned()
}

/// The result of one scenario target.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// The target searched for.
    pub target: f64,
    /// Detection time, `None` if undetected within the horizon.
    pub detection_time: Option<f64>,
    /// Achieved ratio (infinite if undetected).
    pub ratio: f64,
    /// Index of the detecting robot.
    pub detected_by: Option<usize>,
    /// Distinct robots that visited the target up to detection.
    pub distinct_visitors: usize,
    /// The position confirmed by the claim quorum, when one was
    /// configured and reached. Absent for legacy first-report runs.
    pub confirmed_position: Option<f64>,
    /// Number of false (Byzantine) claims asserted during the run.
    /// Zero — and absent from the JSON — outside Byzantine regimes.
    pub false_claims: usize,
}

// Manual serde impls: `ratio` is infinite for undetected targets; a
// derived impl would serialize that as JSON `null`, making honest
// "undetected" results indistinguishable from missing data after a
// round-trip. Non-finite ratios use the `faultline_core::json_float`
// string sentinels instead.
impl Serialize for ScenarioResult {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        use serde::ser::Error as _;
        let mut fields = vec![
            ("target".to_owned(), json_float::encode_f64(self.target)),
            (
                "detection_time".to_owned(),
                serde::to_value(&self.detection_time).map_err(S::Error::custom)?,
            ),
            ("ratio".to_owned(), json_float::encode_f64(self.ratio)),
            (
                "detected_by".to_owned(),
                serde::to_value(&self.detected_by).map_err(S::Error::custom)?,
            ),
            ("distinct_visitors".to_owned(), serde::Value::UInt(self.distinct_visitors as u64)),
        ];
        // Quorum fields appear only when a quorum run produced them,
        // keeping pre-quorum documents byte-identical.
        if let Some(confirmed) = self.confirmed_position {
            fields.push(("confirmed_position".to_owned(), json_float::encode_f64(confirmed)));
        }
        if self.false_claims > 0 {
            fields.push(("false_claims".to_owned(), serde::Value::UInt(self.false_claims as u64)));
        }
        serializer.serialize_value(serde::Value::Object(fields))
    }
}

impl<'de> Deserialize<'de> for ScenarioResult {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        use serde::de::Error as _;
        let mut fields = json_float::object_fields(deserializer.take_value()?, "ScenarioResult")
            .map_err(D::Error::custom)?;
        let mut take = |name: &str| {
            json_float::take_field(&mut fields, name, "ScenarioResult").map_err(D::Error::custom)
        };
        let target_raw = take("target")?;
        let detection_time =
            serde::from_value(take("detection_time")?).map_err(D::Error::custom)?;
        let ratio_raw = take("ratio")?;
        let detected_by = serde::from_value(take("detected_by")?).map_err(D::Error::custom)?;
        let distinct_visitors =
            serde::from_value(take("distinct_visitors")?).map_err(D::Error::custom)?;
        // Optional quorum fields: absent in pre-quorum documents.
        let confirmed_position =
            match fields.iter().position(|(key, _)| key == "confirmed_position") {
                Some(i) => {
                    let value = fields.remove(i).1;
                    Some(
                        json_float::decode_f64(&value, "confirmed_position")
                            .map_err(D::Error::custom)?,
                    )
                }
                None => None,
            };
        let false_claims = match fields.iter().position(|(key, _)| key == "false_claims") {
            Some(i) => serde::from_value(fields.remove(i).1).map_err(D::Error::custom)?,
            None => 0,
        };
        Ok(ScenarioResult {
            target: json_float::decode_f64(&target_raw, "target").map_err(D::Error::custom)?,
            detection_time,
            ratio: json_float::decode_f64(&ratio_raw, "ratio").map_err(D::Error::custom)?,
            detected_by,
            distinct_visitors,
            confirmed_position,
            false_claims,
        })
    }
}

impl ScenarioResult {
    fn from_outcome(target: f64, outcome: &SearchOutcome) -> Self {
        ScenarioResult {
            target,
            detection_time: outcome.detection.as_ref().map(|d| d.time),
            ratio: outcome.ratio(),
            detected_by: outcome.detection.as_ref().map(|d| d.robot.0),
            distinct_visitors: outcome.distinct_visitors(),
            confirmed_position: outcome.confirmed_position,
            false_claims: outcome.claims.iter().filter(|c| !c.truthful).count(),
        }
    }
}

impl Scenario {
    /// Parses a scenario from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] for malformed JSON and
    /// [`Error::InvalidParameters`] for invalid `(n, f)`.
    pub fn from_json(json: &str) -> Result<Self> {
        let scenario: Scenario = serde_json::from_str(json)
            .map_err(|e| Error::domain(format!("malformed scenario: {e}")))?;
        scenario.validate()?;
        Ok(scenario)
    }

    /// Validates the scenario's cross-field constraints.
    ///
    /// # Errors
    ///
    /// Reports invalid `(n, f)`, an unknown strategy, missing/extra
    /// `beta`, an empty target list, or an over-budget fault set.
    pub fn validate(&self) -> Result<()> {
        Params::new(self.n, self.f)?;
        if self.targets.is_empty() {
            return Err(Error::domain("scenario needs at least one target"));
        }
        match self.strategy.as_str() {
            "fixed-beta" => {
                if self.beta.is_none() {
                    return Err(Error::domain("strategy \"fixed-beta\" requires a \"beta\" field"));
                }
            }
            "randomized-sweep" => {
                if self.beta.is_some() {
                    return Err(Error::domain(
                        "\"beta\" is only meaningful with strategy \"fixed-beta\"",
                    ));
                }
            }
            name => {
                if strategy_by_name(name).is_none() {
                    return Err(Error::domain(format!("unknown strategy \"{name}\"")));
                }
                if self.beta.is_some() {
                    return Err(Error::domain(
                        "\"beta\" is only meaningful with strategy \"fixed-beta\"",
                    ));
                }
            }
        }
        // A seed is meaningful wherever coins are flipped: the
        // randomized-sweep strategy, or a fault plan whose kinds draw
        // per-visit/per-turn coins.
        let coin_driven_plan = self.fault_plan.as_ref().is_some_and(|kinds| {
            kinds.iter().any(|k| {
                matches!(
                    k,
                    FaultKind::Intermittent { .. }
                        | FaultKind::Byzantine { .. }
                        | FaultKind::PFaulty { .. }
                )
            })
        });
        if self.seed.is_some() && self.strategy != "randomized-sweep" && !coin_driven_plan {
            return Err(Error::domain(
                "\"seed\" is only meaningful with strategy \"randomized-sweep\" or a \
                 coin-driven \"fault_plan\"",
            ));
        }
        if let Some(faulty) = &self.faulty {
            if self.fault_plan.is_some() {
                return Err(Error::domain("\"faulty\" and \"fault_plan\" are mutually exclusive"));
            }
            if faulty.len() > self.f {
                return Err(Error::invalid_params(
                    self.n,
                    self.f,
                    format!("{} explicit faults exceed the budget f = {}", faulty.len(), self.f),
                ));
            }
            FaultMask::from_indices(self.n, faulty)?;
        }
        if let Some(kinds) = &self.fault_plan {
            if kinds.len() != self.n {
                return Err(Error::invalid_params(
                    self.n,
                    self.f,
                    format!(
                        "fault plan covers {} robots but the fleet has {}",
                        kinds.len(),
                        self.n
                    ),
                ));
            }
            FaultPlan::new(kinds.clone())?.check_budget(self.f)?;
        }
        if let Some(votes) = self.quorum {
            if self.fault_plan.is_none() {
                return Err(Error::domain("\"quorum\" requires an explicit \"fault_plan\""));
            }
            QuorumConfig::new(votes)?;
            if votes > self.n {
                return Err(Error::domain(format!(
                    "quorum of {votes} votes exceeds the fleet size n = {}",
                    self.n
                )));
            }
        }
        Ok(())
    }

    /// Generates the trajectory plans and a sufficient horizon for
    /// targets up to `xmax`. Deterministic strategies come from the
    /// registry; `"randomized-sweep"` draws its coins from the
    /// scenario's explicit seed (default 0).
    fn plans_and_horizon(
        &self,
        params: Params,
        xmax: f64,
    ) -> Result<(Vec<Box<dyn TrajectoryPlan>>, f64)> {
        let reach = xmax * 1.01 + 1.0;
        if self.strategy == "randomized-sweep" {
            let sweep = RandomizedSweepStrategy::kao_optimal();
            let mut rng = StdRng::seed_from_u64(self.seed.unwrap_or(0));
            let plans = sweep.sample_plans(params, &mut rng)?;
            let horizon = sweep.horizon_hint(params, reach);
            return Ok((plans, horizon));
        }
        let strategy: Box<dyn Strategy> = resolve_strategy(&self.strategy, self.beta)?;
        let plans = strategy.plans(params)?;
        let horizon = strategy.horizon_hint(params, reach);
        Ok((plans, horizon))
    }

    /// Runs the scenario: every target is searched independently, with
    /// the explicit fault set or the worst-case adversary.
    ///
    /// # Errors
    ///
    /// Propagates strategy, plan and simulation failures.
    pub fn run(&self) -> Result<Vec<ScenarioResult>> {
        self.validate()?;
        let params = Params::new(self.n, self.f)?;
        let xmax = self.targets.iter().map(|x| x.abs()).fold(1.0f64, f64::max);
        let (plans, horizon) = self.plans_and_horizon(params, xmax)?;
        let trajectories =
            plans.iter().map(|p| p.materialize(horizon)).collect::<Result<Vec<_>>>()?;

        // Each target is an independent simulation; fan them out over
        // the core work-stealing engine (honours FAULTLINE_THREADS).
        faultline_core::par_map(&self.targets, |&x| {
            let target = Target::new(x)?;
            let outcome: SearchOutcome = if let Some(kinds) = &self.fault_plan {
                let plan = FaultPlan::new(kinds.clone())?;
                let quorum = self.quorum.map(QuorumConfig::new).transpose()?;
                Simulation::with_quorum(
                    trajectories.clone(),
                    target,
                    &plan,
                    self.seed.unwrap_or(0),
                    SimConfig::default(),
                    quorum,
                )?
                .run()
            } else {
                match &self.faulty {
                    Some(faulty) => {
                        let mask = FaultMask::from_indices(self.n, faulty)?;
                        Simulation::new(trajectories.clone(), target, &mask, SimConfig::default())?
                            .run()
                    }
                    None => worst_case_outcome(
                        trajectories.clone(),
                        target,
                        self.f,
                        SimConfig::default(),
                    )?,
                }
            };
            Ok(ScenarioResult::from_outcome(x, &outcome))
        })
        .into_iter()
        .collect()
    }
}

/// Runs a JSON document that is either a declarative [`Scenario`] or a
/// recorded [`RunTrace`]. A trace is re-executed and checked
/// bit-for-bit against its recorded outcome before being reported.
///
/// # Errors
///
/// Propagates scenario failures; for a trace, returns [`Error::Domain`]
/// when the replayed outcome diverges from the recorded one, and
/// rejects (never panics on) hand-edited traces with invalid
/// parameters.
pub fn run_document(json: &str) -> Result<Vec<ScenarioResult>> {
    // The two document kinds have disjoint required fields, so the
    // trace parser cleanly rejects scenarios and vice versa.
    if let Ok(trace) = RunTrace::from_json(json) {
        trace.verify()?;
        return Ok(vec![ScenarioResult::from_outcome(trace.target, &trace.outcome)]);
    }
    Scenario::from_json(json)?.run()
}

/// Serializes results back to pretty JSON (for piping to other tools).
///
/// # Errors
///
/// Returns [`Error::Domain`] on serialization failure (cannot happen
/// for well-formed results).
pub fn results_to_json(results: &[ScenarioResult]) -> Result<String> {
    serde_json::to_string_pretty(results)
        .map_err(|e| Error::domain(format!("serialization failed: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASIC: &str = r#"{
        "n": 3, "f": 1,
        "targets": [2.0, -4.5]
    }"#;

    #[test]
    fn parses_with_defaults() {
        let s = Scenario::from_json(BASIC).unwrap();
        assert_eq!(s.strategy, "paper");
        assert_eq!(s.faulty, None);
        assert_eq!(s.targets.len(), 2);
    }

    #[test]
    fn rejects_malformed_and_invalid() {
        assert!(Scenario::from_json("{").is_err());
        assert!(Scenario::from_json(r#"{"n": 1, "f": 3, "targets": [2.0]}"#).is_err());
        assert!(Scenario::from_json(r#"{"n": 3, "f": 1, "targets": []}"#).is_err());
        assert!(Scenario::from_json(r#"{"n": 3, "f": 1, "strategy": "nope", "targets": [2.0]}"#)
            .is_err());
        assert!(Scenario::from_json(
            r#"{"n": 3, "f": 1, "strategy": "fixed-beta", "targets": [2.0]}"#
        )
        .is_err());
        assert!(Scenario::from_json(r#"{"n": 3, "f": 1, "beta": 2.0, "targets": [2.0]}"#).is_err());
        assert!(
            Scenario::from_json(r#"{"n": 3, "f": 1, "targets": [2.0], "faulty": [0, 1]}"#).is_err()
        );
    }

    #[test]
    fn runs_with_worst_case_adversary() {
        let s = Scenario::from_json(BASIC).unwrap();
        let results = s.run().unwrap();
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.detection_time.is_some(), "target {}", r.target);
            assert!(r.ratio <= 5.2331 + 1e-6);
            assert_eq!(r.distinct_visitors, 2, "f + 1 visits under the adversary");
        }
    }

    #[test]
    fn runs_with_explicit_faults() {
        let s =
            Scenario::from_json(r#"{"n": 3, "f": 1, "targets": [2.0], "faulty": [0]}"#).unwrap();
        let results = s.run().unwrap();
        assert!(results[0].detection_time.is_some());
        assert_ne!(results[0].detected_by, Some(0), "robot 0 is faulty");
    }

    #[test]
    fn seed_requires_randomized_sweep() {
        assert!(
            Scenario::from_json(r#"{"n": 3, "f": 1, "targets": [2.0], "seed": 7}"#).is_err(),
            "a seed on a deterministic strategy must be rejected"
        );
        assert!(Scenario::from_json(
            r#"{"n": 3, "f": 1, "strategy": "randomized-sweep", "beta": 2.0, "targets": [2.0]}"#
        )
        .is_err());
    }

    #[test]
    fn randomized_sweep_is_seed_reproducible() {
        let doc = |seed: u64| {
            format!(
                r#"{{"n": 2, "f": 1, "strategy": "randomized-sweep",
                     "targets": [2.0, -3.5], "seed": {seed}}}"#
            )
        };
        let s = Scenario::from_json(&doc(11)).unwrap();
        let a = s.run().unwrap();
        let b = s.run().unwrap();
        assert_eq!(a, b, "same seed must reproduce bit-for-bit");
        // Different seeds draw different phases; detection times for at
        // least one target should differ (overwhelmingly likely for
        // continuous phases, and pinned here for these specific seeds).
        let c = Scenario::from_json(&doc(12)).unwrap().run().unwrap();
        assert_ne!(a, c, "seeds 11 and 12 draw different coin flips");
    }

    #[test]
    fn fixed_beta_scenario() {
        let s = Scenario::from_json(
            r#"{"n": 3, "f": 1, "strategy": "fixed-beta", "beta": 2.5, "targets": [3.0]}"#,
        )
        .unwrap();
        let results = s.run().unwrap();
        assert!(results[0].ratio.is_finite());
    }

    #[test]
    fn incomplete_strategy_reports_honestly() {
        let s = Scenario::from_json(
            r#"{"n": 3, "f": 1, "strategy": "pessimal-split", "targets": [-5.0]}"#,
        )
        .unwrap();
        let results = s.run().unwrap();
        assert!(results[0].ratio.is_infinite());
        assert_eq!(results[0].detection_time, None);
    }

    #[test]
    fn run_document_dispatches_on_document_kind() {
        use faultline_core::TrajectoryBuilder;
        use faultline_sim::{FaultKind, FaultPlan};

        // A scenario document takes the scenario path.
        let results = run_document(BASIC).unwrap();
        assert_eq!(results.len(), 2);

        // A recorded trace replays bit-for-bit and reports one result.
        let straight = |to: f64| TrajectoryBuilder::from_origin().sweep_to(to).finish().unwrap();
        let trace = RunTrace::record(
            "suite replay test",
            vec![straight(9.0), straight(9.0)],
            Target::new(2.0).unwrap(),
            &FaultPlan::new(vec![FaultKind::Sensor, FaultKind::Reliable]).unwrap(),
            0,
            SimConfig::default(),
            None,
        )
        .unwrap();
        assert!(trace.outcome.detected(), "robot 1 reaches and reports the target");
        let results = run_document(&trace.to_json().unwrap()).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].target, 2.0);
        assert_eq!(results[0].detection_time, trace.outcome.detection.as_ref().map(|d| d.time));

        // A diverging trace (tampered outcome) is rejected, not panicked.
        let mut tampered = trace.clone();
        tampered.outcome.detection = None;
        assert!(run_document(&tampered.to_json().unwrap()).is_err());

        // Garbage is rejected with the scenario parser's error.
        assert!(run_document("{ not json").is_err());
    }

    #[test]
    fn byzantine_fault_plan_with_quorum_confirms_the_target() {
        // n = 5, f = 2, two liars, f + 1 = 3 quorum: the canonical
        // n >= 2f + 1 Byzantine regime.
        let s = Scenario::from_json(
            r#"{"n": 5, "f": 2, "targets": [2.0, -4.5],
                "fault_plan": ["Reliable", "Reliable", "Reliable",
                               {"Byzantine": {"lie_rate": 0.75}},
                               {"Byzantine": {"lie_rate": 0.75}}],
                "quorum": 3, "seed": 9}"#,
        )
        .unwrap();
        let results = s.run().unwrap();
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.detection_time.is_some(), "honest majority confirms target {}", r.target);
            assert!(r.ratio.is_finite());
        }
        // Deterministic in the seed.
        assert_eq!(s.run().unwrap(), results);
    }

    #[test]
    fn pfaulty_fault_plan_runs_seeded() {
        let s = Scenario::from_json(
            r#"{"n": 3, "f": 1, "targets": [3.0],
                "fault_plan": [{"PFaulty": {"detect_probability": 0.5}},
                               "Reliable", "Reliable"],
                "seed": 4}"#,
        )
        .unwrap();
        let results = s.run().unwrap();
        assert!(results[0].detection_time.is_some());
        assert_eq!(s.run().unwrap(), results);
    }

    #[test]
    fn fault_plan_validation_rejects_malformed_documents() {
        // Wrong plan length.
        assert!(Scenario::from_json(
            r#"{"n": 3, "f": 1, "targets": [2.0], "fault_plan": ["Reliable"]}"#
        )
        .is_err());
        // Out-of-range parameter: a typed error, not a panic.
        assert!(Scenario::from_json(
            r#"{"n": 3, "f": 1, "targets": [2.0],
                "fault_plan": [{"Byzantine": {"lie_rate": 7.0}}, "Reliable", "Reliable"]}"#
        )
        .is_err());
        // Over budget: two faults with f = 1.
        assert!(Scenario::from_json(
            r#"{"n": 3, "f": 1, "targets": [2.0],
                "fault_plan": ["Sensor", "Sensor", "Reliable"]}"#
        )
        .is_err());
        // fault_plan and faulty are mutually exclusive.
        assert!(Scenario::from_json(
            r#"{"n": 3, "f": 1, "targets": [2.0], "faulty": [0],
                "fault_plan": ["Sensor", "Reliable", "Reliable"]}"#
        )
        .is_err());
        // Quorum without a fault plan, zero votes, or more votes than
        // robots.
        assert!(Scenario::from_json(r#"{"n": 3, "f": 1, "targets": [2.0], "quorum": 2}"#).is_err());
        assert!(Scenario::from_json(
            r#"{"n": 3, "f": 1, "targets": [2.0],
                "fault_plan": ["Sensor", "Reliable", "Reliable"], "quorum": 0}"#
        )
        .is_err());
        assert!(Scenario::from_json(
            r#"{"n": 3, "f": 1, "targets": [2.0],
                "fault_plan": ["Sensor", "Reliable", "Reliable"], "quorum": 4}"#
        )
        .is_err());
        // A seed still needs something that flips coins.
        assert!(Scenario::from_json(
            r#"{"n": 3, "f": 1, "targets": [2.0],
                "fault_plan": ["Sensor", "Reliable", "Reliable"], "seed": 7}"#
        )
        .is_err());
    }

    #[test]
    fn results_serialize() {
        let s = Scenario::from_json(BASIC).unwrap();
        let json = results_to_json(&s.run().unwrap()).unwrap();
        assert!(json.contains("\"target\": 2.0"));
        let back: Vec<ScenarioResult> = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn infinite_ratio_roundtrips_losslessly() {
        // An undetected target yields an infinite ratio; the JSON
        // encoding must preserve it instead of collapsing to `null`.
        let s = Scenario::from_json(
            r#"{"n": 3, "f": 1, "strategy": "pessimal-split", "targets": [-5.0]}"#,
        )
        .unwrap();
        let results = s.run().unwrap();
        assert!(results[0].ratio.is_infinite());
        let json = results_to_json(&results).unwrap();
        assert!(json.contains("\"inf\""), "expected the sentinel in: {json}");
        let back: Vec<ScenarioResult> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, results);
    }
}
