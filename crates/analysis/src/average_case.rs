//! Average-case analysis: the expected ratio `E[K(x)]` for a target
//! drawn log-uniformly from `[1, X]` (random side), computed **exactly**
//! by integrating the piecewise closed form of
//! [`faultline_core::ClosedForm`] — and cross-validated against the
//! Monte-Carlo simulator.
//!
//! The log-uniform law matches the simulator's sampling
//! ([`faultline_sim::run_sweep_ratios`]): `x = ±exp(U)`,
//! `U ~ Uniform[0, ln X]`, so
//!
//! ```text
//! E[K] = (1 / (2 ln X)) * ∫_0^{ln X} (K(e^u) + K(-e^u)) du .
//! ```
//!
//! This quantifies how pessimistic the worst case is: typical targets
//! cost well under half the competitive ratio.

use faultline_core::closed_form::ClosedForm;
use faultline_core::{numeric, Algorithm, Params, Result};
use serde::{Deserialize, Serialize};

/// Exact and worst-case ratios for one parameter pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AverageCase {
    /// Robots.
    pub n: usize,
    /// Fault budget.
    pub f: usize,
    /// The log-uniform range upper end `X`.
    pub xmax: f64,
    /// Exact expected ratio `E[K(x)]` under the worst-case fault
    /// adversary.
    pub expected: f64,
    /// Theorem 1's worst-case competitive ratio.
    pub worst_case: f64,
}

impl AverageCase {
    /// How much the worst case overstates the typical cost.
    #[must_use]
    pub fn pessimism(&self) -> f64 {
        self.worst_case / self.expected
    }
}

/// Computes the exact expected ratio by Simpson integration of the
/// closed form over the log-uniform law.
///
/// # Errors
///
/// Fails outside the proportional regime or for `xmax <= 1`.
pub fn exact_average(params: Params, xmax: f64, panels: usize) -> Result<AverageCase> {
    if !(xmax > 1.0) {
        return Err(faultline_core::Error::domain(format!(
            "average-case analysis needs xmax > 1, got {xmax}"
        )));
    }
    let alg = Algorithm::design(params)?;
    let schedule = alg.schedule().ok_or_else(|| {
        faultline_core::Error::invalid_params(
            params.n(),
            params.f(),
            "average-case closed form needs the proportional regime",
        )
    })?;
    let cf = ClosedForm::new(schedule);
    let f = params.f();
    let integrand = |u: f64| {
        let x = u.exp();
        let right = cf.ratio_at(x, f).expect("x >= 1 in range");
        let left = cf.ratio_at(-x, f).expect("x >= 1 in range");
        0.5 * (right + left)
    };
    // Node evaluations run on the work-stealing engine; the result is
    // bit-identical to the serial Simpson rule.
    let integral = numeric::integrate_simpson_par(integrand, 0.0, xmax.ln(), panels)?;
    Ok(AverageCase {
        n: params.n(),
        f: params.f(),
        xmax,
        expected: integral / xmax.ln(),
        worst_case: faultline_core::ratio::cr_upper(params),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_strategies::{PaperStrategy, Strategy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn expected_is_between_beta_and_worst_case() {
        for (n, f) in [(2usize, 1usize), (3, 1), (5, 2), (5, 3)] {
            let params = Params::new(n, f).unwrap();
            let avg = exact_average(params, 100.0, 4096).unwrap();
            let beta = faultline_core::ratio::optimal_beta(params).unwrap();
            assert!(
                avg.expected > beta,
                "(n={n}, f={f}): E[K] = {} below the cone floor beta = {beta}",
                avg.expected
            );
            assert!(avg.expected < avg.worst_case, "(n={n}, f={f})");
            assert!(avg.pessimism() > 1.0);
        }
    }

    #[test]
    fn exact_average_matches_monte_carlo() {
        // Cross-validate the Simpson/closed-form path against the
        // discrete-event simulator with the worst-case adversary,
        // emulated by Bernoulli-with-budget... no: use the adversarial
        // detection directly via coverage on sampled targets.
        let params = Params::new(3, 1).unwrap();
        let xmax = 50.0;
        let exact = exact_average(params, xmax, 8192).unwrap();

        // Monte Carlo with the same target law and the worst-case
        // adversary: sample x, evaluate T_2(x)/x via the fleet.
        use rand::Rng;
        let strategy = PaperStrategy::new();
        let plans = strategy.plans(params).unwrap();
        let horizon = strategy.horizon_hint(params, xmax * 1.01);
        let fleet = faultline_core::Fleet::from_plans(&plans, horizon).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let samples = 20_000;
        let mut sum = 0.0;
        for _ in 0..samples {
            let x = rng.random_range(0.0..xmax.ln()).exp();
            let side = if rng.random_bool(0.5) { 1.0 } else { -1.0 };
            let t = fleet.visit_time(side * x, 2).unwrap();
            sum += t / x;
        }
        let mc = sum / samples as f64;
        assert!((mc - exact.expected).abs() < 0.03, "Monte Carlo {mc} vs exact {}", exact.expected);
    }

    #[test]
    fn average_is_insensitive_to_xmax_for_large_ranges() {
        // K is multiplicatively periodic in x (period r on each side),
        // so the log-uniform average converges as X spans many periods.
        let params = Params::new(3, 1).unwrap();
        let a = exact_average(params, 1e4, 16_384).unwrap().expected;
        let b = exact_average(params, 1e6, 16_384).unwrap().expected;
        assert!((a - b).abs() < 0.02, "{a} vs {b}");
    }

    #[test]
    fn validates_inputs() {
        let params = Params::new(3, 1).unwrap();
        assert!(exact_average(params, 1.0, 128).is_err());
        assert!(exact_average(Params::new(4, 1).unwrap(), 10.0, 128).is_err());
    }
}
